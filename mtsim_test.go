package mtsim

// Facade tests: the public API exercised end to end, the way a downstream
// user would drive it.

import (
	"testing"
)

func TestFacadePipeline(t *testing.T) {
	tr, err := BuildApp("Barnes-Hut", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	set := Analyze(tr)
	pl, err := Place(set, "SHARE-REFS", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, pl, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime == 0 {
		t.Error("zero exec time")
	}
	tot := res.Totals()
	if tot.Refs != tr.TotalRefs() {
		t.Errorf("refs %d != trace refs %d", tot.Refs, tr.TotalRefs())
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := BuildApp("NoSuchApp", DefaultParams()); err == nil {
		t.Error("unknown app accepted")
	}
	tr, err := BuildApp("Topopt", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	set := Analyze(tr)
	if _, err := Place(set, "NOT-AN-ALG", 4, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := AppByName("nope"); err == nil {
		t.Error("AppByName accepted unknown name")
	}
}

func TestFacadeApplicationsAndAlgorithms(t *testing.T) {
	if len(Applications()) != 14 {
		t.Errorf("%d applications, want 14", len(Applications()))
	}
	if len(Algorithms()) != 14 {
		t.Errorf("%d algorithms, want 14", len(Algorithms()))
	}
}

func TestFacadeCustomTrace(t *testing.T) {
	tr := NewTrace("custom", 2)
	for i := 0; i < 2; i++ {
		r := NewRecorder(tr, i)
		for j := 0; j < 50; j++ {
			r.Compute(3)
			r.Load(SharedBase + uint64(j%16)*8)
		}
		r.Store(uint64(i+1) << 20)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	set := Analyze(tr)
	pl, err := Place(set, "LOAD-BAL", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, pl, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Totals().SharedRefs != 100 {
		t.Errorf("shared refs = %d, want 100", res.Totals().SharedRefs)
	}
}

func TestFacadeSynthetic(t *testing.T) {
	spec := DefaultSyntheticSpec()
	spec.Threads = 8
	spec.WorkUnits = 100
	app, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := app.Build(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumThreads() != 8 {
		t.Errorf("threads = %d", tr.NumThreads())
	}
	spec.Uniformity = 7
	if _, err := Synthetic(spec); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestFacadeKLShare(t *testing.T) {
	tr, err := BuildApp("Topopt", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	set := Analyze(tr)
	pl, err := KLShare(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(tr.NumThreads(), 4); err != nil {
		t.Error(err)
	}
	if pl.Algorithm != "KL-SHARE" {
		t.Errorf("algorithm = %q", pl.Algorithm)
	}
}

func TestFacadeAnalysisExtensions(t *testing.T) {
	tr, err := BuildApp("Gauss", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	set := Analyze(tr)
	fs := set.DefaultFalseSharing()
	// The paper: its programs have little false sharing. Ours are laid
	// out the same way.
	if pct := fs.FalseOnlyRefsPct(); pct > 8 {
		t.Errorf("Gauss false-sharing refs = %.1f%%, want small", pct)
	}
	c := set.Characteristics(nil)
	if c.Threads != 127 {
		t.Errorf("threads = %d", c.Threads)
	}
}

func TestFacadeWriteRunsAndModel(t *testing.T) {
	tr, err := BuildApp("FFT", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	set := Analyze(tr)
	pl, err := Place(set, "LOAD-BAL", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	cfg.TrackWriteRuns = true
	res, err := Simulate(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteRuns == nil || res.WriteRuns.WrittenBlocks == 0 {
		t.Fatal("write runs not collected through facade")
	}

	m := EfficiencyModel{RunLength: 12, Latency: 50, SwitchCost: 6}
	if e := m.EfficiencyMVA(4); e <= 0 || e > 1 {
		t.Errorf("model efficiency = %v", e)
	}
}

func TestFacadeSuite(t *testing.T) {
	opts := DefaultOptions()
	opts.ProcCounts = []int{2}
	s := NewSuite(opts)
	res, err := s.RunOne("Grav", "RANDOM", 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "RANDOM" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
}
