package main

import (
	"time"

	"repro/internal/placement"
	"repro/internal/retry"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// remoteRunner returns a core.Options.Runner that sends each
// static-placement simulation to an mtserve instance. The cell travels
// fully explicit — placement clusters and complete simulator config — so
// COHERENCE placements and ablation configs reproduce exactly; the
// server's result is the same deterministic sim.Result a local run would
// produce, which the differential tests assert byte for byte.
//
// Workloads outside the server's catalog (the synthetic ablation
// variants) fall back to a local run: they are parameterized beyond
// (scale, seed), so no remote cell identity exists for them. Dynamic
// scheduling stays local too (core.Options.DynRunner is untouched).
func remoteRunner(baseURL string, params workload.Params) func(*trace.Trace, *placement.Placement, sim.Config) (*sim.Result, error) {
	cl := client.New(baseURL)
	// Sweeps are patient: ride out queue-full backpressure (429 +
	// Retry-After), restarts and proxy flaps through the shared backoff
	// core rather than failing a multi-minute sweep on a transient
	// rejection — but cap the total patience, and let the final error
	// report how many attempts were spent.
	cl.Policy = retry.Policy{
		BaseDelay:   250 * time.Millisecond,
		MaxDelay:    5 * time.Second,
		MaxAttempts: 240,
	}
	cl.RetryBudget = 2 * time.Minute
	p := serve.Params{Scale: params.Scale, Seed: params.Seed}
	return func(tr *trace.Trace, pl *placement.Placement, cfg sim.Config) (*sim.Result, error) {
		if _, err := workload.ByName(tr.App); err != nil {
			return sim.Run(tr, pl, cfg)
		}
		return cl.SimulateCell(p, tr.App, pl.Algorithm, pl.Clusters, cfg, "")
	}
}
