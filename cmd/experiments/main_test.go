package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
)

func TestParseProcs(t *testing.T) {
	got, err := parseProcs("2,4, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "a", "0", "-3", "2,,4"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("parseProcs(%q) accepted", bad)
		}
	}
}

// testSweep returns the small sweep configuration the cmd tests share.
func testSweep() sweepCfg {
	return sweepCfg{scale: 1, seed: 1, procs: "2", fig5app: "MP3D", out: io.Discard}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	cfg := testSweep()
	if _, err := run(cfg); err == nil {
		t.Error("empty selection accepted")
	}
	cfg.procs = "bogus"
	if _, err := run(cfg); err == nil {
		t.Error("bad procs accepted")
	}
}

func TestRunSingleTable(t *testing.T) {
	cfg := testSweep()
	cfg.table = 3
	cfg.outdir = t.TempDir()
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	cfg := testSweep()
	if _, err := run(cfg); !obs.IsUsage(err) {
		t.Errorf("empty selection: err = %v, want usage error", err)
	}
	bad := testSweep()
	bad.procs = "bogus"
	if _, err := run(bad); !obs.IsUsage(err) {
		t.Errorf("bad procs: err = %v, want usage error", err)
	}
	noJournal := testSweep()
	noJournal.table = 3
	noJournal.resume = true
	if _, err := run(noJournal); !obs.IsUsage(err) {
		t.Errorf("-resume without -journal: err = %v, want usage error", err)
	}
}

func TestTimelineRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.json")
	var logs bytes.Buffer
	if err := timelineRun(0.25, 1, "2,4", path, obs.NewLogger(&logs, false)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	obstest.CheckTraceEventJSON(t, raw)
	if !strings.Contains(logs.String(), "wrote timeline") {
		t.Errorf("no confirmation logged: %q", logs.String())
	}
}
