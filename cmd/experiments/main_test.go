package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
)

func TestParseProcs(t *testing.T) {
	got, err := parseProcs("2,4, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "a", "0", "-3", "2,,4"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("parseProcs(%q) accepted", bad)
		}
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	if err := run(false, 0, 0, 1, 1, "2", "MP3D", "", "", ""); err == nil {
		t.Error("empty selection accepted")
	}
	if err := run(false, 0, 0, 1, 1, "bogus", "MP3D", "", "", ""); err == nil {
		t.Error("bad procs accepted")
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run(false, 3, 0, 1, 1, "2", "MP3D", "", t.TempDir(), ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if err := run(false, 0, 0, 1, 1, "2", "MP3D", "", "", ""); !obs.IsUsage(err) {
		t.Errorf("empty selection: err = %v, want usage error", err)
	}
	if err := run(false, 0, 0, 1, 1, "bogus", "MP3D", "", "", ""); !obs.IsUsage(err) {
		t.Errorf("bad procs: err = %v, want usage error", err)
	}
}

func TestTimelineRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "timeline.json")
	var logs bytes.Buffer
	if err := timelineRun(0.25, 1, "2,4", path, obs.NewLogger(&logs, false)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	obstest.CheckTraceEventJSON(t, raw)
	if !strings.Contains(logs.String(), "wrote timeline") {
		t.Errorf("no confirmation logged: %q", logs.String())
	}
}
