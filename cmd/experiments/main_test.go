package main

import "testing"

func TestParseProcs(t *testing.T) {
	got, err := parseProcs("2,4, 8,16")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "a", "0", "-3", "2,,4"} {
		if _, err := parseProcs(bad); err == nil {
			t.Errorf("parseProcs(%q) accepted", bad)
		}
	}
}

func TestRunRejectsEmptySelection(t *testing.T) {
	if err := run(false, 0, 0, 1, 1, "2", "MP3D", "", "", ""); err == nil {
		t.Error("empty selection accepted")
	}
	if err := run(false, 0, 0, 1, 1, "bogus", "MP3D", "", "", ""); err == nil {
		t.Error("bad procs accepted")
	}
}

func TestRunSingleTable(t *testing.T) {
	if err := run(false, 3, 0, 1, 1, "2", "MP3D", "", t.TempDir(), ""); err != nil {
		t.Fatal(err)
	}
}
