package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// experimentCluster is a coordinator with n mtserve workers, all
// in-process over real HTTP — the -remote differential's cluster twin.
type experimentCluster struct {
	coord   *cluster.Coordinator
	coordTS *httptest.Server
	servers []*httptest.Server
	workers []*serve.Server
	agents  []*cluster.Agent
}

func startExperimentCluster(t *testing.T, n int) *experimentCluster {
	t.Helper()
	coord, err := cluster.New(cluster.Options{
		HeartbeatTimeout: 500 * time.Millisecond,
		PollInterval:     2 * time.Millisecond,
		LeaseChunk:       4,
		Journal:          filepath.Join(t.TempDir(), "mtcoord.mtj"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ec := &experimentCluster{coord: coord, coordTS: httptest.NewServer(coord.Handler())}
	for i := 0; i < n; i++ {
		srv := serve.NewServer(serve.Options{Workers: 2, SampleEvery: -1})
		ts := httptest.NewServer(srv.Handler())
		ec.workers = append(ec.workers, srv)
		ec.servers = append(ec.servers, ts)
		ec.agents = append(ec.agents, cluster.StartAgent(
			ec.coordTS.URL, []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}[i],
			ts.URL, 50*time.Millisecond, nil))
	}
	t.Cleanup(func() {
		for i := range ec.workers {
			ec.agents[i].Stop()
			ec.servers[i].Close()
			ec.workers[i].Drain()
		}
		ec.coord.Drain()
		ec.coordTS.Close()
	})
	cl := client.New(ec.coordTS.URL)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if h, err := cl.Health(); err == nil && h.Workers >= n {
			return ec
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reached %d workers", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// killWorker makes worker i unreachable: heartbeats stop and every proxy
// attempt gets a transport error, so the coordinator must fail the cells
// over to the surviving workers.
func (ec *experimentCluster) killWorker(i int) {
	ec.agents[i].Stop()
	ec.servers[i].Close()
	ec.workers[i].Drain()
}

// cacheMisses sums result-cache misses across the live workers.
func (ec *experimentCluster) cacheMisses() uint64 {
	var total uint64
	for _, w := range ec.workers {
		total += w.CacheStats().Misses
	}
	return total
}

// TestClusterSweepArtifactsMatchLocal: the Table 3 / Figure 2 sweep
// pointed at a coordinator with four workers must emit artifacts
// byte-identical to the in-process run — the cluster, like the single
// server before it, adds transport and scheduling, never arithmetic.
// This drives the coordinator's /v1/simulate proxy with the explicit
// placements the -remote runner ships, then repeats the differential
// with one worker killed to prove failover does not bend a single byte.
func TestClusterSweepArtifactsMatchLocal(t *testing.T) {
	artifacts := []string{"table3.txt", "table3.csv", "figure2.txt", "figure2.csv", "figure2.svg"}

	localDir := t.TempDir()
	if _, err := run(resumeSweep(localDir)); err != nil {
		t.Fatal(err)
	}

	ec := startExperimentCluster(t, 4)

	clusterDir := t.TempDir()
	rcfg := resumeSweep(clusterDir)
	rcfg.remote = ec.coordTS.URL
	if _, err := run(rcfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range artifacts {
		want, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(clusterDir, name))
		if err != nil {
			t.Fatalf("%s missing from cluster run: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between local and cluster sweeps", name)
		}
	}
	if ec.cacheMisses() == 0 {
		t.Fatal("worker caches saw no traffic: the sweep did not go through the cluster")
	}

	// Chaos pass: kill one worker, then run the identical sweep again.
	// Cells whose rendezvous preference was the dead worker must fail
	// over (first attempt errors, the worker is marked dead, the next
	// candidate serves) — and the artifacts still cannot change.
	ec.killWorker(0)
	chaosDir := t.TempDir()
	ccfg := resumeSweep(chaosDir)
	ccfg.remote = ec.coordTS.URL
	if _, err := run(ccfg); err != nil {
		t.Fatalf("sweep with a killed worker: %v", err)
	}
	for _, name := range artifacts {
		want, _ := os.ReadFile(filepath.Join(localDir, name))
		got, err := os.ReadFile(filepath.Join(chaosDir, name))
		if err != nil {
			t.Fatalf("%s missing after worker kill: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs after killing a worker mid-fleet", name)
		}
	}
	if snap := ec.coord.Metrics().Snapshot(); snap["coordinator_worker_deaths_total"] == 0 {
		t.Error("coordinator never noticed the killed worker")
	}
}
