package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/workload"
)

// engineBench is one engine's measurement over the benchmark cells.
type engineBench struct {
	Seconds         float64 `json:"seconds"`
	Cells           int     `json:"cells"`
	CyclesSimulated uint64  `json:"cycles_simulated"`
	CyclesPerSec    float64 `json:"cycles_per_sec"`
}

// benchSimReport is the BENCH_sim.json schema: throughput of the
// reference and fast engines over the same cells, their speedup, the
// fast engine's throughput with a probe attached (the observability
// layer's measured cost), and the memoized sweep's first-vs-second-call
// wall time.
type benchSimReport struct {
	App              string      `json:"app"`
	Scale            float64     `json:"scale"`
	Seed             int64       `json:"seed"`
	ProcCounts       []int       `json:"proc_counts"`
	Algorithms       []string    `json:"algorithms"`
	Reference        engineBench `json:"reference"`
	Fast             engineBench `json:"fast"`
	FastProbeOn      engineBench `json:"fast_probe_on"`
	Speedup          float64     `json:"speedup"`
	ProbeOverheadPct float64     `json:"probe_overhead_pct"`
	MemoFirstSecs    float64     `json:"memoized_figure_first_call_seconds"`
	MemoSecondSecs   float64     `json:"memoized_figure_second_call_seconds"`
	MemoSpeedup      float64     `json:"memoized_figure_speedup"`
	// Resilience costs on the memoized sweep path: the engine guard with
	// its watchdog armed but cross-checking off (the wrapper itself), the
	// guard cross-checking every 4th cell on the reference engine, and
	// the per-section journal writes of a -journal sweep.
	GuardMemoSecs      float64 `json:"guarded_figure_first_call_seconds"`
	GuardOverheadPct   float64 `json:"guard_overhead_pct"`
	CrossCheckSecs     float64 `json:"crosscheck_figure_first_call_seconds"`
	CrossCheckPct      float64 `json:"crosscheck_overhead_pct"`
	JournalSecs        float64 `json:"journal_seconds"`
	JournalOverheadPct float64 `json:"journal_overhead_pct"`
	GeneratedBy        string  `json:"generated_by"`
}

// benchSim times both engines sequentially over every (algorithm,
// processor-count) cell of the Figure 2 application and writes the
// comparison to path. Engine calls bypass the suite's memoization so each
// cell is genuinely re-simulated; a separate pass times the memoized
// ExecutionFigure sweep itself (first call simulates, second is served
// from cache).
func benchSim(scale float64, seed int64, procsSpec, path string) error {
	pcs, err := parseProcs(procsSpec)
	if err != nil {
		return err
	}
	const app = "LocusRoute"
	opts := core.DefaultOptions()
	opts.Params = workload.Params{Scale: scale, Seed: seed}
	opts.ProcCounts = pcs
	s := core.NewSuite(opts)

	rep := benchSimReport{
		App:         app,
		Scale:       scale,
		Seed:        seed,
		ProcCounts:  pcs,
		Algorithms:  core.AllAlgorithms(),
		GeneratedBy: "experiments -benchsim",
	}

	tr, err := s.Trace(app)
	if err != nil {
		return err
	}
	// newProbe, when non-nil, supplies a fresh probe per cell (a counter
	// plus a 10k-cycle sampler — the stack a telemetry-enabled sweep
	// would attach).
	measure := func(eng sim.Engine, newProbe func() obs.Probe) (engineBench, error) {
		var b engineBench
		t0 := time.Now()
		for _, procs := range pcs {
			cfg, err := s.Config(app, procs, false)
			if err != nil {
				return b, err
			}
			for _, alg := range rep.Algorithms {
				pl, err := s.Place(app, alg, procs)
				if err != nil {
					return b, err
				}
				var probe obs.Probe
				if newProbe != nil {
					probe = newProbe()
				}
				res, err := sim.RunObserved(tr, pl, cfg, eng, probe)
				if err != nil {
					return b, err
				}
				b.Cells++
				b.CyclesSimulated += res.ExecTime
			}
		}
		b.Seconds = time.Since(t0).Seconds()
		b.CyclesPerSec = float64(b.CyclesSimulated) / b.Seconds
		return b, nil
	}

	fmt.Printf("benchsim: %s, %d algorithms x %v processors, scale %g\n", app, len(rep.Algorithms), pcs, scale)
	if rep.Reference, err = measure(sim.ReferenceEngine, nil); err != nil {
		return err
	}
	fmt.Printf("  reference: %d cells in %.2fs (%.3g cycles/s)\n", rep.Reference.Cells, rep.Reference.Seconds, rep.Reference.CyclesPerSec)
	if rep.Fast, err = measure(sim.FastEngine, nil); err != nil {
		return err
	}
	fmt.Printf("  fast:      %d cells in %.2fs (%.3g cycles/s)\n", rep.Fast.Cells, rep.Fast.Seconds, rep.Fast.CyclesPerSec)
	if rep.Reference.CyclesSimulated != rep.Fast.CyclesSimulated {
		return fmt.Errorf("engines disagree: reference simulated %d cycles, fast %d",
			rep.Reference.CyclesSimulated, rep.Fast.CyclesSimulated)
	}
	rep.Speedup = rep.Fast.CyclesPerSec / rep.Reference.CyclesPerSec
	fmt.Printf("  speedup:   %.2fx\n", rep.Speedup)

	if rep.FastProbeOn, err = measure(sim.FastEngine, func() obs.Probe {
		return obs.Multi(&obs.Counter{}, obs.NewSampler(10_000))
	}); err != nil {
		return err
	}
	if rep.FastProbeOn.CyclesSimulated != rep.Fast.CyclesSimulated {
		return fmt.Errorf("probe perturbed the simulation: bare %d cycles, probed %d",
			rep.Fast.CyclesSimulated, rep.FastProbeOn.CyclesSimulated)
	}
	rep.ProbeOverheadPct = (rep.Fast.CyclesPerSec/rep.FastProbeOn.CyclesPerSec - 1) * 100
	fmt.Printf("  fast+probe: %d cells in %.2fs (%.3g cycles/s, %.1f%% overhead)\n",
		rep.FastProbeOn.Cells, rep.FastProbeOn.Seconds, rep.FastProbeOn.CyclesPerSec, rep.ProbeOverheadPct)

	// Memoized sweep: a fresh suite so the first call pays for every
	// simulation and the second call is pure cache.
	ms := core.NewSuite(opts)
	t0 := time.Now()
	if _, err := ms.ExecutionFigure(app); err != nil {
		return err
	}
	rep.MemoFirstSecs = time.Since(t0).Seconds()
	t0 = time.Now()
	if _, err := ms.ExecutionFigure(app); err != nil {
		return err
	}
	rep.MemoSecondSecs = time.Since(t0).Seconds()
	if rep.MemoSecondSecs > 0 {
		rep.MemoSpeedup = rep.MemoFirstSecs / rep.MemoSecondSecs
	}
	fmt.Printf("  memoized ExecutionFigure: first %.2fs, second %.6fs\n", rep.MemoFirstSecs, rep.MemoSecondSecs)

	// Guarded sweep: the identical fresh-suite sweep with the engine
	// guard's watchdog armed but cross-checking off, pricing the per-event
	// guard check and the wrapper itself.
	guardSweep := func(sampleEvery int) (float64, error) {
		g := &resilience.EngineGuard{
			SampleEvery: sampleEvery,
			Guard:       sim.Guard{MaxSteps: 1 << 62},
		}
		gopts := opts
		gopts.Runner = g.Run
		gopts.DynRunner = g.RunDynamic
		gs := core.NewSuite(gopts)
		t0 := time.Now()
		if _, err := gs.ExecutionFigure(app); err != nil {
			return 0, err
		}
		return time.Since(t0).Seconds(), nil
	}
	if rep.GuardMemoSecs, err = guardSweep(0); err != nil {
		return err
	}
	rep.GuardOverheadPct = (rep.GuardMemoSecs/rep.MemoFirstSecs - 1) * 100
	fmt.Printf("  guarded ExecutionFigure (watchdog only): %.2fs (%.1f%% overhead)\n",
		rep.GuardMemoSecs, rep.GuardOverheadPct)
	if rep.CrossCheckSecs, err = guardSweep(4); err != nil {
		return err
	}
	rep.CrossCheckPct = (rep.CrossCheckSecs/rep.MemoFirstSecs - 1) * 100
	fmt.Printf("  guarded ExecutionFigure (crosscheck 4): %.2fs (%.1f%% overhead)\n",
		rep.CrossCheckSecs, rep.CrossCheckPct)

	// Journal cost: the synced per-section records a -all -journal sweep
	// writes (about ten sections), priced against the sweep itself.
	jdir, err := os.MkdirTemp("", "benchsim-journal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jdir)
	t0 = time.Now()
	j, err := resilience.OpenJournal(filepath.Join(jdir, "sweep.journal"), "benchsim")
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		if err := j.Record(fmt.Sprintf("Section %d", i), "crc32:00000000"); err != nil {
			return err
		}
	}
	if err := j.Close(); err != nil {
		return err
	}
	rep.JournalSecs = time.Since(t0).Seconds()
	rep.JournalOverheadPct = rep.JournalSecs / rep.MemoFirstSecs * 100
	fmt.Printf("  journal: 10 synced records in %.4fs (%.2f%% of sweep)\n",
		rep.JournalSecs, rep.JournalOverheadPct)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
