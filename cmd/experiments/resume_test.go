package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

// resumeSweep is the two-section sweep (Table 3, then Figure 2) the
// kill-and-resume tests interrupt. Scale 0.25 keeps it fast.
func resumeSweep(outdir string) sweepCfg {
	return sweepCfg{
		table: 3, figure: 2,
		scale: 0.25, seed: 1, procs: "2", fig5app: "MP3D",
		outdir: outdir, out: io.Discard,
	}
}

// TestKillAndResume: a sweep killed between sections, restarted with
// -resume, must (a) skip the sections the journal records complete,
// (b) re-simulate only the unfinished ones, and (c) leave artifacts
// byte-identical to an uninterrupted run.
func TestKillAndResume(t *testing.T) {
	// Ground truth: one uninterrupted run.
	cleanDir := t.TempDir()
	if _, err := run(resumeSweep(cleanDir)); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: journaled, killed after the first section
	// (Table 3) completes.
	workDir := t.TempDir()
	journal := filepath.Join(workDir, "sweep.journal")
	icfg := resumeSweep(workDir)
	icfg.journalPath = journal
	icfg.interruptAfter = 1
	if _, err := run(icfg); !errors.Is(err, errInterrupted) {
		t.Fatalf("interrupt hook: err = %v, want errInterrupted", err)
	}

	// Resume: Table 3 must be skipped (not re-rendered), Figure 2 run.
	var out bytes.Buffer
	rcfg := resumeSweep(workDir)
	rcfg.journalPath = journal
	rcfg.resume = true
	rcfg.out = &out
	if _, err := run(rcfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "[Table 3 already complete") {
		t.Errorf("resume did not skip the journaled section:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Table 3 regenerated") {
		t.Error("resume re-simulated a completed section")
	}
	if !strings.Contains(out.String(), "Figure 2 regenerated") {
		t.Error("resume did not run the unfinished section")
	}

	// Artifacts from the interrupted-then-resumed pipeline must be
	// byte-identical to the uninterrupted run's.
	for _, name := range []string{"table3.txt", "table3.csv", "figure2.txt", "figure2.csv", "figure2.svg"} {
		want, err := os.ReadFile(filepath.Join(cleanDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(workDir, name))
		if err != nil {
			t.Fatalf("%s missing after resume: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between resumed and uninterrupted runs", name)
		}
	}

	// A second resume skips everything.
	out.Reset()
	if _, err := run(rcfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "regenerated") {
		t.Errorf("fully-complete resume still re-simulated:\n%s", out.String())
	}
}

// TestResumeRejectsForeignJournal: resuming against a journal written
// under a different configuration must fail, not silently skip.
func TestResumeRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal")
	cfg := resumeSweep(dir)
	cfg.figure = 0 // Table 3 only: cheap
	cfg.journalPath = journal
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
	foreign := cfg
	foreign.resume = true
	foreign.scale = 0.5
	if _, err := run(foreign); err == nil {
		t.Fatal("resume accepted a journal from a different scale")
	} else if !strings.Contains(err.Error(), "binding mismatch") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestFreshRunTruncatesJournal: without -resume, an existing journal is
// discarded instead of silently skipping live sections.
func TestFreshRunTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "sweep.journal")
	cfg := resumeSweep(dir)
	cfg.figure = 0
	cfg.journalPath = journal
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	cfg.out = &out
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 3 regenerated") {
		t.Errorf("fresh run skipped a section from a stale journal:\n%s", out.String())
	}
}

// TestRunDegraded: a broken fast engine under -crosscheck must complete
// the sweep on the reference engine and report degradation.
func TestRunDegraded(t *testing.T) {
	prev := sim.SetFastEngineFault(func(r *sim.Result) { r.ExecTime += 3 })
	defer sim.SetFastEngineFault(prev)

	var out bytes.Buffer
	cfg := resumeSweep(t.TempDir())
	cfg.table = 0 // Figure 2 only: Table 3 performs no simulation
	cfg.crossCheck = 1
	cfg.out = &out
	degraded, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !degraded {
		t.Fatal("broken fast engine did not degrade the sweep")
	}
	if !strings.Contains(out.String(), "engine divergence") {
		t.Errorf("no divergence report in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Figure 2 regenerated") {
		t.Error("degraded sweep did not complete its sections")
	}
}

// TestRunStepBudget: -maxsteps aborts a runaway simulation with a typed
// diagnostic instead of hanging.
func TestRunStepBudget(t *testing.T) {
	cfg := resumeSweep(t.TempDir())
	cfg.table = 0
	cfg.maxSteps = 10
	_, err := run(cfg)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *sim.BudgetError", err)
	}
}
