package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/advise"
)

// TestAdvisePhasedCrossover is the crossover gate as a test: on the
// phase-changing workload the online policies must beat the best static
// placement in at least one swept (interval, cost) cell with the
// migration penalty charged, every winning cell must have actually
// migrated, and every online cell must be cycle-identical across both
// engines (phasedCrossover hard-fails internally on divergence).
func TestAdvisePhasedCrossover(t *testing.T) {
	rep, err := phasedCrossover(1994)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OnlineWins {
		t.Fatalf("no online cell beats best static %s = %d; best online %s = %d",
			rep.BestStatic.Algorithm, rep.BestStatic.ExecTime,
			rep.BestOnline.Algorithm, rep.BestOnline.ExecTime)
	}
	if len(rep.Static) == 0 || len(rep.Grid) == 0 || len(rep.Crossover) == 0 {
		t.Fatalf("incomplete report: %d static, %d grid, %d crossover rows",
			len(rep.Static), len(rep.Grid), len(rep.Crossover))
	}
	for _, cell := range rep.Grid {
		if cell.BeatsStatic && cell.Migrations == 0 {
			t.Fatalf("cell %s claims a win without migrating", cell.Algorithm)
		}
		if cell.PenaltyCycles != cell.Penalty*uint64(cell.Migrations) {
			t.Fatalf("cell %s: penalty cycles %d != cost %d x %d migrations",
				cell.Algorithm, cell.PenaltyCycles, cell.Penalty, cell.Migrations)
		}
	}
	// The crossover must be a real threshold: for every (policy,
	// interval) row, wins happen at costs up to MaxWinCost and the
	// top-of-grid cost must lose (online is not free lunch at any price).
	for _, co := range rep.Crossover {
		for _, cell := range rep.Grid {
			if cell.Policy == co.Policy && cell.Interval == co.Interval &&
				cell.Penalty > co.MaxWinCost && cell.BeatsStatic {
				t.Fatalf("crossover row %s@i=%d says max winning cost %d but cost %d wins",
					co.Policy, co.Interval, co.MaxWinCost, cell.Penalty)
			}
		}
	}
}

// TestAdviseKernelGridNames locks the swept ONLINE names to the
// canonical grammar so BENCH_advise.json cells stay addressable as
// /v1/simulate algorithms.
func TestAdviseKernelGridNames(t *testing.T) {
	names := adviseKernelOnline()
	if len(names) != 4 {
		t.Fatalf("kernel online grid: %v", names)
	}
	for _, name := range names {
		spec, ok, err := advise.ParseOnlineAlgorithm(name)
		if err != nil || !ok {
			t.Fatalf("%s: ok=%v err=%v", name, ok, err)
		}
		if spec.String() != name {
			t.Fatalf("%s is not canonical (canonical %s)", name, spec.String())
		}
	}
}

// TestAdviseBenchGate runs the full generator at a reduced kernel scale
// into a temp file and checks the written artifact parses and carries a
// passing gate — the advisecheck smoke.
func TestAdviseBenchGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full advise bench in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_advise.json")
	if err := benchAdvise(0.1, 1994, path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchAdviseReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Phased == nil || !rep.Phased.OnlineWins {
		t.Fatal("artifact gate did not pass")
	}
	if len(rep.Kernels) != len(adviseKernelApps) {
		t.Fatalf("kernel reports: %d", len(rep.Kernels))
	}
	for _, kr := range rep.Kernels {
		if kr.BestStatic.Algorithm == "" || kr.BestOnline.Algorithm == "" {
			t.Fatalf("kernel %s incomplete", kr.App)
		}
	}
}
