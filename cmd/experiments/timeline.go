package main

import (
	"log/slog"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// timelineRun simulates one representative cell — the Figure 2
// application under LOAD-BAL at the largest requested processor count —
// with a Perfetto tracer attached and writes the timeline JSON to path.
// It is the sweep-level sibling of `mtsim -timeline`, using the exact
// suite configuration the tables and figures run under.
func timelineRun(scale float64, seed int64, procsSpec, path string, log *slog.Logger) error {
	pcs, err := parseProcs(procsSpec)
	if err != nil {
		return err
	}
	procs := pcs[0]
	for _, p := range pcs {
		if p > procs {
			procs = p
		}
	}
	const app, alg = "LocusRoute", "LOAD-BAL"
	curSection.Store("timeline " + app)

	opts := core.DefaultOptions()
	opts.Params = workload.Params{Scale: scale, Seed: seed}
	opts.ProcCounts = pcs
	s := core.NewSuite(opts)

	tr, err := s.Trace(app)
	if err != nil {
		return err
	}
	pl, err := s.Place(app, alg, procs)
	if err != nil {
		return err
	}
	cfg, err := s.Config(app, procs, false)
	if err != nil {
		return err
	}
	tracer := obs.NewTracer()
	res, err := sim.RunObserved(tr, pl, cfg, sim.FastEngine, tracer)
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.Export(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Info("wrote timeline", "path", path, "app", app, "alg", alg, "procs", procs,
		"exec_cycles", res.ExecTime, "events", tracer.Events(),
		"hint", "open in https://ui.perfetto.dev")
	return nil
}
