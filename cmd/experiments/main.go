// Command experiments regenerates every table and figure of the paper's
// evaluation: Tables 1-5 and Figures 2-5.
//
// Usage:
//
//	experiments -all
//	experiments -table 4
//	experiments -figure 2
//	experiments -all -scale 0.5 -procs 2,4,8,16
//	experiments -all -journal sweep.journal            # journal progress
//	experiments -all -journal sweep.journal -resume    # skip finished sections
//	experiments -all -timeout 30m -maxsteps 2000000000 # watchdogs
//	experiments -all -crosscheck 4                     # engine cross-checking
//
// Exit codes: 0 success, 1 error, 2 usage, 3 completed degraded (the
// fast engine diverged from the reference engine mid-sweep and was
// benched; the emitted numbers come from the reference engine and are
// correct).
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/workload"
)

// emitter prints every artifact to the sweep's output stream and, when an
// output directory is set, also writes <name>.txt, <name>.csv and (for
// charts) <name>.svg. It keeps a running CRC32 of the rendered text so
// each journal record carries a content checksum of its section.
type emitter struct {
	outdir string
	out    io.Writer
	crc    uint32
}

// emit renders one artifact, folds it into the section checksum, and
// forwards it to the output stream.
func (e *emitter) emit(render func(w io.Writer) error) error {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return err
	}
	e.crc = crc32.Update(e.crc, crc32.IEEETable, buf.Bytes())
	_, err := e.out.Write(buf.Bytes())
	return err
}

func (e *emitter) save(name, ext string, write func(f *os.File) error) error {
	if e.outdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(e.outdir, name+ext))
	if err != nil {
		return err
	}
	if werr := write(f); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

func (e *emitter) table(name string, t *report.Table) error {
	if err := e.emit(t.Render); err != nil {
		return err
	}
	if err := e.save(name, ".txt", func(f *os.File) error { return t.Render(f) }); err != nil {
		return err
	}
	return e.save(name, ".csv", func(f *os.File) error { return t.WriteCSV(f) })
}

func (e *emitter) chart(name string, c *report.BarChart) error {
	if err := e.emit(c.Render); err != nil {
		return err
	}
	if err := e.save(name, ".txt", func(f *os.File) error { return c.Render(f) }); err != nil {
		return err
	}
	if err := e.save(name, ".csv", func(f *os.File) error { return c.WriteCSV(f) }); err != nil {
		return err
	}
	return e.save(name, ".svg", func(f *os.File) error { return c.WriteSVG(f) })
}

// curSection names the section currently regenerating, for the
// -progress heartbeat.
var curSection atomic.Value

// errInterrupted is returned by the sweepCfg.interruptAfter test hook,
// which simulates a kill between sections for the kill-and-resume test.
var errInterrupted = errors.New("sweep interrupted (test hook)")

// sweepCfg carries one sweep invocation's full configuration.
type sweepCfg struct {
	// Selection.
	all           bool
	table, figure int
	ablation      string
	jsonPath      string

	// Workload and sweep shape.
	scale   float64
	seed    int64
	procs   string
	fig5app string
	outdir  string

	// Resilience.
	journalPath string        // journal completed sections here ("" = off)
	resume      bool          // skip sections the journal records complete
	timeout     time.Duration // cancel all simulations after this long (0 = off)
	maxSteps    uint64        // per-simulation event budget (0 = unbounded)
	crossCheck  int           // cross-check every Nth cell on the reference engine (0 = off)

	// remote, when set, sends every static-placement simulation to an
	// mtserve instance at this base URL instead of running it in-process.
	// Dynamic-scheduling cells and ad-hoc synthetic workloads (not in the
	// server's catalog) still run locally.
	remote string

	// Plumbing (zero values mean stdout / quiet logger).
	out io.Writer
	log *slog.Logger

	// interruptAfter, when positive, aborts the sweep after that many
	// sections complete. Test-only: it simulates a mid-sweep kill.
	interruptAfter int
}

// binding is the configuration fingerprint a journal is bound to: every
// knob that changes section *content*. Selection flags are deliberately
// excluded — resuming a -all sweep from a -table 1 journal is legitimate
// (the same Table 1 would be regenerated either way).
func (cfg *sweepCfg) binding() string {
	return fmt.Sprintf("scale=%g seed=%d procs=%s fig5app=%s", cfg.scale, cfg.seed, cfg.procs, cfg.fig5app)
}

func main() {
	var (
		all        = flag.Bool("all", false, "run every table and figure")
		table      = flag.Int("table", 0, "run one table (1-5)")
		figure     = flag.Int("figure", 0, "run one figure (2-5)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		seed       = flag.Int64("seed", 1994, "generation seed")
		procs      = flag.String("procs", "2,4,8,16", "processor counts, comma separated")
		fig5       = flag.String("fig5app", "MP3D", "application for the Figure 5 miss-component graph")
		abl        = flag.String("ablation", "", "ablation study: assoc, cachesize, contexts, uniformity, writeruns, protocol, latency, contention, dynamic or all")
		outdir     = flag.String("outdir", "", "also write each artifact as .txt/.csv/.svg into this directory")
		jsonF      = flag.String("json", "", "regenerate all tables/figures and save them as one JSON bundle")
		journal    = flag.String("journal", "", "journal completed sections to this file (crash-safe)")
		resume     = flag.Bool("resume", false, "skip sections the -journal file records as complete")
		timeout    = flag.Duration("timeout", 0, "abort all in-flight simulations after this long (e.g. 30m)")
		maxSteps   = flag.Uint64("maxsteps", 0, "abort any single simulation after this many events (livelock watchdog)")
		crossCheck = flag.Int("crosscheck", 0, "cross-check every Nth simulation against the reference engine (0 = off)")
		remote     = flag.String("remote", "", "run simulations on the mtserve instance at this base URL (e.g. http://127.0.0.1:8080)")
		bsim       = flag.String("benchsim", "", "benchmark the reference vs fast simulation engines and save the comparison as JSON")
		badvise    = flag.String("advise", "", "evaluate online adaptive placement (static-vs-online kernel sweep + phased crossover) and save the gated report as JSON")
		timeline   = flag.String("timeline", "", "simulate one representative run and write its Perfetto timeline JSON to this file")
		progress   = flag.Duration("progress", 0, "log a progress heartbeat at this interval (e.g. 10s) while sweeps run")
		verbose    = flag.Bool("v", false, "verbose diagnostics")
		cpuprof    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, *verbose)
	fail := func(err error) {
		os.Exit(obs.Fail(log, err, flag.Usage))
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			log.Info("wrote CPU profile", "path", *cpuprof)
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				log.Error(err.Error())
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Error(err.Error())
				return
			}
			log.Info("wrote heap profile", "path", *memprof)
		}()
	}

	curSection.Store("starting")
	stop := obs.StartHeartbeat(log, *progress, func() string {
		s, _ := curSection.Load().(string)
		return s
	})
	defer stop()

	var err error
	var degraded bool
	switch {
	case *bsim != "":
		err = benchSim(*scale, *seed, *procs, *bsim)
	case *badvise != "":
		err = benchAdvise(*scale, *seed, *badvise)
	case *timeline != "":
		err = timelineRun(*scale, *seed, *procs, *timeline, log)
	default:
		degraded, err = run(sweepCfg{
			all: *all, table: *table, figure: *figure, ablation: *abl, jsonPath: *jsonF,
			scale: *scale, seed: *seed, procs: *procs, fig5app: *fig5, outdir: *outdir,
			journalPath: *journal, resume: *resume,
			timeout: *timeout, maxSteps: *maxSteps, crossCheck: *crossCheck,
			remote: *remote,
			log:    log,
		})
	}
	if err != nil {
		stop()
		fail(err)
	}
	if degraded {
		stop()
		log.Error("sweep completed DEGRADED: the fast engine diverged and was benched; results come from the reference engine")
		os.Exit(obs.CodeDegraded)
	}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, obs.Usagef("bad processor count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// run regenerates the selected sections. It reports degraded=true when
// the sweep finished but the engine guard benched the fast engine — the
// caller should exit with obs.CodeDegraded.
func run(cfg sweepCfg) (degraded bool, err error) {
	if cfg.out == nil {
		cfg.out = os.Stdout
	}
	if cfg.log == nil {
		cfg.log = obs.NewLogger(io.Discard, false)
	}
	pcs, err := parseProcs(cfg.procs)
	if err != nil {
		return false, err
	}
	if cfg.resume && cfg.journalPath == "" {
		return false, obs.Usagef("-resume requires -journal")
	}
	if cfg.outdir != "" {
		if err := os.MkdirAll(cfg.outdir, 0o755); err != nil {
			return false, err
		}
	}

	var j *resilience.Journal
	if cfg.journalPath != "" {
		if !cfg.resume {
			// A fresh run must start a fresh journal, or stale records
			// from an earlier sweep would silently skip live sections.
			if err := os.Remove(cfg.journalPath); err != nil && !os.IsNotExist(err) {
				return false, err
			}
		}
		j, err = resilience.OpenJournal(cfg.journalPath, cfg.binding())
		if err != nil {
			return false, err
		}
		defer j.Close()
	}

	em := &emitter{outdir: cfg.outdir, out: cfg.out}
	opts := core.DefaultOptions()
	opts.Params = workload.Params{Scale: cfg.scale, Seed: cfg.seed}
	opts.ProcCounts = pcs

	if cfg.remote != "" && (cfg.crossCheck > 0 || cfg.maxSteps > 0 || cfg.timeout > 0) {
		// The server owns its watchdogs and engine guard; layering the
		// local ones on top would double-guard remote cells.
		return false, obs.Usagef("-remote cannot be combined with -crosscheck, -maxsteps or -timeout (configure them on mtserve instead)")
	}
	if cfg.remote != "" {
		opts.Runner = remoteRunner(cfg.remote, opts.Params)
	}

	var guard *resilience.EngineGuard
	if cfg.crossCheck > 0 || cfg.maxSteps > 0 || cfg.timeout > 0 {
		var cancel atomic.Bool
		if cfg.timeout > 0 {
			timer := time.AfterFunc(cfg.timeout, func() {
				cancel.Store(true)
				cfg.log.Error(fmt.Sprintf("timeout: cancelling all simulations after %s", cfg.timeout))
			})
			defer timer.Stop()
		}
		guard = &resilience.EngineGuard{
			SampleEvery: cfg.crossCheck,
			Guard:       sim.Guard{MaxSteps: cfg.maxSteps, Cancel: &cancel},
			OnFallback:  func(rep resilience.DivergenceReport) { cfg.log.Error(rep.String()) },
		}
		opts.Runner = guard.Run
		opts.DynRunner = guard.RunDynamic
	}
	s := core.NewSuite(opts)

	completed := 0
	section := func(name string, f func() error) error {
		if j != nil {
			if sum, ok := j.Done(name); ok {
				fmt.Fprintf(cfg.out, "[%s already complete (%s), skipped]\n\n", name, sum)
				return nil
			}
		}
		curSection.Store(name)
		em.crc = 0
		t0 := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(cfg.out, "[%s regenerated in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
		if j != nil {
			if err := j.Record(name, fmt.Sprintf("crc32:%08x", em.crc)); err != nil {
				return err
			}
		}
		completed++
		if cfg.interruptAfter > 0 && completed >= cfg.interruptAfter {
			return errInterrupted
		}
		return nil
	}

	want := func(t, f int) bool {
		return cfg.all || (t != 0 && cfg.table == t) || (f != 0 && cfg.figure == f)
	}
	ran := false

	if want(1, 0) {
		ran = true
		if err := section("Table 1", func() error {
			rows, err := s.Table1()
			if err != nil {
				return err
			}
			return em.table("table1", core.Table1Report(rows))
		}); err != nil {
			return false, err
		}
	}
	if want(2, 0) {
		ran = true
		if err := section("Table 2", func() error {
			rows, err := s.Table2()
			if err != nil {
				return err
			}
			return em.table("table2", core.Table2Report(rows))
		}); err != nil {
			return false, err
		}
	}
	if want(3, 0) {
		ran = true
		if err := section("Table 3", func() error {
			return em.table("table3", core.Table3Report())
		}); err != nil {
			return false, err
		}
	}
	for _, fig := range []struct {
		n   int
		app string
	}{{2, "LocusRoute"}, {3, "FFT"}, {4, "Barnes-Hut"}} {
		if !want(0, fig.n) {
			continue
		}
		ran = true
		fig := fig
		if err := section(fmt.Sprintf("Figure %d", fig.n), func() error {
			f, err := s.ExecutionFigure(fig.app)
			if err != nil {
				return err
			}
			return em.chart(fmt.Sprintf("figure%d", fig.n),
				f.Chart(fmt.Sprintf("Figure %d: Execution time for %s", fig.n, fig.app)))
		}); err != nil {
			return false, err
		}
	}
	if want(0, 5) {
		ran = true
		if err := section("Figure 5", func() error {
			cells, err := s.MissComponentFigure(cfg.fig5app)
			if err != nil {
				return err
			}
			return em.table("figure5", core.MissComponentReport(cfg.fig5app, cells))
		}); err != nil {
			return false, err
		}
	}
	if want(4, 0) {
		ran = true
		if err := section("Table 4", func() error {
			rows, err := s.Table4()
			if err != nil {
				return err
			}
			return em.table("table4", core.Table4Report(rows))
		}); err != nil {
			return false, err
		}
	}
	if want(5, 0) {
		ran = true
		if err := section("Table 5", func() error {
			cells, err := s.Table5()
			if err != nil {
				return err
			}
			return em.table("table5", core.Table5Report(cells, opts.ProcCounts))
		}); err != nil {
			return false, err
		}
	}
	wantAbl := func(name string) bool {
		return cfg.ablation == name || cfg.ablation == "all"
	}
	if wantAbl("assoc") {
		ran = true
		if err := section("Ablation: associativity", func() error {
			rows, err := s.AssociativitySweep("Patch", "LOAD-BAL", 16, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			return em.table("ablation_assoc", core.AssocReport("Patch", "LOAD-BAL", 16, rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("cachesize") {
		ran = true
		if err := section("Ablation: cache size", func() error {
			sizes := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10, 8 << 20}
			rows, err := s.CacheSizeSweep("Water", "LOAD-BAL", 8, sizes)
			if err != nil {
				return err
			}
			return em.table("ablation_cachesize", core.CacheSizeReport("Water", "LOAD-BAL", 8, rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("contexts") {
		ran = true
		if err := section("Ablation: hardware contexts", func() error {
			rows, err := s.ContextSweep("Water", 4, []int{1, 2, 4, 8, 0})
			if err != nil {
				return err
			}
			return em.table("ablation_contexts", core.ContextReport("Water", 4, rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("uniformity") {
		ran = true
		if err := section("Ablation: sharing uniformity", func() error {
			rows, err := s.UniformitySweep([]float64{1.0, 0.75, 0.5, 0.25, 0.0})
			if err != nil {
				return err
			}
			return em.table("ablation_uniformity", core.UniformityReport(rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("protocol") {
		ran = true
		if err := section("Ablation: coherence protocol", func() error {
			rows, err := s.ProtocolComparison("Fullconn", 8, []string{"LOAD-BAL", "SHARE-REFS", "RANDOM"})
			if err != nil {
				return err
			}
			return em.table("ablation_protocol", core.ProtocolReport("Fullconn", 8, rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("latency") {
		ran = true
		if err := section("Ablation: memory latency", func() error {
			rows, err := s.LatencySweep("FFT", 8, []uint64{10, 25, 50, 100, 200})
			if err != nil {
				return err
			}
			return em.table("ablation_latency", core.LatencyReport("FFT", 8, rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("contention") {
		ran = true
		if err := section("Ablation: interconnect contention", func() error {
			rows, err := s.ContentionSweep("MP3D", "LOAD-BAL", 16, []int{0, 1, 2, 4, 8, 16})
			if err != nil {
				return err
			}
			return em.table("ablation_contention", core.ContentionReport("MP3D", "LOAD-BAL", 16, rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("dynamic") {
		ran = true
		if err := section("Ablation: dynamic self-scheduling", func() error {
			apps := []string{"LocusRoute", "FFT", "Health", "Gauss"}
			rows, err := s.DynamicComparison(apps, 8, 2)
			if err != nil {
				return err
			}
			return em.table("ablation_dynamic", core.DynamicReport(8, 2, rows))
		}); err != nil {
			return false, err
		}
	}
	if wantAbl("writeruns") {
		ran = true
		if err := section("Write-run study", func() error {
			rows, err := s.WriteRunStudy(workload.Names())
			if err != nil {
				return err
			}
			return em.table("ablation_writeruns", core.WriteRunReport(rows))
		}); err != nil {
			return false, err
		}
	}
	if cfg.jsonPath != "" {
		ran = true
		if err := section("JSON bundle", func() error {
			b, err := s.CollectResults(cfg.fig5app)
			if err != nil {
				return err
			}
			if err := b.SaveJSON(cfg.jsonPath); err != nil {
				return err
			}
			fmt.Fprintf(cfg.out, "wrote %s\n", cfg.jsonPath)
			return nil
		}); err != nil {
			return false, err
		}
	}
	if !ran {
		return false, obs.Usagef("nothing selected: use -all, -table N, -figure N, -ablation NAME, -json FILE, -benchsim FILE, -advise FILE or -timeline FILE")
	}
	if guard != nil && guard.Degraded() {
		fmt.Fprintf(cfg.out, "WARNING: %s\n", guard.Report())
		return true, nil
	}
	return false, nil
}
