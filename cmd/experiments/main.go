// Command experiments regenerates every table and figure of the paper's
// evaluation: Tables 1-5 and Figures 2-5.
//
// Usage:
//
//	experiments -all
//	experiments -table 4
//	experiments -figure 2
//	experiments -all -scale 0.5 -procs 2,4,8,16
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/workload"
)

// emitter prints every artifact to stdout and, when an output directory is
// set, also writes <name>.txt, <name>.csv and (for charts) <name>.svg.
type emitter struct {
	outdir string
}

func (e *emitter) save(name, ext string, write func(f *os.File) error) error {
	if e.outdir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(e.outdir, name+ext))
	if err != nil {
		return err
	}
	if werr := write(f); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

func (e *emitter) table(name string, t *report.Table) error {
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if err := e.save(name, ".txt", func(f *os.File) error { return t.Render(f) }); err != nil {
		return err
	}
	return e.save(name, ".csv", func(f *os.File) error { return t.WriteCSV(f) })
}

func (e *emitter) chart(name string, c *report.BarChart) error {
	if err := c.Render(os.Stdout); err != nil {
		return err
	}
	if err := e.save(name, ".txt", func(f *os.File) error { return c.Render(f) }); err != nil {
		return err
	}
	if err := e.save(name, ".csv", func(f *os.File) error { return c.WriteCSV(f) }); err != nil {
		return err
	}
	return e.save(name, ".svg", func(f *os.File) error { return c.WriteSVG(f) })
}

// curSection names the section currently regenerating, for the
// -progress heartbeat.
var curSection atomic.Value

func main() {
	var (
		all      = flag.Bool("all", false, "run every table and figure")
		table    = flag.Int("table", 0, "run one table (1-5)")
		figure   = flag.Int("figure", 0, "run one figure (2-5)")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Int64("seed", 1994, "generation seed")
		procs    = flag.String("procs", "2,4,8,16", "processor counts, comma separated")
		fig5     = flag.String("fig5app", "MP3D", "application for the Figure 5 miss-component graph")
		abl      = flag.String("ablation", "", "ablation study: assoc, cachesize, contexts, uniformity, writeruns, protocol, latency, contention, dynamic or all")
		outdir   = flag.String("outdir", "", "also write each artifact as .txt/.csv/.svg into this directory")
		jsonF    = flag.String("json", "", "regenerate all tables/figures and save them as one JSON bundle")
		bsim     = flag.String("benchsim", "", "benchmark the reference vs fast simulation engines and save the comparison as JSON")
		timeline = flag.String("timeline", "", "simulate one representative run and write its Perfetto timeline JSON to this file")
		progress = flag.Duration("progress", 0, "log a progress heartbeat at this interval (e.g. 10s) while sweeps run")
		verbose  = flag.Bool("v", false, "verbose diagnostics")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, *verbose)
	fail := func(err error) {
		os.Exit(obs.Fail(log, err, flag.Usage))
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			log.Info("wrote CPU profile", "path", *cpuprof)
		}()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				log.Error(err.Error())
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Error(err.Error())
				return
			}
			log.Info("wrote heap profile", "path", *memprof)
		}()
	}

	curSection.Store("starting")
	stop := obs.StartHeartbeat(log, *progress, func() string {
		s, _ := curSection.Load().(string)
		return s
	})
	defer stop()

	var err error
	switch {
	case *bsim != "":
		err = benchSim(*scale, *seed, *procs, *bsim)
	case *timeline != "":
		err = timelineRun(*scale, *seed, *procs, *timeline, log)
	default:
		err = run(*all, *table, *figure, *scale, *seed, *procs, *fig5, *abl, *outdir, *jsonF)
	}
	if err != nil {
		stop()
		fail(err)
	}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, obs.Usagef("bad processor count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(all bool, table, figure int, scale float64, seed int64, procsSpec, fig5app, ablation, outdir, jsonPath string) error {
	pcs, err := parseProcs(procsSpec)
	if err != nil {
		return err
	}
	if outdir != "" {
		if err := os.MkdirAll(outdir, 0o755); err != nil {
			return err
		}
	}
	em := &emitter{outdir: outdir}
	opts := core.DefaultOptions()
	opts.Params = workload.Params{Scale: scale, Seed: seed}
	opts.ProcCounts = pcs
	s := core.NewSuite(opts)

	section := func(name string, f func() error) error {
		curSection.Store(name)
		t0 := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("[%s regenerated in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
		return nil
	}

	want := func(t, f int) bool {
		return all || (t != 0 && table == t) || (f != 0 && figure == f)
	}
	ran := false

	if want(1, 0) {
		ran = true
		if err := section("Table 1", func() error {
			rows, err := s.Table1()
			if err != nil {
				return err
			}
			return em.table("table1", core.Table1Report(rows))
		}); err != nil {
			return err
		}
	}
	if want(2, 0) {
		ran = true
		if err := section("Table 2", func() error {
			rows, err := s.Table2()
			if err != nil {
				return err
			}
			return em.table("table2", core.Table2Report(rows))
		}); err != nil {
			return err
		}
	}
	if want(3, 0) {
		ran = true
		if err := section("Table 3", func() error {
			return em.table("table3", core.Table3Report())
		}); err != nil {
			return err
		}
	}
	for _, fig := range []struct {
		n   int
		app string
	}{{2, "LocusRoute"}, {3, "FFT"}, {4, "Barnes-Hut"}} {
		if !want(0, fig.n) {
			continue
		}
		ran = true
		fig := fig
		if err := section(fmt.Sprintf("Figure %d", fig.n), func() error {
			f, err := s.ExecutionFigure(fig.app)
			if err != nil {
				return err
			}
			return em.chart(fmt.Sprintf("figure%d", fig.n),
				f.Chart(fmt.Sprintf("Figure %d: Execution time for %s", fig.n, fig.app)))
		}); err != nil {
			return err
		}
	}
	if want(0, 5) {
		ran = true
		if err := section("Figure 5", func() error {
			cells, err := s.MissComponentFigure(fig5app)
			if err != nil {
				return err
			}
			return em.table("figure5", core.MissComponentReport(fig5app, cells))
		}); err != nil {
			return err
		}
	}
	if want(4, 0) {
		ran = true
		if err := section("Table 4", func() error {
			rows, err := s.Table4()
			if err != nil {
				return err
			}
			return em.table("table4", core.Table4Report(rows))
		}); err != nil {
			return err
		}
	}
	if want(5, 0) {
		ran = true
		if err := section("Table 5", func() error {
			cells, err := s.Table5()
			if err != nil {
				return err
			}
			return em.table("table5", core.Table5Report(cells, opts.ProcCounts))
		}); err != nil {
			return err
		}
	}
	wantAbl := func(name string) bool {
		return ablation == name || ablation == "all"
	}
	if wantAbl("assoc") {
		ran = true
		if err := section("Ablation: associativity", func() error {
			rows, err := s.AssociativitySweep("Patch", "LOAD-BAL", 16, []int{1, 2, 4, 8})
			if err != nil {
				return err
			}
			return em.table("ablation_assoc", core.AssocReport("Patch", "LOAD-BAL", 16, rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("cachesize") {
		ran = true
		if err := section("Ablation: cache size", func() error {
			sizes := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10, 8 << 20}
			rows, err := s.CacheSizeSweep("Water", "LOAD-BAL", 8, sizes)
			if err != nil {
				return err
			}
			return em.table("ablation_cachesize", core.CacheSizeReport("Water", "LOAD-BAL", 8, rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("contexts") {
		ran = true
		if err := section("Ablation: hardware contexts", func() error {
			rows, err := s.ContextSweep("Water", 4, []int{1, 2, 4, 8, 0})
			if err != nil {
				return err
			}
			return em.table("ablation_contexts", core.ContextReport("Water", 4, rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("uniformity") {
		ran = true
		if err := section("Ablation: sharing uniformity", func() error {
			rows, err := s.UniformitySweep([]float64{1.0, 0.75, 0.5, 0.25, 0.0})
			if err != nil {
				return err
			}
			return em.table("ablation_uniformity", core.UniformityReport(rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("protocol") {
		ran = true
		if err := section("Ablation: coherence protocol", func() error {
			rows, err := s.ProtocolComparison("Fullconn", 8, []string{"LOAD-BAL", "SHARE-REFS", "RANDOM"})
			if err != nil {
				return err
			}
			return em.table("ablation_protocol", core.ProtocolReport("Fullconn", 8, rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("latency") {
		ran = true
		if err := section("Ablation: memory latency", func() error {
			rows, err := s.LatencySweep("FFT", 8, []uint64{10, 25, 50, 100, 200})
			if err != nil {
				return err
			}
			return em.table("ablation_latency", core.LatencyReport("FFT", 8, rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("contention") {
		ran = true
		if err := section("Ablation: interconnect contention", func() error {
			rows, err := s.ContentionSweep("MP3D", "LOAD-BAL", 16, []int{0, 1, 2, 4, 8, 16})
			if err != nil {
				return err
			}
			return em.table("ablation_contention", core.ContentionReport("MP3D", "LOAD-BAL", 16, rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("dynamic") {
		ran = true
		if err := section("Ablation: dynamic self-scheduling", func() error {
			apps := []string{"LocusRoute", "FFT", "Health", "Gauss"}
			rows, err := s.DynamicComparison(apps, 8, 2)
			if err != nil {
				return err
			}
			return em.table("ablation_dynamic", core.DynamicReport(8, 2, rows))
		}); err != nil {
			return err
		}
	}
	if wantAbl("writeruns") {
		ran = true
		if err := section("Write-run study", func() error {
			rows, err := s.WriteRunStudy(workload.Names())
			if err != nil {
				return err
			}
			return em.table("ablation_writeruns", core.WriteRunReport(rows))
		}); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		ran = true
		if err := section("JSON bundle", func() error {
			b, err := s.CollectResults(fig5app)
			if err != nil {
				return err
			}
			if err := b.SaveJSON(jsonPath); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", jsonPath)
			return nil
		}); err != nil {
			return err
		}
	}
	if !ran {
		return obs.Usagef("nothing selected: use -all, -table N, -figure N, -ablation NAME, -json FILE, -benchsim FILE or -timeline FILE")
	}
	return nil
}
