package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve"
)

// TestRemoteSweepMatchesLocal: the same sweep run in-process and through
// a live mtserve instance must emit byte-identical artifacts — the
// service adds transport and caching, never arithmetic. This is the
// -remote mode's end-to-end differential test over the golden Table 3 /
// Figure 2 data.
func TestRemoteSweepMatchesLocal(t *testing.T) {
	localDir := t.TempDir()
	if _, err := run(resumeSweep(localDir)); err != nil {
		t.Fatal(err)
	}

	srv := serve.NewServer(serve.Options{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Drain()
	}()

	remoteDir := t.TempDir()
	rcfg := resumeSweep(remoteDir)
	rcfg.remote = ts.URL
	if _, err := run(rcfg); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"table3.txt", "table3.csv", "figure2.txt", "figure2.csv", "figure2.svg"} {
		want, err := os.ReadFile(filepath.Join(localDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(remoteDir, name))
		if err != nil {
			t.Fatalf("%s missing from remote run: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between local and remote sweeps", name)
		}
	}

	// The remote sweep must actually have exercised the server.
	if st := srv.CacheStats(); st.Misses == 0 {
		t.Error("server cache saw no traffic: the sweep did not go remote")
	}

	// A second remote run is served from the result cache and still
	// byte-identical.
	missesBefore := srv.CacheStats().Misses
	cachedDir := t.TempDir()
	ccfg := resumeSweep(cachedDir)
	ccfg.remote = ts.URL
	if _, err := run(ccfg); err != nil {
		t.Fatal(err)
	}
	if st := srv.CacheStats(); st.Misses != missesBefore {
		t.Errorf("second remote sweep re-simulated: misses %d -> %d", missesBefore, st.Misses)
	}
	for _, name := range []string{"figure2.csv"} {
		want, _ := os.ReadFile(filepath.Join(localDir, name))
		got, err := os.ReadFile(filepath.Join(cachedDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs on the cache-served remote sweep", name)
		}
	}
}

// TestRemoteRejectsLocalWatchdogFlags: -remote plus local guard flags is
// a usage error, not a silently ignored knob.
func TestRemoteRejectsLocalWatchdogFlags(t *testing.T) {
	cfg := resumeSweep(t.TempDir())
	cfg.remote = "http://127.0.0.1:1"
	cfg.crossCheck = 2
	if _, err := run(cfg); err == nil {
		t.Fatal("remote + crosscheck accepted")
	}
}
