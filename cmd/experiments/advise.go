package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"time"

	"repro/internal/advise"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BENCH_advise.json: the online-adaptive-placement evaluation. Two
// experiments, one artifact:
//
//  1. A detection-interval x migration-cost grid of ONLINE virtual
//     algorithms swept over paper kernels through the real /v1/sweep
//     machinery (an in-process mtserve instance, exactly the production
//     job pipeline). On the paper's stationary kernels the sharing
//     pattern never changes, so a well-chosen static placement is
//     expected to win: HYST correctly refuses unprofitable migrations
//     and ties its seed, while eager COHERENCE pays churn. The grid
//     documents that negative result instead of hiding it.
//
//  2. The crossover: a phase-changing workload whose sharing partners
//     rotate mid-run, so no static placement can be right for the whole
//     execution. Here the same online policies beat the best of all
//     static algorithms — with the migration penalty charged — below a
//     measurable migration-cost crossover, which this benchmark locates
//     and hard-gates: generation fails unless at least one swept
//     (interval, cost) cell wins with at least one applied migration,
//     and every online cell must be cycle-identical on both engines.

// adviseCell is one simulated (algorithm, procs) measurement.
type adviseCell struct {
	Algorithm     string `json:"algorithm"`
	ExecTime      uint64 `json:"exec_time"`
	Migrations    int    `json:"migrations,omitempty"`
	PenaltyCycles uint64 `json:"penalty_cycles,omitempty"`
}

// adviseKernelReport is one stationary kernel's static-vs-online grid,
// measured through /v1/sweep.
type adviseKernelReport struct {
	App        string       `json:"app"`
	BestStatic adviseCell   `json:"best_static"`
	BestOnline adviseCell   `json:"best_online"`
	StaticWins bool         `json:"static_wins"`
	Cells      []adviseCell `json:"cells"`
}

// adviseGridCell is one (policy, interval, cost) cell of the phased
// crossover sweep.
type adviseGridCell struct {
	Policy        string `json:"policy"`
	Interval      uint64 `json:"interval"`
	Penalty       uint64 `json:"penalty"`
	Algorithm     string `json:"algorithm"`
	ExecTime      uint64 `json:"exec_time"`
	Migrations    int    `json:"migrations"`
	PenaltyCycles uint64 `json:"penalty_cycles"`
	BeatsStatic   bool   `json:"beats_static"`
}

// adviseCrossover records, for one (policy, interval), the largest swept
// migration cost at which online still beat the best static placement.
type adviseCrossover struct {
	Policy     string `json:"policy"`
	Interval   uint64 `json:"interval"`
	MaxWinCost uint64 `json:"max_winning_cost"`
	Wins       int    `json:"winning_cells"`
}

// phasedReport is the crossover experiment's result.
type phasedReport struct {
	Threads    int               `json:"threads"`
	Procs      int               `json:"procs"`
	Static     []adviseCell      `json:"static"`
	BestStatic adviseCell        `json:"best_static"`
	Grid       []adviseGridCell  `json:"grid"`
	BestOnline adviseGridCell    `json:"best_online"`
	Crossover  []adviseCrossover `json:"crossover"`
	// OnlineWins is the hard gate: at least one grid cell beat the best
	// static placement with the migration penalty charged.
	OnlineWins bool `json:"online_wins"`
}

// benchAdviseReport is the BENCH_advise.json schema.
type benchAdviseReport struct {
	Scale       float64              `json:"scale"`
	Seed        int64                `json:"seed"`
	Procs       int                  `json:"procs"`
	Kernels     []adviseKernelReport `json:"kernels"`
	Phased      *phasedReport        `json:"phased"`
	GeneratedBy string               `json:"generated_by"`
}

// adviseProcs is the processor count both experiments run at.
const adviseProcs = 4

// adviseKernelApps are the stationary kernels swept through /v1/sweep.
var adviseKernelApps = []string{"MP3D", "Gauss"}

// adviseKernelOnline is the ONLINE grid swept over the kernels.
func adviseKernelOnline() []string {
	var names []string
	for _, policy := range advise.PolicyNames() {
		for _, interval := range []uint64{5000, 20000} {
			spec := advise.OnlineSpec{Policy: policy, Interval: interval, Penalty: 200}
			names = append(names, spec.String())
		}
	}
	return names
}

// benchAdvise runs both experiments and writes the gated artifact.
func benchAdvise(scale float64, seed int64, path string) error {
	rep := benchAdviseReport{
		Scale:       scale,
		Seed:        seed,
		Procs:       adviseProcs,
		GeneratedBy: "experiments -advise",
	}

	kernels, err := adviseKernelSweep(scale, seed)
	if err != nil {
		return err
	}
	rep.Kernels = kernels

	fmt.Printf("advise: locating crossover on the phased workload\n")
	ph, err := phasedCrossover(seed)
	if err != nil {
		return err
	}
	rep.Phased = ph
	if !ph.OnlineWins {
		return fmt.Errorf("advise: gate failed: no swept (interval, cost) cell beats the best static placement (best static %s=%d, best online %s=%d)",
			ph.BestStatic.Algorithm, ph.BestStatic.ExecTime, ph.BestOnline.Algorithm, ph.BestOnline.ExecTime)
	}
	fmt.Printf("advise: online wins below cost crossover: best online %s = %d vs best static %s = %d\n",
		ph.BestOnline.Algorithm, ph.BestOnline.ExecTime, ph.BestStatic.Algorithm, ph.BestStatic.ExecTime)

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// adviseKernelSweep drives the static-vs-online kernel grid through an
// in-process mtserve instance's /v1/sweep job pipeline — the same
// machinery production sweeps use, so ONLINE virtual algorithm names are
// exercised end to end (validation, cache keys, job execution).
func adviseKernelSweep(scale float64, seed int64) ([]adviseKernelReport, error) {
	srv := serve.NewServer(serve.Options{DisableTelemetry: true})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Drain()
	}()

	statics := core.AllAlgorithms()
	online := adviseKernelOnline()
	req := &serve.SweepRequest{
		Params:     &serve.Params{Scale: scale, Seed: seed},
		Apps:       adviseKernelApps,
		Algorithms: append(append([]string{}, statics...), online...),
		Procs:      []int{adviseProcs},
	}
	fmt.Printf("advise: sweeping %d kernels x %d algorithms (%d online) x %d procs through /v1/sweep\n",
		len(req.Apps), len(req.Algorithms), len(online), adviseProcs)

	cl := client.New(ts.URL)
	acc, err := cl.Sweep(req)
	if err != nil {
		return nil, fmt.Errorf("advise: sweep submit: %w", err)
	}
	st, err := cl.WaitJob(acc.Job, 250*time.Millisecond, 30*time.Minute)
	if err != nil {
		return nil, fmt.Errorf("advise: sweep wait: %w", err)
	}
	if st.Status != serve.StatusDone {
		return nil, fmt.Errorf("advise: sweep job %s ended %s: %s", st.Job, st.Status, st.Error)
	}

	onlineSet := map[string]bool{}
	for _, name := range online {
		onlineSet[name] = true
	}
	byApp := map[string]*adviseKernelReport{}
	var out []adviseKernelReport
	for _, app := range adviseKernelApps {
		out = append(out, adviseKernelReport{App: app})
	}
	for i := range out {
		byApp[out[i].App] = &out[i]
	}
	for _, cell := range st.Results {
		if cell.Result == nil {
			return nil, fmt.Errorf("advise: cell %s/%s came back without a result", cell.App, cell.Algorithm)
		}
		kr, ok := byApp[cell.App]
		if !ok {
			return nil, fmt.Errorf("advise: unexpected app %q in sweep results", cell.App)
		}
		c := adviseCell{Algorithm: cell.Algorithm, ExecTime: cell.Result.ExecTime}
		if onl := cell.Result.Online; onl != nil {
			c.Migrations = onl.Migrations
			c.PenaltyCycles = onl.PenaltyCycles
		} else if onlineSet[cell.Algorithm] {
			return nil, fmt.Errorf("advise: online cell %s/%s is missing its online stats", cell.App, cell.Algorithm)
		}
		kr.Cells = append(kr.Cells, c)
		better := func(best *adviseCell) {
			if best.Algorithm == "" || c.ExecTime < best.ExecTime {
				*best = c
			}
		}
		if onlineSet[cell.Algorithm] {
			better(&kr.BestOnline)
		} else {
			better(&kr.BestStatic)
		}
	}
	for i := range out {
		kr := &out[i]
		if kr.BestStatic.Algorithm == "" || kr.BestOnline.Algorithm == "" {
			return nil, fmt.Errorf("advise: kernel %s sweep returned an incomplete grid", kr.App)
		}
		kr.StaticWins = kr.BestStatic.ExecTime <= kr.BestOnline.ExecTime
		fmt.Printf("advise: %s best static %s = %d, best online %s = %d\n",
			kr.App, kr.BestStatic.Algorithm, kr.BestStatic.ExecTime,
			kr.BestOnline.Algorithm, kr.BestOnline.ExecTime)
	}
	return out, nil
}

// phasedThreads is the phased workload's thread count.
const phasedThreads = 8

// phasedTrace builds the phase-changing workload: 8 threads whose
// sharing partners rotate mid-run. Phase one pairs adjacent threads
// ((0,1),(2,3),(4,5),(6,7)), each pair ping-ponging a private line with
// light traffic; phase two rotates the matching to (0,2),(1,3),(4,6),
// (5,7) with much denser traffic. The two matchings are disjoint, so a
// load-balanced static placement (two threads per processor) co-locates
// at most one partner per thread — whichever phase it optimizes for, the
// other phase's traffic goes remote. The heavy second phase dominates
// whole-run sharing data, steering every static algorithm toward the
// phase-two matching and leaving phase one as the margin an online
// policy can reclaim by migrating at the phase boundary.
func phasedTrace() *trace.Trace {
	tr := trace.New("phased", phasedThreads)
	for t := 0; t < phasedThreads; t++ {
		r := trace.NewRecorder(tr, t)
		lineA := trace.SharedBase + uint64(t/2)*64*trace.WordSize
		for j := 0; j < 400; j++ {
			r.Compute(4)
			r.Store(lineA)
		}
		pairB := (t/4)*2 + t%2
		lineB := trace.SharedBase + uint64(64+pairB)*64*trace.WordSize
		for j := 0; j < 1600; j++ {
			r.Compute(2)
			r.Store(lineB)
		}
	}
	return tr
}

// phasedGrid is the swept (policy, interval, cost) cross product.
func phasedGrid() []advise.OnlineSpec {
	var specs []advise.OnlineSpec
	for _, policy := range advise.PolicyNames() {
		for _, interval := range []uint64{2000, 8000, 30000} {
			for _, cost := range []uint64{0, 500, 2000, 10000, 50000} {
				specs = append(specs, advise.OnlineSpec{Policy: policy, Interval: interval, Penalty: cost})
			}
		}
	}
	return specs
}

// phasedCrossover measures every static algorithm and the full online
// grid on the phased workload, locates the migration-cost crossover, and
// differentially checks every online cell across both engines.
func phasedCrossover(seed int64) (*phasedReport, error) {
	tr := phasedTrace()
	cfg := sim.DefaultConfig(adviseProcs)
	d := analysis.Analyze(tr).Sharing()

	rep := &phasedReport{Threads: phasedThreads, Procs: adviseProcs}
	for _, alg := range placement.All() {
		pl, err := alg.Place(d, adviseProcs, seed)
		if err != nil {
			return nil, fmt.Errorf("advise: phased %s placement: %w", alg.Name, err)
		}
		res, err := sim.RunObserved(tr, pl, cfg, sim.FastEngine, nil)
		if err != nil {
			return nil, fmt.Errorf("advise: phased %s run: %w", alg.Name, err)
		}
		c := adviseCell{Algorithm: alg.Name, ExecTime: res.ExecTime}
		rep.Static = append(rep.Static, c)
		if rep.BestStatic.Algorithm == "" || c.ExecTime < rep.BestStatic.ExecTime {
			rep.BestStatic = c
		}
	}

	seedAlg, err := placement.ByName(advise.DefaultSeed)
	if err != nil {
		return nil, err
	}
	seedPl, err := seedAlg.Place(d, adviseProcs, seed)
	if err != nil {
		return nil, err
	}
	cross := map[[2]string]*adviseCrossover{}
	for _, spec := range phasedGrid() {
		opts, err := spec.Options()
		if err != nil {
			return nil, err
		}
		res, err := sim.RunOnlineObserved(tr, seedPl, cfg, sim.FastEngine, opts, nil)
		if err != nil {
			return nil, fmt.Errorf("advise: phased %s run: %w", spec.String(), err)
		}
		ref, err := sim.RunOnlineObserved(tr, seedPl, cfg, sim.ReferenceEngine, opts, nil)
		if err != nil {
			return nil, fmt.Errorf("advise: phased %s reference run: %w", spec.String(), err)
		}
		if !reflect.DeepEqual(res, ref) {
			return nil, fmt.Errorf("advise: engines diverge on %s: fast exec %d vs reference %d", spec.String(), res.ExecTime, ref.ExecTime)
		}
		if res.Online == nil {
			return nil, fmt.Errorf("advise: %s ran without online stats", spec.String())
		}
		cell := adviseGridCell{
			Policy:        spec.Policy,
			Interval:      spec.Interval,
			Penalty:       spec.Penalty,
			Algorithm:     spec.String(),
			ExecTime:      res.ExecTime,
			Migrations:    res.Online.Migrations,
			PenaltyCycles: res.Online.PenaltyCycles,
		}
		cell.BeatsStatic = cell.ExecTime < rep.BestStatic.ExecTime && cell.Migrations > 0
		rep.Grid = append(rep.Grid, cell)
		if cell.BeatsStatic {
			rep.OnlineWins = true
			key := [2]string{spec.Policy, fmt.Sprint(spec.Interval)}
			co := cross[key]
			if co == nil {
				co = &adviseCrossover{Policy: spec.Policy, Interval: spec.Interval}
				cross[key] = co
				rep.Crossover = append(rep.Crossover, adviseCrossover{})
			}
			co.Wins++
			if spec.Penalty > co.MaxWinCost {
				co.MaxWinCost = spec.Penalty
			}
		}
		if rep.BestOnline.Algorithm == "" || cell.ExecTime < rep.BestOnline.ExecTime {
			rep.BestOnline = cell
		}
	}
	// Rebuild the crossover list in grid order (policy, then interval).
	rep.Crossover = rep.Crossover[:0]
	for _, policy := range advise.PolicyNames() {
		for _, interval := range []uint64{2000, 8000, 30000} {
			if co := cross[[2]string{policy, fmt.Sprint(interval)}]; co != nil {
				rep.Crossover = append(rep.Crossover, *co)
			}
		}
	}
	return rep, nil
}
