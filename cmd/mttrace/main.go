// Command mttrace generates the per-thread memory reference traces of the
// fourteen-application workload suite, writes them in the binary trace
// format, and prints their statically measured characteristics (the
// paper's Table 2 metrics).
//
// Usage:
//
//	mttrace -list
//	mttrace -app Water -stats
//	mttrace -app FFT -scale 2 -out fft.mtt
//	mttrace -in fft.mtt -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list the application suite and exit")
		app   = flag.String("app", "", "application to generate (see -list)")
		in    = flag.String("in", "", "read a trace file instead of generating")
		out   = flag.String("out", "", "write the trace to this file")
		stats = flag.Bool("stats", false, "print the measured characteristics")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		seed  = flag.Int64("seed", 1994, "generation seed")
	)
	flag.Parse()
	if err := run(*list, *app, *in, *out, *stats, *scale, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "mttrace:", err)
		os.Exit(1)
	}
}

func run(list bool, app, in, out string, stats bool, scale float64, seed int64) error {
	if list {
		t := &report.Table{
			Title:   "Application suite",
			Columns: []string{"Name", "Grain", "Threads", "Cache", "Description"},
		}
		for _, a := range workload.Apps() {
			t.AddRow(a.Name, a.Grain.String(), fmt.Sprint(a.Threads),
				fmt.Sprintf("%d KB", a.CacheSize>>10), a.Description)
		}
		return t.Render(os.Stdout)
	}

	var tr *trace.Trace
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = trace.ReadFrom(f)
		if err != nil {
			return err
		}
	case app != "":
		a, err := workload.ByName(app)
		if err != nil {
			return err
		}
		tr, err = a.Build(workload.Params{Scale: scale, Seed: seed})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -app, -in or -list")
	}

	fmt.Printf("%s: %d threads, %d references, %d instructions\n",
		tr.App, tr.NumThreads(), tr.TotalRefs(), tr.TotalInstructions())

	if out != "" {
		// Atomic write (temp file + rename): a crash mid-write never
		// leaves a torn trace at the destination.
		n, err := tr.WriteFile(out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", out, n)
	}

	if stats {
		set := analysis.Analyze(tr)
		c := set.Characteristics(nil)
		t := &report.Table{
			Title:   "Measured characteristics (Table 2 metrics)",
			Columns: []string{"Metric", "Mean", "Dev (%)"},
		}
		t.AddRow("Pairwise sharing (refs)", report.F(c.Pairwise.Mean, 0), report.F(c.Pairwise.Dev, 1))
		t.AddRow("N-way sharing (refs)", report.F(c.NWay.Mean, 0), report.F(c.NWay.Dev, 1))
		t.AddRow("References per shared address", report.F(c.RefsPerSharedAddr.Mean, 1), report.F(c.RefsPerSharedAddr.Dev, 1))
		t.AddRow("Shared references (%)", report.F(c.PctSharedRefs, 1), "")
		t.AddRow("Thread length (instructions)", report.F(c.Length.Mean, 0), report.F(c.Length.Dev, 1))
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		// Reuse-distance summary: predicted fully-associative LRU miss
		// ratios at several capacities (32-byte blocks).
		h := set.Reuse(tr, 32)
		rt := &report.Table{
			Title:   "Reuse-distance profile (fully associative LRU prediction)",
			Columns: []string{"Cache (blocks)", "Cache (KB)", "Predicted miss ratio"},
		}
		for _, blocks := range []int{128, 512, 2048, 8192} {
			rt.AddRow(fmt.Sprint(blocks), fmt.Sprint(blocks*32>>10),
				report.F(h.MissRatio(blocks), 3))
		}
		return rt.Render(os.Stdout)
	}
	return nil
}
