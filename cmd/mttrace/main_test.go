package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunModes(t *testing.T) {
	if err := run(true, "", "", "", false, 1, 1); err != nil {
		t.Errorf("list mode: %v", err)
	}
	if err := run(false, "", "", "", false, 1, 1); err == nil {
		t.Error("no inputs accepted")
	}
	if err := run(false, "NoSuchApp", "", "", false, 1, 1); err == nil {
		t.Error("unknown app accepted")
	}

	out := filepath.Join(t.TempDir(), "t.mtt")
	if err := run(false, "Grav", "", out, true, 0.25, 7); err != nil {
		t.Fatalf("generate+stats+write: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
	// Round trip through -in.
	if err := run(false, "", out, "", true, 1, 1); err != nil {
		t.Fatalf("read back: %v", err)
	}
	// Corrupt file rejected.
	bad := filepath.Join(t.TempDir(), "bad.mtt")
	os.WriteFile(bad, []byte("not a trace"), 0o644)
	if err := run(false, "", bad, "", false, 1, 1); err == nil {
		t.Error("corrupt trace accepted")
	}
}
