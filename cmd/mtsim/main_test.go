package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/obstest"
	"repro/internal/sim"
)

// testRun invokes run with discarded output and a buffer-backed logger.
func testRun(o options) error {
	var out, logs bytes.Buffer
	return run(o, &out, obs.NewLogger(&logs, false))
}

func base() options {
	return options{app: "Grav", alg: "LOAD-BAL", procs: 4, scale: 0.25, seed: 1, assoc: 1, sampleWindow: 10000}
}

func TestRunModes(t *testing.T) {
	o := base()
	o.app = ""
	if err := testRun(o); err == nil {
		t.Error("missing app accepted")
	} else if !obs.IsUsage(err) {
		t.Errorf("missing app is not a usage error: %v", err)
	}

	o = base()
	o.alg = "NOPE"
	if err := testRun(o); err == nil {
		t.Error("unknown algorithm accepted")
	}

	o = base()
	o.perProc, o.assoc, o.contexts, o.wruns = true, 2, 2, true
	if err := testRun(o); err != nil {
		t.Errorf("full-feature run: %v", err)
	}

	o = base()
	o.alg, o.infinite = "SHARE-REFS", true
	if err := testRun(o); err != nil {
		t.Errorf("infinite-cache run: %v", err)
	}

	o = base()
	o.alg, o.dynamic, o.contexts = "", "longest-first", 2
	if err := testRun(o); err != nil {
		t.Errorf("dynamic run: %v", err)
	}

	o = base()
	o.alg, o.dynamic = "", "bogus"
	if err := testRun(o); err == nil {
		t.Error("bad dynamic policy accepted")
	} else if !obs.IsUsage(err) {
		t.Errorf("bad dynamic policy is not a usage error: %v", err)
	}
}

// TestTimelineOutput runs mtsim with every telemetry flag set and
// validates the artifacts: the timeline must be schema-valid trace-event
// JSON, the sample CSV and sparkline SVG non-empty and well-formed.
func TestTimelineOutput(t *testing.T) {
	dir := t.TempDir()
	o := base()
	o.timeline = filepath.Join(dir, "run.json")
	o.sample = filepath.Join(dir, "run.csv")
	o.sparkline = filepath.Join(dir, "run.svg")
	o.sampleWindow = 5000
	if err := testRun(o); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(o.timeline)
	if err != nil {
		t.Fatal(err)
	}
	obstest.CheckTraceEventJSON(t, raw)

	csvRaw, err := os.ReadFile(o.sample)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvRaw)), "\n")
	if len(lines) < 2 {
		t.Errorf("sample CSV has %d lines, want header + windows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "start,end,refs") {
		t.Errorf("sample CSV header = %q", lines[0])
	}

	svgRaw, err := os.ReadFile(o.sparkline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svgRaw), "<svg") || !strings.Contains(string(svgRaw), "miss_rate_%") {
		t.Errorf("sparkline SVG malformed: %.80q", svgRaw)
	}
}

// TestTimelineDynamic checks telemetry also works through the dynamic
// scheduling path.
func TestTimelineDynamic(t *testing.T) {
	dir := t.TempDir()
	o := base()
	o.alg, o.dynamic, o.contexts = "", "fifo", 2
	o.timeline = filepath.Join(dir, "dyn.json")
	if err := testRun(o); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(o.timeline)
	if err != nil {
		t.Fatal(err)
	}
	obstest.CheckTraceEventJSON(t, raw)
}

// TestZeroSampleWindowRejected locks the flag validation path.
func TestZeroSampleWindowRejected(t *testing.T) {
	o := base()
	o.sample, o.sampleWindow = "x.csv", 0
	err := testRun(o)
	if err == nil || !obs.IsUsage(err) {
		t.Errorf("zero sample window: err = %v, want usage error", err)
	}
}

// TestMaxSteps: the -maxsteps watchdog aborts a run with a typed budget
// diagnostic, for both static and dynamic scheduling.
func TestMaxSteps(t *testing.T) {
	o := base()
	o.maxSteps = 10
	err := testRun(o)
	var be *sim.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("static run: err = %v, want *sim.BudgetError", err)
	}
	o.dynamic = "fifo"
	if err := testRun(o); !errors.As(err, &be) {
		t.Fatalf("dynamic run: err = %v, want *sim.BudgetError", err)
	}

	// A generous budget must not perturb the run.
	o = base()
	o.maxSteps = 1 << 40
	if err := testRun(o); err != nil {
		t.Fatalf("loose budget aborted the run: %v", err)
	}
}
