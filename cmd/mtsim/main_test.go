package main

import "testing"

func TestRunModes(t *testing.T) {
	if err := run("", "LOAD-BAL", 4, 1, 1, false, false, 1, 0, false, ""); err == nil {
		t.Error("missing app accepted")
	}
	if err := run("Grav", "NOPE", 4, 1, 1, false, false, 1, 0, false, ""); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("Grav", "LOAD-BAL", 4, 0.25, 1, false, true, 2, 2, true, ""); err != nil {
		t.Errorf("full-feature run: %v", err)
	}
	if err := run("Grav", "SHARE-REFS", 4, 0.25, 1, true, false, 1, 0, false, ""); err != nil {
		t.Errorf("infinite-cache run: %v", err)
	}
	if err := run("Grav", "", 4, 0.25, 1, false, false, 1, 2, false, "longest-first"); err != nil {
		t.Errorf("dynamic run: %v", err)
	}
	if err := run("Grav", "", 4, 0.25, 1, false, false, 1, 0, false, "bogus"); err == nil {
		t.Error("bad dynamic policy accepted")
	}
}
