// Command mtsim runs one trace-driven simulation: an application of the
// workload suite under a chosen placement algorithm on a multithreaded
// multiprocessor, and reports execution time, processor utilization and
// the cache-miss components.
//
// Usage:
//
//	mtsim -app LocusRoute -alg LOAD-BAL -procs 8
//	mtsim -app Water -alg SHARE-REFS -procs 4 -infinite
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "", "application name (see mttrace -list)")
		alg      = flag.String("alg", "LOAD-BAL", "placement algorithm (see mtplace -algs)")
		procs    = flag.Int("procs", 4, "number of processors")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Int64("seed", 1994, "generation / RANDOM seed")
		infinite = flag.Bool("infinite", false, "use the 8 MB 'infinite' cache of §4.3")
		perProc  = flag.Bool("per-proc", false, "print per-processor statistics")
		assoc    = flag.Int("assoc", 1, "cache set associativity (1 = the paper's direct-mapped)")
		contexts = flag.Int("contexts", 0, "hardware contexts per processor (0 = one per thread)")
		wruns    = flag.Bool("writeruns", false, "measure write runs / migratory data (§4.2)")
		dynamic  = flag.String("dynamic", "", "use online self-scheduling instead of a static placement: fifo or longest-first")
	)
	flag.Parse()
	if err := run(*app, *alg, *procs, *scale, *seed, *infinite, *perProc, *assoc, *contexts, *wruns, *dynamic); err != nil {
		fmt.Fprintln(os.Stderr, "mtsim:", err)
		os.Exit(1)
	}
}

func run(app, alg string, procs int, scale float64, seed int64, infinite, perProc bool, assoc, contexts int, wruns bool, dynamic string) error {
	if app == "" {
		return fmt.Errorf("need -app")
	}
	a, err := workload.ByName(app)
	if err != nil {
		return err
	}
	tr, err := a.Build(workload.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(procs)
	cfg.CacheSize = a.CacheSize
	cfg.Associativity = assoc
	cfg.MaxContexts = contexts
	cfg.TrackWriteRuns = wruns
	if infinite {
		cfg.CacheSize = sim.InfiniteCacheSize
	}
	var res *sim.Result
	if dynamic != "" {
		policy := sim.FIFO
		switch dynamic {
		case "fifo":
		case "longest-first":
			policy = sim.LongestFirst
		default:
			return fmt.Errorf("unknown -dynamic policy %q (fifo or longest-first)", dynamic)
		}
		alg = "" // static algorithm unused
		res, err = sim.RunDynamic(tr, cfg, policy)
		if err != nil {
			return err
		}
		alg = res.Algorithm
	} else {
		pa, err := placement.ByName(alg)
		if err != nil {
			return err
		}
		pl, err := pa.Place(analysis.Analyze(tr).Sharing(), procs, seed)
		if err != nil {
			return err
		}
		res, err = sim.Run(tr, pl, cfg)
		if err != nil {
			return err
		}
	}

	tot := res.Totals()
	fmt.Printf("%s / %s / %d processors (%d KB cache)\n", app, alg, procs, cfg.CacheSize>>10)
	fmt.Printf("execution time: %d cycles\n", res.ExecTime)
	fmt.Printf("references: %d (%.1f%% shared), hit rate %.2f%%\n",
		tot.Refs, float64(tot.SharedRefs)/float64(tot.Refs)*100,
		float64(tot.Hits)/float64(tot.Refs)*100)
	fmt.Printf("cycles: busy %d, switching %d, idle %d\n", tot.Busy, tot.Switch, tot.Idle)

	mt := &report.Table{
		Title:   "Cache miss components",
		Columns: []string{"Component", "Misses", "Per 1000 refs"},
	}
	kinds := []sim.MissKind{sim.Compulsory, sim.ConflictIntra, sim.ConflictInter, sim.InvalidationMiss}
	for _, k := range kinds {
		mt.AddRow(k.String(), fmt.Sprint(tot.Misses[k]),
			report.F(float64(tot.Misses[k])/float64(tot.Refs)*1000, 2))
	}
	mt.AddRow("total", fmt.Sprint(tot.TotalMisses()),
		report.F(float64(tot.TotalMisses())/float64(tot.Refs)*1000, 2))
	if err := mt.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("coherence: %d invalidations sent, %d upgrades, %d writebacks\n",
		tot.InvalidationsSent, tot.Upgrades, tot.Writebacks)
	if res.WriteRuns != nil {
		w := res.WriteRuns
		fmt.Printf("write runs: %d written blocks, %d single-writer, %d migratory (%.1f%% of multi-writer), mean run %.1f\n",
			w.WrittenBlocks, w.SingleWriterBlocks, w.MigratoryBlocks, w.MigratoryPct(), w.MeanRunLength)
	}

	if perProc {
		pt := &report.Table{
			Title:   "Per-processor statistics",
			Columns: []string{"Proc", "Finish", "Busy", "Switch", "Idle", "Refs", "Misses"},
		}
		for i, p := range res.Procs {
			pt.AddRow(fmt.Sprint(i), fmt.Sprint(p.Finish), fmt.Sprint(p.Busy),
				fmt.Sprint(p.Switch), fmt.Sprint(p.Idle), fmt.Sprint(p.Refs),
				fmt.Sprint(p.TotalMisses()))
		}
		return pt.Render(os.Stdout)
	}
	return nil
}
