// Command mtsim runs one trace-driven simulation: an application of the
// workload suite under a chosen placement algorithm on a multithreaded
// multiprocessor, and reports execution time, processor utilization and
// the cache-miss components.
//
// Usage:
//
//	mtsim -app LocusRoute -alg LOAD-BAL -procs 8
//	mtsim -app Water -alg SHARE-REFS -procs 4 -infinite
//
// Telemetry (see DESIGN.md §7):
//
//	mtsim -app MP3D -alg LOAD-BAL -timeline run.json    # Perfetto timeline
//	mtsim -app MP3D -alg LOAD-BAL -sample run.csv       # windowed time series
//	mtsim -app MP3D -alg LOAD-BAL -sparkline run.svg    # time-series sparklines
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// options carries every flag; run takes it whole so tests can exercise
// any combination without threading a dozen positional arguments.
type options struct {
	app, alg     string
	procs        int
	scale        float64
	seed         int64
	infinite     bool
	perProc      bool
	assoc        int
	contexts     int
	wruns        bool
	dynamic      string
	timeline     string
	sample       string
	sparkline    string
	sampleWindow uint64
	maxSteps     uint64
	verbose      bool
}

func main() {
	var o options
	flag.StringVar(&o.app, "app", "", "application name (see mttrace -list)")
	flag.StringVar(&o.alg, "alg", "LOAD-BAL", "placement algorithm (see mtplace -algs)")
	flag.IntVar(&o.procs, "procs", 4, "number of processors")
	flag.Float64Var(&o.scale, "scale", 1.0, "workload scale factor")
	flag.Int64Var(&o.seed, "seed", 1994, "generation / RANDOM seed")
	flag.BoolVar(&o.infinite, "infinite", false, "use the 8 MB 'infinite' cache of §4.3")
	flag.BoolVar(&o.perProc, "per-proc", false, "print per-processor statistics")
	flag.IntVar(&o.assoc, "assoc", 1, "cache set associativity (1 = the paper's direct-mapped)")
	flag.IntVar(&o.contexts, "contexts", 0, "hardware contexts per processor (0 = one per thread)")
	flag.BoolVar(&o.wruns, "writeruns", false, "measure write runs / migratory data (§4.2)")
	flag.StringVar(&o.dynamic, "dynamic", "", "use online self-scheduling instead of a static placement: fifo or longest-first")
	flag.StringVar(&o.timeline, "timeline", "", "write the run as Perfetto/Chrome trace-event JSON to this file")
	flag.StringVar(&o.sample, "sample", "", "write windowed time-series samples as CSV to this file")
	flag.StringVar(&o.sparkline, "sparkline", "", "write time-series sparklines as SVG to this file")
	flag.Uint64Var(&o.sampleWindow, "sample-window", 10000, "sampling window width in cycles for -sample/-sparkline")
	flag.Uint64Var(&o.maxSteps, "maxsteps", 0, "abort after this many simulation events (livelock watchdog, 0 = unbounded)")
	flag.BoolVar(&o.verbose, "v", false, "verbose diagnostics")
	flag.Parse()

	log := obs.NewLogger(os.Stderr, o.verbose)
	if err := run(o, os.Stdout, log); err != nil {
		os.Exit(obs.Fail(log, err, flag.Usage))
	}
}

func run(o options, out io.Writer, log *slog.Logger) error {
	if o.app == "" {
		return obs.Usagef("need -app")
	}
	if (o.sample != "" || o.sparkline != "") && o.sampleWindow == 0 {
		return obs.Usagef("-sample-window must be positive")
	}
	a, err := workload.ByName(o.app)
	if err != nil {
		return err
	}
	tr, err := a.Build(workload.Params{Scale: o.scale, Seed: o.seed})
	if err != nil {
		return err
	}
	log.Debug("trace built", "app", o.app, "threads", tr.NumThreads())
	cfg := sim.DefaultConfig(o.procs)
	cfg.CacheSize = a.CacheSize
	cfg.Associativity = o.assoc
	cfg.MaxContexts = o.contexts
	cfg.TrackWriteRuns = o.wruns
	if o.infinite {
		cfg.CacheSize = sim.InfiniteCacheSize
	}

	// Telemetry consumers, combined into one probe; nil when no telemetry
	// flag is set, so the plain path stays probe-free.
	var tracer *obs.Tracer
	var sampler *obs.Sampler
	var probes []obs.Probe
	if o.timeline != "" {
		tracer = obs.NewTracer()
		probes = append(probes, tracer)
	}
	if o.sample != "" || o.sparkline != "" {
		sampler = obs.NewSampler(o.sampleWindow)
		probes = append(probes, sampler)
	}
	probe := obs.Multi(probes...)

	// The zero guard is a plain unbounded run; -maxsteps arms it.
	guard := sim.Guard{MaxSteps: o.maxSteps}

	alg := o.alg
	var res *sim.Result
	if o.dynamic != "" {
		policy := sim.FIFO
		switch o.dynamic {
		case "fifo":
		case "longest-first":
			policy = sim.LongestFirst
		default:
			return obs.Usagef("unknown -dynamic policy %q (fifo or longest-first)", o.dynamic)
		}
		res, err = sim.RunDynamicGuarded(tr, cfg, policy, probe, guard)
		if err != nil {
			return err
		}
		alg = res.Algorithm
	} else {
		pa, err := placement.ByName(alg)
		if err != nil {
			return err
		}
		pl, err := pa.Place(analysis.Analyze(tr).Sharing(), o.procs, o.seed)
		if err != nil {
			return err
		}
		res, err = sim.RunGuarded(tr, pl, cfg, sim.FastEngine, probe, guard)
		if err != nil {
			return err
		}
	}
	log.Debug("simulation complete", "exec_cycles", res.ExecTime)

	if tracer != nil {
		if err := writeFile(o.timeline, tracer.Export); err != nil {
			return err
		}
		log.Info("wrote timeline", "path", o.timeline, "events", tracer.Events(),
			"hint", "open in https://ui.perfetto.dev")
	}
	if sampler != nil {
		if o.sample != "" {
			if err := writeFile(o.sample, sampler.Table().WriteCSV); err != nil {
				return err
			}
			log.Info("wrote samples", "path", o.sample, "windows", len(sampler.Samples()))
		}
		if o.sparkline != "" {
			if err := writeFile(o.sparkline, sampler.TimeSeries().WriteSVG); err != nil {
				return err
			}
			log.Info("wrote sparklines", "path", o.sparkline)
		}
	}

	tot := res.Totals()
	fmt.Fprintf(out, "%s / %s / %d processors (%d KB cache)\n", o.app, alg, o.procs, cfg.CacheSize>>10)
	fmt.Fprintf(out, "execution time: %d cycles\n", res.ExecTime)
	fmt.Fprintf(out, "references: %d (%.1f%% shared), hit rate %.2f%%\n",
		tot.Refs, float64(tot.SharedRefs)/float64(tot.Refs)*100,
		float64(tot.Hits)/float64(tot.Refs)*100)
	fmt.Fprintf(out, "cycles: busy %d, switching %d, idle %d\n", tot.Busy, tot.Switch, tot.Idle)

	mt := &report.Table{
		Title:   "Cache miss components",
		Columns: []string{"Component", "Misses", "Per 1000 refs"},
	}
	kinds := []sim.MissKind{sim.Compulsory, sim.ConflictIntra, sim.ConflictInter, sim.InvalidationMiss}
	for _, k := range kinds {
		mt.AddRow(k.String(), fmt.Sprint(tot.Misses[k]),
			report.F(float64(tot.Misses[k])/float64(tot.Refs)*1000, 2))
	}
	mt.AddRow("total", fmt.Sprint(tot.TotalMisses()),
		report.F(float64(tot.TotalMisses())/float64(tot.Refs)*1000, 2))
	if err := mt.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "coherence: %d invalidations sent, %d upgrades, %d writebacks\n",
		tot.InvalidationsSent, tot.Upgrades, tot.Writebacks)
	if res.WriteRuns != nil {
		w := res.WriteRuns
		fmt.Fprintf(out, "write runs: %d written blocks, %d single-writer, %d migratory (%.1f%% of multi-writer), mean run %.1f\n",
			w.WrittenBlocks, w.SingleWriterBlocks, w.MigratoryBlocks, w.MigratoryPct(), w.MeanRunLength)
	}

	if o.perProc {
		pt := &report.Table{
			Title:   "Per-processor statistics",
			Columns: []string{"Proc", "Finish", "Busy", "Switch", "Idle", "Refs", "Misses"},
		}
		for i, p := range res.Procs {
			pt.AddRow(fmt.Sprint(i), fmt.Sprint(p.Finish), fmt.Sprint(p.Busy),
				fmt.Sprint(p.Switch), fmt.Sprint(p.Idle), fmt.Sprint(p.Refs),
				fmt.Sprint(p.TotalMisses()))
		}
		return pt.Render(out)
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
