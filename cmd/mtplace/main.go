// Command mtplace computes thread placement maps: which threads should be
// co-located on which processor, under any of the paper's algorithms.
//
// Usage:
//
//	mtplace -algs                 # list algorithms
//	mtplace -app Water -alg SHARE-REFS -procs 4
//	mtplace -app FFT -procs 8     # all algorithms, with load statistics
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		listAlgs = flag.Bool("algs", false, "list placement algorithms and exit")
		app      = flag.String("app", "", "application name")
		alg      = flag.String("alg", "", "algorithm (default: all)")
		procs    = flag.Int("procs", 4, "number of processors")
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		seed     = flag.Int64("seed", 1994, "generation / RANDOM seed")
		show     = flag.Bool("map", false, "print the full thread->processor map")
		ext      = flag.Bool("ext", false, "include extension algorithms (KL-SHARE)")
	)
	flag.Parse()
	if err := run(*listAlgs, *app, *alg, *procs, *scale, *seed, *show, *ext); err != nil {
		os.Exit(obs.Fail(obs.NewLogger(os.Stderr, false), err, flag.Usage))
	}
}

func run(listAlgs bool, app, alg string, procs int, scale float64, seed int64, show, ext bool) error {
	if listAlgs {
		t := &report.Table{
			Title:   "Placement algorithms (paper §2)",
			Columns: []string{"Name", "Sharing-based"},
		}
		for _, a := range placement.All() {
			sb := "no"
			if a.SharingBased {
				sb = "yes"
			}
			t.AddRow(a.Name, sb)
		}
		return t.Render(os.Stdout)
	}
	if app == "" {
		return obs.Usagef("need -app (or -algs)")
	}
	a, err := workload.ByName(app)
	if err != nil {
		return err
	}
	tr, err := a.Build(workload.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	d := analysis.Analyze(tr).Sharing()

	algs := placement.All()
	if ext {
		algs = append(algs, placement.Extensions()...)
	}
	if alg != "" {
		one, err := placement.ByName(alg)
		if err != nil {
			return err
		}
		algs = []placement.Algorithm{one}
	}

	t := &report.Table{
		Title:   fmt.Sprintf("Placements for %s on %d processors", app, procs),
		Columns: []string{"Algorithm", "Thread-balanced", "Load imbalance", "Max load", "Min load"},
	}
	for _, pa := range algs {
		pl, err := pa.Place(d, procs, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", pa.Name, err)
		}
		loads := pl.Loads(d.Lengths)
		min, max := loads[0], loads[0]
		for _, l := range loads {
			if l < min {
				min = l
			}
			if l > max {
				max = l
			}
		}
		tb := "no"
		if pl.ThreadBalanced() {
			tb = "yes"
		}
		t.AddRow(pa.Name, tb, report.Pct(pl.LoadImbalance(d.Lengths), 1),
			fmt.Sprint(max), fmt.Sprint(min))
		if show {
			fmt.Printf("%s\n", pl)
		}
	}
	return t.Render(os.Stdout)
}
