package main

import (
	"testing"

	"repro/internal/obs"
)

func TestRunModes(t *testing.T) {
	if err := run(true, "", "", 0, 1, 1, false, false); err != nil {
		t.Errorf("algs mode: %v", err)
	}
	if err := run(false, "", "", 4, 1, 1, false, false); err == nil {
		t.Error("missing app accepted")
	} else if !obs.IsUsage(err) {
		t.Errorf("missing app is not a usage error: %v", err)
	}
	if err := run(false, "Grav", "NOPE", 4, 0.25, 1, false, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(false, "Grav", "LOAD-BAL", 4, 0.25, 1, true, false); err != nil {
		t.Errorf("single algorithm: %v", err)
	}
	if err := run(false, "Grav", "", 4, 0.25, 1, false, true); err != nil {
		t.Errorf("all algorithms + extensions: %v", err)
	}
}
