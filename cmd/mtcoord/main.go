// Command mtcoord is the cluster coordinator: it serves mtserve's public
// JSON API (POST /v1/simulate, POST /v1/sweep, GET /v1/jobs/{id},
// GET /v1/placements, GET /healthz, GET /metrics) but executes the work
// across N registered mtserve workers. Cells are routed by rescache
// content address (rendezvous hashing for cache affinity), granted as
// leases, harvested incrementally, stolen back from stragglers for idle
// workers, and requeued when a worker dies — every rebalancing is
// byte-identical by construction because the simulator is deterministic.
//
// Usage:
//
//	mtcoord -addr :9090                       # coordinate until SIGTERM
//	mtcoord -addr :9090 -journal mtcoord.mtj  # with crash recovery
//	mtcoord -bench BENCH_cluster.json         # in-process scaling bench
//
// Workers join with `mtserve -coord http://coordinator:9090`; membership
// is registration plus heartbeats (/cluster/v1/register, /cluster/v1/
// heartbeat), and heartbeat silence past -heartbeat-timeout requeues the
// silent worker's in-flight cells elsewhere.
//
// Shutdown is graceful and mirrors mtserve: in-flight sweeps are handed
// back as retriable; their content-addressed job IDs make resubmission
// to a restarted coordinator idempotent.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve/webhook"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mtcoord", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:9090", "listen address")
		hbeat   = fs.Duration("heartbeat-timeout", 2*time.Second, "declare a worker dead after this much heartbeat silence")
		poll    = fs.Duration("poll", 10*time.Millisecond, "lease harvest/steal scheduling interval")
		chunk   = fs.Int("chunk", 16, "max cells per lease")
		journal = fs.String("journal", "", "MTJ1 journal path for crash recovery (empty = off)")
		verbose = fs.Bool("v", false, "verbose logging")

		storeDir       = fs.String("store-dir", "", "durable result store directory: harvested cell results persist across restarts and warm-start resubmitted sweeps (empty = off)")
		webhookJournal = fs.String("webhook-journal", "", "journal path for webhook delivery state; pending deliveries survive restarts (empty = ephemeral)")

		debugAddr   = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		noTelemetry = fs.Bool("no-telemetry", false, "disable distributed tracing and job-progress streams (histograms stay on)")

		bench        = fs.String("bench", "", "run the in-process cluster scaling benchmark, write the JSON report here, and exit")
		benchWorkers = fs.Int("bench-workers", 4, "bench: maximum worker count (measures 1..max in doubling steps)")
		scale        = fs.Float64("scale", 0.25, "bench: workload scale")
		seed         = fs.Int64("seed", 1994, "bench: workload seed")
		minCell      = fs.Duration("mincell", 250*time.Millisecond, "bench: per-cell service-time floor modeling full-scale cells")
	)
	if err := fs.Parse(args); err != nil {
		return obs.CodeUsage
	}
	log := obs.NewLogger(os.Stderr, *verbose)

	opts := cluster.Options{
		HeartbeatTimeout: *hbeat,
		PollInterval:     *poll,
		LeaseChunk:       *chunk,
		Journal:          *journal,
		DisableTelemetry: *noTelemetry,
		Log:              log,
	}

	if *debugAddr != "" {
		stop, err := obs.StartDebugServer(*debugAddr, log)
		if err != nil {
			return obs.Fail(log, err, fs.Usage)
		}
		defer stop()
	}

	if *bench != "" {
		cfg := benchConfig{
			maxWorkers: *benchWorkers,
			scale:      *scale,
			seed:       *seed,
			minCell:    *minCell,
			out:        *bench,
		}
		if err := runBench(log, cfg); err != nil {
			return obs.Fail(log, err, fs.Usage)
		}
		return obs.CodeOK
	}

	return coordMain(log, *addr, opts, *storeDir, *webhookJournal)
}

// coordMain runs the coordinator daemon until SIGTERM/SIGINT, then drains.
func coordMain(log *slog.Logger, addr string, opts cluster.Options, storeDir, webhookJournal string) int {
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: storeDir})
		if err != nil {
			log.Error(fmt.Sprintf("opening result store: %s", err))
			return obs.CodeError
		}
		opts.Store = st
		s := st.Stats()
		log.Info("result store open", "dir", storeDir,
			"entries", s.Entries, "sealed_segments", s.SealedSegments,
			"quarantined", s.Quarantined, "truncated_tails", s.TruncatedTails)
	}
	wh, err := webhook.New(webhook.Options{JournalPath: webhookJournal})
	if err != nil {
		log.Error(fmt.Sprintf("opening webhook dispatcher: %s", err))
		if st != nil {
			_ = st.Close()
		}
		return obs.CodeError
	}
	opts.Webhooks = wh

	coord, err := cluster.New(opts)
	if err != nil {
		log.Error(err.Error())
		_ = wh.Close()
		if st != nil {
			_ = st.Close()
		}
		return obs.CodeError
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Error(err.Error())
		return obs.CodeError
	}
	hs := &http.Server{Handler: coord.Handler()}
	log.Info("mtcoord listening", "addr", ln.Addr().String())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		log.Info("draining on signal", "signal", fmt.Sprint(sig))
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error(err.Error())
			return obs.CodeError
		}
	}

	// Drain order mirrors mtserve: retire in-flight jobs first (pollers
	// see retriable and will resubmit after restart), persist — flush
	// and seal the result store, close the webhook journal with pending
	// deliveries intact — then stop listening.
	coord.Drain()
	wh.Flush(2 * time.Second)
	if err := wh.Close(); err != nil {
		log.Warn("webhook dispatcher close", "err", err.Error())
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Warn("result store close", "err", err.Error())
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)

	log.Info("mtcoord exited cleanly")
	return obs.CodeOK
}
