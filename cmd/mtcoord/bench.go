package main

import (
	"fmt"
	"log/slog"
	"net/http/httptest"
	"os"
	"reflect"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/serve/client"
)

// The cluster scaling benchmark. It runs the same sweep against
// coordinators with 1, 2, ... workers — every worker an in-process
// mtserve with a single simulation slot and a per-cell service-time
// floor (Options.MinCellTime) modeling the wall-clock of full-scale
// cells. On a one-core CI box the raw simulation arithmetic cannot
// speed up, so the floor is what makes the measurement honest: the
// benchmark gates the coordinator's *pipeline* — routing, leasing,
// harvesting and stealing must overlap N workers' service times, and a
// serialized scheduler would show flat throughput no matter how many
// workers register. Correctness is a hard gate too: every run's sweep
// results must deep-equal the direct library ground truth.

// benchConfig parameterizes the benchmark.
type benchConfig struct {
	maxWorkers int
	scale      float64
	seed       int64
	minCell    time.Duration
	out        string
}

// benchClusterRun is one measured worker count.
type benchClusterRun struct {
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	CellsPerSec float64 `json:"cells_per_sec"`
	Speedup     float64 `json:"speedup_vs_1"`
	Leases      int64   `json:"leases"`
	Steals      int64   `json:"steals"`
	Requeues    int64   `json:"requeues"`
	// Lease lifetime (grant to final harvest) percentiles from the
	// coordinator_lease_harvest_us histogram; bucket upper bounds in ms.
	HarvestP50Ms float64 `json:"lease_harvest_p50_ms"`
	HarvestP90Ms float64 `json:"lease_harvest_p90_ms"`
	HarvestP99Ms float64 `json:"lease_harvest_p99_ms"`
}

// benchClusterReport is the BENCH_cluster.json schema.
type benchClusterReport struct {
	Cells         int               `json:"cells"`
	Scale         float64           `json:"scale"`
	Seed          int64             `json:"seed"`
	MinCellTimeMs float64           `json:"min_cell_time_ms"`
	Runs          []benchClusterRun `json:"runs"`
	SpeedupAtMax  float64           `json:"speedup_at_max_workers"`
	Divergent     int               `json:"divergent_results"`
	GeneratedBy   string            `json:"generated_by"`
}

// benchCluster is one in-process cluster: a coordinator and n workers
// wired through real HTTP on ephemeral ports.
type benchCluster struct {
	coord   *cluster.Coordinator
	coordTS *httptest.Server
	workers []*serve.Server
	servers []*httptest.Server
	agents  []*cluster.Agent
}

// startBenchCluster brings up a coordinator with n registered single-slot
// workers and waits until all n are live.
func startBenchCluster(n int, minCell time.Duration) (*benchCluster, error) {
	coord, err := cluster.New(cluster.Options{
		HeartbeatTimeout: 2 * time.Second,
		PollInterval:     2 * time.Millisecond,
		LeaseChunk:       4,
	})
	if err != nil {
		return nil, err
	}
	bc := &benchCluster{coord: coord, coordTS: httptest.NewServer(coord.Handler())}
	for i := 0; i < n; i++ {
		srv := serve.NewServer(serve.Options{
			Workers:     1, // one simulation slot: a worker is one machine
			SampleEvery: -1,
			MinCellTime: minCell,
		})
		ts := httptest.NewServer(srv.Handler())
		bc.workers = append(bc.workers, srv)
		bc.servers = append(bc.servers, ts)
		bc.agents = append(bc.agents,
			cluster.StartAgent(bc.coordTS.URL, fmt.Sprintf("w%d", i), ts.URL, 100*time.Millisecond, nil))
	}
	cl := client.New(bc.coordTS.URL)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := cl.Health()
		if err == nil && h.Workers >= n {
			return bc, nil
		}
		if time.Now().After(deadline) {
			bc.stop()
			return nil, fmt.Errorf("cluster bench: only %d/%d workers registered in time", h.Workers, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (bc *benchCluster) stop() {
	for _, a := range bc.agents {
		a.Stop()
	}
	bc.coord.Drain()
	bc.coordTS.Close()
	for i, ts := range bc.servers {
		ts.Close()
		bc.workers[i].Drain()
	}
}

// runBench measures sweep throughput at 1..cfg.maxWorkers workers
// (doubling), verifies every run byte-identical to the library, writes
// the report, and fails hard when 4+ workers do not reach 3x the
// single-worker throughput.
func runBench(log *slog.Logger, cfg benchConfig) error {
	if cfg.maxWorkers < 1 {
		return fmt.Errorf("cluster bench: need at least one worker, got %d", cfg.maxWorkers)
	}
	apps, algs, procs := loadgen.ClusterDims()
	cells := loadgen.ClusterMix()
	params := serve.Params{Scale: cfg.scale, Seed: cfg.seed}

	log.Info("cluster bench: computing library ground truth", "cells", len(cells))
	want, err := loadgen.GroundTruth(cfg.scale, cfg.seed, cells)
	if err != nil {
		return fmt.Errorf("cluster bench %w", err)
	}

	rep := benchClusterReport{
		Cells: len(cells), Scale: cfg.scale, Seed: cfg.seed,
		MinCellTimeMs: float64(cfg.minCell) / float64(time.Millisecond),
		GeneratedBy:   "mtcoord -bench",
	}
	var counts []int
	for n := 1; n <= cfg.maxWorkers; n *= 2 {
		counts = append(counts, n)
	}
	if last := counts[len(counts)-1]; last != cfg.maxWorkers {
		counts = append(counts, cfg.maxWorkers)
	}

	for _, n := range counts {
		bc, err := startBenchCluster(n, cfg.minCell)
		if err != nil {
			return err
		}
		cl := client.New(bc.coordTS.URL)
		cl.MaxRetries = 64
		cl.RetryWait = 10 * time.Millisecond

		t0 := time.Now()
		acc, err := cl.Sweep(&serve.SweepRequest{
			Params: &params, Apps: apps, Algorithms: algs, Procs: procs,
		})
		if err != nil {
			bc.stop()
			return fmt.Errorf("cluster bench: sweep at %d workers: %w", n, err)
		}
		st, err := cl.WaitJob(acc.Job, 5*time.Millisecond, 2*time.Minute)
		elapsed := time.Since(t0)
		if err != nil {
			bc.stop()
			return fmt.Errorf("cluster bench: wait at %d workers: %w", n, err)
		}
		if st.Status != serve.StatusDone {
			bc.stop()
			return fmt.Errorf("cluster bench: job at %d workers ended %s: %s", n, st.Status, st.Error)
		}
		if len(st.Results) != len(cells) {
			bc.stop()
			return fmt.Errorf("cluster bench: %d workers returned %d/%d cells", n, len(st.Results), len(cells))
		}
		for _, r := range st.Results {
			if !reflect.DeepEqual(r.Result, want[loadgen.Cell{App: r.App, Alg: r.Algorithm, Procs: r.Procs}]) {
				rep.Divergent++
			}
		}
		snap := bc.coord.Metrics().Snapshot()
		run := benchClusterRun{
			Workers:     n,
			Seconds:     elapsed.Seconds(),
			CellsPerSec: float64(len(cells)) / elapsed.Seconds(),
			Leases:      snap["coordinator_leases_granted_total"],
			Steals:      snap["coordinator_steals_total"],
			Requeues:    snap["coordinator_requeues_total"],
		}
		if h, ok := bc.coord.Metrics().HistogramByName("coordinator_lease_harvest_us"); ok {
			run.HarvestP50Ms = float64(h.Quantile(0.50)) / 1000
			run.HarvestP90Ms = float64(h.Quantile(0.90)) / 1000
			run.HarvestP99Ms = float64(h.Quantile(0.99)) / 1000
		}
		if len(rep.Runs) > 0 {
			run.Speedup = run.CellsPerSec / rep.Runs[0].CellsPerSec
		} else {
			run.Speedup = 1
		}
		rep.Runs = append(rep.Runs, run)
		bc.stop()
		log.Info("cluster bench: measured", "workers", n,
			"seconds", fmt.Sprintf("%.2f", run.Seconds),
			"cells_per_sec", fmt.Sprintf("%.1f", run.CellsPerSec),
			"speedup", fmt.Sprintf("%.2fx", run.Speedup))
	}
	rep.SpeedupAtMax = rep.Runs[len(rep.Runs)-1].Speedup

	if err := loadgen.WriteReport(os.Stdout, cfg.out, rep); err != nil {
		return err
	}
	if rep.Divergent > 0 {
		return fmt.Errorf("cluster bench: %d results diverged from direct library results", rep.Divergent)
	}
	if cfg.maxWorkers >= 4 && rep.SpeedupAtMax < 3.0 {
		return fmt.Errorf("cluster bench: %d workers reached only %.2fx single-worker throughput (want >= 3x): the coordinator pipeline is serializing", cfg.maxWorkers, rep.SpeedupAtMax)
	}
	return nil
}
