package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/client"
)

// TestMain re-executes the test binary as a real mtserve daemon when the
// reexec env var is set: the kill -9 test needs an actual process to
// SIGKILL, and re-exec avoids shelling out to the go tool from a test.
func TestMain(m *testing.M) {
	if args := os.Getenv("MTSERVE_REEXEC_ARGS"); args != "" {
		os.Exit(run(strings.Split(args, "\x1f")))
	}
	os.Exit(m.Run())
}

// daemon is one subprocess mtserve life.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches mtserve -store-dir dir on an ephemeral port and
// waits for its "mtserve listening" line to learn the address.
func startDaemon(t *testing.T, dir string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "MTSERVE_REEXEC_ARGS="+strings.Join([]string{
		"-addr", "127.0.0.1:0",
		"-store-dir", dir,
		"-workers", "2",
		"-crosscheck", "0",
	}, "\x1f"))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "mtserve listening") {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						addrc <- a
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		return &daemon{cmd: cmd, base: "http://" + addr}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("daemon never reported its listen address")
		return nil
	}
}

// restartSweep is the fixed sweep both lives run.
func restartSweep(seed int64) *serve.SweepRequest {
	return &serve.SweepRequest{
		Params:     &serve.Params{Scale: 0.1, Seed: seed},
		Apps:       []string{"MP3D", "Gauss"},
		Algorithms: []string{"RANDOM", "LOAD-BAL"},
		Procs:      []int{2, 4},
	}
}

// artifact reduces a finished sweep to its durable payload — the per-cell
// simulation results, excluding serving metadata like the Cached flag —
// rendered as canonical JSON for byte comparison across lives.
func artifact(t *testing.T, st *serve.JobStatus) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range st.Results {
		fmt.Fprintf(&buf, "%s/%s/%d key=%s ", r.App, r.Algorithm, r.Procs, r.Key)
		b, err := json.Marshal(r.Result)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestKillDashNineWarmRestart is the crash-recovery differential: a
// server killed with SIGKILL — no drain, no flush, mid-write on a second
// sweep — must restart on the same store directory, recover cleanly, and
// serve the first sweep's results byte-identical from disk.
func TestKillDashNineWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()

	// Life 1: complete sweep A, let the write-behind flusher land it.
	d1 := startDaemon(t, dir)
	cl := client.New(d1.base)
	cl.MaxRetries = 64
	cl.RetryWait = 10 * time.Millisecond
	acc, err := cl.Sweep(restartSweep(7))
	if err != nil {
		t.Fatal(err)
	}
	stA, err := cl.WaitJob(acc.Job, 5*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stA.Status != serve.StatusDone {
		t.Fatalf("sweep A ended %s: %s", stA.Status, stA.Error)
	}
	want := artifact(t, stA)

	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := cl.Health()
		if err == nil && h.Store != nil && h.Store.Puts >= uint64(stA.Cells) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("store never absorbed %d puts", stA.Cells)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The puts are enqueued; give the flusher a beat to put them on disk.
	time.Sleep(300 * time.Millisecond)

	// Start sweep B and SIGKILL mid-flight: the live segment may be torn
	// mid-frame — exactly the crash recovery must absorb.
	if _, err := cl.Sweep(restartSweep(8)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = d1.cmd.Wait()

	// Life 2: recovery must be clean (no panic, health ok) and sweep A
	// must come back byte-identical without recomputing.
	d2 := startDaemon(t, dir)
	defer func() {
		_ = d2.cmd.Process.Signal(syscall.SIGTERM)
		_ = d2.cmd.Wait()
	}()
	cl2 := client.New(d2.base)
	cl2.MaxRetries = 64
	cl2.RetryWait = 10 * time.Millisecond
	h, err := cl2.Health()
	if err != nil {
		t.Fatalf("health after kill -9 restart: %v", err)
	}
	if h.Store == nil || h.Store.Entries == 0 {
		t.Fatalf("store recovered empty after kill -9: %+v", h.Store)
	}

	acc2, err := cl2.Sweep(restartSweep(7))
	if err != nil {
		t.Fatal(err)
	}
	stA2, err := cl2.WaitJob(acc2.Job, 5*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if stA2.Status != serve.StatusDone {
		t.Fatalf("sweep A rerun ended %s: %s", stA2.Status, stA2.Error)
	}
	got := artifact(t, stA2)
	if !bytes.Equal(want, got) {
		t.Fatalf("artifacts diverged across kill -9 restart:\nfirst life:\n%s\nsecond life:\n%s", want, got)
	}
	for i, r := range stA2.Results {
		if !r.Cached {
			t.Errorf("cell %d recomputed after restart; want served from the store", i)
		}
	}
	h2, err := cl2.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Store.Hits == 0 {
		t.Errorf("zero store hits serving the recovered sweep: %+v", h2.Store)
	}

	// Graceful exit of life 2 must seal cleanly: a third open sees zero
	// quarantine and zero torn tails.
	_ = d2.cmd.Process.Signal(syscall.SIGTERM)
	if err := d2.cmd.Wait(); err != nil {
		t.Fatalf("life 2 exit: %v", err)
	}
	d3 := startDaemon(t, dir)
	defer func() {
		_ = d3.cmd.Process.Signal(syscall.SIGTERM)
		_ = d3.cmd.Wait()
	}()
	cl3 := client.New(d3.base)
	h3, err := cl3.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h3.Store == nil || h3.Store.Entries == 0 {
		t.Fatalf("third life recovered empty: %+v", h3.Store)
	}
}
