package main

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/sim"
	"repro/internal/workload"
)

// loadgenConfig parameterizes the self-benchmark.
type loadgenConfig struct {
	clients int
	rounds  int
	scale   float64
	seed    int64
	bench   string
	opts    serve.Options
}

// loadCell is one named cell of the benchmark mix.
type loadCell struct {
	app   string
	alg   string
	procs int
}

// benchServeReport is the BENCH_serve.json schema: end-to-end service
// throughput and latency under concurrent load, with correctness
// (divergence against direct library calls) as a hard gate, plus the
// cache's measured effectiveness.
type benchServeReport struct {
	Clients        int      `json:"clients"`
	Rounds         int      `json:"rounds"`
	UniqueCells    int      `json:"unique_cells"`
	Requests       int      `json:"requests"`
	Errors         int      `json:"errors"`
	Divergent      int      `json:"divergent_results"`
	Seconds        float64  `json:"seconds"`
	RequestsPerSec float64  `json:"requests_per_sec"`
	LatencyP50Ms   float64  `json:"latency_p50_ms"`
	LatencyP90Ms   float64  `json:"latency_p90_ms"`
	LatencyP99Ms   float64  `json:"latency_p99_ms"`
	CacheHits      uint64   `json:"cache_hits"`
	CacheMisses    uint64   `json:"cache_misses"`
	CacheHitRate   float64  `json:"cache_hit_rate"`
	SimRuns        int64    `json:"sim_runs"`
	MaxInFlight    int      `json:"max_concurrent_clients"`
	Scale          float64  `json:"scale"`
	Seed           int64    `json:"seed"`
	Apps           []string `json:"apps"`
	GeneratedBy    string   `json:"generated_by"`
}

// loadgenCells is the benchmark mix: two applications across every
// static placement algorithm at two machine sizes — enough distinct
// cells that the first round is miss-heavy and later rounds are
// cache-served.
func loadgenCells() []loadCell {
	apps := []string{"MP3D", "Gauss"}
	var cells []loadCell
	for _, app := range apps {
		for _, alg := range core.AllAlgorithms() {
			for _, procs := range []int{2, 4} {
				cells = append(cells, loadCell{app: app, alg: alg, procs: procs})
			}
		}
	}
	return cells
}

// runLoadgen starts an in-process server on an ephemeral port, drives it
// with cfg.clients concurrent clients for cfg.rounds passes over the
// cell mix, verifies every response against the corresponding direct
// library call, asserts /healthz and /metrics, and writes the report.
// Any divergent result is a hard error: the service layer must add
// transport, never arithmetic.
func runLoadgen(log *slog.Logger, cfg loadgenConfig) error {
	if cfg.clients < 1 {
		return fmt.Errorf("loadgen: need at least one client, got %d", cfg.clients)
	}
	if cfg.rounds < 1 {
		return fmt.Errorf("loadgen: need at least one round, got %d", cfg.rounds)
	}
	cells := loadgenCells()
	params := serve.Params{Scale: cfg.scale, Seed: cfg.seed}

	// Ground truth first: the same cells via the library, sharing one
	// suite, so every response below has an exact expected value.
	log.Info("loadgen: computing library ground truth", "cells", len(cells))
	sopts := core.DefaultOptions()
	sopts.Params = workload.Params{Scale: cfg.scale, Seed: cfg.seed}
	suite := core.NewSuite(sopts)
	want := make(map[loadCell]*sim.Result, len(cells))
	for _, c := range cells {
		res, err := suite.RunOne(c.app, c.alg, c.procs, false)
		if err != nil {
			return fmt.Errorf("loadgen ground truth %s/%s/%d: %w", c.app, c.alg, c.procs, err)
		}
		want[c] = res
	}

	// The queue must absorb every client's one in-flight request plus
	// slack, so backpressure never deflates the concurrency measurement.
	opts := cfg.opts
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 4 * cfg.clients
	}
	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Drain()
	}()
	log.Info("loadgen: server up", "url", ts.URL, "clients", cfg.clients, "rounds", cfg.rounds)

	type sample struct {
		latency   time.Duration
		err       error
		divergent bool
	}
	samples := make([][]sample, cfg.clients)

	// Barrier start so all clients are genuinely concurrent, then each
	// client walks the cell list rounds times from its own offset (so
	// round 1 misses spread across distinct cells instead of convoying).
	var wg sync.WaitGroup
	start := make(chan struct{})
	inFlight := struct {
		sync.Mutex
		cur, max int
	}{}
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			cl := client.New(ts.URL)
			cl.MaxRetries = 64
			cl.RetryWait = 10 * time.Millisecond
			<-start
			for r := 0; r < cfg.rounds; r++ {
				for k := 0; k < len(cells); k++ {
					c := cells[(ci+k)%len(cells)]
					req := &serve.SimulateRequest{
						Params:    &params,
						App:       c.app,
						Algorithm: c.alg,
						Procs:     c.procs,
					}
					inFlight.Lock()
					inFlight.cur++
					if inFlight.cur > inFlight.max {
						inFlight.max = inFlight.cur
					}
					inFlight.Unlock()
					t0 := time.Now()
					resp, err := cl.Simulate(req)
					lat := time.Since(t0)
					inFlight.Lock()
					inFlight.cur--
					inFlight.Unlock()
					s := sample{latency: lat, err: err}
					if err == nil && !reflect.DeepEqual(resp.Result, want[c]) {
						s.divergent = true
					}
					samples[ci] = append(samples[ci], s)
				}
			}
		}(ci)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	// Aggregate.
	var lats []time.Duration
	rep := benchServeReport{
		Clients: cfg.clients, Rounds: cfg.rounds, UniqueCells: len(cells),
		Scale: cfg.scale, Seed: cfg.seed,
		Apps:        []string{"MP3D", "Gauss"},
		Seconds:     elapsed.Seconds(),
		MaxInFlight: inFlight.max,
		GeneratedBy: "mtserve -loadgen",
	}
	for _, ss := range samples {
		for _, s := range ss {
			rep.Requests++
			switch {
			case s.err != nil:
				rep.Errors++
			case s.divergent:
				rep.Divergent++
			}
			lats = append(lats, s.latency)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Millisecond)
	}
	rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms = pct(0.50), pct(0.90), pct(0.99)
	if rep.Seconds > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / rep.Seconds
	}
	cs := srv.CacheStats()
	rep.CacheHits, rep.CacheMisses, rep.CacheHitRate = cs.Hits, cs.Misses, cs.HitRate()
	rep.SimRuns = srv.Metrics().Snapshot()["serve_sim_runs_total"]

	// Built-in smoke assertions (this is what `make servecheck` runs):
	// the endpoints must be coherent with the load just applied.
	cl := client.New(ts.URL)
	h, err := cl.Health()
	if err != nil {
		return fmt.Errorf("loadgen: /healthz: %w", err)
	}
	if h.Status != "ok" && h.Status != "degraded" {
		return fmt.Errorf("loadgen: /healthz status %q after load", h.Status)
	}
	if h.Jobs.Accepted == 0 || h.Jobs.Completed == 0 {
		return fmt.Errorf("loadgen: /healthz job accounting empty after %d requests: %+v", rep.Requests, h.Jobs)
	}
	metrics, err := cl.Metrics()
	if err != nil {
		return fmt.Errorf("loadgen: /metrics: %w", err)
	}
	for _, series := range []string{
		"serve_http_requests_total", "serve_sim_runs_total",
		"serve_cache_hits_total", "serve_jobs_completed_total",
	} {
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("loadgen: /metrics missing series %s", series)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if cfg.bench != "" {
		if err := os.WriteFile(cfg.bench, out, 0o644); err != nil {
			return err
		}
	}
	os.Stdout.Write(out)

	log.Info("loadgen: done",
		"requests", rep.Requests, "rps", fmt.Sprintf("%.1f", rep.RequestsPerSec),
		"p50_ms", fmt.Sprintf("%.2f", rep.LatencyP50Ms),
		"p99_ms", fmt.Sprintf("%.2f", rep.LatencyP99Ms),
		"cache_hit_rate", fmt.Sprintf("%.3f", rep.CacheHitRate),
		"max_in_flight", rep.MaxInFlight)

	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d/%d requests failed", rep.Errors, rep.Requests)
	}
	if rep.Divergent > 0 {
		return fmt.Errorf("loadgen: %d/%d responses diverged from direct library results", rep.Divergent, rep.Requests)
	}
	return nil
}
