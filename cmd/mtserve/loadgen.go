package main

import (
	"fmt"
	"log/slog"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/loadgen"
	"repro/internal/serve"
	"repro/internal/serve/client"
	"repro/internal/store"
)

// loadgenConfig parameterizes the self-benchmark.
type loadgenConfig struct {
	clients int
	rounds  int
	scale   float64
	seed    int64
	bench   string
	// storeDir is where the durable store lives across the benchmark's
	// two server lives ("" = a throwaway temp dir).
	storeDir string
	opts     serve.Options
}

// warmHitRateFloor is the warm-restart gate: after a restart onto the
// same store directory, at least this fraction of the cell mix must be
// served from disk without simulating. Below it, durability is broken.
const warmHitRateFloor = 0.95

// benchServeReport is the BENCH_serve.json schema: end-to-end service
// throughput and latency under concurrent load, with correctness
// (divergence against direct library calls) as a hard gate, plus the
// cache's measured effectiveness.
type benchServeReport struct {
	Clients        int      `json:"clients"`
	Rounds         int      `json:"rounds"`
	UniqueCells    int      `json:"unique_cells"`
	Requests       int      `json:"requests"`
	Errors         int      `json:"errors"`
	Divergent      int      `json:"divergent_results"`
	Seconds        float64  `json:"seconds"`
	RequestsPerSec float64  `json:"requests_per_sec"`
	LatencyP50Ms   float64  `json:"latency_p50_ms"`
	LatencyP90Ms   float64  `json:"latency_p90_ms"`
	LatencyP99Ms   float64  `json:"latency_p99_ms"`
	ServerP50Ms    float64  `json:"server_latency_p50_ms"`
	ServerP90Ms    float64  `json:"server_latency_p90_ms"`
	ServerP99Ms    float64  `json:"server_latency_p99_ms"`
	CacheHits      uint64   `json:"cache_hits"`
	CacheMisses    uint64   `json:"cache_misses"`
	CacheHitRate   float64  `json:"cache_hit_rate"`
	SimRuns        int64    `json:"sim_runs"`
	WarmRequests   int      `json:"warm_requests"`
	WarmStoreHits  uint64   `json:"warm_store_hits"`
	WarmSimRuns    int64    `json:"warm_sim_runs"`
	WarmHitRate    float64  `json:"warm_hit_rate"`
	MaxInFlight    int      `json:"max_concurrent_clients"`
	Scale          float64  `json:"scale"`
	Seed           int64    `json:"seed"`
	Apps           []string `json:"apps"`
	GeneratedBy    string   `json:"generated_by"`
}

// runLoadgen starts an in-process server on an ephemeral port, drives it
// with cfg.clients concurrent clients for cfg.rounds passes over the
// cell mix, verifies every response against the corresponding direct
// library call, asserts /healthz and /metrics, and writes the report.
// Any divergent result is a hard error: the service layer must add
// transport, never arithmetic. The mix, ground truth, concurrency driver
// and aggregation are the shared internal/loadgen core the cluster
// benchmark (mtcoord -bench) uses too.
func runLoadgen(log *slog.Logger, cfg loadgenConfig) error {
	if cfg.clients < 1 {
		return fmt.Errorf("loadgen: need at least one client, got %d", cfg.clients)
	}
	if cfg.rounds < 1 {
		return fmt.Errorf("loadgen: need at least one round, got %d", cfg.rounds)
	}
	cells := loadgen.DefaultMix()
	params := serve.Params{Scale: cfg.scale, Seed: cfg.seed}

	log.Info("loadgen: computing library ground truth", "cells", len(cells))
	want, err := loadgen.GroundTruth(cfg.scale, cfg.seed, cells)
	if err != nil {
		return fmt.Errorf("loadgen %w", err)
	}

	// The queue must absorb every client's one in-flight request plus
	// slack, so backpressure never deflates the concurrency measurement.
	opts := cfg.opts
	if opts.QueueDepth == 0 {
		opts.QueueDepth = 4 * cfg.clients
	}

	// The benchmark runs the server twice against one store directory:
	// the load phase fills it, the warm phase measures what a restarted
	// server serves from disk.
	storeDir := cfg.storeDir
	if storeDir == "" {
		tmp, err := os.MkdirTemp("", "mtserve-loadgen-store-")
		if err != nil {
			return fmt.Errorf("loadgen: %w", err)
		}
		defer os.RemoveAll(tmp)
		storeDir = tmp
	}
	st, err := store.Open(store.Options{Dir: storeDir})
	if err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	opts.Store = st

	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	closed := false
	closeLife := func() {
		if closed {
			return
		}
		closed = true
		ts.Close()
		srv.Drain()
		_ = st.Close()
	}
	defer closeLife()
	log.Info("loadgen: server up", "url", ts.URL, "clients", cfg.clients, "rounds", cfg.rounds)

	var (
		lats      loadgen.Latencies
		inFlight  loadgen.InFlight
		requests  atomic.Int64
		errCount  atomic.Int64
		divergent atomic.Int64
	)
	// Each client walks the cell list rounds times from its own offset,
	// so round-1 misses spread across distinct cells instead of convoying.
	elapsed := loadgen.Concurrent(cfg.clients, func(ci int) {
		cl := client.New(ts.URL)
		cl.MaxRetries = 64
		cl.RetryWait = 10 * time.Millisecond
		for r := 0; r < cfg.rounds; r++ {
			for k := 0; k < len(cells); k++ {
				c := cells[(ci+k)%len(cells)]
				req := &serve.SimulateRequest{
					Params:    &params,
					App:       c.App,
					Algorithm: c.Alg,
					Procs:     c.Procs,
				}
				inFlight.Enter()
				t0 := time.Now()
				resp, err := cl.Simulate(req)
				lats.Add(time.Since(t0))
				inFlight.Leave()
				requests.Add(1)
				switch {
				case err != nil:
					errCount.Add(1)
				case !reflect.DeepEqual(resp.Result, want[c]):
					divergent.Add(1)
				}
			}
		}
	})

	rep := benchServeReport{
		Clients: cfg.clients, Rounds: cfg.rounds, UniqueCells: len(cells),
		Scale: cfg.scale, Seed: cfg.seed,
		Apps:        loadgen.Apps(cells),
		Seconds:     elapsed.Seconds(),
		Requests:    int(requests.Load()),
		Errors:      int(errCount.Load()),
		Divergent:   int(divergent.Load()),
		MaxInFlight: inFlight.Max(),
		GeneratedBy: "mtserve -loadgen",
	}
	rep.LatencyP50Ms = lats.PercentileMs(0.50)
	rep.LatencyP90Ms = lats.PercentileMs(0.90)
	rep.LatencyP99Ms = lats.PercentileMs(0.99)
	// The client-side percentiles above include transport; the server-side
	// triple comes from the serve_request_latency_us histogram — the same
	// distribution /metrics exposes, so the report and the exposition can
	// be cross-checked. Histogram quantiles are bucket upper bounds.
	if h, ok := srv.Metrics().HistogramByName("serve_request_latency_us"); ok {
		rep.ServerP50Ms = float64(h.Quantile(0.50)) / 1000
		rep.ServerP90Ms = float64(h.Quantile(0.90)) / 1000
		rep.ServerP99Ms = float64(h.Quantile(0.99)) / 1000
	}
	if rep.Seconds > 0 {
		rep.RequestsPerSec = float64(rep.Requests) / rep.Seconds
	}
	cs := srv.CacheStats()
	rep.CacheHits, rep.CacheMisses, rep.CacheHitRate = cs.Hits, cs.Misses, cs.HitRate()
	rep.SimRuns = srv.Metrics().Snapshot()["serve_sim_runs_total"]

	// Built-in smoke assertions (this is what `make servecheck` runs):
	// the endpoints must be coherent with the load just applied.
	cl := client.New(ts.URL)
	h, err := cl.Health()
	if err != nil {
		return fmt.Errorf("loadgen: /healthz: %w", err)
	}
	if h.Status != "ok" && h.Status != "degraded" {
		return fmt.Errorf("loadgen: /healthz status %q after load", h.Status)
	}
	if h.Jobs.Accepted == 0 || h.Jobs.Completed == 0 {
		return fmt.Errorf("loadgen: /healthz job accounting empty after %d requests: %+v", rep.Requests, h.Jobs)
	}
	metrics, err := cl.Metrics()
	if err != nil {
		return fmt.Errorf("loadgen: /metrics: %w", err)
	}
	for _, series := range []string{
		"serve_http_requests_total", "serve_sim_runs_total",
		"serve_cache_hits_total", "serve_jobs_completed_total",
	} {
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("loadgen: /metrics missing series %s", series)
		}
	}

	// Warm-restart phase: retire the first life completely (drain, flush,
	// seal), then bring up a second server — cold memory cache, same
	// store directory — and walk the cell mix once. Every cell answered
	// without simulating is a warm hit; the rate is a hard gate.
	closeLife()
	log.Info("loadgen: warm-restart phase", "store_dir", storeDir)
	st2, err := store.Open(store.Options{Dir: storeDir})
	if err != nil {
		return fmt.Errorf("loadgen: reopening store: %w", err)
	}
	opts2 := opts
	opts2.Store = st2
	srv2 := serve.NewServer(opts2)
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Drain()
		_ = st2.Close()
	}()

	wcl := client.New(ts2.URL)
	wcl.MaxRetries = 64
	wcl.RetryWait = 10 * time.Millisecond
	for _, c := range cells {
		resp, err := wcl.Simulate(&serve.SimulateRequest{
			Params: &params, App: c.App, Algorithm: c.Alg, Procs: c.Procs,
		})
		rep.WarmRequests++
		if err != nil {
			return fmt.Errorf("loadgen: warm request %+v: %w", c, err)
		}
		if !reflect.DeepEqual(resp.Result, want[c]) {
			return fmt.Errorf("loadgen: warm result for %+v diverged from the direct library result", c)
		}
	}
	rep.WarmStoreHits = st2.Stats().Hits
	rep.WarmSimRuns = srv2.Metrics().Snapshot()["serve_sim_runs_total"]
	if rep.WarmRequests > 0 {
		rep.WarmHitRate = float64(rep.WarmStoreHits) / float64(rep.WarmRequests)
	}

	if err := loadgen.WriteReport(os.Stdout, cfg.bench, rep); err != nil {
		return err
	}

	log.Info("loadgen: done",
		"requests", rep.Requests, "rps", fmt.Sprintf("%.1f", rep.RequestsPerSec),
		"p50_ms", fmt.Sprintf("%.2f", rep.LatencyP50Ms),
		"p99_ms", fmt.Sprintf("%.2f", rep.LatencyP99Ms),
		"cache_hit_rate", fmt.Sprintf("%.3f", rep.CacheHitRate),
		"warm_hit_rate", fmt.Sprintf("%.3f", rep.WarmHitRate),
		"max_in_flight", rep.MaxInFlight)

	if rep.Errors > 0 {
		return fmt.Errorf("loadgen: %d/%d requests failed", rep.Errors, rep.Requests)
	}
	if rep.Divergent > 0 {
		return fmt.Errorf("loadgen: %d/%d responses diverged from direct library results", rep.Divergent, rep.Requests)
	}
	if rep.WarmHitRate < warmHitRateFloor {
		return fmt.Errorf("loadgen: warm restart served %.3f of the mix from the store, floor is %.2f (%d hits / %d requests, %d re-simulated)",
			rep.WarmHitRate, warmHitRateFloor, rep.WarmStoreHits, rep.WarmRequests, rep.WarmSimRuns)
	}
	return nil
}
