// Command mtserve is the simulation-as-a-service daemon: the paper's
// simulator behind a JSON HTTP API with a bounded job queue, a worker
// pool, a content-addressed result cache and an engine guard that keeps
// the server answering (on the reference engine) if the fast engine is
// ever caught diverging.
//
// Usage:
//
//	mtserve -addr :8080                      # serve until SIGTERM/SIGINT
//	mtserve -addr :8080 -workers 8 -cache 8192
//	mtserve -loadgen -clients 64 -bench BENCH_serve.json
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, GET /v1/jobs/{id},
// GET /v1/placements, GET /healthz, GET /metrics.
//
// Shutdown is graceful: SIGTERM stops accepting work, in-flight cells
// finish, queued jobs are handed back as retriable (their
// content-addressed IDs make resubmission to a restarted server
// idempotent), then the process exits — 0 healthy, 3 if the run was
// degraded (fast engine benched).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/serve/webhook"
	"repro/internal/store"
)

// sanitizeWorkerID maps a listen address into the worker-ID alphabet
// ([A-Za-z0-9._-]): colons and any other byte become '-'.
func sanitizeWorkerID(addr string) string {
	b := []byte(addr)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mtserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers    = fs.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "job queue depth (0 = default, fits one maximal sweep)")
		cacheSize  = fs.Int("cache", 4096, "result cache capacity (entries)")
		maxSteps   = fs.Uint64("maxsteps", 0, "per-cell simulation step budget (0 = unlimited)")
		timeout    = fs.Duration("timeout", 0, "per-cell wall-clock budget (0 = none)")
		crossCheck = fs.Int("crosscheck", 16, "cross-check every Nth guarded run against the reference engine (0 = off)")
		verbose    = fs.Bool("v", false, "verbose logging")

		storeDir       = fs.String("store-dir", "", "durable result store directory: results persist across restarts and warm-start the cache (empty = memory only)")
		webhookJournal = fs.String("webhook-journal", "", "journal path for webhook delivery state; pending deliveries survive restarts (empty = ephemeral)")

		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
		streamWindow = fs.Uint64("stream-window", 100_000, "sampler window (cycles) for live SSE sample events when a stream is attached (0 = no samples)")
		noTelemetry  = fs.Bool("no-telemetry", false, "disable distributed tracing and job-progress streams (histograms stay on)")

		coord     = fs.String("coord", "", "coordinator base URL to join as a cluster worker (e.g. http://127.0.0.1:9090)")
		name      = fs.String("name", "", "cluster worker ID (default derived from the listen address)")
		advertise = fs.String("advertise", "", "base URL the coordinator should reach this worker at (default http://<listen addr>)")
		beat      = fs.Duration("heartbeat", 500*time.Millisecond, "cluster heartbeat interval")

		loadgen = fs.Bool("loadgen", false, "run the self-benchmark against an in-process server and exit")
		clients = fs.Int("clients", 64, "loadgen: concurrent clients")
		rounds  = fs.Int("rounds", 4, "loadgen: passes each client makes over the cell list")
		scale   = fs.Float64("scale", 0.25, "loadgen: workload scale")
		seed    = fs.Int64("seed", 1994, "loadgen: workload seed")
		bench   = fs.String("bench", "", "loadgen: write the JSON report here (e.g. BENCH_serve.json)")
	)
	if err := fs.Parse(args); err != nil {
		return obs.CodeUsage
	}
	log := obs.NewLogger(os.Stderr, *verbose)

	opts := serve.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheSize,
		MaxSteps:         *maxSteps,
		RequestTimeout:   *timeout,
		SampleEvery:      *crossCheck,
		StreamWindow:     *streamWindow,
		DisableTelemetry: *noTelemetry,
		Log:              log,
	}

	if *debugAddr != "" {
		stop, err := obs.StartDebugServer(*debugAddr, log)
		if err != nil {
			return obs.Fail(log, err, fs.Usage)
		}
		defer stop()
	}

	if *loadgen {
		cfg := loadgenConfig{
			clients:  *clients,
			rounds:   *rounds,
			scale:    *scale,
			seed:     *seed,
			bench:    *bench,
			storeDir: *storeDir,
			opts:     opts,
		}
		if err := runLoadgen(log, cfg); err != nil {
			return obs.Fail(log, err, fs.Usage)
		}
		return obs.CodeOK
	}

	cc := coordConfig{url: *coord, name: *name, advertise: *advertise, interval: *beat}
	dc := durableConfig{storeDir: *storeDir, webhookJournal: *webhookJournal}
	return serveMain(log, *addr, opts, cc, dc)
}

// durableConfig is the daemon's persistence surface: the result store
// and the webhook delivery journal.
type durableConfig struct {
	storeDir       string
	webhookJournal string
}

// openDurable opens the result store and webhook dispatcher named by
// dc and attaches them to opts. The returned closer runs after Drain:
// every result the workers produced is flushed and sealed, and pending
// webhook deliveries stay journaled for the next life.
func openDurable(log *slog.Logger, dc durableConfig, opts *serve.Options) (func(), error) {
	var st *store.Store
	if dc.storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: dc.storeDir})
		if err != nil {
			return nil, fmt.Errorf("opening result store: %w", err)
		}
		opts.Store = st
		s := st.Stats()
		log.Info("result store open", "dir", dc.storeDir,
			"entries", s.Entries, "sealed_segments", s.SealedSegments,
			"quarantined", s.Quarantined, "truncated_tails", s.TruncatedTails)
	}
	wh, err := webhook.New(webhook.Options{JournalPath: dc.webhookJournal})
	if err != nil {
		if st != nil {
			_ = st.Close()
		}
		return nil, fmt.Errorf("opening webhook dispatcher: %w", err)
	}
	opts.Webhooks = wh
	return func() {
		// Give in-flight deliveries a moment to land; anything still
		// pending is journaled and resumes after restart.
		wh.Flush(2 * time.Second)
		if err := wh.Close(); err != nil {
			log.Warn("webhook dispatcher close", "err", err.Error())
		}
		if st != nil {
			if err := st.Close(); err != nil {
				log.Warn("result store close", "err", err.Error())
			}
		}
	}, nil
}

// coordConfig is the optional cluster membership of a worker.
type coordConfig struct {
	url       string
	name      string
	advertise string
	interval  time.Duration
}

// serveMain runs the daemon until SIGTERM/SIGINT, then drains.
func serveMain(log *slog.Logger, addr string, opts serve.Options, cc coordConfig, dc durableConfig) int {
	// Listen before building the server: a cluster worker's ID (derived
	// from the bound address unless -name is set) labels its spans, so a
	// cluster-wide trace shows which worker ran what.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Error(err.Error())
		return obs.CodeError
	}
	id := cc.name
	if id == "" {
		id = "worker-" + sanitizeWorkerID(ln.Addr().String())
	}
	if cc.url != "" {
		opts.ServiceName = id
	}
	closeDurable, err := openDurable(log, dc, &opts)
	if err != nil {
		log.Error(err.Error())
		return obs.CodeError
	}
	srv := serve.NewServer(opts)
	hs := &http.Server{Handler: srv.Handler()}
	log.Info("mtserve listening", "addr", ln.Addr().String())

	// Joining a cluster: the agent registers and heartbeats until drain;
	// all scheduling intelligence stays on the coordinator.
	var agent *cluster.Agent
	if cc.url != "" {
		self := cc.advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		agent = cluster.StartAgent(cc.url, id, self, cc.interval, log)
		log.Info("joined cluster", "coordinator", cc.url, "worker", id, "advertise", self)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case sig := <-sigc:
		log.Info("draining on signal", "signal", fmt.Sprint(sig))
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error(err.Error())
			return obs.CodeError
		}
	}

	// Drain order: stop heartbeating first (the coordinator reroutes new
	// leases), finish simulation work (queued jobs become retriable,
	// /healthz flips to draining), then persist — flush and seal the
	// result store, close the webhook journal with pending deliveries
	// intact — and finally stop the listener so clients can observe
	// their jobs' final state until the very end.
	if agent != nil {
		agent.Stop()
	}
	srv.Drain()
	closeDurable()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)

	if srv.Guard().Degraded() {
		log.Info("exiting degraded: fast engine was benched during this run")
		return obs.CodeDegraded
	}
	log.Info("mtserve exited cleanly")
	return obs.CodeOK
}
