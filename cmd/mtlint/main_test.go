package main

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// runMtlint invokes the driver in process and captures its streams.
func runMtlint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestCleanPackageExitsZero: a real module package with no violations.
func TestCleanPackageExitsZero(t *testing.T) {
	code, stdout, stderr := runMtlint(t, "./internal/report")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no output on a clean package, got:\n%s", stdout)
	}
}

// TestViolationExitsOneWithDiagnostic: a fixture with a stdlibonly
// violation produces the documented file:line: [analyzer] message line and
// exit code 1.
func TestViolationExitsOneWithDiagnostic(t *testing.T) {
	code, stdout, stderr := runMtlint(t, "./internal/lint/testdata/src/stdlibonly/a")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	diagLine := regexp.MustCompile(`^\S*stdlibonly/a/a\.go:\d+: \[stdlibonly\] import "example\.com/third/party" is outside the standard library`)
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("expected exactly one diagnostic, got %d:\n%s", len(lines), stdout)
	}
	if !diagLine.MatchString(lines[0]) {
		t.Errorf("diagnostic %q does not match the file:line: [analyzer] message format", lines[0])
	}
}

// TestProbeGuardThroughCLI: the probeguard fixture's unguarded calls
// surface through the full driver too.
func TestProbeGuardThroughCLI(t *testing.T) {
	code, stdout, _ := runMtlint(t, "./internal/lint/testdata/src/probeguard/a")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "[probeguard] call on obs.Probe value") {
		t.Errorf("missing probeguard diagnostic in:\n%s", stdout)
	}
}

// TestJSONOutput: -json emits the documented schema.
func TestJSONOutput(t *testing.T) {
	code, stdout, stderr := runMtlint(t, "-json", "./internal/lint/testdata/src/stdlibonly/a")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if !strings.HasSuffix(d.File, "a.go") || d.Line <= 0 || d.Col <= 0 ||
		d.Analyzer != "stdlibonly" || !strings.Contains(d.Message, "example.com/third/party") {
		t.Errorf("bad diagnostic fields: %+v", d)
	}
}

// TestJSONCleanIsEmptyArray: -json on a clean package emits [] (not null)
// so downstream tooling can always range over the result.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, stdout, _ := runMtlint(t, "-json", "./internal/report")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// TestUsageErrorsExitTwo: bad flags and unresolvable patterns are usage
// errors, distinct from findings.
func TestUsageErrorsExitTwo(t *testing.T) {
	if code, _, _ := runMtlint(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("unknown flag: exit = %d, want 2", code)
	}
	code, _, stderr := runMtlint(t, "./no/such/package")
	if code != 2 {
		t.Errorf("bad pattern: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "cannot resolve pattern") {
		t.Errorf("bad pattern: stderr %q should name the pattern failure", stderr)
	}
}

// TestAnalyzersListing: -analyzers names the whole catalog.
func TestAnalyzersListing(t *testing.T) {
	code, stdout, _ := runMtlint(t, "-analyzers")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"hotpath", "probeguard", "determinism", "stdlibonly"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("listing is missing analyzer %q:\n%s", name, stdout)
		}
	}
}
