// Command mtlint runs the repo's project-specific static analyzers over
// its packages: hotpath (annotated fast-engine functions must not
// allocate), probeguard (obs.Probe calls must be nil-guarded),
// determinism (no wall clock or global rand in simulation packages, no
// map-ordered output in report packages), stdlibonly (no third-party
// imports), and the concurrency suite — lockguard (no blocking while a
// mutex is held, no leaked locks, consistent acquisition order),
// leakcheck (every goroutine has a provable stop path) and atomiccheck
// (no mixing sync/atomic with plain access). It is the compile-time half
// of the invariants the test suite asserts at runtime.
//
// Usage:
//
//	mtlint [-json|-sarif] [-census] [packages...]
//
// Packages default to ./... (every package under the module root,
// excluding testdata). Diagnostics print one per line as
//
//	file:line: [analyzer] message
//
// A full-registry run also audits suppression directives: any
// //mtlint:allow or //mtlint:oneshot that suppressed nothing is reported
// as [suppressaudit].
//
// -sarif emits SARIF 2.1.0 instead of text/JSON, for CI upload to code
// scanning. -census skips the analyzers and prints the shared-state
// census instead: every struct field reachable from more than one
// concurrency root and what guards it (mutex, atomic, channel,
// immutable, sync, an annotation, or NOTHING — the latter an error).
//
// Exit codes follow the repo's usage-vs-runtime convention: 0 for a clean
// tree, 1 when any diagnostic (or unguarded census entry) is reported, 2
// for usage or load errors (unknown flags, unresolvable patterns,
// packages that do not type-check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the -json output schema, one element per finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	sarifOut := fs.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0 (for CI code-scanning upload)")
	census := fs.Bool("census", false, "print the shared-state census instead of running analyzers; exit 1 on any unguarded shared field")
	listOnly := fs.Bool("analyzers", false, "list registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mtlint [-json|-sarif] [-census] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listOnly {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mtlint: %v\n", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "mtlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "mtlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "mtlint: %v\n", err)
		return 2
	}
	loadFailed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.Errors {
			fmt.Fprintf(stderr, "mtlint: %v\n", terr)
			loadFailed = true
		}
	}
	if loadFailed {
		return 2
	}

	if *census {
		entries := lint.CensusReport(pkgs)
		fmt.Fprint(stdout, lint.FormatCensus(entries))
		unsafe := 0
		for _, e := range entries {
			if e.Unsafe() {
				unsafe++
			}
		}
		if unsafe > 0 {
			fmt.Fprintf(stderr, "mtlint: %d unguarded shared field(s)\n", unsafe)
			return 1
		}
		return 0
	}

	// The full registry always runs, so the suppression audit is sound:
	// a directive no analyzer needed is genuinely stale.
	diags := lint.RunFull(pkgs, lint.All(), loader.ModulePath)
	if *sarifOut {
		if err := lint.WriteSARIF(stdout, diags, root); err != nil {
			fmt.Fprintf(stderr, "mtlint: %v\n", err)
			return 2
		}
	} else if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     relPath(cwd, d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mtlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relPath shortens abs to a cwd-relative path when that is cleaner.
func relPath(cwd, abs string) string {
	if rel, err := filepath.Rel(cwd, abs); err == nil && len(rel) < len(abs) {
		return rel
	}
	return abs
}
