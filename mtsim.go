// Package mtsim reproduces "Impact of Sharing-Based Thread Placement on
// Multithreaded Architectures" (Thekkath & Eggers, ISCA 1994): a
// trace-driven simulator for multithreaded shared-memory multiprocessors,
// a suite of fourteen synthetic parallel applications, static per-thread
// sharing analysis, the paper's thread placement algorithms, and the
// experiment harness that regenerates every table and figure.
//
// The typical pipeline is:
//
//	tr, _ := mtsim.BuildApp("Water", mtsim.DefaultParams())
//	set := mtsim.Analyze(tr)
//	pl, _ := mtsim.Place(set, "SHARE-REFS", 4, 0)
//	res, _ := mtsim.Simulate(tr, pl, mtsim.DefaultConfig(4))
//	fmt.Println(res.ExecTime)
//
// or, for whole experiments, mtsim.NewSuite + the Table/Figure methods.
package mtsim

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported core types. The facade keeps examples and external tooling
// on one import while the implementation stays in focused internal
// packages.
type (
	// Trace is a per-thread memory reference trace.
	Trace = trace.Trace
	// Event is one memory reference.
	Event = trace.Event
	// Recorder builds one thread's reference stream (for custom apps).
	Recorder = trace.Recorder
	// App is a generatable application of the workload suite.
	App = workload.App
	// Params controls workload generation.
	Params = workload.Params
	// Set is the static per-thread analysis of a trace.
	Set = analysis.Set
	// SharingData holds the pairwise sharing matrices fed to placement.
	SharingData = analysis.SharingData
	// Characteristics is a Table 2 row.
	Characteristics = analysis.Characteristics
	// Placement maps threads to processors.
	Placement = placement.Placement
	// Algorithm is a named placement strategy.
	Algorithm = placement.Algorithm
	// Config describes a simulated machine.
	Config = sim.Config
	// Result is a simulation outcome.
	Result = sim.Result
	// Suite orchestrates the paper's experiments.
	Suite = core.Suite
	// Options configures a Suite.
	Options = core.Options
	// SyntheticSpec parameterizes a synthetic workload whose program
	// characteristics (sharing uniformity, sequentiality, length skew)
	// are set directly.
	SyntheticSpec = workload.SyntheticSpec
	// FalseSharingReport classifies shared cache lines as truly or
	// falsely shared.
	FalseSharingReport = analysis.FalseSharingReport
	// WriteRunStats summarizes migratory vs ping-pong write sharing.
	WriteRunStats = sim.WriteRunStats
	// EfficiencyModel is the analytical multithreaded-processor
	// efficiency model (deterministic and MVA variants).
	EfficiencyModel = model.Machine
)

// Reference kinds and miss classification, re-exported.
const (
	Read  = trace.Read
	Write = trace.Write

	Compulsory       = sim.Compulsory
	ConflictIntra    = sim.ConflictIntra
	ConflictInter    = sim.ConflictInter
	InvalidationMiss = sim.InvalidationMiss
)

// SharedBase is the first address of the shared data segment.
const SharedBase = trace.SharedBase

// DefaultParams returns the default workload generation parameters
// (scale 1.0, fixed seed).
func DefaultParams() Params { return workload.DefaultParams() }

// DefaultConfig returns the paper's architectural parameters (Table 3)
// for the given processor count.
func DefaultConfig(processors int) Config { return sim.DefaultConfig(processors) }

// DefaultOptions returns the paper's experiment sweep configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// Applications returns the fourteen-application suite in the paper's
// order.
func Applications() []App { return workload.Apps() }

// AppByName returns the named application.
func AppByName(name string) (App, error) { return workload.ByName(name) }

// BuildApp generates the named application's trace.
func BuildApp(name string, p Params) (*Trace, error) {
	a, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return a.Build(p)
}

// Analyze computes the static per-thread analysis of a trace.
func Analyze(tr *Trace) *Set { return analysis.Analyze(tr) }

// Algorithms returns the names of every static placement algorithm in the
// paper's order (six sharing-based, LOAD-BAL, six "+LB" variants, RANDOM).
func Algorithms() []string { return placement.Names() }

// Place runs the named placement algorithm over the set's sharing data.
// seed is used only by RANDOM.
func Place(set *Set, algorithm string, processors int, seed int64) (*Placement, error) {
	alg, err := placement.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	return alg.Place(set.Sharing(), processors, seed)
}

// PlaceData is Place for callers that already hold the sharing matrices.
func PlaceData(d *SharingData, algorithm string, processors int, seed int64) (*Placement, error) {
	alg, err := placement.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	return alg.Place(d, processors, seed)
}

// Simulate runs the trace on the machine described by cfg under the given
// placement.
func Simulate(tr *Trace, pl *Placement, cfg Config) (*Result, error) {
	return sim.Run(tr, pl, cfg)
}

// NewSuite returns an experiment suite over the given options.
func NewSuite(opts Options) *Suite { return core.NewSuite(opts) }

// NewRecorder returns a recorder appending to thread t of tr, for building
// custom application traces against the same pipeline.
func NewRecorder(tr *Trace, t int) *Recorder { return trace.NewRecorder(tr, t) }

// NewTrace returns an empty trace for a custom application with n threads.
func NewTrace(app string, n int) *Trace { return trace.New(app, n) }

// DefaultSyntheticSpec returns a synthetic workload shaped like the
// paper's suite (uniform, sequential sharing).
func DefaultSyntheticSpec() SyntheticSpec { return workload.DefaultSyntheticSpec() }

// Synthetic returns an App generating traces for the spec, for sweeping
// program characteristics the built-in suite holds fixed.
func Synthetic(spec SyntheticSpec) (App, error) { return workload.Synthetic(spec) }

// KLShare computes the KL-SHARE extension placement: LOAD-BAL refined by
// Kernighan-Lin swaps that reduce cross-processor sharing under a load
// constraint — the library's strongest static sharing optimizer.
func KLShare(set *Set, processors int) (*Placement, error) {
	return placement.KLShare(set.Sharing(), processors, placement.DefaultLoadSlack)
}

// OptimalShare computes the exact sharing-optimal thread-balanced
// placement by branch-and-bound (small thread counts only) — an oracle
// bound on what any static sharing-based placement could achieve.
func OptimalShare(set *Set, processors int) (*Placement, error) {
	return placement.OptimalShare(set.Sharing(), processors)
}

// SimulateDynamic runs the online self-scheduling extension: no static
// placement; processors pull the next queued thread whenever a hardware
// context frees. fifo=false dispatches longest threads first.
func SimulateDynamic(tr *Trace, cfg Config, longestFirst bool) (*Result, error) {
	policy := sim.FIFO
	if longestFirst {
		policy = sim.LongestFirst
	}
	return sim.RunDynamic(tr, cfg, policy)
}
