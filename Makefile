# Standard entry points. `make verify` is the CI tier: static vetting
# (go vet, the project's own mtlint analyzers, gofmt) plus the full test
# suite under the race detector (the Suite's lazy caches and concurrent
# sweeps must stay clean).

GO ?= go

.PHONY: build test verify lint racecheck bench benchsim benchserve benchcluster benchadvise fuzz golden faultcheck servecheck clustercheck tracecheck storecheck advisecheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Project-specific static analysis (see DESIGN.md §8 and `go run
# ./cmd/mtlint -analyzers`): hotpath, probeguard, determinism, stdlibonly
# plus the concurrency suite — lockguard, leakcheck, atomiccheck — and
# the stale-suppression audit. The second run is the shared-state census
# over the serving tier: any shared struct field there with no provable
# guard fails the build.
lint:
	$(GO) run ./cmd/mtlint ./...
	$(GO) run ./cmd/mtlint -census ./internal/serve/... ./internal/store ./internal/retry ./internal/cluster ./internal/obs ./internal/advise

# Race tier: the serving, durability, cluster and telemetry suites under
# the race detector. -short trims the chaos matrix to one scenario so the
# tier stays CI-sized; `make verify` still runs everything under -race at
# full length.
racecheck:
	$(GO) test -race -short ./internal/serve/... ./internal/store ./internal/retry ./cmd/mtserve ./internal/cluster ./internal/obs

verify: faultcheck servecheck clustercheck tracecheck storecheck advisecheck
	$(GO) vet ./...
	$(GO) run ./cmd/mtlint ./...
	$(GO) run ./cmd/mtlint -census ./internal/serve/... ./internal/store ./internal/retry ./internal/cluster ./internal/obs ./internal/advise
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) test -race -timeout 30m ./...

# Service tier (DESIGN.md §10): build mtserve, run the API's differential
# / drain / backpressure tests plus the remote-sweep byte-identity test,
# then a loadgen smoke — an in-process server under 16 concurrent
# clients; it hard-fails on any error or any response diverging from the
# direct library result, and asserts /healthz and /metrics coherence.
servecheck:
	$(GO) build -o /dev/null ./cmd/mtserve
	$(GO) test ./internal/serve/... ./cmd/mtserve
	$(GO) test ./cmd/experiments -run 'TestRemote'
	$(GO) run ./cmd/mtserve -loadgen -clients 16 -rounds 2 >/dev/null

# Regenerate BENCH_serve.json: service throughput/latency under the full
# 64-client load with correctness gating.
benchserve:
	$(GO) run ./cmd/mtserve -loadgen -clients 64 -rounds 4 -bench BENCH_serve.json >/dev/null

# Cluster tier (DESIGN.md §11): build mtcoord, run the coordinator's
# differential suite (cluster sweep vs direct library, both engines),
# the chaos matrix (kill / partition / restart a worker mid-sweep with
# zero lost or duplicated cells), the shard-key goldens, and the
# experiments-level artifact byte-identity test against a coordinator
# with four workers including a kill-one-worker pass.
clustercheck:
	$(GO) build -o /dev/null ./cmd/mtcoord
	$(GO) test ./internal/cluster ./internal/loadgen
	$(GO) test ./cmd/experiments -run 'TestClusterSweepArtifactsMatchLocal'

# Regenerate BENCH_cluster.json: 1->4 worker scaling of the coordinator
# pipeline with byte-identity gating (hard-fails under 3x at 4 workers).
benchcluster:
	$(GO) run ./cmd/mtcoord -bench BENCH_cluster.json -bench-workers 4 >/dev/null

# Telemetry tier (DESIGN.md §7): the obs primitives (log-scale histogram
# goldens and quantiles, bus fan-out with slow-subscriber drop, bounded
# span store, Perfetto export), then the end-to-end contracts — SSE job
# streams deliver the terminal state without polling (with and without
# telemetry enabled), trace IDs propagate coordinator -> worker across
# lease grants and steals, and a kill-one-worker chaos sweep still
# exports a single merged Perfetto trace.
tracecheck:
	$(GO) test ./internal/obs
	$(GO) test ./internal/serve -run 'TestJobEvents|TestTraceEndpoint'
	$(GO) test ./internal/cluster -run 'TestClusterTrace'

# Robustness drills (DESIGN.md §9): the fault-injection matrix (every
# corruption class at every byte offset must be detected, never silently
# simulated), journal crash/resume behaviour, the engine-fallback guard,
# and the kill-and-resume byte-identity test.
faultcheck:
	$(GO) test ./internal/resilience
	$(GO) test ./internal/trace -run 'TestMTT2|TestReadRejects|TestWriteFile'
	$(GO) test ./cmd/experiments -run 'TestKillAndResume|TestResume|TestFreshRun|TestRunDegraded|TestRunStepBudget'

# Durability tier (DESIGN.md "Durable results & delivery"): the MTS1
# store suite (format goldens, recovery, quarantine, compaction,
# write-behind), the retry/backoff core, the webhook dispatcher
# (journaled delivery, breaker, restart resume), the store fault matrix
# (every corrupting class x offset detected, zero silent), and the
# kill -9 warm-restart differential against a real subprocess daemon.
storecheck:
	$(GO) test ./internal/store ./internal/retry ./internal/serve/webhook
	$(GO) test ./internal/resilience -run 'TestStoreFaultMatrix|TestStoreQuarantineMatrix|TestStoreTornTail'
	$(GO) test ./cmd/mtserve -run 'TestKillDashNine'
	$(GO) test ./internal/serve -run 'TestStoreTier|TestWebhook'
	$(GO) test ./internal/cluster -run 'TestClusterStore|TestClusterWebhook'

bench:
	$(GO) test -bench=. -benchmem .

# Online adaptive placement tier (DESIGN.md §16): the advisor package
# (ONLINE name grammar, policies, recommendation math), the engines'
# online differential suite (interval-off == static, cycle for cycle, on
# both engines) and checkpoint round-trips, the guard's online path, the
# /v1/advise API differentials on worker and coordinator, and the phased
# crossover smoke — online must beat the best static placement on the
# phase-changing workload with the migration penalty charged.
advisecheck:
	$(GO) test ./internal/advise
	$(GO) test ./internal/sim -run 'TestOnline|TestCheckpoint|TestRunOnline'
	$(GO) test ./internal/resilience -run 'TestEngineGuardRunOnline'
	$(GO) test ./internal/serve -run 'TestAdvise|TestSimulateOnline|TestSweepOnline'
	$(GO) test ./internal/cluster -run 'TestClusterAdvise'
	$(GO) test -short ./cmd/experiments -run 'TestAdvise'

# Regenerate BENCH_advise.json: the static-vs-online kernel grid through
# /v1/sweep plus the phased-workload migration-cost crossover. Hard-fails
# unless online beats the best static placement somewhere in the swept
# (interval, cost) grid.
benchadvise:
	$(GO) run ./cmd/experiments -advise BENCH_advise.json -scale 0.25

# Regenerate BENCH_sim.json: reference vs fast engine throughput plus the
# memoized-sweep timings.
benchsim:
	$(GO) run ./cmd/experiments -benchsim BENCH_sim.json

# Quick fuzz pass over the simulation engines (CI smoke; crank -fuzztime
# for a real session).
fuzz:
	$(GO) test ./internal/sim -fuzz FuzzEngine -fuzztime 30s

# Re-lock the golden files after an intentional result change.
golden:
	UPDATE_GOLDEN=1 $(GO) test ./internal/core -run TestGolden
