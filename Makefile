# Standard entry points. `make verify` is the CI tier: static vetting plus
# the full test suite under the race detector (the Suite's lazy caches and
# concurrent sweeps must stay clean).

GO ?= go

.PHONY: build test verify bench benchsim fuzz golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate BENCH_sim.json: reference vs fast engine throughput plus the
# memoized-sweep timings.
benchsim:
	$(GO) run ./cmd/experiments -benchsim BENCH_sim.json

# Quick fuzz pass over the simulation engines (CI smoke; crank -fuzztime
# for a real session).
fuzz:
	$(GO) test ./internal/sim -fuzz FuzzEngine -fuzztime 30s

# Re-lock the golden files after an intentional result change.
golden:
	UPDATE_GOLDEN=1 $(GO) test ./internal/core -run TestGolden
