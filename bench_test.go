package mtsim

// One benchmark per table and figure of the paper's evaluation. The
// shared suite memoizes traces, placements and simulation results, so
// benchmarks against it time the memoized sweep (first iteration
// simulates, the rest are served from cache — the workflow a user
// regenerating several figures actually experiences). Benchmarks that
// must keep simulation in the timed path either build a fresh suite per
// iteration (Tables 4 and 5) or call the engines directly
// (BenchmarkSimulateWater4p and the BenchmarkEngine* pair, which compare
// the reference and fast engines on identical cells). Custom metrics
// surface each experiment's headline number next to the timing.
//
// Run with: go test -bench=. -benchmem

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

var benchSuite = sync.OnceValue(func() *core.Suite {
	return core.NewSuite(core.DefaultOptions())
})

// BenchmarkTable1Suite regenerates Table 1: the application-suite summary
// (threads, instruction counts, granularity) for all fourteen programs.
func BenchmarkTable1Suite(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 14 {
			b.Fatalf("%d rows", len(rows))
		}
		_ = core.Table1Report(rows).String()
	}
}

// BenchmarkTable2Characteristics regenerates Table 2: the statically
// measured program characteristics (pairwise/N-way sharing, references per
// shared address, shared-reference percentage, thread lengths).
func BenchmarkTable2Characteristics(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		_ = core.Table2Report(rows).String()
	}
}

// BenchmarkTable3Architecture renders Table 3: the architectural inputs.
func BenchmarkTable3Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if core.Table3Report().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// executionFigure benchmarks one of Figures 2-4 and reports the LOAD-BAL
// vs RANDOM advantage at the largest processor count as a metric.
func executionFigure(b *testing.B, app string) {
	b.Helper()
	s := benchSuite()
	var last *core.Figure
	for i := 0; i < b.N; i++ {
		fig, err := s.ExecutionFigure(app)
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	procs := s.Options().ProcCounts
	if cell := last.Cell("LOAD-BAL", procs[len(procs)-1]); cell != nil {
		b.ReportMetric((1-cell.Normalized)*100, "loadbal_gain_%")
	}
}

// BenchmarkFigure2LocusRoute regenerates Figure 2: LocusRoute execution
// time for every placement algorithm, normalized to RANDOM, across the
// processor sweep.
func BenchmarkFigure2LocusRoute(b *testing.B) { executionFigure(b, "LocusRoute") }

// BenchmarkFigure3FFT regenerates Figure 3: FFT execution time normalized
// to RANDOM (the paper's strongest load-balancing effect, 13-56%).
func BenchmarkFigure3FFT(b *testing.B) { executionFigure(b, "FFT") }

// BenchmarkFigure4BarnesHut regenerates Figure 4: Barnes-Hut execution
// time normalized to RANDOM (uniform thread lengths: no algorithm wins).
func BenchmarkFigure4BarnesHut(b *testing.B) { executionFigure(b, "Barnes-Hut") }

// BenchmarkFigure5MissComponents regenerates Figure 5: the cache-miss
// component breakdown across placements and threads/processor for MP3D,
// reporting the compulsory+invalidation spread across algorithms (the
// paper's invariance claim — smaller is more invariant).
func BenchmarkFigure5MissComponents(b *testing.B) {
	s := benchSuite()
	var cells []core.MissComponentCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = s.MissComponentFigure("MP3D")
		if err != nil {
			b.Fatal(err)
		}
	}
	procs := s.Options().ProcCounts
	b.ReportMetric(core.InvarianceSpread(cells, procs[len(procs)-1]), "comp+inv_spread_per_kiloref")
}

// BenchmarkTable4CoherenceTraffic regenerates Table 4: statically counted
// sharing vs dynamically measured coherence traffic (one thread per
// processor), reporting the mean static/dynamic gap in orders of
// magnitude. A fresh suite per iteration keeps the dynamic measurement in
// the timed path.
func BenchmarkTable4CoherenceTraffic(b *testing.B) {
	var rows []core.Table4Row
	for i := 0; i < b.N; i++ {
		s := core.NewSuite(core.DefaultOptions())
		var err error
		rows, err = s.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	var orders float64
	for _, r := range rows {
		orders += r.OrdersOfMagnitude
	}
	b.ReportMetric(orders/float64(len(rows)), "mean_static/dynamic_10^x")
}

// BenchmarkTable5InfiniteCache regenerates Table 5: the 8 MB
// "infinite-cache" comparison of the best sharing-based and
// coherence-traffic placements against LOAD-BAL, reporting the mean
// best-static ratio (the paper finds ~1.0: sharing gains at most 2%).
func BenchmarkTable5InfiniteCache(b *testing.B) {
	var cells []core.Table5Cell
	for i := 0; i < b.N; i++ {
		s := core.NewSuite(core.DefaultOptions())
		var err error
		cells, err = s.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	var norm float64
	for _, c := range cells {
		norm += c.BestStaticNorm
	}
	b.ReportMetric(norm/float64(len(cells)), "mean_best_static_vs_loadbal")
}

// ---- component micro-benchmarks ----

// BenchmarkSimulateWater4p measures raw simulator throughput on one
// representative configuration; the events/sec metric is references
// processed per second of wall time.
func BenchmarkSimulateWater4p(b *testing.B) {
	s := benchSuite()
	tr, err := s.Trace("Water")
	if err != nil {
		b.Fatal(err)
	}
	pl, err := s.Place("Water", "LOAD-BAL", 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := s.Config("Water", 4, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, pl, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.TotalRefs())*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// benchmarkEngine times one engine on the Figure 2 application's
// LOAD-BAL/8p cell, reporting simulated cycles per second of wall time —
// the before/after number behind BENCH_sim.json.
func benchmarkEngine(b *testing.B, eng sim.Engine) {
	b.Helper()
	s := benchSuite()
	tr, err := s.Trace("LocusRoute")
	if err != nil {
		b.Fatal(err)
	}
	pl, err := s.Place("LocusRoute", "LOAD-BAL", 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := s.Config("LocusRoute", 8, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunEngine(tr, pl, cfg, eng)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecTime
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkEngineReference times the boxed container/heap reference
// engine on LocusRoute LOAD-BAL at 8 processors.
func BenchmarkEngineReference(b *testing.B) { benchmarkEngine(b, sim.ReferenceEngine) }

// probeBenchTrace builds a synthetic trace whose per-thread length varies
// with events but whose working set (16 shared blocks across 4 threads)
// is fixed, so every allocation outside the engines' per-event hot path —
// machine construction, cache and directory slabs, cursors — is identical
// regardless of length.
func probeBenchTrace(events int) *trace.Trace {
	const nThreads = 4
	tr := trace.New("probe-bench", nThreads)
	for i := 0; i < nThreads; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < events; j++ {
			r.Compute(j % 5)
			block := trace.SharedBase + uint64((j+i*3)%16)*sim.DefaultLineSize
			if j%4 == 0 {
				r.Ref(trace.Write, block)
			} else {
				r.Ref(trace.Read, block)
			}
		}
	}
	return tr
}

// BenchmarkEngineProbeDisabled asserts the observability layer's
// zero-cost-when-disabled contract: with no probe attached, the fast
// engine's per-event hot path performs zero allocations. Whole-run alloc
// counts include setup (machine, slabs, cursors), so the assertion
// compares a short against a 10x longer trace over the same working set:
// any per-event allocation would scale with length and break the
// equality. The timed loop then reports throughput for the same runs.
func BenchmarkEngineProbeDisabled(b *testing.B) {
	pl := &placement.Placement{Algorithm: "BENCH", Clusters: [][]int{{0, 1}, {2, 3}}}
	cfg := sim.DefaultConfig(2)
	run := func(tr *trace.Trace) {
		if _, err := sim.RunEngine(tr, pl, cfg, sim.FastEngine); err != nil {
			b.Fatal(err)
		}
	}
	short, long := probeBenchTrace(500), probeBenchTrace(5000)
	allocsShort := testing.AllocsPerRun(5, func() { run(short) })
	allocsLong := testing.AllocsPerRun(5, func() { run(long) })
	if allocsLong != allocsShort {
		b.Fatalf("probe-disabled hot path allocates: %.0f allocs for 500-event threads vs %.0f for 5000 (%.4f allocs per extra event)",
			allocsShort, allocsLong, (allocsLong-allocsShort)/(4*4500))
	}
	b.ReportMetric(0, "hotpath_allocs/event")

	b.ReportAllocs()
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunEngine(long, pl, cfg, sim.FastEngine)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.ExecTime
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkEngineFast times the specialized 4-ary-heap slab engine on the
// same cell; the cycles/s ratio against BenchmarkEngineReference is the
// raw engine speedup.
func BenchmarkEngineFast(b *testing.B) { benchmarkEngine(b, sim.FastEngine) }

// BenchmarkAnalyzeGauss measures the static trace analysis plus sharing-
// matrix construction on the largest-thread-count application.
func BenchmarkAnalyzeGauss(b *testing.B) {
	app, err := workload.ByName("Gauss")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := app.Build(workload.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := Analyze(tr)
		if set.Sharing().NumThreads() != 127 {
			b.Fatal("bad analysis")
		}
	}
}

// BenchmarkPlaceShareRefsGauss measures the SHARE-REFS clustering on the
// 127-thread application — the placement algorithms' worst case.
func BenchmarkPlaceShareRefsGauss(b *testing.B) {
	s := benchSuite()
	d, err := s.Sharing("Gauss")
	if err != nil {
		b.Fatal(err)
	}
	alg, err := placement.ByName("SHARE-REFS")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Place(d, 8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures end-to-end trace generation for the
// whole suite.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, a := range workload.Apps() {
			if _, err := a.Build(workload.DefaultParams()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- ablation benchmarks (design-choice studies from DESIGN.md) ----

// BenchmarkAblationAssociativity regenerates the cache-associativity
// ablation (the paper's suggested fix for inter-thread thrashing),
// reporting the 4-way/direct-mapped execution-time ratio.
func BenchmarkAblationAssociativity(b *testing.B) {
	s := benchSuite()
	var rows []core.AssocRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AssociativitySweep("Patch", "LOAD-BAL", 16, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[2].Normalized, "4way_vs_direct")
}

// BenchmarkAblationContexts regenerates the hardware-context sweep and
// reports the saturated measured efficiency.
func BenchmarkAblationContexts(b *testing.B) {
	s := benchSuite()
	var rows []core.ContextRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.ContextSweep("Water", 4, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].MeasuredEfficiency, "saturated_efficiency")
}

// BenchmarkAblationUniformity regenerates the sharing-uniformity sweep and
// reports how much of RANDOM's invalidation misses SHARE-REFS recovers in
// the pairwise-sharing regime (uniformity 0).
func BenchmarkAblationUniformity(b *testing.B) {
	s := benchSuite()
	var rows []core.UniformityRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.UniformitySweep([]float64{1.0, 0.5, 0.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	if last.RandomInvPerKilo > 0 {
		b.ReportMetric(1-last.ShareRefsInvPerKilo/last.RandomInvPerKilo, "inv_recovered_at_u0")
	}
}

// BenchmarkWriteRunStudy regenerates the §4.2 write-run measurement for
// the whole suite and reports FFT's migratory percentage (paper: 73%).
func BenchmarkWriteRunStudy(b *testing.B) {
	s := benchSuite()
	var rows []core.WriteRunRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.WriteRunStudy(workload.Names())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "FFT" {
			b.ReportMetric(r.Stats.MigratoryPct(), "fft_migratory_%")
		}
	}
}

// BenchmarkAblationProtocol regenerates the coherence-protocol comparison
// and reports the update/invalidate execution-time ratio for LOAD-BAL.
func BenchmarkAblationProtocol(b *testing.B) {
	s := benchSuite()
	var rows []core.ProtocolRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.ProtocolComparison("Fullconn", 8, []string{"LOAD-BAL"})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) == 2 && rows[0].ExecTime > 0 {
		b.ReportMetric(float64(rows[1].ExecTime)/float64(rows[0].ExecTime), "update_vs_invalidate")
	}
}

// BenchmarkAblationLatency regenerates the memory-latency sweep and
// reports the LOAD-BAL gain at the longest latency (the conclusion must
// survive slow memory).
func BenchmarkAblationLatency(b *testing.B) {
	s := benchSuite()
	var rows []core.LatencyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.LatencySweep("FFT", 8, []uint64{10, 50, 200})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].LoadBalGain, "loadbal_gain_at_200cy_%")
}

// BenchmarkAblationContention regenerates the interconnect-contention
// sweep and reports the single-channel slowdown.
func BenchmarkAblationContention(b *testing.B) {
	s := benchSuite()
	var rows []core.ContentionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.ContentionSweep("MP3D", "LOAD-BAL", 16, []int{0, 1, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].Normalized, "one_channel_slowdown")
}

// BenchmarkAblationDynamic regenerates the static-vs-online-scheduling
// comparison and reports dynamic FIFO's execution time relative to the
// oracle static LOAD-BAL on FFT.
func BenchmarkAblationDynamic(b *testing.B) {
	s := benchSuite()
	var rows []core.DynamicRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.DynamicComparison([]string{"FFT", "Gauss"}, 8, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.App == "FFT" {
			b.ReportMetric(r.DynamicFIFONorm, "fft_dynamic_vs_loadbal")
		}
	}
}
