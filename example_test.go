package mtsim_test

// Testable documentation examples for the public facade.

import (
	"fmt"
	"log"

	mtsim "repro"
)

// The canonical four-step pipeline: generate a trace, analyze it, place
// the threads, simulate.
func Example() {
	tr, err := mtsim.BuildApp("Cholesky", mtsim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	set := mtsim.Analyze(tr)
	pl, err := mtsim.Place(set, "LOAD-BAL", 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mtsim.Simulate(tr, pl, mtsim.DefaultConfig(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Algorithm, res.ExecTime > 0)
	// Output: LOAD-BAL true
}

// Applications enumerates the paper's fourteen-program suite.
func ExampleApplications() {
	apps := mtsim.Applications()
	fmt.Println(len(apps), apps[0].Name, apps[13].Name)
	// Output: 14 LocusRoute Gauss
}

// Algorithms lists every placement algorithm of the paper's §2.
func ExampleAlgorithms() {
	algs := mtsim.Algorithms()
	fmt.Println(algs[0], algs[6], algs[len(algs)-1])
	// Output: SHARE-REFS LOAD-BAL RANDOM
}

// Custom applications record their references through a Recorder and run
// through the same pipeline as the built-in suite.
func ExampleNewRecorder() {
	tr := mtsim.NewTrace("mini", 2)
	for t := 0; t < 2; t++ {
		r := mtsim.NewRecorder(tr, t)
		r.Compute(10)
		r.Load(mtsim.SharedBase)   // a shared word
		r.Store(uint64(t+1) << 20) // a private word
	}
	fmt.Println(tr.NumThreads(), tr.TotalRefs())
	// Output: 2 4
}

// The analytical models predict processor efficiency from three machine
// parameters; one context on the paper's machine with a 10-cycle run
// length is busy 10 of every 66 cycles.
func ExampleEfficiencyModel() {
	m := mtsim.EfficiencyModel{RunLength: 10, Latency: 50, SwitchCost: 6}
	fmt.Printf("%.3f %.3f\n", m.EfficiencyDeterministic(1), m.Saturation())
	// Output: 0.152 0.625
}

// Synthetic workloads expose the program characteristics the paper's
// conclusion rests on as direct knobs.
func ExampleSynthetic() {
	spec := mtsim.DefaultSyntheticSpec()
	spec.Threads = 8
	spec.Uniformity = 0 // pairwise sharing: the regime the paper's suite lacks
	app, err := mtsim.Synthetic(spec)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := app.Build(mtsim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.NumThreads() == 8, tr.TotalRefs() > 0)
	// Output: true true
}
