// Customapp shows how to drive the full pipeline with your own parallel
// program instead of the built-in suite: record each thread's memory
// references through a Recorder, then analyze, place and simulate exactly
// as for the paper's workload.
//
// The example program is a tiny producer/consumer ring: thread i produces
// into a shared buffer segment that thread i+1 consumes, with private
// bookkeeping in between. Rings have strongly *pairwise* sharing — the
// best case for SHARE-REFS — so this example also demonstrates when
// sharing-based placement can matter at all: SHARE-REFS co-locates ring
// neighbours and genuinely cuts invalidation misses, unlike the uniformly
// sharing applications of the paper's suite.
//
// Run with: go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	mtsim "repro"
)

const (
	threads  = 16
	segWords = 64
	rounds   = 300
)

func buildRing() *mtsim.Trace {
	tr := mtsim.NewTrace("ring", threads)
	for i := 0; i < threads; i++ {
		r := mtsim.NewRecorder(tr, i)
		mySeg := mtsim.SharedBase + uint64(i)*segWords*8
		nextSeg := mtsim.SharedBase + uint64((i+1)%threads)*segWords*8
		private := uint64(i+1) << 20

		for round := 0; round < rounds; round++ {
			// Produce: fill our segment.
			for w := 0; w < 8; w++ {
				r.Compute(4)
				r.Store(mySeg + uint64((round*8+w)%segWords)*8)
			}
			// Consume: drain the neighbour's segment.
			for w := 0; w < 8; w++ {
				r.Load(nextSeg + uint64((round*8+w)%segWords)*8)
				r.Compute(3)
			}
			// Private bookkeeping.
			r.Store(private + uint64(round%32)*8)
			r.Compute(10)
		}
	}
	return tr
}

func main() {
	tr := buildRing()
	if err := tr.Validate(); err != nil {
		log.Fatal(err)
	}
	set := mtsim.Analyze(tr)
	c := set.Characteristics(nil)
	fmt.Printf("ring: %d threads, %.1f%% shared references, pairwise sharing dev %.0f%%\n\n",
		threads, c.PctSharedRefs, c.Pairwise.Dev)

	const procs = 4
	cfg := mtsim.DefaultConfig(procs)
	fmt.Printf("%-12s %12s %14s\n", "algorithm", "exec time", "invalidation misses")
	for _, alg := range []string{"SHARE-REFS", "MIN-SHARE", "RANDOM"} {
		pl, err := mtsim.Place(set, alg, procs, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mtsim.Simulate(tr, pl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12d %14d\n", alg, res.ExecTime,
			res.Totals().Misses[mtsim.InvalidationMiss])
	}
	fmt.Println("\nWith pairwise (non-uniform) sharing, SHARE-REFS co-locates ring")
	fmt.Println("neighbours and eliminates their invalidation traffic — the effect")
	fmt.Println("the paper went looking for, absent from its uniformly-sharing suite.")
}
