// Quickstart: the library's four-step pipeline on one application.
//
// It generates the Water trace, analyzes its per-thread sharing, computes
// three placements (sharing-based, load-balanced, random), simulates each
// on a 4-processor multithreaded machine, and prints the paper's key
// comparison: execution time and the miss components that sharing-based
// placement was supposed to reduce — and doesn't.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	mtsim "repro"
)

func main() {
	// 1. Generate the application trace (a stand-in for the paper's
	// MPtrace output).
	tr, err := mtsim.BuildApp("Water", mtsim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d threads, %d references\n\n", tr.App, tr.NumThreads(), tr.TotalRefs())

	// 2. Statically analyze the per-thread traces.
	set := mtsim.Analyze(tr)

	// 3+4. Place and simulate under three algorithms.
	const procs = 4
	cfg := mtsim.DefaultConfig(procs)

	fmt.Printf("%-12s %12s %12s %12s %14s\n", "algorithm", "exec time", "compulsory", "invalidation", "conflict misses")
	for _, alg := range []string{"SHARE-REFS", "LOAD-BAL", "RANDOM"} {
		pl, err := mtsim.Place(set, alg, procs, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mtsim.Simulate(tr, pl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tot := res.Totals()
		fmt.Printf("%-12s %12d %12d %12d %14d\n", alg, res.ExecTime,
			tot.Misses[mtsim.Compulsory], tot.Misses[mtsim.InvalidationMiss],
			tot.Misses[mtsim.ConflictIntra]+tot.Misses[mtsim.ConflictInter])
	}

	fmt.Println("\nNote how compulsory and invalidation misses barely move across")
	fmt.Println("placements — the paper's central (negative) result.")
}
