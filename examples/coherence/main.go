// Coherence reproduces the paper's §4.2 probe for one application: it
// compares the *statically counted* inter-thread shared references against
// the coherence traffic *dynamically measured* by a one-thread-per-
// processor simulation — the one-to-three orders-of-magnitude gap that
// explains why sharing-based placement has nothing to gain.
//
// Run with:
//
//	go run ./examples/coherence           # defaults to Barnes-Hut
//	go run ./examples/coherence Gauss
package main

import (
	"fmt"
	"log"
	"os"

	mtsim "repro"
)

func main() {
	app := "Barnes-Hut"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	suite := mtsim.NewSuite(mtsim.DefaultOptions())

	d, err := suite.Sharing(app)
	if err != nil {
		log.Fatal(err)
	}
	matrix, res, err := suite.CoherenceMeasurement(app)
	if err != nil {
		log.Fatal(err)
	}

	n := d.NumThreads()
	var static, dynamic, pairs float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			static += float64(d.SharedRefs[i][j])
			dynamic += float64(matrix[i][j])
			pairs++
		}
	}
	tot := res.Totals()

	fmt.Printf("%s (%d threads, one per processor)\n\n", app, n)
	fmt.Printf("static shared references per thread pair (trace analysis): %10.1f\n", static/pairs)
	fmt.Printf("dynamic coherence traffic per thread pair  (simulation):   %10.1f\n", dynamic/pairs)
	if dynamic > 0 {
		fmt.Printf("over-estimate by static analysis:                          %9.0fx\n\n", static/dynamic)
	} else {
		fmt.Printf("over-estimate by static analysis:                          infinite\n\n")
	}
	fmt.Printf("total references:      %10d\n", tot.Refs)
	fmt.Printf("compulsory misses:     %10d (%.2f%%)\n", tot.Misses[mtsim.Compulsory],
		float64(tot.Misses[mtsim.Compulsory])/float64(tot.Refs)*100)
	fmt.Printf("invalidation misses:   %10d (%.2f%%)\n", tot.Misses[mtsim.InvalidationMiss],
		float64(tot.Misses[mtsim.InvalidationMiss])/float64(tot.Refs)*100)
	fmt.Printf("invalidations sent:    %10d (%.2f%%)\n", tot.InvalidationsSent,
		float64(tot.InvalidationsSent)/float64(tot.Refs)*100)

	fmt.Println("\nStatic per-thread trace counts carry no cross-processor temporal")
	fmt.Println("information: a location referenced a thousand times shows up as a")
	fmt.Println("thousand 'shared references', yet produces interconnect traffic only")
	fmt.Println("when ownership actually moves — which sequential sharing makes rare.")
}
