// Placementstudy reproduces a Figure 2/3/4-style experiment for any
// application: every placement algorithm across the paper's processor
// sweep, normalized to RANDOM, rendered as a bar chart.
//
// Run with:
//
//	go run ./examples/placementstudy            # defaults to FFT
//	go run ./examples/placementstudy LocusRoute
package main

import (
	"fmt"
	"log"
	"os"

	mtsim "repro"
)

func main() {
	app := "FFT"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	suite := mtsim.NewSuite(mtsim.DefaultOptions())
	fig, err := suite.ExecutionFigure(app)
	if err != nil {
		log.Fatal(err)
	}
	if err := fig.Chart(fmt.Sprintf("Execution time for %s", app)).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Summarize the LOAD-BAL vs RANDOM speedups the paper headlines
	// (17-42% for LocusRoute, 13-56% for FFT).
	fmt.Println()
	for _, procs := range suite.Options().ProcCounts {
		cell := fig.Cell("LOAD-BAL", procs)
		if cell == nil {
			continue
		}
		fmt.Printf("%2d processors: LOAD-BAL runs %5.1f%% faster than RANDOM\n",
			procs, (1-cell.Normalized)*100)
	}
}
