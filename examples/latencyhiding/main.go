// Latencyhiding studies the mechanism multithreaded architectures exist
// for: hiding memory latency by switching among hardware contexts. It
// sweeps the per-processor context cap for one application and compares
// the simulator's measured processor efficiency against the two analytical
// models from the paper's related work (§5) — the deterministic
// two-regime bound (Weber & Gupta style) and the machine-repairman
// queueing model (Saavedra-Barrera style) — fitted from the run's own
// mean run length.
//
// Run with:
//
//	go run ./examples/latencyhiding          # defaults to Water
//	go run ./examples/latencyhiding Pverify
package main

import (
	"fmt"
	"log"
	"os"

	mtsim "repro"
)

func main() {
	app := "Water"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	tr, err := mtsim.BuildApp(app, mtsim.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	set := mtsim.Analyze(tr)
	const procs = 4
	pl, err := mtsim.Place(set, "LOAD-BAL", procs, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d processors, LOAD-BAL placement\n\n", app, procs)
	fmt.Printf("%9s %12s %13s %15s %9s\n", "contexts", "exec time", "measured eff", "deterministic", "MVA")

	for _, contexts := range []int{1, 2, 3, 4, 6, 8} {
		cfg := mtsim.DefaultConfig(procs)
		cfg.MaxContexts = contexts
		res, err := mtsim.Simulate(tr, pl, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tot := res.Totals()
		measured := float64(tot.Busy) / float64(tot.Busy+tot.Switch+tot.Idle)

		// Fit the analytical machine from this run: mean useful cycles
		// between blocking memory transactions.
		transactions := tot.TotalMisses() + tot.Upgrades
		if transactions == 0 {
			transactions = 1
		}
		m := mtsim.EfficiencyModel{
			RunLength:  float64(tot.Busy) / float64(transactions),
			Latency:    float64(cfg.MemLatency),
			SwitchCost: float64(cfg.SwitchCycles),
		}
		fmt.Printf("%9d %12d %13.3f %15.3f %9.3f\n",
			contexts, res.ExecTime, measured,
			m.EfficiencyDeterministic(contexts), m.EfficiencyMVA(contexts))
	}

	fmt.Println("\nEfficiency saturates once enough contexts cover the 50-cycle")
	fmt.Println("latency — the multithreading payoff the paper's architecture buys,")
	fmt.Println("independent of which threads are co-located.")
}
