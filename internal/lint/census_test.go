package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// censusEntries runs the census over the fixture package and indexes the
// entries by Type.Field.
func censusEntries(t *testing.T, pkgPaths ...string) map[string]lint.CensusEntry {
	t.Helper()
	pkgs, _ := linttest.Load(t, pkgPaths...)
	out := make(map[string]lint.CensusEntry)
	for _, e := range lint.CensusReport(pkgs) {
		out[e.Type+"."+e.Field] = e
	}
	return out
}

// TestCensusFixture pins the classifier on one struct per guard class,
// including the two precision cases: a caller-holds-lock helper
// (inherited lock context) and a value-receiver defaults normalizer
// (stack-copy writes must not count).
func TestCensusFixture(t *testing.T) {
	entries := censusEntries(t, "census/a")

	want := map[string]string{
		"Counter.mu":        "sync",
		"Counter.n":         "mutex(Counter.mu)",
		"Counter.evictions": "mutex(Counter.mu)", // via inherited lock context
		"Bare.hits":         "NOTHING",
		"Opts.Depth":        "immutable", // withDefaults writes a stack copy
		"Server.done":       "channel",
		"Server.flag":       "atomic",
		"Server.opts":       "immutable",
		"Rec.buf":           "annotated:external", // type-level directive
		"Pub.result":        "annotated:immutable",
		"Pub.done":          "channel",
	}
	for field, guard := range want {
		e, ok := entries[field]
		if !ok {
			t.Errorf("census: no entry for %s (entries: %v)", field, keys(entries))
			continue
		}
		if e.Guard != guard {
			t.Errorf("census: %s classified %q, want %q", field, e.Guard, guard)
		}
		if e.Roots < 2 {
			t.Errorf("census: %s reported with %d roots; shared fields need >= 2", field, e.Roots)
		}
	}

	bare := entries["Bare.hits"]
	if !bare.Unsafe() {
		t.Errorf("census: Bare.hits should be Unsafe, got guard %q", bare.Guard)
	}
	if len(bare.Unguarded) == 0 {
		t.Errorf("census: Bare.hits has no recorded unguarded sites")
	}
	for field, e := range entries {
		if e.Unsafe() && field != "Bare.hits" {
			t.Errorf("census: unexpected unsafe field %s (%q)", field, e.Guard)
		}
	}
}

// TestCensusDeterministic asserts the rendered report is byte-identical
// across runs — the analysis fans out per package, so the report order
// must come from sorting, not scheduling.
func TestCensusDeterministic(t *testing.T) {
	pkgs, _ := linttest.Load(t, "census/a")
	first := lint.FormatCensus(lint.CensusReport(pkgs))
	for i := 0; i < 3; i++ {
		if got := lint.FormatCensus(lint.CensusReport(pkgs)); got != first {
			t.Fatalf("census report differs between runs:\n--- first\n%s\n--- run %d\n%s", first, i+2, got)
		}
	}
	if !strings.Contains(first, "census/a\n") {
		t.Errorf("report is missing the package header:\n%s", first)
	}
}

// TestCensusServingTierClean is the acceptance regression for the serving
// tier: the census over internal/serve (and its durable store, webhook
// dispatcher and retry core), internal/cluster and internal/obs must
// report zero unguarded shared fields. A new unguarded field is a
// build-stopping event, not a dashboard number.
func TestCensusServingTierClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the serving tier; skipped in -short")
	}
	pkgs, _ := linttest.Load(t,
		"repro/internal/serve", "repro/internal/serve/rescache", "repro/internal/serve/client",
		"repro/internal/serve/webhook", "repro/internal/store", "repro/internal/retry",
		"repro/internal/cluster", "repro/internal/obs")
	entries := lint.CensusReport(pkgs)
	if len(entries) == 0 {
		t.Fatal("census reported no shared fields at all in the serving tier; the walk is broken")
	}
	for _, e := range entries {
		if e.Unsafe() {
			t.Errorf("unguarded shared field %s.%s.%s (sites: %v)", e.Pkg, e.Type, e.Field, e.Unguarded)
		}
	}
}

func keys(m map[string]lint.CensusEntry) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
