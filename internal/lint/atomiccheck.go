package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomiccheck enforces all-or-nothing atomicity per field. A struct
// field that is ever accessed through sync/atomic (atomic.AddInt64,
// atomic.LoadUint32, ...) must never be read or written plainly
// anywhere else in the package: the plain access races with the atomic
// ones, and the race detector only catches it when both sides actually
// collide at runtime. Fields of the modern atomic.* wrapper types
// (atomic.Bool, atomic.Int64, atomic.Value, ...) are checked the
// complementary way: they must only be used through their method set —
// assigning or copying the wrapper bypasses the atomicity it exists to
// provide.
var Atomiccheck = &Analyzer{
	Name: "atomiccheck",
	Doc:  "a field touched via sync/atomic must never be read/written plainly elsewhere",
	Run:  runAtomiccheck,
}

func runAtomiccheck(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: fields whose address is taken by a sync/atomic call.
	atomicFields := make(map[string]token.Pos) // field key -> first atomic use
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if key := fieldKey(info, sel); key != "" {
					if _, seen := atomicFields[key]; !seen {
						atomicFields[key] = call.Pos()
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag plain accesses to those fields, and by-value uses of
	// atomic.* wrapper fields.
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := fieldKey(info, sel)
			if key == "" {
				return true
			}
			if pos, isAtomic := atomicFields[key]; isAtomic {
				if !isAtomicOperand(info, stack) {
					pass.Reportf(sel.Pos(), "%s is accessed atomically (%s) but read/written plainly here",
						types.ExprString(sel), pass.Pkg.Fset.Position(pos))
				}
				return true
			}
			if isAtomicWrapperType(info.TypeOf(sel)) && !isWrapperMethodUse(stack) {
				pass.Reportf(sel.Pos(), "atomic field %s used by value; assigning or copying it bypasses its atomic API",
					types.ExprString(sel))
			}
			return true
		})
	}
}

// isAtomicCall reports whether call is a sync/atomic package function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic"
}

// fieldKey returns the (named struct type, field) identity of a field
// selection, or "" when sel is not a struct field access.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
}

// isAtomicOperand reports whether the innermost ancestors are
// `&field` passed directly to a sync/atomic call.
func isAtomicOperand(info *types.Info, stack []ast.Node) bool {
	// stack is outermost-first; walk from the selector outward, skipping
	// parens.
	i := len(stack) - 1
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	u, ok := stack[i].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return false
	}
	for i--; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	call, ok := stack[i].(*ast.CallExpr)
	return ok && isAtomicCall(info, call)
}

// isAtomicWrapperType reports whether t is one of sync/atomic's wrapper
// types (atomic.Bool, atomic.Int32/64, atomic.Uint32/64, atomic.Uintptr,
// atomic.Pointer[T], atomic.Value). A *pointer* to a wrapper is not a
// wrapper: copying the pointer preserves atomicity.
func isAtomicWrapperType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isWrapperMethodUse reports whether the selector's parent is a method
// selection (s.flag.Store) or an address-of (&s.flag) — the legitimate
// ways to touch an atomic wrapper field.
func isWrapperMethodUse(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			// s.flag.Store(...): the wrapper selector is the X of a method
			// selector.
			return true
		case *ast.UnaryExpr:
			return stack[i].(*ast.UnaryExpr).Op == token.AND
		default:
			return false
		}
	}
	return false
}
