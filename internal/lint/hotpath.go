package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath checks that functions annotated `//mtlint:hotpath` contain no
// allocating constructs. The fast engine's per-event path (fast.go,
// heap4.go, fastcache.go, fastdir.go) must stay allocation-free — the
// dynamic counterpart is BenchmarkEngineProbeDisabled's AllocsPerRun
// proof; this is the static half of the same contract.
//
// Flagged constructs: make / new, function literals (closures), address-of
// composite literals, slice and map literals, conversions to interface
// types, string<->[]byte/[]rune conversions, string concatenation, calls
// into package fmt, and go / defer statements. Struct and array *value*
// literals are allowed (they are stores, not allocations), as is append
// into a caller-owned scratch buffer — the engines' amortized-growth
// idiom. The check is intraprocedural: callees are not followed, so every
// function on the hot path needs its own annotation.
//
// A legitimate allocation inside an annotated function is waived with
// `//mtlint:allow hotpath -- reason` on the offending line.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//mtlint:hotpath functions must not contain allocating constructs",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "//mtlint:hotpath") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal allocates a closure in hot-path function %s", fd.Name.Name)
			return false // the literal's body is the closure's problem

		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot-path function %s", fd.Name.Name)

		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot-path function %s", fd.Name.Name)

		case *ast.CompositeLit:
			checkHotComposite(pass, fd, n, stack, info)

		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot-path function %s", fd.Name.Name)
			}

		case *ast.CallExpr:
			checkHotCall(pass, fd, n, info)
		}
		return true
	})
}

// checkHotComposite flags composite literals that allocate: slice and map
// literals (heap-backed storage) and literals whose address is taken.
// Struct/array value literals written into existing memory are allowed.
func checkHotComposite(pass *Pass, fd *ast.FuncDecl, lit *ast.CompositeLit, stack []ast.Node, info *types.Info) {
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
			pass.Reportf(u.Pos(), "address of composite literal escapes in hot-path function %s", fd.Name.Name)
			return
		}
	}
	switch info.TypeOf(lit).Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "slice literal allocates in hot-path function %s", fd.Name.Name)
	case *types.Map:
		pass.Reportf(lit.Pos(), "map literal allocates in hot-path function %s", fd.Name.Name)
	}
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, info *types.Info) {
	// Builtins make and new.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "call to %s allocates in hot-path function %s", b.Name(), fd.Name.Name)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if types.IsInterface(target.Underlying()) {
			pass.Reportf(call.Pos(), "conversion to interface type %s allocates in hot-path function %s", types.TypeString(target, types.RelativeTo(pass.Pkg.Types)), fd.Name.Name)
			return
		}
		if len(call.Args) == 1 {
			src := info.TypeOf(call.Args[0])
			if stringBytesConversion(src, target) {
				pass.Reportf(call.Pos(), "string/slice conversion copies and allocates in hot-path function %s", fd.Name.Name)
			}
		}
		return
	}

	// Calls into package fmt.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "call to fmt.%s allocates in hot-path function %s", sel.Sel.Name, fd.Name.Name)
			}
		}
	}
}

// stringBytesConversion reports whether converting src to dst copies a
// string or byte/rune slice (string([]byte), []byte(string), etc.).
func stringBytesConversion(src, dst types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
