package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF output (Static Analysis Results Interchange Format, v2.1.0) —
// the subset GitHub code scanning consumes, so mtlint findings can
// annotate pull requests inline. The writer is deterministic: rules are
// sorted by id and results arrive pre-sorted from Run.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log. File paths are
// made relative to root (the repository checkout GitHub resolves
// against) and slash-normalized.
func WriteSARIF(w io.Writer, diags []Diagnostic, root string) error {
	ruleDocs := make(map[string]string)
	for _, a := range All() {
		ruleDocs[a.Name] = a.Doc
	}
	ruleDocs["suppressaudit"] = "suppression directives must suppress something"

	ruleSet := make(map[string]bool)
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ruleSet[d.Analyzer] = true
		uri := d.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	var rules []sarifRule
	for id := range ruleSet {
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: ruleDocs[id]}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "mtlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
