package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRootForTest(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found")
		}
		dir = parent
	}
}

// TestLoaderLoadsModulePackage checks the from-scratch loader end to end
// on a real module package: files parsed, types resolved, zero type
// errors, module-internal and stdlib imports both reachable.
func TestLoaderLoadsModulePackage(t *testing.T) {
	l, err := NewLoader(moduleRootForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("repro/internal/report")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "repro/internal/report" {
		t.Errorf("path = %q", pkg.Path)
	}
	if len(pkg.Errors) != 0 {
		t.Fatalf("type errors: %v", pkg.Errors)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Table") == nil {
		t.Error("type information missing: report.Table not in package scope")
	}
	if len(pkg.Unresolved) != 0 {
		t.Errorf("unexpected unresolved imports: %v", pkg.Unresolved)
	}
}

// TestLoaderWalkSkipsTestdata ensures ./... never descends into testdata
// (fixture packages must not leak into a real lint run).
func TestLoaderWalkSkipsTestdata(t *testing.T) {
	l, err := NewLoader(moduleRootForTest(t))
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := l.walkPackageDirs(l.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("walk returned testdata dir %s", d)
		}
	}
	if len(dirs) < 10 {
		t.Errorf("walk found only %d package dirs; expected the whole module", len(dirs))
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"//mtlint:allow hotpath", []string{"hotpath"}},
		{"//mtlint:allow hotpath -- amortized growth", []string{"hotpath"}},
		{"//mtlint:allow hotpath,determinism", []string{"hotpath", "determinism"}},
		{"//mtlint:allow  determinism  -- reason text", []string{"determinism"}},
		{"//mtlint:allow", nil},
		{"// mtlint:allow hotpath", nil}, // directives take no space after //
		{"//mtlint:hotpath", nil},
		{"// ordinary comment", nil},
	}
	for _, c := range cases {
		got, ok := parseAllow(c.in)
		if (len(c.want) > 0) != ok {
			t.Errorf("parseAllow(%q) ok = %v", c.in, ok)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseAllow(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "internal/sim/fast.go", Line: 42, Column: 7},
		Analyzer: "hotpath",
		Message:  "call to make allocates in hot-path function access",
	}
	want := "internal/sim/fast.go:42: [hotpath] call to make allocates in hot-path function access"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

func TestPathSuffixMatch(t *testing.T) {
	cases := []struct {
		path, suffix string
		want         bool
	}{
		{"repro/internal/sim", "internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"determinism/internal/sim", "internal/sim", true},
		{"repro/internal/simx", "internal/sim", false},
		{"repro/xinternal/sim", "internal/sim", false},
		{"repro/internal/obs/obstest", "internal/obs", false},
	}
	for _, c := range cases {
		if got := pathSuffixMatch(c.path, c.suffix); got != c.want {
			t.Errorf("pathSuffixMatch(%q, %q) = %v, want %v", c.path, c.suffix, got, c.want)
		}
	}
}

func TestIsStdlibPath(t *testing.T) {
	for path, want := range map[string]bool{
		"fmt":                  true,
		"math/rand":            true,
		"encoding/csv":         true,
		"golang.org/x/tools":   false,
		"example.com/dep":      false,
		"github.com/user/repo": false,
	} {
		if got := isStdlibPath(path); got != want {
			t.Errorf("isStdlibPath(%q) = %v, want %v", path, got, want)
		}
	}
}
