// Package a exercises the leakcheck analyzer: every spawned goroutine
// with an unconditional loop needs a provable stop path or an explicit
// //mtlint:oneshot annotation.
package a

import (
	"context"
	"time"
)

type W struct {
	stop chan struct{}
	work chan int
	n    int
}

// No exit at all: the loop can never stop.
func (w *W) spinner() {
	go func() {
		for { // want `goroutine loop has no exit path`
			time.Sleep(time.Millisecond)
		}
	}()
}

// Exits exist, but none consults anything outside the goroutine.
func (w *W) localOnly() {
	go func() {
		done := false
		for { // want `goroutine loop has no provable stop path`
			if done {
				return
			}
		}
	}()
}

// Done-channel select: provable.
func (w *W) doneChannel() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case v := <-w.work:
				w.n += v
			}
		}
	}()
}

// Context consulted each iteration: provable.
func (w *W) ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			w.n++
		}
	}()
}

type queue struct{ ch chan int }

func (q *queue) pop() (int, bool) {
	v, ok := <-q.ch
	return v, ok
}

// Worker idiom: the exit condition reads a local assigned from a call.
func (w *W) workerIdiom(q *queue) {
	go func() {
		for {
			v, ok := q.pop()
			if !ok {
				return
			}
			w.n += v
		}
	}()
}

// Conditional loops carry their stop path in the condition.
func (w *W) condLoop() {
	go func() {
		for w.n < 10 {
			w.n++
		}
	}()
}

// Range over a channel stops when the channel closes.
func (w *W) drain() {
	go func() {
		for v := range w.work {
			w.n += v
		}
	}()
}

// Break guarded by a field read: provable.
func (w *W) breakOnField() {
	go func() {
		for {
			if w.n > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}()
}

// An unguarded return makes the loop terminate on its first iteration.
func (w *W) runsOnce() {
	go func() {
		for {
			w.n++
			return
		}
	}()
}

// Loop-free goroutines are one-shots by construction.
func (w *W) oneshotByConstruction() {
	go func() {
		w.work <- 1
	}()
}

// The named function spawned by spawnNamed is flagged at its loop.
func (w *W) loop() {
	for { // want `goroutine loop has no exit path`
		time.Sleep(time.Millisecond)
	}
}

func (w *W) spawnNamed() {
	go w.loop()
}

// Annotated spawn: deliberate run-to-completion.
func (w *W) annotatedSpin() {
	//mtlint:oneshot -- drains until process exit by design
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

// pump runs for the life of the process.
//
//mtlint:oneshot -- lifetime equals process lifetime
func (w *W) pump() {
	for {
		time.Sleep(time.Millisecond)
	}
}

func (w *W) spawnPump() {
	go w.pump()
}
