// Package a exercises the atomiccheck analyzer: a field touched via
// sync/atomic must never be read or written plainly, and atomic.*
// wrapper fields must only be used through their method set.
package a

import "sync/atomic"

type C struct {
	hits  int64
	drops int64
	flag  atomic.Bool
	n     int64
}

func (c *C) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *C) load() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *C) mixed() int64 {
	c.hits++      // want `c\.hits is accessed atomically \(.*\) but read/written plainly here`
	return c.hits // want `c\.hits is accessed atomically \(.*\) but read/written plainly here`
}

// A field never touched atomically may be used plainly.
func (c *C) plainOnly() {
	c.n++
}

func (c *C) swapDrops(v int64) int64 {
	return atomic.SwapInt64(&c.drops, v)
}

func (c *C) readDrops() int64 {
	return c.drops // want `c\.drops is accessed atomically \(.*\) but read/written plainly here`
}

func (c *C) flagOK() bool {
	c.flag.Store(true)
	return c.flag.Load()
}

// Taking the wrapper's address is fine (pointer use keeps atomicity).
func (c *C) flagPtr() *atomic.Bool {
	return &c.flag
}

func (c *C) flagBad() {
	c.flag = atomic.Bool{} // want `atomic field c\.flag used by value`
}

func (c *C) flagCopy() atomic.Bool {
	return c.flag // want `atomic field c\.flag used by value`
}
