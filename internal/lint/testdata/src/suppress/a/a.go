// Package a is the suppression-audit fixture: one used and one stale
// instance of each directive kind. RunFull must flag exactly the stale
// ones.
package a

// hot allocates on an annotated hot path; the allow on the allocating
// line suppresses the finding, so the directive is used.
//
//mtlint:hotpath
func hot() []int {
	return make([]int, 4) //mtlint:allow hotpath -- fixture: intentionally allocating
}

// cold is not a hot path and allocates nothing the analyzer minds; its
// allow directive suppresses nothing and must be flagged as stale.
func cold() int {
	return 1 //mtlint:allow hotpath -- fixture: stale on purpose
}

// spin leaks a goroutine with no exit path; the oneshot suppresses the
// leakcheck finding, so the directive is used.
func spin() {
	//mtlint:oneshot -- fixture: intentional leak
	go func() {
		for {
		}
	}()
}

// pump's goroutine has a provable stop path, so its oneshot directive no
// longer suppresses anything and must be flagged as stale.
func pump(done chan struct{}) {
	//mtlint:oneshot -- fixture: stale, the loop already stops
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}

var _ = hot
var _ = cold
var _ = spin
var _ = pump
