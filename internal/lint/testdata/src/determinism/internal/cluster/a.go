// Package cluster is the determinism fixture for the coordinator scope:
// the worker registry and job tables live in maps, and anything a peer
// or operator can observe — grant batches, metrics lines, membership
// lists — must not leak Go's randomized map iteration order. The import
// path ends in internal/cluster, which puts it in scope.
package cluster

import (
	"fmt"
	"io"
	"sort"
)

type worker struct {
	id      string
	pending int
}

// metricsDump prints per-worker series in map iteration order: two
// scrapes of the same coordinator would disagree on line order.
func metricsDump(w io.Writer, workers map[string]*worker) {
	for id, wk := range workers { // want `range over map workers feeds output through Fprintf in map iteration order`
		fmt.Fprintf(w, "coordinator_worker_pending_cells_%s %d\n", id, wk.pending)
	}
}

// liveUnsorted leaks registry order into the membership snapshot that
// rendezvous routing and error messages consume.
func liveUnsorted(workers map[string]*worker) []string {
	var ids []string
	for id := range workers { // want `range over map workers appends to ids in map iteration order without a later sort`
		ids = append(ids, id)
	}
	return ids
}

// liveSorted is the sanctioned idiom: collect, then sort, then use.
func liveSorted(workers map[string]*worker) []string {
	var ids []string
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// queueDepth tallies an integer across the registry: commutative, allowed.
func queueDepth(workers map[string]*worker) int {
	var total int
	for _, wk := range workers {
		total += wk.pending
	}
	return total
}

// grantShare accumulates floats in registry order: not associative.
func grantShare(load map[string]float64) float64 {
	var sum float64
	for _, l := range load { // want `range over map load accumulates floating-point values`
		sum += l
	}
	return sum
}
