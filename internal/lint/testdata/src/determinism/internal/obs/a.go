// Package obs is the determinism fixture for the telemetry scope: metric
// and span rendering — the /metrics exposition, the Perfetto export —
// must emit identical bytes for identical recorded state, so nothing
// observable may depend on Go's randomized map iteration order. The
// import path ends in internal/obs, which puts it in scope.
package obs

import (
	"fmt"
	"io"
	"sort"
)

// exposeLeak renders metric series in map iteration order: two scrapes of
// the same state would disagree on line order.
func exposeLeak(w io.Writer, series map[string]int64) {
	for name, v := range series { // want `range over map series feeds output through Fprintf in map iteration order`
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
}

// exposeSorted is the sanctioned idiom: collect keys, sort, then render.
func exposeSorted(w io.Writer, series map[string]int64) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, series[name])
	}
}

type span struct {
	trace string
	start int64
}

// exportLeak flattens a span store into an export slice in map iteration
// order and never sorts it: the trace file bytes change run to run.
func exportLeak(byTrace map[string][]span) []span {
	var out []span
	for _, spans := range byTrace { // want `range over map byTrace appends to out in map iteration order without a later sort`
		out = append(out, spans...)
	}
	return out
}

// exportSorted flattens then sorts before anything renders it.
func exportSorted(byTrace map[string][]span) []span {
	var out []span
	for _, spans := range byTrace {
		out = append(out, spans...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// bucketTotal tallies an integer across buckets: commutative, allowed.
func bucketTotal(buckets map[int]int64) int64 {
	var total int64
	for _, n := range buckets {
		total += n
	}
	return total
}

// snapshot writes map entries into another map: order-insensitive.
func snapshot(counts map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(counts))
	for name, v := range counts {
		out[name] = v
	}
	return out
}
