// Package report is the determinism fixture for the map-order rules: a
// range over a map may not feed output or order-sensitive accumulation.
// The import path ends in internal/report, which puts it in scope.
package report

import (
	"fmt"
	"io"
	"sort"
)

// dump prints in map iteration order: nondeterministic output.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over map m feeds output through Fprintf in map iteration order`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// nested output is still output.
func dumpNested(w io.Writer, m map[string]int) {
	for k, v := range m { // want `range over map m feeds output through WriteString`
		if v > 0 {
			io.WriteString(w, k)
		}
	}
}

// collectUnsorted leaks map order through the returned slice.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m appends to out in map iteration order without a later sort`
		out = append(out, k)
	}
	return out
}

// collectSorted is the sanctioned collect-then-sort idiom.
func collectSorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// appendElsewhere appends into a map element: per-key slices cannot be
// proven sorted, so the loop is flagged.
func appendElsewhere(m map[string][]int, src map[string]int) {
	for k, v := range src { // want `range over map src appends to m\[k\] in map iteration order`
		m[k] = append(m[k], v)
	}
}

// floatSum accumulates floats in map order: addition is not associative.
func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `range over map m accumulates floating-point values`
		s += v
	}
	return s
}

// concat builds a string in map order.
func concat(m map[string]string) string {
	var s string
	for _, v := range m { // want `range over map m concatenates strings`
		s += v
	}
	return s
}

// intSum is commutative: allowed.
func intSum(m map[string]int) int {
	var s int
	for _, v := range m {
		s += v
	}
	return s
}

// invert writes map entries keyed by the range variable: order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// waived demonstrates the escape hatch on a flagged loop.
func waived(m map[string][]int, k2 string, v2 int) {
	//mtlint:allow determinism -- per-key append order is fixed by the caller
	for k, vs := range m {
		m[k] = append(vs, v2)
		_ = k2
	}
}
