// Package webhook is the determinism fixture for the delivery dispatcher
// scope: pending deliveries live in a map, and both the journal bytes
// and the retry drain order are observable — neither may depend on Go's
// randomized map iteration. The import path ends in
// internal/serve/webhook, which puts it in scope.
package webhook

import (
	"fmt"
	"io"
	"sort"
)

type delivery struct {
	url      string
	attempts int
}

// journalDumpUnsorted writes the pending set in map order: two journal
// compactions of the same state would disagree byte for byte.
func journalDumpUnsorted(w io.Writer, pending map[string]*delivery) {
	for id, d := range pending { // want `range over map pending feeds output through Fprintf in map iteration order`
		fmt.Fprintf(w, "%s %s %d\n", id, d.url, d.attempts)
	}
}

// drainOrderUnsorted builds the retry pass worklist without a sort: the
// delivery order (and therefore receiver-observed arrival order among
// equally-due deliveries) would be run-dependent.
func drainOrderUnsorted(pending map[string]*delivery) []string {
	var due []string
	for id := range pending { // want `range over map pending appends to due in map iteration order without a later sort`
		due = append(due, id)
	}
	return due
}

// drainOrderSorted is the sanctioned idiom: collect, sort, then deliver.
func drainOrderSorted(pending map[string]*delivery) []string {
	var due []string
	for id := range pending {
		due = append(due, id)
	}
	sort.Strings(due)
	return due
}

// attemptTotal tallies an integer across the set: commutative, allowed.
func attemptTotal(pending map[string]*delivery) int {
	var total int
	for _, d := range pending {
		total += d.attempts
	}
	return total
}
