// Package rescache is the determinism fixture for the serving result
// cache: its import path ends in internal/serve/rescache, which puts it
// in the analyzer's time/rand scope. Cache keys and eviction order are
// part of mtserve's reproducibility contract, so wall-clock timestamps
// and global-source randomness are forbidden here just as in the
// simulator proper.
package rescache

import (
	"math/rand"
	"time"
)

type entry struct {
	key      string
	lastUsed int64
}

// touch stamps an entry with the wall clock: forbidden — an LRU ordered
// by real time makes eviction depend on when the server ran.
func touch(e *entry) {
	e.lastUsed = time.Now().UnixNano() // want `time\.Now is wall-clock`
}

// evictVictim picks a random victim from the global source: forbidden —
// irreproducible cache state.
func evictVictim(entries []entry) int {
	return rand.Intn(len(entries)) // want `rand\.Intn uses a process-global random source`
}

// touchSeq is the sanctioned idiom: a logical use-counter, bumped per
// access, orders the LRU without consulting the clock.
func touchSeq(e *entry, seq *int64) {
	*seq++
	e.lastUsed = *seq
}

// jitterSeeded is fine: explicit seed, methods on the local generator.
func jitterSeeded(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}
