// Package sim is the determinism fixture for the simulation-package
// rules: no wall clock, no process-global random source. The fixture's
// import path ends in internal/sim, which puts it in the analyzer's
// time/rand scope.
package sim

import (
	"math/rand"
	"time"
)

// now reads the wall clock: forbidden, simulated time only.
func now() int64 {
	return time.Now().UnixNano() // want `time\.Now is wall-clock`
}

// since is fine: time.Duration arithmetic without the wall clock.
func since(a, b time.Duration) time.Duration {
	return a - b
}

// roll uses the global source: irreproducible.
func roll() int {
	return rand.Intn(6) // want `rand\.Intn uses a process-global random source`
}

// shuffle uses the global source through a different entry point.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle uses a process-global random source`
}

// seeded is the sanctioned idiom: explicit seed, methods on the local
// generator.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6) + rng.Perm(4)[0]
}
