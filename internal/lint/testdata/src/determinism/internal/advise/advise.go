// Package advise is the determinism fixture for the placement-advisor
// scope: online policies run inside the engines' cycle-exact loop, so
// wall clocks and the process-global random source are forbidden. The
// fixture's import path ends in internal/advise, which puts it in the
// analyzer's time/rand scope.
package advise

import (
	"math/rand"
	"time"
)

// decideAt stamps a decision with the wall clock: forbidden, decisions
// must be a function of the checkpoint alone.
func decideAt() int64 {
	return time.Now().Unix() // want `time\.Now is wall-clock`
}

// tiebreak uses the global source: the two engines would see different
// placements for the same checkpoint.
func tiebreak(n int) int {
	return rand.Intn(n) // want `rand\.Intn uses a process-global random source`
}

// jitter uses the global source through the float entry point.
func jitter() float64 {
	return rand.Float64() // want `rand\.Float64 uses a process-global random source`
}

// seededTiebreak is the sanctioned idiom: derive the seed from the
// checkpoint, keep the generator local.
func seededTiebreak(seed int64, n int) int {
	return rand.New(rand.NewSource(seed)).Intn(n)
}

// elapsed is fine: duration arithmetic without reading the clock.
func elapsed(a, b time.Duration) time.Duration {
	return a - b
}
