// Package store is the determinism fixture for the durable result store
// scope: the record index lives in a map, and everything the store
// persists — compacted segments, manifests, recovery output — must be
// byte-identical for identical records. The import path ends in
// internal/store, which puts it in scope.
package store

import (
	"fmt"
	"io"
	"sort"
)

type entry struct {
	off  int64
	plen int
}

// compactUnsorted rewrites live records in index map order: two stores
// holding identical records would seal byte-different segments.
func compactUnsorted(w io.Writer, index map[string]entry) {
	for key, e := range index { // want `range over map index feeds output through Fprintf in map iteration order`
		fmt.Fprintf(w, "%s %d %d\n", key, e.off, e.plen)
	}
}

// manifestUnsorted collects keys for the compaction manifest without a
// sort: the rewrite order leaks into the new segment's byte layout.
func manifestUnsorted(index map[string]entry) []string {
	var keys []string
	for k := range index { // want `range over map index appends to keys in map iteration order without a later sort`
		keys = append(keys, k)
	}
	return keys
}

// manifestSorted is the sanctioned idiom: collect, sort, then rewrite.
func manifestSorted(index map[string]entry) []string {
	var keys []string
	for k := range index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// payloadBytes tallies an integer across the index: commutative, allowed.
func payloadBytes(index map[string]entry) int {
	var total int
	for _, e := range index {
		total += e.plen
	}
	return total
}
