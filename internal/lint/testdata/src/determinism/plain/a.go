// Package plain is out of the determinism analyzer's scope (its import
// path matches neither the simulation nor the presentation package
// lists): nothing here may be flagged.
package plain

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// stamp may read the wall clock: this package is not a simulation package.
func stamp() int64 {
	return time.Now().UnixNano()
}

// roll may use the global source here.
func roll() int {
	return rand.Intn(6)
}

// dump may print in map order here.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
