// Package a exercises the lockguard analyzer: blocking operations under
// a held mutex, return paths that leak a lock, self-deadlocks, and
// inconsistent acquisition order between two mutexes.
package a

import (
	"net/http"
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	wg sync.WaitGroup
	ch chan int
	n  int
}

func (s *S) sleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks while s\.mu is held`
}

func (s *S) sleepAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (s *S) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send \(no select/default\) blocks while s\.mu is held`
	s.mu.Unlock()
}

func (s *S) sendWithDefault() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

func (s *S) recvUnderRLock() int {
	s.rw.RLock()
	v := <-s.ch // want `channel receive \(no select/default\) blocks while s\.rw is held`
	s.rw.RUnlock()
	return v
}

func (s *S) selectNoDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select with no default case blocks while s\.mu is held`
	case v := <-s.ch:
		s.n = v
	case s.ch <- 2:
	}
}

func (s *S) waitGroupUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want `sync\.WaitGroup\.Wait blocks while s\.mu is held`
	s.mu.Unlock()
}

func (s *S) httpUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	http.Get("http://localhost/") // want `network I/O via net/http\.Get blocks while s\.mu is held`
}

func (s *S) rangeChanUnderLock() {
	s.mu.Lock()
	for v := range s.ch { // want `range over channel blocks while s\.mu is held`
		s.n += v
	}
	s.mu.Unlock()
}

// Cond.Wait releases the associated mutex while waiting: never flagged.
type condQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []int
}

func (c *condQueue) pop() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.q) == 0 {
		c.cond.Wait()
	}
	v := c.q[0]
	c.q = c.q[1:]
	return v
}

func (s *S) earlyReturnLeak(b bool) int {
	s.mu.Lock()
	if b {
		return 1 // want `return path leaves s\.mu locked \(no unlock or defer on this path\)`
	}
	s.mu.Unlock()
	return 0
}

func (s *S) earlyReturnBalanced(b bool) int {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

func (s *S) deferInLiteral() {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	s.n++
}

func (s *S) fallsOffEndLocked() {
	s.mu.Lock()
	s.n++
} // want `return path leaves s\.mu locked \(no unlock or defer on this path\)`

func (s *S) doubleAcquire() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu acquired again while already held \(self-deadlock\)`
	s.mu.Unlock()
	s.mu.Unlock()
}

// Direct A->B vs B->A inversion.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	p.b.Lock() // want `inconsistent lock order: pair\.a acquired before pair\.b here, but the reverse order occurs at`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	p.a.Lock() // want `inconsistent lock order: pair\.b acquired before pair\.a here, but the reverse order occurs at`
	p.a.Unlock()
	p.b.Unlock()
}

// Transitive inversion: x is held across a call that acquires y, while
// another path takes y then x directly.
type T2 struct {
	x sync.Mutex
	y sync.Mutex
}

func (t *T2) lockY() {
	t.y.Lock()
	t.y.Unlock()
}

func (t *T2) xThenCallY() {
	t.x.Lock()
	t.lockY() // want `inconsistent lock order: T2\.x acquired before T2\.y here, but the reverse order occurs at`
	t.x.Unlock()
}

func (t *T2) yThenX() {
	t.y.Lock()
	t.x.Lock() // want `inconsistent lock order: T2\.y acquired before T2\.x here, but the reverse order occurs at`
	t.x.Unlock()
	t.y.Unlock()
}

// Consistent nesting is fine in any number of places.
type nested struct {
	outer sync.Mutex
	inner sync.Mutex
	n     int
}

func (n *nested) both() {
	n.outer.Lock()
	n.inner.Lock()
	n.n++
	n.inner.Unlock()
	n.outer.Unlock()
}

func (n *nested) bothAgain() {
	n.outer.Lock()
	defer n.outer.Unlock()
	n.inner.Lock()
	defer n.inner.Unlock()
	n.n--
}
