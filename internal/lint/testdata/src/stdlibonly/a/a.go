// Package a is the stdlibonly fixture: standard-library and
// module-internal imports pass; anything with a domain in its first path
// segment fails.
package a

import (
	"fmt"
	"strings"

	_ "example.com/third/party" // want `import "example\.com/third/party" is outside the standard library`

	_ "repro/internal/report"
)

// use keeps the real imports referenced.
func use() string {
	return strings.ToUpper(fmt.Sprint("ok"))
}
