// Telemetry pointer cases: *obs.Bus and *obs.SpanStore are nil when a
// daemon runs with -no-telemetry, so method calls need the same nil-guard
// dominance as obs.Probe calls. *obs.ActiveSpan is exempt — nil-safe by
// design.
package a

import "repro/internal/obs"

type server struct {
	bus   *obs.Bus
	spans *obs.SpanStore
}

// unguardedBus is a latent panic under -no-telemetry.
func (s *server) unguardedBus() {
	s.bus.Publish("job:1", "job", nil) // want `call on obs\.Bus value s\.bus is not dominated by a s\.bus != nil check`
}

// guardedBus is the serving layer's standard shape.
func (s *server) guardedBus() {
	if s.bus != nil {
		s.bus.Publish("job:1", "job", nil)
	}
}

// earlyReturnBus guards once for the rest of the function.
func (s *server) earlyReturnBus() {
	if s.bus == nil {
		return
	}
	s.bus.Publish("job:1", "cell", nil)
}

// shortCircuitBus: the left && conjunct has already established the fact
// when the call in the right operand evaluates.
func (s *server) shortCircuitBus(topic string) bool {
	return s.bus != nil && s.bus.Subscribers(topic) > 0
}

// unguardedSpans panics the first time tracing is off.
func (s *server) unguardedSpans(ctx obs.SpanContext) {
	s.spans.AddEvent(ctx, "svc", "steal", "") // want `call on obs\.SpanStore value s\.spans is not dominated by a s\.spans != nil check`
}

// guardedSpans with a compound condition: the nil check is a top-level
// && conjunct.
func (s *server) guardedSpans(ctx obs.SpanContext) {
	if s.spans != nil && ctx.Valid() {
		s.spans.AddEvent(ctx, "svc", "requeue", "")
	}
}

// nestedGuard: the call sits in a nested if inside the guarded body.
func (s *server) nestedGuard(ctx obs.SpanContext, deep bool) {
	if s.spans != nil {
		if deep {
			_ = s.spans.Start(ctx, "svc", "lease")
		}
	}
}

// activeSpanNilSafe: ActiveSpan methods carry their own nil checks, so
// no guard is required (and none is flagged).
func activeSpanNilSafe(sp *obs.ActiveSpan) {
	sp.SetNote("worker w0")
	sp.End()
}
