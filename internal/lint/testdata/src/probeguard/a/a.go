// Package a is the probeguard analyzer fixture: calls on obs.Probe values
// with and without dominating nil checks.
package a

import "repro/internal/obs"

type machine struct {
	probe obs.Probe
	n     uint64
}

// unguarded is the bug the analyzer exists for.
func (m *machine) unguarded() {
	m.probe.RunEnd(m.n) // want `call on obs\.Probe value m\.probe is not dominated by a m\.probe != nil check`
}

// enclosing is the engines' standard shape.
func (m *machine) enclosing(t uint64) {
	if m.probe != nil {
		m.probe.CacheHit(t, 0, 0)
	}
}

// earlyReturn guards once for the rest of the function.
func (m *machine) earlyReturn(t uint64) {
	if m.probe == nil {
		return
	}
	m.probe.ThreadRun(t, 0, 0)
	if t > 0 {
		m.probe.ThreadFinish(t, 0, 0)
	}
}

// compound conditions guard when the nil check is an && conjunct...
func (m *machine) compound(t uint64, on bool) {
	if on && m.probe != nil {
		m.probe.ContextSwitch(t, 0)
	}
}

// ...but not when it is an || alternative.
func (m *machine) disjunct(t uint64, on bool) {
	if on || m.probe != nil {
		m.probe.ContextSwitch(t, 0) // want `call on obs\.Probe value m\.probe is not dominated`
	}
}

// wrongValue checks one probe and calls another.
func wrongValue(p, q obs.Probe, t uint64) {
	if p != nil {
		q.RunEnd(t) // want `call on obs\.Probe value q is not dominated`
	}
}

// elseBranch runs exactly when the probe IS nil.
func (m *machine) elseBranch(t uint64) {
	if m.probe != nil {
		m.n = t
	} else {
		m.probe.RunEnd(t) // want `call on obs\.Probe value m\.probe is not dominated`
	}
}

// localRebind guards the local copy it calls through.
func (m *machine) localRebind(t uint64) {
	p := m.probe
	if p != nil {
		p.QueueDepth(t, 1)
	}
}

// closureEscapes: the guard's fact does not survive into a function
// literal that may run later.
func (m *machine) closureEscapes(t uint64) func() {
	if m.probe != nil {
		return func() {
			m.probe.RunEnd(t) // want `call on obs\.Probe value m\.probe is not dominated`
		}
	}
	return nil
}

// concrete methods on a probe implementation need no guard: only the
// interface can be nil on the fast path.
func concrete(c *obs.Counter, t uint64) {
	c.RunEnd(t)
}
