// Package a is the shared-state census fixture: one struct per guard
// class the census must recognize, including the two precision cases
// that need interprocedural reasoning (a caller-holds-lock helper) and
// copy semantics (a value-receiver defaults normalizer).
package a

import (
	"sync"
	"sync/atomic"
)

// Counter's n is guarded at every access site; evictions is touched only
// inside bumpLocked, whose every call site holds mu — the census must
// classify both as mutex-guarded (the latter via inherited lock context).
type Counter struct {
	mu        sync.Mutex
	n         int
	evictions int
}

func (c *Counter) Add() {
	c.mu.Lock()
	c.n++
	c.bumpLocked()
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked()
	return c.n
}

// bumpLocked mutates evictions; caller holds mu.
func (c *Counter) bumpLocked() {
	c.evictions++
}

// Bare.hits is written and read from two exported roots with no guard at
// all: the census's one hard error.
type Bare struct {
	hits int
}

func (b *Bare) Inc() {
	b.hits++
}

func (b *Bare) Read() int {
	return b.hits
}

// Opts is normalized through a value receiver: the writes inside
// withDefaults touch a stack copy and must not count against the field,
// leaving only reads — immutable.
type Opts struct {
	Depth int
}

func (o Opts) withDefaults() Opts {
	if o.Depth <= 0 {
		o.Depth = 8
	}
	return o
}

// Server exercises the type-shaped guards: a channel field, an atomic
// wrapper field, and an immutable options value.
type Server struct {
	opts Opts
	done chan struct{}
	flag atomic.Bool
}

func NewServer(o Opts) *Server {
	s := &Server{opts: o.withDefaults(), done: make(chan struct{})}
	return s
}

func (s *Server) Depth() int {
	return s.opts.Depth
}

func (s *Server) Half() int {
	return s.opts.Depth / 2
}

func (s *Server) Close() {
	s.flag.Store(true)
	close(s.done)
}

func (s *Server) Done() <-chan struct{} {
	if s.flag.Load() {
		return s.done
	}
	return s.done
}

// Rec is single-owner: the type-level directive covers every field.
//
//mtlint:guard external -- single-owner fixture type
type Rec struct {
	buf []int
}

func (r *Rec) Push(v int) {
	r.buf = append(r.buf, v)
}

func (r *Rec) Len() int {
	return len(r.buf)
}

// Pub.result is written once before close(done) publishes it — a
// field-level directive for an idiom the census cannot prove.
type Pub struct {
	//mtlint:guard immutable -- written once before close(done) publishes it
	result string
	done   chan struct{}
}

func (p *Pub) Set(s string) {
	p.result = s
	close(p.done)
}

func (p *Pub) Get() string {
	<-p.done
	return p.result
}
