// Package a is the hotpath analyzer fixture: annotated functions with
// each forbidden allocating construct, plus negative cases (unannotated
// allocations, clean hot functions, the //mtlint:allow escape hatch).
package a

import "fmt"

type pair struct{ x, y int }

type state struct {
	scratch []int32
	slots   []pair
}

//mtlint:hotpath
func hotMake() map[int]int {
	return make(map[int]int) // want `call to make allocates in hot-path function hotMake`
}

//mtlint:hotpath
func hotNew() *pair {
	return new(pair) // want `call to new allocates in hot-path function hotNew`
}

//mtlint:hotpath
func hotClosure(xs []int) func() int {
	return func() int { return len(xs) } // want `function literal allocates a closure in hot-path function hotClosure`
}

//mtlint:hotpath
func hotAddrLit() *pair {
	return &pair{x: 1, y: 2} // want `address of composite literal escapes in hot-path function hotAddrLit`
}

//mtlint:hotpath
func hotSliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates in hot-path function hotSliceLit`
}

//mtlint:hotpath
func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates in hot-path function hotMapLit`
}

//mtlint:hotpath
func hotIfaceConv(v int) any {
	return any(v) // want `conversion to interface type any allocates in hot-path function hotIfaceConv`
}

//mtlint:hotpath
func hotStringConv(b []byte) string {
	return string(b) // want `string/slice conversion copies and allocates in hot-path function hotStringConv`
}

//mtlint:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation allocates in hot-path function hotConcat`
}

//mtlint:hotpath
func hotFmt(n int) string {
	return fmt.Sprintf("%d", n) // want `call to fmt.Sprintf allocates in hot-path function hotFmt`
}

//mtlint:hotpath
func hotDefer(f func()) {
	defer f() // want `defer in hot-path function hotDefer`
}

//mtlint:hotpath
func hotGo(f func()) {
	go f() // want `go statement in hot-path function hotGo`
}

// coldAllocates is unannotated: the analyzer must stay silent no matter
// what it allocates.
func coldAllocates() *pair {
	_ = fmt.Sprintf("%v", []int{1})
	return &pair{x: len(make([]int, 4))}
}

// hotClean mirrors the engine idiom: struct value stores into existing
// memory and amortized append into a caller-owned scratch buffer are
// allowed.
//
//mtlint:hotpath
func hotClean(s *state, i int, v int32) {
	s.slots[i] = pair{x: int(v), y: i}
	s.scratch = append(s.scratch[:0], v)
}

// hotWaived allocates on purpose and waives the finding with the escape
// hatch.
//
//mtlint:hotpath
func hotWaived() *pair {
	return &pair{x: 3} //mtlint:allow hotpath -- slow-path refill, measured as amortized-zero
}
