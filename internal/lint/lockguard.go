package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lockguard checks mutex discipline in three ways, all built on the
// lockset interpreter in sync.go:
//
//  1. Blocking while locked: a channel send/receive outside a
//     select-with-default, a select with no default, a range over a
//     channel, time.Sleep, sync.WaitGroup.Wait, or a call into net /
//     net/http while any sync.Mutex/RWMutex is held stalls every other
//     goroutine contending for that lock. sync.Cond.Wait is exempt — it
//     releases the mutex while waiting.
//
//  2. Missing unlock: a return path (or fall-off-the-end) on which an
//     acquired lock is still held with no `defer x.Unlock()` in effect.
//     Re-acquiring a lock already held by the same expression is also
//     flagged (guaranteed self-deadlock for sync.Mutex).
//
//  3. Inconsistent acquisition order: if one code path acquires lock A
//     then B (directly, or B transitively through a same-package call
//     made while A is held) and another path acquires B then A, the two
//     paths deadlock under contention. Locks are identified by
//     (struct type, field name), so the check is instance-insensitive
//     and spans the whole package.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "flag blocking ops under a held mutex, unlock-less return paths, and inconsistent lock order",
	Run:  runLockguard,
}

// orderEdge is one observed "from acquired before to" fact.
type orderEdge struct {
	from, to string
}

// callSite is a call made while locks were held, expanded into order
// edges once callee summaries are known.
type callSite struct {
	callee *types.Func
	held   []string // type-level keys held at the call
	pos    token.Pos
}

func runLockguard(pass *Pass) {
	info := pass.Pkg.Info

	// Per-function facts for the order analysis.
	type funcFacts struct {
		acquires map[string]bool // keys acquired anywhere in the body
		calls    []*types.Func   // same-package callees
	}
	facts := make(map[*types.Func]*funcFacts)
	edges := make(map[orderEdge]token.Pos) // first-seen position per edge
	var sites []callSite

	addEdge := func(e orderEdge, pos token.Pos) {
		if e.from == "" || e.to == "" || e.from == e.to {
			return
		}
		if old, ok := edges[e]; !ok || pos < old {
			edges[e] = pos
		}
	}

	// analyzeBody walks one function body. fn is the function's object
	// when it has one (FuncDecl); literals pass nil and contribute edges
	// but no summary.
	var analyzeBody func(fn *types.Func, body *ast.BlockStmt)
	analyzeBody = func(fn *types.Func, body *ast.BlockStmt) {
		var ff *funcFacts
		if fn != nil {
			ff = &funcFacts{acquires: make(map[string]bool)}
			facts[fn] = ff
		}
		var lits []*ast.FuncLit
		walkFuncBody(info, body, lockCallbacks{
			onAcquire: func(id lockIdent, pos token.Pos, heldBefore []heldLock) {
				if ff != nil {
					ff.acquires[id.key] = true
				}
				for _, h := range heldBefore {
					if h.id.expr == id.expr {
						pass.Reportf(pos, "%s acquired again while already held (self-deadlock)", id.expr)
					}
					addEdge(orderEdge{h.id.key, id.key}, pos)
				}
			},
			onReturn: func(pos token.Pos, leaked []heldLock) {
				for _, h := range leaked {
					pass.Reportf(pos, "return path leaves %s locked (no unlock or defer on this path)", h.id.expr)
				}
			},
			onBlocking: func(desc string, pos token.Pos, held []heldLock) {
				pass.Reportf(pos, "%s blocks while %s is held", desc, describeHeld(held))
			},
			onCall: func(call *ast.CallExpr, held []heldLock) {
				callee := calleeFunc(info, call)
				if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != pass.Pkg.Path {
					return
				}
				if ff != nil {
					ff.calls = append(ff.calls, callee)
				}
				if len(held) > 0 {
					keys := make([]string, 0, len(held))
					for _, h := range held {
						if h.id.key != "" {
							keys = append(keys, h.id.key)
						}
					}
					if len(keys) > 0 {
						sites = append(sites, callSite{callee: callee, held: keys, pos: call.Pos()})
					}
				}
			},
			onFuncLit: func(lit *ast.FuncLit) { lits = append(lits, lit) },
		})
		for _, lit := range lits {
			analyzeBody(nil, lit.Body)
		}
	}

	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			analyzeBody(fn, fd.Body)
		}
	}

	// Transitive acquire summaries: fixpoint over the package call graph.
	for changed := true; changed; {
		changed = false
		for _, ff := range facts {
			for _, callee := range ff.calls {
				cf, ok := facts[callee]
				if !ok {
					continue
				}
				for k := range cf.acquires {
					if !ff.acquires[k] {
						ff.acquires[k] = true
						changed = true
					}
				}
			}
		}
	}

	// Expand held-across-call sites into order edges via callee summaries.
	for _, s := range sites {
		cf, ok := facts[s.callee]
		if !ok {
			continue
		}
		for acq := range cf.acquires {
			for _, heldKey := range s.held {
				addEdge(orderEdge{heldKey, acq}, s.pos)
			}
		}
	}

	// Report each inverted pair once per direction, at the acquisition
	// site that establishes it.
	for e, pos := range edges {
		rev := orderEdge{e.to, e.from}
		revPos, ok := edges[rev]
		if !ok {
			continue
		}
		pass.Reportf(pos, "inconsistent lock order: %s acquired before %s here, but the reverse order occurs at %s",
			shortLockKey(e.from), shortLockKey(e.to), pass.Pkg.Fset.Position(revPos))
	}
}

// calleeFunc resolves a call expression's static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// shortLockKey trims a type-level lock key ("pkg/path.Type.field") to its
// readable tail ("Type.field").
func shortLockKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	if i := strings.Index(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}
