package lint

import (
	"strconv"
	"strings"
)

// StdlibOnly enforces the repo's foundational rule: everything is built
// from scratch on the Go standard library. An import is allowed when it is
// a standard-library path (first segment has no dot) or module-internal
// (the module path itself or a subpackage). Anything else — a third-party
// module, golang.org/x, a replace-directive alias — is flagged at the
// import spec.
var StdlibOnly = &Analyzer{
	Name: "stdlibonly",
	Doc:  "imports must be standard library or module-internal",
	Run:  runStdlibOnly,
}

func runStdlibOnly(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == pass.Module || strings.HasPrefix(path, pass.Module+"/") {
				continue
			}
			if isStdlibPath(path) {
				continue
			}
			pass.Reportf(imp.Pos(), "import %q is outside the standard library and the %s module; this repo is stdlib-only", path, pass.Module)
		}
	}
}
