package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package: the unit analyzers run on.
type Package struct {
	// Path is the package's import path ("repro/internal/sim", or the
	// testdata-relative path the harness assigns).
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset is the loader's shared file set (positions for every file,
	// including imported stdlib sources).
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// Errors collects type-check errors (the loader keeps going so lint can
	// report what it can; callers decide whether errors are fatal).
	Errors []error
	// Unresolved records import paths the loader could not resolve and
	// replaced with empty placeholder packages (e.g. a third-party import,
	// which stdlibonly will flag anyway).
	Unresolved []string
}

// Loader loads and type-checks packages of one module using only the
// standard library: go/parser for syntax, go/types for checking, and the
// go/importer "source" importer for standard-library dependencies (modern
// toolchains ship no prebuilt export data, so stdlib packages are checked
// from GOROOT source). Module-internal imports are resolved by path
// arithmetic against the module root — no `go list` subprocess.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// ExtraSrcDirs are GOPATH-src-style roots searched for import paths that
	// are neither stdlib nor module-internal. The lint test harness points
	// this at testdata/src so fixture packages can import each other.
	ExtraSrcDirs []string
	// Fset is shared by every package this loader touches.
	Fset *token.FileSet

	stdlib  types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: abs,
		ModulePath: modPath,
		Fset:       fset,
		stdlib:     importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Load resolves the given patterns to packages and loads each. Supported
// patterns: "./..." (every package under the module root, skipping testdata
// and hidden directories), a directory path ("./internal/report"), or an
// import path resolvable against the module root or an extra source dir.
// With no patterns it defaults to "./...".
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []*Package
	add := func(p *Package) {
		if !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.walkPackageDirs(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, dir := range dirs {
				p, err := l.loadDir(dir)
				if err != nil {
					return nil, err
				}
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			dirs, err := l.walkPackageDirs(filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(root, "./"))))
			if err != nil {
				return nil, err
			}
			for _, dir := range dirs {
				p, err := l.loadDir(dir)
				if err != nil {
					return nil, err
				}
				add(p)
			}
		default:
			p, err := l.loadPattern(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// loadPattern loads a single non-wildcard pattern: an existing directory or
// an import path.
func (l *Loader) loadPattern(pat string) (*Package, error) {
	// Directory forms: "./x", "x" where x exists on disk.
	for _, cand := range []string{pat, filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))} {
		if fi, err := os.Stat(cand); err == nil && fi.IsDir() {
			return l.loadDir(cand)
		}
	}
	// Import-path forms: module-internal or under an extra source dir.
	if dir, ok := l.dirForImport(pat); ok {
		return l.loadPackageAt(pat, dir)
	}
	return nil, fmt.Errorf("lint: cannot resolve pattern %q", pat)
}

// dirForImport maps an import path to a directory via the module root or
// the extra source dirs.
func (l *Loader) dirForImport(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	for _, src := range l.ExtraSrcDirs {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// walkPackageDirs returns every directory under root containing non-test Go
// files, skipping testdata, hidden and underscore-prefixed directories.
func (l *Loader) walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// loadDir loads the package in dir, deriving its import path from the
// module root (or the bare directory path for out-of-module dirs).
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	return l.loadPackageAt(path, abs)
}

// importPathFor derives an import path for a directory: module-relative
// when under the module root, extra-src-relative when under an extra source
// dir, else the slash-converted directory itself.
func (l *Loader) importPathFor(abs string) string {
	for _, src := range l.ExtraSrcDirs {
		if rel, err := filepath.Rel(src, abs); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	if rel, err := filepath.Rel(l.ModuleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// loadPackageAt parses and type-checks the package in dir under the given
// import path, memoizing by path.
func (l *Loader) loadPackageAt(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Parse the package's files in parallel (token.FileSet is documented
	// as safe for concurrent use); order is preserved by index so the
	// type-check below stays deterministic.
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			files[i], errs[i] = parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	pkg.Files = files

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    &pkgImporter{l: l, pkg: pkg},
		FakeImportC: true,
		Error:       func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// pkgImporter resolves one package's imports: module-internal and
// extra-src packages recursively through the loader, the standard library
// through the source importer, and everything else as an empty placeholder
// (recorded in Unresolved).
type pkgImporter struct {
	l   *Loader
	pkg *Package
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := im.l.dirForImport(path); ok {
		p, err := im.l.loadPackageAt(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if isStdlibPath(path) {
		if p, err := im.l.stdlib.Import(path); err == nil {
			return p, nil
		}
	}
	im.pkg.Unresolved = append(im.pkg.Unresolved, path)
	return placeholderPackage(path), nil
}

// isStdlibPath reports whether path looks like a standard-library import:
// its first segment contains no dot (domain-less).
func isStdlibPath(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

// placeholderPackage synthesizes an empty, complete package so
// type-checking can continue past an unresolvable import.
func placeholderPackage(path string) *types.Package {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	clean := make([]rune, 0, len(name))
	for _, r := range name {
		if r == '_' || r == '.' || r == '-' {
			clean = append(clean, '_')
			continue
		}
		clean = append(clean, r)
	}
	if len(clean) == 0 {
		clean = []rune{'p'}
	}
	p := types.NewPackage(path, string(clean))
	p.MarkComplete()
	return p
}
