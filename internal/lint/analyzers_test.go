package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The fixture suites: every analyzer is exercised against a testdata
// package carrying `// want` assertions for each positive case and silent
// negative cases (guarded probe calls, collect-then-sort loops, seeded
// generators, the //mtlint:allow escape hatch).

func TestHotpathFixture(t *testing.T) {
	linttest.Run(t, lint.Hotpath, "hotpath/a")
}

func TestProbeGuardFixture(t *testing.T) {
	linttest.Run(t, lint.ProbeGuard, "probeguard/a")
}

func TestDeterminismSimFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/sim")
}

func TestDeterminismReportFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/report")
}

func TestDeterminismRescacheFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/serve/rescache")
}

func TestDeterminismClusterFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/cluster")
}

func TestDeterminismObsFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/obs")
}

func TestDeterminismStoreFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/store")
}

func TestDeterminismWebhookFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/serve/webhook")
}

func TestDeterminismAdviseFixture(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/internal/advise")
}

// TestDeterminismOutOfScope runs the determinism analyzer over a package
// outside its scope lists: wall clock, global rand and map-ordered output
// are all someone else's problem there, so the fixture has no want
// comments and must produce no findings.
func TestDeterminismOutOfScope(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism/plain")
}

func TestStdlibOnlyFixture(t *testing.T) {
	linttest.Run(t, lint.StdlibOnly, "stdlibonly/a")
}

func TestLockguardFixture(t *testing.T) {
	linttest.Run(t, lint.Lockguard, "lockguard/a")
}

func TestLeakcheckFixture(t *testing.T) {
	linttest.Run(t, lint.Leakcheck, "leakcheck/a")
}

func TestAtomiccheckFixture(t *testing.T) {
	linttest.Run(t, lint.Atomiccheck, "atomiccheck/a")
}

// TestRegistry locks the analyzer catalog: names are unique, resolvable
// through ByName, and documented.
func TestRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely registered", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		got, ok := lint.ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v; want the registered analyzer", a.Name, got, ok)
		}
	}
	for _, name := range []string{"hotpath", "probeguard", "determinism", "stdlibonly", "lockguard", "leakcheck", "atomiccheck"} {
		if _, ok := lint.ByName(name); !ok {
			t.Errorf("registry is missing %q", name)
		}
	}
}
