package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Leakcheck enforces that every goroutine has a provable stop path. For
// each `go` statement it resolves the spawned body (a function literal,
// or a same-package function/method) and inspects its unconditional
// loops (`for { ... }` with no condition):
//
//   - a loop with no return and no loop-exiting break can never stop —
//     always an error;
//   - a loop whose exits are all guarded by purely local computation has
//     no *provable* stop path: at least one exit must consult the
//     outside world — a channel receive (done channel, ctx.Done()), a
//     call, or a field read, directly in the guarding condition or
//     through a local variable assigned from one inside the loop (the
//     `t, ok := q.Pop(); if !ok { return }` worker idiom).
//
// Conditional loops (`for cond`), counted loops, and range loops are
// treated as terminating: their condition or sequence is itself the stop
// path (a range over a channel stops when the channel is closed).
// Loop-free goroutine bodies are one-shots by construction.
//
// A goroutine that is intentionally run-to-completion but trips the
// heuristic can be annotated with `//mtlint:oneshot [-- reason]` on the
// `go` statement's line or the line above, or in the doc comment of the
// named function it spawns. Unused oneshot annotations are reported by
// the suppression audit (see RunFull).
var Leakcheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "require a provable stop path (channel/context/external state) for every spawned goroutine loop",
	Run:  runLeakcheck,
}

// oneshotDirective is the annotation marking a goroutine as deliberately
// run-to-completion.
const oneshotDirective = "//mtlint:oneshot"

func runLeakcheck(pass *Pass) {
	info := pass.Pkg.Info

	// Index this package's function declarations by object so `go s.worker()`
	// resolves to worker's body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// Oneshot directive comments by (file, line).
	oneshots := make(map[allowKey]token.Pos)
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isDirective(c.Text, oneshotDirective) {
					pos := pass.Pkg.Fset.Position(c.Pos())
					oneshots[allowKey{pos.Filename, pos.Line}] = c.Pos()
				}
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			// Oneshot annotations on the go statement's line, the line
			// above, or the spawned function's doc comment.
			gpos := pass.Pkg.Fset.Position(gs.Pos())
			var annots []token.Pos
			for _, line := range [2]int{gpos.Line, gpos.Line - 1} {
				if cpos, ok := oneshots[allowKey{gpos.Filename, line}]; ok {
					annots = append(annots, cpos)
				}
			}
			body, doc := goTargetBody(info, decls, gs)
			if doc != nil && hasDirective(doc, oneshotDirective) {
				for _, c := range doc.List {
					if isDirective(c.Text, oneshotDirective) {
						annots = append(annots, c.Pos())
					}
				}
			}
			if body == nil {
				// Cross-package or dynamic target: out of scope; trust any
				// annotation rather than call it stale.
				for _, p := range annots {
					pass.markDirectiveUsed(p)
				}
				return true
			}
			if len(annots) > 0 {
				// The annotation is "used" only if it suppresses a real
				// finding; otherwise the suppression audit flags it as stale.
				scratch := pass.scratch()
				checkGoroutineBody(scratch, body)
				if len(*scratch.diags) > 0 {
					for _, p := range annots {
						pass.markDirectiveUsed(p)
					}
				}
				return true
			}
			checkGoroutineBody(pass, body)
			return true
		})
	}
}

// isDirective reports whether a comment is exactly the directive or the
// directive followed by arguments/reason.
func isDirective(text, directive string) bool {
	if text == directive {
		return true
	}
	return len(text) > len(directive) && text[:len(directive)] == directive &&
		(text[len(directive)] == ' ' || text[len(directive)] == '\t')
}

// goTargetBody resolves the body the go statement spawns: an inline
// function literal, or the declaration of a same-package function or
// method. Returns nil for anything it cannot see (cross-package callee,
// function value, interface method).
func goTargetBody(info *types.Info, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) (*ast.BlockStmt, *ast.CommentGroup) {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, nil
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				return fd.Body, fd.Doc
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			if fd, ok := decls[fn]; ok {
				return fd.Body, fd.Doc
			}
		}
	}
	return nil, nil
}

// checkGoroutineBody flags unconditional loops in the spawned body that
// lack a provable stop path. Nested function literals are skipped: they
// run in their own goroutine (covered by their own `go` statement) or
// synchronously inside this loop's iterations.
func checkGoroutineBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		exits := loopExits(loop)
		if len(exits) == 0 {
			pass.Reportf(loop.For, "goroutine loop has no exit path; it can never stop (add a done-channel/context case, or annotate the go statement //mtlint:oneshot)")
			return true
		}
		tainted := taintedLocals(pass.Pkg.Info, loop)
		for _, e := range exits {
			if exitConsultsOutside(pass.Pkg.Info, e, tainted) {
				return true
			}
		}
		pass.Reportf(loop.For, "goroutine loop has no provable stop path: no exit consults a channel, context, or external state (or annotate the go statement //mtlint:oneshot)")
		return true
	})
}

// loopExit is one statement that leaves the loop, with the stack of
// ancestors between the loop body and the statement.
type loopExit struct {
	stmt  ast.Stmt
	stack []ast.Node
}

// loopExits collects the return statements and loop-exiting breaks
// inside loop (not crossing into nested function literals).
func loopExits(loop *ast.ForStmt) []loopExit {
	var exits []loopExit
	walkStack(loop.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exits = append(exits, loopExit{n, append([]ast.Node(nil), stack...)})
		case *ast.BranchStmt:
			if n.Tok != token.BREAK {
				return true
			}
			if n.Label != nil {
				// A labeled break targets this loop or an outer one; either
				// way it leaves this loop. Count it as an exit.
				exits = append(exits, loopExit{n, append([]ast.Node(nil), stack...)})
				return true
			}
			// Unlabeled break binds to the innermost for/range/switch/select;
			// it exits our loop only if none of those sit between.
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
					return true
				}
			}
			exits = append(exits, loopExit{n, append([]ast.Node(nil), stack...)})
		}
		return true
	})
	return exits
}

// taintedLocals returns the objects of local variables assigned inside
// the loop from expressions that touch the outside world (a call, a
// field/selector read, or a channel receive). An exit guarded by such a
// variable is consulting external state one step removed.
func taintedLocals(info *types.Info, loop *ast.ForStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		rhsExternal := false
		for _, r := range as.Rhs {
			if exprTouchesOutside(r) {
				rhsExternal = true
				break
			}
		}
		if !rhsExternal {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					tainted[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})
	return tainted
}

// exprTouchesOutside reports whether the expression contains a call, a
// selector, or a channel receive.
func exprTouchesOutside(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr, *ast.SelectorExpr:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// exitConsultsOutside reports whether the exit's guarding path consults
// external state: an enclosing select case that receives from a channel,
// or an enclosing if/switch condition containing a call, selector,
// receive, or tainted local.
func exitConsultsOutside(info *types.Info, e loopExit, tainted map[types.Object]bool) bool {
	consults := func(x ast.Expr) bool {
		if x == nil {
			return false
		}
		if exprTouchesOutside(x) {
			return true
		}
		used := false
		ast.Inspect(x, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && tainted[obj] {
					used = true
				}
			}
			return !used
		})
		return used
	}
	guarded := false
	for i, anc := range e.stack {
		switch anc := anc.(type) {
		case *ast.CommClause:
			// A select arm: receiving comm (case <-ch, case v := <-ch, or
			// case v, ok := <-ch) consults a channel by construction.
			if anc.Comm != nil {
				return true
			}
		case *ast.IfStmt:
			// Only the taken-branch relationship matters: the exit must be
			// inside the if's body/else, not its init.
			if consults(anc.Cond) {
				return true
			}
			guarded = true
		case *ast.SwitchStmt:
			if consults(anc.Tag) {
				return true
			}
			if cc, ok := childCaseClause(e.stack, i); ok {
				for _, x := range cc.List {
					if consults(x) {
						return true
					}
				}
			}
			guarded = true
		case *ast.TypeSwitchStmt:
			guarded = true
		}
	}
	// An exit with no guard at all runs on the first iteration: the loop
	// terminates trivially.
	return !guarded
}

// childCaseClause finds the CaseClause immediately under stack[i] on the
// path to the exit.
func childCaseClause(stack []ast.Node, i int) (*ast.CaseClause, bool) {
	for j := i + 1; j < len(stack); j++ {
		if cc, ok := stack[j].(*ast.CaseClause); ok {
			return cc, true
		}
	}
	return nil, false
}
