package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// TestSuppressionAudit pins RunFull's stale-directive audit on a fixture
// with one used and one stale instance of each directive kind: only the
// stale //mtlint:allow and //mtlint:oneshot may be reported, and both
// must be.
func TestSuppressionAudit(t *testing.T) {
	pkgs, loader := linttest.Load(t, "suppress/a")
	diags := lint.RunFull(pkgs, lint.All(), loader.ModulePath)

	var audit []lint.Diagnostic
	for _, d := range diags {
		if d.Analyzer != "suppressaudit" {
			t.Errorf("unexpected non-audit diagnostic escaped suppression: %s", d)
			continue
		}
		audit = append(audit, d)
	}
	if len(audit) != 2 {
		t.Fatalf("audit reported %d stale directives, want 2: %v", len(audit), audit)
	}
	// Sorted by position: the stale allow (in cold) precedes the stale
	// oneshot (in pump).
	if !strings.Contains(audit[0].Message, "//mtlint:allow") {
		t.Errorf("first audit finding should be the stale allow, got: %s", audit[0])
	}
	if !strings.Contains(audit[1].Message, "//mtlint:oneshot") {
		t.Errorf("second audit finding should be the stale oneshot, got: %s", audit[1])
	}
	for _, d := range audit {
		if !strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("audit message should say the directive suppresses nothing: %s", d)
		}
	}
}
