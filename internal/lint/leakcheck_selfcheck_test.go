package lint_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// The leakcheck selfcheck pairs the analyzer's static verdicts with
// runtime.NumGoroutine measurements of the same goroutine shapes compiled
// into this binary: the shape the analyzer accepts must actually
// terminate when signalled, and the shape it flags must actually stay
// resident. If the dynamic half fails while the static half passes, the
// analyzer has a blind spot worth a new check — and vice versa.

// stoppableWorker is the clean shape: the loop consults a done channel
// the spawner controls. Leakcheck accepts it.
func stoppableWorker(done <-chan struct{}, work <-chan int) {
	for {
		select {
		case <-done:
			return
		case <-work:
		}
	}
}

// leakyWorker is the flagged shape: a loop with no exit statement at
// all. It parks on the receive forever — exactly the leak the analyzer
// reports as "no exit path" — without burning CPU in the test binary.
func leakyWorker(blocked chan struct{}) {
	for {
		<-blocked
	}
}

// pollUntil retries cond every millisecond until it holds or the
// deadline passes.
func pollUntil(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

// TestLeakcheckStaticVerdicts is the static half: the fixture's leaky
// shapes are flagged and nothing else is (the want-comment harness
// asserts the exact lines; this pins the count and wording so the
// dynamic half below cross-references a known verdict).
func TestLeakcheckStaticVerdicts(t *testing.T) {
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.Leakcheck}, "leakcheck/a")
	if len(diags) == 0 {
		t.Fatal("leakcheck found nothing in its own fixture")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "no exit path") && !strings.Contains(d.Message, "no provable stop path") {
			t.Errorf("unexpected leakcheck wording: %s", d)
		}
	}
}

// TestLeakcheckMatchesRuntime is the dynamic half.
func TestLeakcheckMatchesRuntime(t *testing.T) {
	base := runtime.NumGoroutine()

	// The accepted shape terminates: spawn a crowd, signal, and the
	// goroutine count returns to baseline.
	const n = 8
	done := make(chan struct{})
	work := make(chan int)
	for i := 0; i < n; i++ {
		go stoppableWorker(done, work)
	}
	if !pollUntil(5*time.Second, func() bool { return runtime.NumGoroutine() >= base+n }) {
		t.Fatalf("workers did not start: %d goroutines, want >= %d", runtime.NumGoroutine(), base+n)
	}
	close(done)
	if !pollUntil(5*time.Second, func() bool { return runtime.NumGoroutine() <= base }) {
		t.Errorf("stop-path shape leaked: %d goroutines after close(done), baseline %d — leakcheck accepts a shape that does not terminate",
			runtime.NumGoroutine(), base)
	}

	// The flagged shape stays resident: it has no stop path, so it is
	// still there after a grace period (and is deliberately left parked —
	// that persistence is the property under test).
	leakBase := runtime.NumGoroutine()
	go leakyWorker(make(chan struct{}))
	if !pollUntil(5*time.Second, func() bool { return runtime.NumGoroutine() >= leakBase+1 }) {
		t.Fatalf("leaky worker did not start")
	}
	time.Sleep(50 * time.Millisecond)
	if got := runtime.NumGoroutine(); got < leakBase+1 {
		t.Errorf("shape leakcheck flags as leaky exited on its own: %d goroutines, want >= %d — the analyzer is over-approximating",
			got, leakBase+1)
	}
}
