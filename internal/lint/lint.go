// Package lint is a small static-analysis framework built directly on the
// standard library's type-checker (go/parser + go/types + go/importer —
// deliberately no golang.org/x/tools, honoring the repo's stdlib-only
// rule). It exists to enforce the simulator's cross-cutting invariants at
// compile time: the allocation-free fast path, nil-guarded observability
// probes, deterministic report output, and the stdlib-only import policy.
//
// An Analyzer inspects one type-checked Package through a Pass and reports
// Diagnostics. Run executes a set of analyzers over a set of packages,
// applies `//mtlint:allow` suppressions, and returns the surviving
// diagnostics in deterministic (file, line, column, analyzer) order.
//
// # Annotation grammar
//
// Two comment directives, both line comments with no space after `//`:
//
//	//mtlint:hotpath
//	    On the doc comment of a function: the hotpath analyzer checks the
//	    function body for allocating constructs.
//
//	//mtlint:allow <analyzer>[,<analyzer>...] [-- <reason>]
//	    On the flagged line, or on the line directly above it: suppresses
//	    the named analyzers' diagnostics for that line. The reason after
//	    `--` is for human readers; the framework ignores it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the driver's one-line form: file:line: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and allow
	// directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the pass's package and reports findings via
	// Pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Module is the module path of the tree being linted (used by
	// stdlibonly to tell module-internal imports from third-party ones).
	Module string

	diags *[]Diagnostic
	used  *directiveTracker
}

// markDirectiveUsed records that the suppression directive at pos (a
// comment position) suppressed a real finding; RunFull's audit flags the
// directives never marked.
func (p *Pass) markDirectiveUsed(pos token.Pos) {
	if p.used == nil {
		return
	}
	position := p.Pkg.Fset.Position(pos)
	p.used.mark(allowKey{position.Filename, position.Line})
}

// scratch returns a throwaway pass over the same package whose
// diagnostics are captured privately — used by analyzers that need to
// know whether a check *would* fire without reporting it.
func (p *Pass) scratch() *Pass {
	return &Pass{Analyzer: p.Analyzer, Pkg: p.Pkg, Module: p.Module, diags: new([]Diagnostic)}
}

// directiveTracker is the cross-package, goroutine-safe record of which
// suppression directives did real work during a run.
type directiveTracker struct {
	mu  sync.Mutex
	set map[allowKey]bool
}

func newDirectiveTracker() *directiveTracker {
	return &directiveTracker{set: make(map[allowKey]bool)}
}

func (t *directiveTracker) mark(k allowKey) {
	t.mu.Lock()
	t.set[k] = true
	t.mu.Unlock()
}

func (t *directiveTracker) isUsed(k allowKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.set[k]
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer registry in stable order.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, ProbeGuard, Determinism, StdlibOnly, Lockguard, Leakcheck, Atomiccheck}
}

// ByName returns the registered analyzer with the given name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the analyzers over the packages, filters findings through
// `//mtlint:allow` directives, and returns them sorted by position.
// Packages are analyzed in parallel (bounded by GOMAXPROCS); the sort
// makes the output order independent of scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer, module string) []Diagnostic {
	diags, _ := run(pkgs, analyzers, module)
	return diags
}

// RunFull is Run plus the suppression audit: every `//mtlint:allow` or
// `//mtlint:oneshot` directive that suppressed nothing this run is
// reported under the pseudo-analyzer name "suppressaudit", so stale
// escape hatches surface instead of rotting. Only call it with the full
// analyzer registry — with a subset, directives for the analyzers not
// running would be misreported as stale.
func RunFull(pkgs []*Package, analyzers []*Analyzer, module string) []Diagnostic {
	diags, used := run(pkgs, analyzers, module)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					var kind string
					switch {
					case strings.HasPrefix(c.Text, "//mtlint:allow"):
						kind = "//mtlint:allow"
					case isDirective(c.Text, oneshotDirective):
						kind = oneshotDirective
					default:
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if used.isUsed(allowKey{pos.Filename, pos.Line}) {
						continue
					}
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "suppressaudit",
						Message:  fmt.Sprintf("unused %s directive: it suppresses nothing and should be removed", kind),
					})
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// run is the shared engine behind Run and RunFull.
func run(pkgs []*Package, analyzers []*Analyzer, module string) ([]Diagnostic, *directiveTracker) {
	used := newDirectiveTracker()
	results := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var raw []Diagnostic
			for _, a := range analyzers {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, Module: module, diags: &raw, used: used})
			}
			allow := collectAllows(pkg)
			var kept []Diagnostic
			for _, d := range raw {
				if allow.suppresses(d, used) {
					continue
				}
				kept = append(kept, d)
			}
			results[i] = kept
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	sortDiagnostics(diags)
	return diags, used
}

// sortDiagnostics orders findings by (file, line, column, analyzer).
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// allowKey identifies one line of one file.
type allowKey struct {
	file string
	line int
}

// allowSet maps lines to the analyzer names allowed there.
type allowSet map[allowKey]map[string]bool

// suppresses reports whether d is covered by an allow directive on its own
// line or the line directly above, marking the directive used in the
// tracker when it is.
func (s allowSet) suppresses(d Diagnostic, used *directiveTracker) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		key := allowKey{d.Pos.Filename, line}
		if names := s[key]; names[d.Analyzer] || names["all"] {
			if used != nil {
				used.mark(key)
			}
			return true
		}
	}
	return false
}

// collectAllows gathers `//mtlint:allow` directives from every comment in
// the package.
func collectAllows(pkg *Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := allowKey{pos.Filename, pos.Line}
				if set[key] == nil {
					set[key] = make(map[string]bool)
				}
				for _, n := range names {
					set[key][n] = true
				}
			}
		}
	}
	return set
}

// parseAllow parses "//mtlint:allow a,b -- reason" into its analyzer names.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//mtlint:allow")
	if !ok {
		return nil, false
	}
	rest, _, _ = strings.Cut(rest, "--")
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// hasDirective reports whether the comment group contains the exact
// directive line (e.g. "//mtlint:hotpath").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// walkStack walks the AST rooted at n, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped, so no matching pop arrives: don't push.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pathSuffixMatch reports whether pkgPath equals suffix or ends with
// "/"+suffix — the package-scoping rule analyzers use so both the real
// module packages ("repro/internal/sim") and test fixtures
// ("determinism/internal/sim") match.
func pathSuffixMatch(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
