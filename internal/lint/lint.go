// Package lint is a small static-analysis framework built directly on the
// standard library's type-checker (go/parser + go/types + go/importer —
// deliberately no golang.org/x/tools, honoring the repo's stdlib-only
// rule). It exists to enforce the simulator's cross-cutting invariants at
// compile time: the allocation-free fast path, nil-guarded observability
// probes, deterministic report output, and the stdlib-only import policy.
//
// An Analyzer inspects one type-checked Package through a Pass and reports
// Diagnostics. Run executes a set of analyzers over a set of packages,
// applies `//mtlint:allow` suppressions, and returns the surviving
// diagnostics in deterministic (file, line, column, analyzer) order.
//
// # Annotation grammar
//
// Two comment directives, both line comments with no space after `//`:
//
//	//mtlint:hotpath
//	    On the doc comment of a function: the hotpath analyzer checks the
//	    function body for allocating constructs.
//
//	//mtlint:allow <analyzer>[,<analyzer>...] [-- <reason>]
//	    On the flagged line, or on the line directly above it: suppresses
//	    the named analyzers' diagnostics for that line. The reason after
//	    `--` is for human readers; the framework ignores it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the violation.
	Message string
}

// String renders the driver's one-line form: file:line: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and allow
	// directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the pass's package and reports findings via
	// Pass.Reportf.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Module is the module path of the tree being linted (used by
	// stdlibonly to tell module-internal imports from third-party ones).
	Module string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer registry in stable order.
func All() []*Analyzer {
	return []*Analyzer{Hotpath, ProbeGuard, Determinism, StdlibOnly}
}

// ByName returns the registered analyzer with the given name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Run executes the analyzers over the packages, filters findings through
// `//mtlint:allow` directives, and returns them sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, module string) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Module: module, diags: &raw})
		}
		allow := collectAllows(pkg)
		for _, d := range raw {
			if allow.suppresses(d) {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// allowKey identifies one line of one file.
type allowKey struct {
	file string
	line int
}

// allowSet maps lines to the analyzer names allowed there.
type allowSet map[allowKey]map[string]bool

// suppresses reports whether d is covered by an allow directive on its own
// line or the line directly above.
func (s allowSet) suppresses(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if names := s[allowKey{d.Pos.Filename, line}]; names[d.Analyzer] || names["all"] {
			return true
		}
	}
	return false
}

// collectAllows gathers `//mtlint:allow` directives from every comment in
// the package.
func collectAllows(pkg *Package) allowSet {
	set := make(allowSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := allowKey{pos.Filename, pos.Line}
				if set[key] == nil {
					set[key] = make(map[string]bool)
				}
				for _, n := range names {
					set[key][n] = true
				}
			}
		}
	}
	return set
}

// parseAllow parses "//mtlint:allow a,b -- reason" into its analyzer names.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//mtlint:allow")
	if !ok {
		return nil, false
	}
	rest, _, _ = strings.Cut(rest, "--")
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// hasDirective reports whether the comment group contains the exact
// directive line (e.g. "//mtlint:hotpath").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// walkStack walks the AST rooted at n, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped, so no matching pop arrives: don't push.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pathSuffixMatch reports whether pkgPath equals suffix or ends with
// "/"+suffix — the package-scoping rule analyzers use so both the real
// module packages ("repro/internal/sim") and test fixtures
// ("determinism/internal/sim") match.
func pathSuffixMatch(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
