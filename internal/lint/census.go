package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The shared-state census is the lint-time analogue of the paper's
// sharing matrix: instead of measuring which threads touch which cache
// lines at simulation time, it computes which struct fields are reachable
// from more than one concurrency root at compile time, and what guards
// each one.
//
// Concurrency roots per package:
//   - every `go` statement (the spawned body runs on its own goroutine);
//   - every exported function or method (callers on arbitrary goroutines
//     — the serving tier's API surface is inherently concurrent);
//   - every function referenced as a value (an HTTP handler registered
//     with mux.HandleFunc runs on the server's connection goroutines).
//
// A field is *shared* when the functions that access it are reachable
// from two or more distinct roots. Each shared field is classified by
// what guards it:
//
//	sync       the field is itself a synchronization primitive
//	channel    the field is a channel (its operations synchronize)
//	atomic     every access goes through sync/atomic or an atomic.* type
//	mutex(L)   every access happens while lock L is held
//	immutable  the field is never written outside construction
//	annotated  the field declaration carries //mtlint:guard <class> -- why
//	NOTHING    none of the above — a latent race; census treats it as an
//	           error
//
// Accesses through a struct value allocated in the enclosing function
// (the `s := &Server{...}; s.x = y; return s` constructor idiom) are
// construction-phase: they happen before the value is published to any
// other goroutine and are exempt from guard classification. Accesses
// whose whole selector chain goes through value-typed locals of the
// current function (a value parameter, value receiver or range value
// variable) touch a stack copy, not shared memory, and are likewise
// exempt — this is what makes the `func (o Options) withDefaults()`
// normalization idiom census-clean.
//
// Lock context is propagated one level interprocedurally: a function
// that is not itself a concurrency root inherits the intersection of
// the locksets held at every one of its call sites, so the
// `evictLocked`-style helper ("caller holds mu") classifies as
// mutex-guarded without annotations. A function ever called with no
// lock held — or reachable as a root — inherits nothing.
//
// # Annotation grammar
//
//	//mtlint:guard <class> [-- reason]
//
// on the field's line, the line above it, or in its doc comment, where
// <class> is one of mutex, atomic, channel, immutable, sync, external.
// The same directive on a type declaration's line (or the line above)
// applies to every field of that struct that lacks its own field-level
// directive — for single-owner instrumentation types whose exported
// method set would otherwise count as concurrent roots. Use it for
// idioms the census cannot prove, e.g. a result field written once and
// published by close(done).
const guardDirective = "//mtlint:guard"

// CensusEntry is one shared field in the census report.
type CensusEntry struct {
	// Pkg, Type, Field identify the field.
	Pkg, Type, Field string
	// Roots is the number of distinct concurrency roots that reach an
	// access of the field.
	Roots int
	// Accesses counts non-construction access sites.
	Accesses int
	// Guard is the classification ("mutex(Server.mu)", "atomic",
	// "channel", "immutable", "sync", "annotated:<class>", "NOTHING").
	Guard string
	// Unguarded lists up to three access sites with no guard when Guard
	// is NOTHING.
	Unguarded []token.Position
}

// Unsafe reports whether the entry is an error (an unguarded shared
// field).
func (e CensusEntry) Unsafe() bool { return e.Guard == "NOTHING" }

// CensusReport runs the census over the packages and returns entries
// sorted by (package, type, field). Only fields of struct types declared
// in the analyzed packages are reported.
func CensusReport(pkgs []*Package) []CensusEntry {
	var out []CensusEntry
	for _, pkg := range pkgs {
		out = append(out, censusPackage(pkg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Field < b.Field
	})
	return out
}

// funcNode is one analyzable function: a declaration or a literal.
type funcNode struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	obj  *types.Func   // nil for literals
}

func (f *funcNode) body() *ast.BlockStmt {
	if f.decl != nil {
		return f.decl.Body
	}
	return f.lit.Body
}

// span returns the function's full source extent, including its
// signature, so receiver and parameter declarations test as "inside".
func (f *funcNode) span() (token.Pos, token.Pos) {
	if f.decl != nil {
		return f.decl.Pos(), f.decl.End()
	}
	return f.lit.Pos(), f.lit.End()
}

// fieldAccess is one non-construction access to a struct field.
type fieldAccess struct {
	fn     *funcNode
	pos    token.Pos
	write  bool
	locked []string // short keys of locks held at the access
	atomic bool     // access goes through sync/atomic or a wrapper method
}

// fieldDecl is one named struct field declared in the package.
type fieldDecl struct {
	typeName  string
	fieldName string
	fieldType types.Type
	annotated string // class from a //mtlint:guard directive, "" if none
}

func censusPackage(pkg *Package) []CensusEntry {
	info := pkg.Info

	// --- Field declarations and their annotations. ---------------------
	guardComments := make(map[allowKey]string) // (file,line) -> class
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if class, ok := parseGuard(c.Text); ok {
					pos := pkg.Fset.Position(c.Pos())
					guardComments[allowKey{pos.Filename, pos.Line}] = class
				}
			}
		}
	}
	decls := make(map[string]*fieldDecl) // field key -> decl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				// A type-level directive (on the type line or the line above,
				// i.e. the tail of its doc comment) is the default for every
				// field of the struct.
				typeClass := ""
				tpos := pkg.Fset.Position(ts.Name.Pos())
				for _, line := range [2]int{tpos.Line, tpos.Line - 1} {
					if class, ok := guardComments[allowKey{tpos.Filename, line}]; ok {
						typeClass = class
					}
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						key := pkg.Path + "." + ts.Name.Name + "." + name.Name
						fd := &fieldDecl{
							typeName:  ts.Name.Name,
							fieldName: name.Name,
							fieldType: info.TypeOf(field.Type),
							annotated: typeClass,
						}
						fpos := pkg.Fset.Position(name.Pos())
						for _, line := range [2]int{fpos.Line, fpos.Line - 1} {
							if class, ok := guardComments[allowKey{fpos.Filename, line}]; ok {
								fd.annotated = class
							}
						}
						decls[key] = fd
					}
				}
			}
		}
	}

	// --- Function inventory, call/reference graph, roots. ---------------
	var funcs []*funcNode
	byObj := make(map[*types.Func]*funcNode)
	byLit := make(map[*ast.FuncLit]*funcNode)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := &funcNode{decl: fd}
			fn.obj, _ = info.Defs[fd.Name].(*types.Func)
			funcs = append(funcs, fn)
			if fn.obj != nil {
				byObj[fn.obj] = fn
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					ln := &funcNode{lit: lit}
					funcs = append(funcs, ln)
					byLit[lit] = ln
				}
				return true
			})
		}
	}

	// Call/reference graph and concurrency roots. The enclosing function
	// of any node is derived from the ancestor stack; each root gets a
	// distinct ID so sharing counts distinct spawn points, not just
	// "rooted yes/no".
	edges := make(map[*funcNode][]*funcNode)
	roots := make(map[*funcNode][]int) // function -> root IDs that start here
	nextRoot := 0
	addRoot := func(fn *funcNode) {
		if fn != nil {
			roots[fn] = append(roots[fn], nextRoot)
			nextRoot++
		}
	}

	currentFunc := func(stack []ast.Node) *funcNode {
		for i := len(stack) - 1; i >= 0; i-- {
			switch anc := stack[i].(type) {
			case *ast.FuncLit:
				return byLit[anc]
			case *ast.FuncDecl:
				if fn := byObj[infoDef(info, anc.Name)]; fn != nil {
					return fn
				}
				for _, cand := range funcs {
					if cand.decl == anc {
						return cand
					}
				}
				return nil
			}
		}
		return nil
	}

	for _, f := range pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return false
				}
				if n.Name.IsExported() {
					if fn := byObj[infoDef(info, n.Name)]; fn != nil {
						addRoot(fn)
					}
				}
			case *ast.FuncLit:
				// A literal runs synchronously in its encloser (called or
				// deferred) unless it is a go statement's target — then the
				// GoStmt root covers it and no synchronous edge exists.
				if parent := currentFunc(stack); parent != nil && !isGoTarget(stack) {
					edges[parent] = append(edges[parent], byLit[n])
				}
			case *ast.GoStmt:
				switch fun := ast.Unparen(n.Call.Fun).(type) {
				case *ast.FuncLit:
					addRoot(byLit[fun])
				case *ast.Ident:
					if obj, ok := info.Uses[fun].(*types.Func); ok {
						addRoot(byObj[obj])
					}
				case *ast.SelectorExpr:
					if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
						addRoot(byObj[obj])
					}
				}
			case *ast.Ident:
				obj, ok := info.Uses[n].(*types.Func)
				if !ok {
					return true
				}
				callee, ok := byObj[obj]
				if !ok {
					return true
				}
				caller := currentFunc(stack)
				if caller == nil {
					return true
				}
				if isGoTarget(stack) {
					// Spawn, not a synchronous call: the GoStmt case already
					// made the target a root.
					return true
				}
				edges[caller] = append(edges[caller], callee)
				if !isCallCallee(stack, n) {
					addRoot(callee)
				}
			}
			return true
		})
	}

	// --- Reachable roots per function (BFS from each root). -------------
	rootsOf := make(map[*funcNode]map[int]bool)
	for fn, ids := range roots {
		for _, id := range ids {
			// BFS
			seen := map[*funcNode]bool{fn: true}
			queue := []*funcNode{fn}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				if rootsOf[cur] == nil {
					rootsOf[cur] = make(map[int]bool)
				}
				rootsOf[cur][id] = true
				for _, next := range edges[cur] {
					if next != nil && !seen[next] {
						seen[next] = true
						queue = append(queue, next)
					}
				}
			}
		}
	}

	// --- Access collection with locksets. -------------------------------
	atomicKeys := collectAtomicFieldKeys(pkg)
	accesses, calls := collectFieldAccesses(pkg, funcs, byObj, atomicKeys)

	// Interprocedural lock context: a non-root function inherits the
	// locks held at every one of its call sites (intersected), so
	// helpers documented as "caller holds mu" classify correctly.
	isRoot := func(fn *funcNode) bool { return len(roots[fn]) > 0 }
	entry := inheritedLocks(calls, isRoot)
	for i := range accesses {
		if inh := entry[accesses[i].fn]; len(inh) > 0 {
			accesses[i].locked = unionStrings(accesses[i].locked, inh)
		}
	}

	// --- Classification. ------------------------------------------------
	byField := make(map[string][]fieldAccess)
	for _, a := range accesses {
		byField[a.key] = append(byField[a.key], a.fieldAccess)
	}

	var out []CensusEntry
	for key, fd := range decls {
		accs := byField[key]
		rootSet := make(map[int]bool)
		for _, a := range accs {
			for id := range rootsOf[a.fn] {
				rootSet[id] = true
			}
		}
		if len(rootSet) < 2 {
			continue // not shared
		}
		e := CensusEntry{
			Pkg: pkg.Path, Type: fd.typeName, Field: fd.fieldName,
			Roots: len(rootSet), Accesses: len(accs),
		}
		e.Guard = classifyGuard(pkg, fd, key, accs, atomicKeys, &e)
		out = append(out, e)
	}
	return out
}

// keyedAccess pairs a field key with its access record.
type keyedAccess struct {
	key string
	fieldAccess
}

// infoDef fetches the *types.Func a FuncDecl defines (nil-safe).
func infoDef(info *types.Info, name *ast.Ident) *types.Func {
	fn, _ := info.Defs[name].(*types.Func)
	return fn
}

// isCallCallee reports whether ident (with ancestor stack) is the callee
// expression of a direct call: f(...) or x.f(...).
func isCallCallee(stack []ast.Node, id *ast.Ident) bool {
	// Walk outward through selector/paren wrappers to the nearest call.
	var child ast.Node = id
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ParenExpr:
			child = anc
			continue
		case *ast.SelectorExpr:
			// Only keep climbing if we're the Sel (method name) side.
			if anc.Sel != child && anc.Sel != id {
				return false
			}
			child = anc
			continue
		case *ast.CallExpr:
			return ast.Unparen(anc.Fun) == child || anc.Fun == child
		default:
			return false
		}
	}
	return false
}

// isGoTarget reports whether the ancestor chain passes through a
// GoStmt's call (already handled as a root).
func isGoTarget(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0 && i >= len(stack)-4; i-- {
		if _, ok := stack[i].(*ast.GoStmt); ok {
			return true
		}
	}
	return false
}

// collectAtomicFieldKeys returns the keys of fields whose address is
// taken by a sync/atomic call anywhere in the package.
func collectAtomicFieldKeys(pkg *Package) map[string]bool {
	info := pkg.Info
	keys := make(map[string]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
					if key := fieldKey(info, sel); key != "" {
						keys[key] = true
					}
				}
			}
			return true
		})
	}
	return keys
}

// censusCall is one static call site inside the package: who calls whom,
// and which locks the caller holds at the site.
type censusCall struct {
	caller *funcNode
	callee *funcNode
	locks  []string
}

// collectFieldAccesses walks every function with the lockset interpreter
// and records each struct-field access with its guard context, plus
// every intra-package call site with the locks held there (feeding the
// interprocedural lock inheritance).
func collectFieldAccesses(pkg *Package, funcs []*funcNode, byObj map[*types.Func]*funcNode, atomicKeys map[string]bool) ([]keyedAccess, []censusCall) {
	info := pkg.Info
	var out []keyedAccess
	var calls []censusCall
	for _, fn := range funcs {
		body := fn.body()
		if body == nil {
			continue
		}
		// Lockset per node in this function.
		locksAt := make(map[ast.Node][]heldLock)
		walkFuncBody(info, body, lockCallbacks{
			onNode: func(n ast.Node, held []heldLock) {
				if len(held) > 0 {
					cp := make([]heldLock, len(held))
					copy(cp, held)
					locksAt[n] = cp
				}
			},
		})
		// Lockset lookup: the node itself, else the nearest enclosing node
		// with a recorded lockset (the interpreter records statements and
		// many exprs).
		locksAtNode := func(n ast.Node, stack []ast.Node) []string {
			if held, ok := locksAt[n]; ok {
				return lockKeysOf(held)
			}
			for i := len(stack) - 1; i >= 0; i-- {
				if held, ok := locksAt[stack[i]]; ok {
					return lockKeysOf(held)
				}
			}
			return nil
		}
		// Constructor-local bases: variables initialized in this function
		// from a composite literal or new().
		local := constructionLocals(info, body)

		fnLocal := fn
		walkStack(body, func(n ast.Node, stack []ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit != fnLocal.lit {
				return false // nested literal: analyzed as its own funcNode
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeNode(info, byObj, call); callee != nil {
					locks := locksAtNode(call, stack)
					if isDelayedCall(stack, call) {
						// go/defer: the call does not run under the locks held
						// at the statement; contribute an empty-lockset site.
						locks = nil
					}
					calls = append(calls, censusCall{caller: fnLocal, callee: callee, locks: locks})
				}
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := fieldKey(info, sel)
			if key == "" || !strings.HasPrefix(key, pkg.Path+".") {
				return true
			}
			if base := selectorBase(sel); base != nil {
				if obj := info.Uses[base]; obj != nil && local[obj] {
					return true // construction-phase access: exempt
				}
			}
			if localValueAccess(info, sel, fnLocal) {
				return true // access to a stack copy: exempt
			}
			acc := fieldAccess{
				fn:     fnLocal,
				pos:    sel.Pos(),
				write:  isWriteContext(stack, sel),
				locked: locksAtNode(sel, stack),
			}
			if atomicKeys[key] && isAtomicOperand(info, stack) {
				acc.atomic = true
			}
			if isWrapperMethodCall(info, stack, sel) {
				acc.atomic = true
			}
			out = append(out, keyedAccess{key: key, fieldAccess: acc})
			return true
		})
	}
	return out, calls
}

// calleeNode resolves a call expression to a same-package function
// declaration, or nil for literals, indirect calls and other packages.
func calleeNode(info *types.Info, byObj map[*types.Func]*funcNode, call *ast.CallExpr) *funcNode {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return byObj[obj]
}

// isDelayedCall reports whether call is the direct operand of a go or
// defer statement (and therefore does not run at the site's lock state).
func isDelayedCall(stack []ast.Node, call *ast.CallExpr) bool {
	if len(stack) == 0 {
		return false
	}
	switch s := stack[len(stack)-1].(type) {
	case *ast.GoStmt:
		return s.Call == call
	case *ast.DeferStmt:
		return s.Call == call
	}
	return false
}

// localValueAccess reports whether sel reaches its field entirely
// through value-typed expressions rooted at a local variable of fn: the
// whole chain is values (no pointer step), so the access touches a
// stack-local copy, not shared memory. Locals captured from an
// enclosing function do not qualify — a closure shares them by
// reference with its spawner.
func localValueAccess(info *types.Info, sel *ast.SelectorExpr, fn *funcNode) bool {
	if s, ok := info.Selections[sel]; ok && s.Indirect() {
		return false // promoted through an embedded pointer
	}
	x := ast.Unparen(sel.X)
	for {
		if isPointerType(info.TypeOf(x)) {
			return false
		}
		switch e := x.(type) {
		case *ast.Ident:
			v, ok := info.Uses[e].(*types.Var)
			if !ok {
				v, ok = info.Defs[e].(*types.Var)
			}
			if !ok || v.IsField() {
				return false
			}
			start, end := fn.span()
			return v.Pos() >= start && v.Pos() < end
		case *ast.SelectorExpr:
			if s, ok := info.Selections[e]; ok && s.Indirect() {
				return false
			}
			x = ast.Unparen(e.X)
		default:
			// Index, deref, call, ... may alias shared backing memory.
			return false
		}
	}
}

// inheritedLocks computes, for each function, the set of locks provably
// held on every entry: the intersection over all call sites of (locks at
// the site ∪ the caller's own inherited set). Roots — exported
// functions, go targets, functions referenced as values — can be entered
// from anywhere and inherit nothing. The fixpoint iterates to handle
// helper-calls-helper chains; sets only shrink, so it terminates.
func inheritedLocks(calls []censusCall, isRoot func(*funcNode) bool) map[*funcNode][]string {
	entry := make(map[*funcNode][]string)
	known := make(map[*funcNode]bool)
	for _, c := range calls {
		for _, fn := range [2]*funcNode{c.caller, c.callee} {
			if fn != nil && isRoot(fn) && !known[fn] {
				known[fn] = true
				entry[fn] = nil
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range calls {
			if c.caller == nil || c.callee == nil || !known[c.caller] {
				continue // unconstrained caller contributes nothing yet
			}
			site := unionStrings(c.locks, entry[c.caller])
			switch {
			case !known[c.callee]:
				known[c.callee] = true
				entry[c.callee] = site
				changed = true
			default:
				inter := intersectStrings(entry[c.callee], site)
				if len(inter) != len(entry[c.callee]) {
					entry[c.callee] = inter
					changed = true
				}
			}
		}
	}
	return entry
}

// unionStrings merges two sorted-or-not string sets into a sorted one.
func unionStrings(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// intersectStrings returns the sorted intersection of two string sets.
func intersectStrings(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, s := range b {
		set[s] = true
	}
	var out []string
	for _, s := range a {
		if set[s] {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// lockKeysOf extracts sorted short keys from a held-lock list.
func lockKeysOf(held []heldLock) []string {
	var keys []string
	for _, h := range held {
		k := h.id.key
		if k == "" {
			k = h.id.expr
		}
		keys = append(keys, shortLockKey(k))
	}
	sort.Strings(keys)
	return keys
}

// constructionLocals finds local variables whose value is allocated in
// this function body (composite literal, &composite, or new()).
func constructionLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	local := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, l := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			if !isAllocExpr(as.Rhs[i]) {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	return local
}

// isAllocExpr reports whether e freshly allocates: T{...}, &T{...}, or
// new(T).
func isAllocExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// selectorBase returns the root identifier of a selector chain
// (s in s.a.b), or nil.
func selectorBase(sel *ast.SelectorExpr) *ast.Ident {
	x := ast.Unparen(sel.X)
	for {
		switch e := x.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			x = ast.Unparen(e.X)
		case *ast.IndexExpr:
			x = ast.Unparen(e.X)
		case *ast.StarExpr:
			x = ast.Unparen(e.X)
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// isWriteContext reports whether the selector is written: assignment
// target, inc/dec, or address-taken (escaping writes are conservatively
// writes unless the address goes to a sync/atomic call, which the
// atomic classification handles).
func isWriteContext(stack []ast.Node, sel *ast.SelectorExpr) bool {
	var child ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ParenExpr:
			child = anc
			continue
		case *ast.AssignStmt:
			for _, l := range anc.Lhs {
				if ast.Unparen(l) == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return anc.X == child
		case *ast.UnaryExpr:
			return anc.Op == token.AND
		default:
			return false
		}
	}
	return false
}

// isWrapperMethodCall reports whether the selector (an atomic.* wrapper
// field) is the receiver of a method call: s.flag.Store(...).
func isWrapperMethodCall(info *types.Info, stack []ast.Node, sel *ast.SelectorExpr) bool {
	if !isAtomicWrapperType(info.TypeOf(sel)) {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.SelectorExpr:
			return true
		default:
			return false
		}
	}
	return false
}

// classifyGuard decides a shared field's guard class.
func classifyGuard(pkg *Package, fd *fieldDecl, key string, accs []fieldAccess, atomicKeys map[string]bool, e *CensusEntry) string {
	if fd.annotated != "" {
		return "annotated:" + fd.annotated
	}
	if isSyncPrimitiveType(fd.fieldType) {
		return "sync"
	}
	if isChannelType(fd.fieldType) {
		return "channel"
	}
	if isAtomicWrapperType(derefType(fd.fieldType)) && !isPointerType(fd.fieldType) {
		return "atomic"
	}
	if atomicKeys[key] {
		// All plain accesses are atomiccheck's problem; the field's
		// discipline is atomic.
		return "atomic"
	}
	// Mutex: every access under some lock.
	allLocked := len(accs) > 0
	lockSet := make(map[string]bool)
	for _, a := range accs {
		if len(a.locked) == 0 {
			allLocked = false
			break
		}
		for _, l := range a.locked {
			lockSet[l] = true
		}
	}
	if allLocked {
		var locks []string
		for l := range lockSet {
			locks = append(locks, l)
		}
		sort.Strings(locks)
		return "mutex(" + strings.Join(locks, ",") + ")"
	}
	// Immutable: no writes outside construction.
	hasWrite := false
	for _, a := range accs {
		if a.write {
			hasWrite = true
			break
		}
	}
	if !hasWrite {
		return "immutable"
	}
	// NOTHING: record up to three unguarded sites.
	for _, a := range accs {
		if len(a.locked) == 0 && !a.atomic && len(e.Unguarded) < 3 {
			e.Unguarded = append(e.Unguarded, pkg.Fset.Position(a.pos))
		}
	}
	return "NOTHING"
}

// isSyncPrimitiveType reports whether t is (a pointer to) one of sync's
// internally synchronized types.
func isSyncPrimitiveType(t types.Type) bool {
	t = derefType(t)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
		return true
	}
	return false
}

// isChannelType reports whether t's underlying type is a channel.
func isChannelType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isPointerType reports whether t is a pointer.
func isPointerType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.(*types.Pointer)
	return ok
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if t == nil {
		return t
	}
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// parseGuard parses "//mtlint:guard <class> [-- reason]".
func parseGuard(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, guardDirective)
	if !ok {
		return "", false
	}
	rest, _, _ = strings.Cut(rest, "--")
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// FormatCensus renders entries as the deterministic text report.
func FormatCensus(entries []CensusEntry) string {
	var b strings.Builder
	lastPkg := ""
	for _, e := range entries {
		if e.Pkg != lastPkg {
			fmt.Fprintf(&b, "%s\n", e.Pkg)
			lastPkg = e.Pkg
		}
		fmt.Fprintf(&b, "  %-36s roots=%-3d accesses=%-4d guard=%s\n",
			e.Type+"."+e.Field, e.Roots, e.Accesses, e.Guard)
		for _, p := range e.Unguarded {
			fmt.Fprintf(&b, "      unguarded at %s:%d\n", p.Filename, p.Line)
		}
	}
	return b.String()
}
