package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the repo's reproducibility contract: identical
// inputs produce bit-identical results and byte-identical reports.
//
// In the simulation packages (internal/sim, internal/workload,
// internal/placement, internal/advise) and the serving result cache
// (internal/serve/rescache) it forbids wall-clock reads (time.Now) and
// the process-global math/rand source (rand.Intn etc. — rand.New with an
// explicit rand.NewSource seed is the sanctioned idiom).
//
// In the presentation packages (internal/report, internal/analysis) it
// forbids ranging over a map where the iteration order can leak into the
// result: a loop body that writes output (Write*/Print*/Fprint*/Sprint*
// calls), appends to a slice that is never handed to sort/slices in the
// same function, or accumulates floats or strings (non-commutative).
// Order-insensitive bodies — integer tallies, map writes, flag sets — are
// allowed, as is the collect-keys-then-sort idiom.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall-clock/global-rand in simulation packages; no map-ordered output in report packages",
	Run:  runDeterminism,
}

// determinismTimeRandScope lists package-path suffixes where time.Now and
// the global math/rand source are forbidden. internal/serve/rescache is
// here because cache keys and eviction order are part of mtserve's
// reproducibility contract: a wall-clock LRU timestamp or a randomized
// eviction tiebreak would make a server's cache state — and therefore
// the Cached flag and hit-rate benchmarks — depend on when it ran.
// internal/advise is here because its online policies run inside the
// engines' cycle-exact loop: the differential harness replays the same
// policy on both engines and requires identical decisions, which a wall
// clock or an unseeded random tiebreak would break.
var determinismTimeRandScope = []string{"internal/sim", "internal/workload", "internal/placement", "internal/serve/rescache", "internal/advise"}

// determinismMapOrderScope lists package-path suffixes where map iteration
// must not feed output or order-sensitive accumulation. internal/cluster
// is here because the coordinator keeps its worker registry and job
// tables in maps while its observable behaviour — lease grant order,
// rendezvous candidate order, /metrics series, worker-ID lists in health
// and error output — must not depend on Go's randomized map iteration.
// (The coordinator legitimately reads the wall clock for heartbeat
// liveness, so it is deliberately not in the time/rand scope.)
// internal/obs is here because its renderings are part of the repo's
// byte-determinism contract: the /metrics exposition (histogram buckets
// included) and the span/Perfetto trace export must produce identical
// bytes for identical recorded state, so map iteration must never feed
// either. (obs legitimately reads wall clocks for spans and latency
// histograms, so it too stays out of the time/rand scope.)
// internal/store is here because the durable result store keeps its
// record index in a map while its on-disk artifacts are part of the
// byte-determinism contract: compaction rewrites segments and recovery
// rebuilds the index, and if either walked the index in map order, two
// stores holding identical records could seal byte-different segment
// files — breaking the warm-restart differential (byte-identical
// artifacts across lives). internal/serve/webhook is here because the
// dispatcher keeps pending deliveries in a map while its journal and its
// retry schedule are observable: journal compaction or queue draining in
// map order would make delivery order and journal bytes run-dependent.
// (Both packages legitimately read wall clocks — flush pacing, retry
// backoff — so neither joins the time/rand scope.)
var determinismMapOrderScope = []string{"internal/report", "internal/analysis", "internal/cluster", "internal/obs", "internal/store", "internal/serve/webhook"}

// seededRandConstructors are the math/rand functions that do not touch the
// global source.
var seededRandConstructors = map[string]bool{"New": true, "NewSource": true}

func inScope(pkgPath string, scope []string) bool {
	for _, s := range scope {
		if pathSuffixMatch(pkgPath, s) {
			return true
		}
	}
	return false
}

func runDeterminism(pass *Pass) {
	if inScope(pass.Pkg.Path, determinismTimeRandScope) {
		checkTimeRand(pass)
	}
	if inScope(pass.Pkg.Path, determinismMapOrderScope) {
		checkMapOrder(pass)
	}
}

// checkTimeRand flags time.Now calls and global-source math/rand uses.
func checkTimeRand(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			// Package-level functions only; methods (e.g. (*rand.Rand).Intn)
			// carry a receiver and are the sanctioned seeded idiom.
			if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Now" {
					pass.Reportf(sel.Pos(), "time.Now is wall-clock and breaks run reproducibility; derive times from simulated cycles")
				}
			case "math/rand", "math/rand/v2":
				if !seededRandConstructors[obj.Name()] {
					pass.Reportf(sel.Pos(), "%s.%s uses a process-global random source; use rand.New(rand.NewSource(seed))", obj.Pkg().Name(), obj.Name())
				}
			}
			return true
		})
	}
}

// checkMapOrder flags range-over-map statements whose body is
// order-sensitive.
func checkMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
					return true
				}
				if reason := mapOrderLeak(rng, fd, info); reason != "" {
					pass.Reportf(rng.Pos(), "range over map %s %s; iterate sorted keys instead", types.ExprString(rng.X), reason)
				}
				return true
			})
		}
	}
}

// mapOrderLeak inspects a range-over-map body and returns a description of
// the first order-sensitive operation, or "" when the body is
// order-insensitive.
func mapOrderLeak(rng *ast.RangeStmt, fd *ast.FuncDecl, info *types.Info) string {
	var reason string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeName(n); ok && isOutputName(name) {
				reason = "feeds output through " + name + " in map iteration order"
				return false
			}
		case *ast.AssignStmt:
			if r := assignOrderLeak(n, rng, fd, info); r != "" {
				reason = r
				return false
			}
		}
		return true
	})
	return reason
}

// assignOrderLeak classifies one assignment inside a map-range body.
func assignOrderLeak(as *ast.AssignStmt, rng *ast.RangeStmt, fd *ast.FuncDecl, info *types.Info) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		t := info.TypeOf(as.Lhs[0])
		if b, ok := t.Underlying().(*types.Basic); ok {
			if b.Info()&types.IsFloat != 0 {
				return "accumulates floating-point values in map iteration order (float addition is not associative)"
			}
			if b.Info()&types.IsString != 0 {
				return "concatenates strings in map iteration order"
			}
		}
		return ""
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(call, info) || i >= len(as.Lhs) {
				continue
			}
			target, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				// append into a map element, field, etc. — cannot prove a
				// later sort.
				return "appends to " + types.ExprString(as.Lhs[i]) + " in map iteration order"
			}
			obj := identObject(target, info)
			if obj == nil || !sortedLater(obj, rng, fd, info) {
				return "appends to " + target.Name + " in map iteration order without a later sort"
			}
		}
	}
	return ""
}

// sortedLater reports whether obj is passed to a sort or slices function
// after the range statement within the same function body.
func sortedLater(obj types.Object, rng *ast.RangeStmt, fd *ast.FuncDecl, info *types.Info) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() < rng.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && identObject(aid, info) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// calleeName extracts the called function's bare name.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// isOutputName reports whether a callee name writes or formats output.
func isOutputName(name string) bool {
	for _, prefix := range []string{"Write", "Print", "Fprint", "Sprint", "Render"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func isBuiltinAppend(call *ast.CallExpr, info *types.Info) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// identObject resolves an identifier to its object via Uses or Defs.
func identObject(id *ast.Ident, info *types.Info) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
