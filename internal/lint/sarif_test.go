package lint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestWriteSARIF pins the SARIF 2.1.0 subset GitHub code scanning
// consumes: schema/version headers, root-relative slash paths, one rule
// per distinct analyzer (sorted), and error-level results with regions.
func TestWriteSARIF(t *testing.T) {
	root := filepath.Join("/", "work", "repo")
	diags := []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "serve", "serve.go"), Line: 42, Column: 7},
			Analyzer: "lockguard",
			Message:  "blocking channel receive while s.mu is held",
		},
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "obs", "bus.go"), Line: 9, Column: 1},
			Analyzer: "leakcheck",
			Message:  "goroutine has no provable stop path",
		},
		{
			Pos:      token.Position{Filename: filepath.Join("/", "elsewhere", "x.go"), Line: 1, Column: 1},
			Analyzer: "lockguard",
			Message:  "outside the root: path must stay absolute",
		},
	}

	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, diags, root); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("WriteSARIF produced invalid JSON: %v\n%s", err, buf.String())
	}

	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version %q, schema %q; want SARIF 2.1.0 with a schema URI", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "mtlint" {
		t.Errorf("driver name %q, want mtlint", run.Tool.Driver.Name)
	}

	// One rule per distinct analyzer, sorted by ID, each documented.
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("got %d rules, want 2 (leakcheck, lockguard): %+v", len(run.Tool.Driver.Rules), run.Tool.Driver.Rules)
	}
	if run.Tool.Driver.Rules[0].ID != "leakcheck" || run.Tool.Driver.Rules[1].ID != "lockguard" {
		t.Errorf("rules not sorted by id: %q, %q", run.Tool.Driver.Rules[0].ID, run.Tool.Driver.Rules[1].ID)
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
	}

	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	first := run.Results[0]
	if first.RuleID != "lockguard" || first.Level != "error" {
		t.Errorf("result 0: ruleId %q level %q, want lockguard/error", first.RuleID, first.Level)
	}
	loc := first.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/serve/serve.go" {
		t.Errorf("in-root path not made root-relative with slashes: %q", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region %+v, want 42:7", loc.Region)
	}
	outURI := run.Results[2].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if outURI != "/elsewhere/x.go" {
		t.Errorf("out-of-root path mangled: %q", outURI)
	}

	// Determinism: a second render is byte-identical.
	var again bytes.Buffer
	if err := lint.WriteSARIF(&again, diags, root); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteSARIF output differs between identical calls")
	}
}
