package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockset tracking shared by the lockguard analyzer and the census: a
// small abstract interpreter over function bodies that models
// sync.Mutex/RWMutex acquisition, release, and defer, and reports which
// locks are held at every visited node. It is intra-procedural and
// branch-aware but loop-insensitive: if/else and switch/select arms are
// walked with forked states and merged by intersection (a lock is "held"
// after a join only when every surviving arm holds it), loop bodies are
// walked once with the entry state. That is exact for the repo's
// straight-line lock...unlock idiom and conservative everywhere else.

// lockMode distinguishes exclusive from shared acquisition.
type lockMode uint8

const (
	lockExcl lockMode = iota // Lock / Unlock
	lockRead                 // RLock / RUnlock
)

// lockIdent names one mutex abstractly.
type lockIdent struct {
	// expr is the rendered owner expression inside one function ("s.mu",
	// "q.nonEmpty.L") — the intra-procedural identity.
	expr string
	// key is the type-level identity used for cross-function
	// acquisition-order facts: "pkg/path.Struct.field" for struct fields,
	// "pkg/path.var" for package-level mutexes, "" when unresolvable.
	key string
	// mode is how the lock was acquired.
	mode lockMode
}

// heldLock is one acquired lock in the abstract state.
type heldLock struct {
	id  lockIdent
	pos token.Pos // acquisition site
	// deferred is set once a matching `defer x.Unlock()` is seen: the lock
	// is released on every return path from here on.
	deferred bool
}

// lockState is the abstract state: held locks in acquisition order.
type lockState struct {
	held []heldLock
	// terminated marks control flow that cannot fall through (return,
	// panic, break, continue, goto).
	terminated bool
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: make([]heldLock, len(s.held))}
	copy(c.held, s.held)
	return c
}

// acquire appends a lock to the held list.
func (s *lockState) acquire(id lockIdent, pos token.Pos) {
	s.held = append(s.held, heldLock{id: id, pos: pos})
}

// release removes the innermost matching held lock; reports whether one
// matched.
func (s *lockState) release(id lockIdent) bool {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].id.expr == id.expr && s.held[i].id.mode == id.mode {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return true
		}
	}
	return false
}

// markDeferred flags the innermost matching held lock as defer-released.
func (s *lockState) markDeferred(id lockIdent) {
	for i := len(s.held) - 1; i >= 0; i-- {
		if s.held[i].id.expr == id.expr && s.held[i].id.mode == id.mode {
			s.held[i].deferred = true
			return
		}
	}
}

// holds reports whether any lock is held (deferred or not).
func (s *lockState) holds() bool { return len(s.held) > 0 }

// leakedAt returns the held locks whose release is not deferred — the
// ones a bare return would leak.
func (s *lockState) leakedAt() []heldLock {
	var out []heldLock
	for _, h := range s.held {
		if !h.deferred {
			out = append(out, h)
		}
	}
	return out
}

// intersect merges two post-branch states: a lock survives only if both
// arms still hold it (matched by expr+mode; deferred flags or-ed so a
// defer in either arm still counts at returns — conservative toward
// fewer false missing-unlock reports).
func intersectStates(a, b *lockState) *lockState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := &lockState{}
	for _, ha := range a.held {
		for _, hb := range b.held {
			if ha.id.expr == hb.id.expr && ha.id.mode == hb.id.mode {
				h := ha
				h.deferred = ha.deferred || hb.deferred
				out.held = append(out.held, h)
				break
			}
		}
	}
	return out
}

// lockCallbacks are the events the interpreter reports. Any callback may
// be nil.
type lockCallbacks struct {
	// onAcquire fires when a lock is acquired; heldBefore is the state
	// before this acquisition (the order-edge source set).
	onAcquire func(id lockIdent, pos token.Pos, heldBefore []heldLock)
	// onReleaseMiss fires when an Unlock has no matching held lock in this
	// function (caller-held idiom; informational, not reported by default).
	onReleaseMiss func(id lockIdent, pos token.Pos)
	// onReturn fires at every explicit return and at an implicit
	// fall-off-the-end of the body; leaked lists held locks with no defer.
	onReturn func(pos token.Pos, leaked []heldLock)
	// onBlocking fires for a blocking construct while any lock is held.
	onBlocking func(desc string, pos token.Pos, held []heldLock)
	// onCall fires for every function/method call with the current state
	// (used for transitive acquisition-order edges).
	onCall func(call *ast.CallExpr, held []heldLock)
	// onNode fires for every visited expression/statement node with the
	// current state (used by the census to classify field accesses).
	onNode func(n ast.Node, held []heldLock)
	// onFuncLit fires for each function literal encountered; the literal's
	// body is NOT walked in the enclosing state (it runs later, under its
	// own locks) — callers analyze it separately.
	onFuncLit func(lit *ast.FuncLit)
}

// lockWalker interprets one function body.
type lockWalker struct {
	info *types.Info
	cb   lockCallbacks
}

// walkFuncBody runs the interpreter over a function body.
func walkFuncBody(info *types.Info, body *ast.BlockStmt, cb lockCallbacks) {
	w := &lockWalker{info: info, cb: cb}
	st := &lockState{}
	w.block(body, st)
	if !st.terminated && cb.onReturn != nil {
		// Falling off the end releases nothing either.
		cb.onReturn(body.End(), st.leakedAt())
	}
}

// mutexOpKind classifies one call as a lock operation.
type mutexOpKind uint8

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
	opRLock
	opRUnlock
)

// mutexOp recognizes x.Lock() / x.Unlock() / x.RLock() / x.RUnlock()
// where the method is declared on sync.Mutex or sync.RWMutex (including
// promotion through embedding). It returns the op kind and the lock's
// identity; opNone otherwise.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (mutexOpKind, lockIdent) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, lockIdent{}
	}
	obj, ok := w.info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return opNone, lockIdent{}
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return opNone, lockIdent{}
	}
	rt := recv.Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return opNone, lockIdent{}
	}
	tn := named.Obj().Name()
	if tn != "Mutex" && tn != "RWMutex" {
		return opNone, lockIdent{}
	}
	var kind mutexOpKind
	var mode lockMode
	switch sel.Sel.Name {
	case "Lock":
		kind, mode = opLock, lockExcl
	case "Unlock":
		kind, mode = opUnlock, lockExcl
	case "RLock":
		kind, mode = opRLock, lockRead
	case "RUnlock":
		kind, mode = opRUnlock, lockRead
	case "TryLock":
		// TryLock acquires only conditionally; treating it as an
		// acquisition would poison every branch after a failed attempt.
		return opNone, lockIdent{}
	default:
		return opNone, lockIdent{}
	}
	id := lockIdent{expr: types.ExprString(sel.X), key: w.lockKey(sel.X), mode: mode}
	return kind, id
}

// lockKey derives the type-level identity of a lock expression: the
// owning named struct type plus field name for field selectors, the
// package-qualified name for plain variables.
func (w *lockWalker) lockKey(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + x.Sel.Name
			}
		}
		// Package-level selector (pkg.someMu).
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := w.info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if obj := w.info.Uses[x]; obj != nil && obj.Pkg() != nil {
			if _, isPkgLevel := obj.Parent().Lookup(x.Name).(*types.Var); isPkgLevel && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Path() + "." + x.Name
			}
		}
	}
	return ""
}

// block interprets a statement list, mutating st in place.
func (w *lockWalker) block(b *ast.BlockStmt, st *lockState) {
	for _, s := range b.List {
		if st.terminated {
			return
		}
		w.stmt(s, st)
	}
}

// stmt interprets one statement.
func (w *lockWalker) stmt(s ast.Stmt, st *lockState) {
	if w.cb.onNode != nil {
		w.cb.onNode(s, st.held)
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s, st)

	case *ast.ExprStmt:
		w.expr(s.X, st)

	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
		if st.holds() && w.cb.onBlocking != nil {
			w.cb.onBlocking("channel send (no select/default)", s.Arrow, st.held)
		}

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, st)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}

	case *ast.IncDecStmt:
		w.expr(s.X, st)

	case *ast.DeferStmt:
		w.deferStmt(s, st)

	case *ast.GoStmt:
		// The spawned body runs under its own locks; leakcheck owns it.
		w.exprShallow(s.Call, st)
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && w.cb.onFuncLit != nil {
			w.cb.onFuncLit(lit)
		}

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st)
		}
		if w.cb.onReturn != nil {
			w.cb.onReturn(s.Pos(), st.leakedAt())
		}
		st.terminated = true

	case *ast.BranchStmt:
		// break/continue/goto: flow leaves this statement list. We do not
		// check lock balance across these edges (loop-insensitive).
		st.terminated = true

	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		then := st.clone()
		w.block(s.Body, then)
		els := st.clone()
		if s.Else != nil {
			w.stmt(s.Else, els)
		}
		merged := intersectStates(then, els)
		st.held = merged.held
		st.terminated = then.terminated && els.terminated

	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		body := st.clone()
		w.block(s.Body, body)
		if s.Post != nil && !body.terminated {
			w.stmt(s.Post, body)
		}
		// Loop-insensitive: fall through with the entry state.

	case *ast.RangeStmt:
		w.expr(s.X, st)
		if st.holds() && w.cb.onBlocking != nil {
			if t := w.info.TypeOf(s.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					w.cb.onBlocking("range over channel", s.For, st.held)
				}
			}
		}
		body := st.clone()
		w.block(s.Body, body)

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		w.caseClauses(s.Body, st)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.stmt(s.Assign, st)
		w.caseClauses(s.Body, st)

	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && st.holds() && w.cb.onBlocking != nil {
			w.cb.onBlocking("select with no default case", s.Select, st.held)
		}
		var arms []*lockState
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			arm := st.clone()
			if cc.Comm != nil {
				// Comm statements inside a select never block by themselves
				// (the select does, handled above): visit without the plain
				// send/recv blocking checks.
				w.commStmt(cc.Comm, arm)
			}
			for _, bs := range cc.Body {
				if arm.terminated {
					break
				}
				w.stmt(bs, arm)
			}
			arms = append(arms, arm)
		}
		w.mergeArms(st, arms)

	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st)
					}
				}
			}
		}
	}
}

// commStmt visits a select case's communication statement without
// treating the send/recv itself as blocking.
func (w *lockWalker) commStmt(s ast.Stmt, st *lockState) {
	switch s := s.(type) {
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprNoRecvCheck(e, st)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
	case *ast.ExprStmt:
		w.exprNoRecvCheck(s.X, st)
	default:
		w.stmt(s, st)
	}
}

// caseClauses walks switch cases with forked states and merges them.
func (w *lockWalker) caseClauses(body *ast.BlockStmt, st *lockState) {
	var arms []*lockState
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		arm := st.clone()
		for _, e := range cc.List {
			w.expr(e, arm)
		}
		for _, bs := range cc.Body {
			if arm.terminated {
				break
			}
			w.stmt(bs, arm)
		}
		arms = append(arms, arm)
	}
	if !hasDefault {
		// Fall-through path when no case matches.
		arms = append(arms, st.clone())
	}
	w.mergeArms(st, arms)
}

// mergeArms folds forked branch states back into st.
func (w *lockWalker) mergeArms(st *lockState, arms []*lockState) {
	if len(arms) == 0 {
		return
	}
	merged := arms[0]
	allTerminated := arms[0].terminated
	for _, a := range arms[1:] {
		merged = intersectStates(merged, a)
		allTerminated = allTerminated && a.terminated
	}
	st.held = merged.held
	st.terminated = allTerminated
}

// deferStmt models `defer x.Unlock()` (and a defer'd function literal
// whose body unlocks) by marking the matching held lock released-on-exit.
func (w *lockWalker) deferStmt(s *ast.DeferStmt, st *lockState) {
	switch kind, id := w.mutexOp(s.Call); kind {
	case opUnlock, opRUnlock:
		st.markDeferred(id)
		return
	case opLock, opRLock:
		// defer x.Lock() is almost certainly a typo'd unlock; treat as
		// no-op here (vet territory).
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		// Scan the literal one level deep for unlock calls.
		for _, bs := range lit.Body.List {
			if es, ok := bs.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if kind, id := w.mutexOp(call); kind == opUnlock || kind == opRUnlock {
						st.markDeferred(id)
					}
				}
			}
		}
		if w.cb.onFuncLit != nil {
			w.cb.onFuncLit(lit)
		}
		return
	}
	// Other defers: evaluate the call expression's operands now (Go
	// semantics) but the call itself runs at exit; no lock effects.
	w.exprShallow(s.Call, st)
}

// expr visits an expression tree in the current state, applying lock
// operations and blocking checks.
func (w *lockWalker) expr(e ast.Expr, st *lockState) { w.exprCheck(e, st, true) }

// exprNoRecvCheck visits an expression whose top-level receive op is part
// of a select comm clause (non-blocking by construction).
func (w *lockWalker) exprNoRecvCheck(e ast.Expr, st *lockState) {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		w.exprCheck(u.X, st, true)
		return
	}
	w.exprCheck(e, st, true)
}

// exprShallow visits call arguments without treating the call itself as
// a lock op (used for go/defer whose call runs elsewhere/later).
func (w *lockWalker) exprShallow(call *ast.CallExpr, st *lockState) {
	for _, a := range call.Args {
		w.expr(a, st)
	}
}

func (w *lockWalker) exprCheck(e ast.Expr, st *lockState, checkRecv bool) {
	if e == nil {
		return
	}
	if w.cb.onNode != nil {
		w.cb.onNode(e, st.held)
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		for _, a := range e.Args {
			w.expr(a, st)
		}
		kind, id := w.mutexOp(e)
		switch kind {
		case opLock, opRLock:
			if w.cb.onAcquire != nil {
				w.cb.onAcquire(id, e.Pos(), st.held)
			}
			st.acquire(id, e.Pos())
			return
		case opUnlock, opRUnlock:
			if !st.release(id) && w.cb.onReleaseMiss != nil {
				w.cb.onReleaseMiss(id, e.Pos())
			}
			return
		}
		// Not a lock op: visit the callee expression (selector receivers
		// may themselves contain calls) and report the call.
		w.exprCheck(e.Fun, st, false)
		if w.cb.onCall != nil {
			w.cb.onCall(e, st.held)
		}
		if st.holds() && w.cb.onBlocking != nil {
			if desc := blockingCallDesc(w.info, e); desc != "" {
				w.cb.onBlocking(desc, e.Pos(), st.held)
			}
		}

	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			w.expr(e.X, st)
			if checkRecv && st.holds() && w.cb.onBlocking != nil {
				w.cb.onBlocking("channel receive (no select/default)", e.Pos(), st.held)
			}
			return
		}
		w.expr(e.X, st)

	case *ast.FuncLit:
		if w.cb.onFuncLit != nil {
			w.cb.onFuncLit(e)
		}
		// Body deliberately not walked in this state.

	case *ast.BinaryExpr:
		w.expr(e.X, st)
		w.expr(e.Y, st)
	case *ast.ParenExpr:
		w.exprCheck(e.X, st, checkRecv)
	case *ast.SelectorExpr:
		w.expr(e.X, st)
	case *ast.IndexExpr:
		w.expr(e.X, st)
		w.expr(e.Index, st)
	case *ast.IndexListExpr:
		w.expr(e.X, st)
		for _, i := range e.Indices {
			w.expr(i, st)
		}
	case *ast.SliceExpr:
		w.expr(e.X, st)
		w.expr(e.Low, st)
		w.expr(e.High, st)
		w.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		w.expr(e.X, st)
	case *ast.StarExpr:
		w.expr(e.X, st)
	case *ast.KeyValueExpr:
		w.expr(e.Key, st)
		w.expr(e.Value, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, st)
		}
	}
}

// blockingNetPkgs are the packages whose calls are treated as blocking
// I/O: holding a mutex across them stalls every other goroutine
// contending for it for a network round-trip.
var blockingNetPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
	"net/rpc":  true,
	"net/smtp": true,
}

// blockingCallDesc classifies a (non lock-op) call as blocking while a
// lock is held: time.Sleep, sync.WaitGroup.Wait, and calls into net /
// net/http. Returns "" for everything else. sync.Cond.Wait is
// deliberately exempt — it releases the associated mutex while waiting.
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return ""
	}
	pkg := obj.Pkg().Path()
	sig, _ := obj.Type().(*types.Signature)
	switch {
	case pkg == "time" && obj.Name() == "Sleep":
		return "time.Sleep"
	case pkg == "sync" && obj.Name() == "Wait":
		// WaitGroup.Wait blocks holding the lock; Cond.Wait releases it.
		if sig != nil && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok && named.Obj().Name() == "WaitGroup" {
				return "sync.WaitGroup.Wait"
			}
		}
		return ""
	case blockingNetPkgs[pkg]:
		recvOrPkg := pkg
		if sig != nil && sig.Recv() != nil {
			recvOrPkg = types.TypeString(sig.Recv().Type(), nil)
		}
		return "network I/O via " + recvOrPkg + "." + obj.Name()
	}
	return ""
}

// describeHeld renders a held-lock list for diagnostics ("s.mu" or
// "s.mu, q.mu").
func describeHeld(held []heldLock) string {
	out := ""
	for i, h := range held {
		if i > 0 {
			out += ", "
		}
		out += h.id.expr
	}
	return out
}
