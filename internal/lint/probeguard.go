package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ProbeGuard checks that every method call on a value of the
// observability-probe interface type (internal/obs.Probe) — or on the
// telemetry pointer types *obs.Bus and *obs.SpanStore, which are nil
// when telemetry is disabled — is dominated by a nil check on that same
// expression. The engines' contract is that a disabled probe costs one
// nil test and nothing else — an unguarded call either panics on the nil
// fast path or silently makes the probe mandatory. The serving daemons
// make the same promise for -no-telemetry: bus and span-store fields stay
// nil, so every call site must carry its own guard. (*obs.ActiveSpan is
// deliberately not covered: its methods are nil-safe by design.)
//
// Three guard shapes are recognized, matching the repo's idiom:
//
//	if m.probe != nil { m.probe.CacheHit(...) }     // enclosing guard
//	if m.probe == nil { return }; m.probe.RunEnd(t) // early-return guard
//	if s.bus != nil && s.bus.Subscribers(t) > 0 {}  // short-circuit conjunct
//
// The receiver is matched syntactically (same rendered expression), and a
// compound condition guards only when the nil check is a top-level &&
// conjunct. The defining package (internal/obs) is exempt: its fan-out and
// decorator types uphold the invariant by construction (Multi drops nil
// entries before any call is made).
var ProbeGuard = &Analyzer{
	Name: "probeguard",
	Doc:  "calls on obs.Probe, *obs.Bus and *obs.SpanStore values must be nil-guarded",
	Run:  runProbeGuard,
}

// probeInterfacePathSuffix locates the interface the analyzer protects.
const probeInterfacePathSuffix = "internal/obs"

func runProbeGuard(pass *Pass) {
	if pathSuffixMatch(pass.Pkg.Path, probeInterfacePathSuffix) {
		return // the defining package implements the fan-out itself
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal {
				return true
			}
			label := guardedObsLabel(s.Recv())
			if label == "" {
				return true
			}
			recv := types.ExprString(sel.X)
			if !guarded(recv, call, stack) {
				pass.Reportf(call.Pos(), "call on %s value %s is not dominated by a %s != nil check", label, recv, recv)
			}
			return true
		})
	}
}

// guardedObsLabel classifies a method receiver type: the diagnostic label
// ("obs.Probe", "obs.Bus", "obs.SpanStore") when calls on it must be
// nil-guarded, "" otherwise.
func guardedObsLabel(t types.Type) string {
	if isProbeInterface(t) {
		return "obs.Probe"
	}
	// The telemetry pointer types: nil with -no-telemetry, so a method
	// call through an unguarded pointer is a latent panic. ActiveSpan is
	// excluded — its methods are nil-safe so call sites stay terse.
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathSuffixMatch(obj.Pkg().Path(), probeInterfacePathSuffix) {
		return ""
	}
	switch obj.Name() {
	case "Bus", "SpanStore":
		return "obs." + obj.Name()
	}
	return ""
}

// isProbeInterface reports whether t is the named interface Probe from an
// internal/obs package.
func isProbeInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Probe" || obj.Pkg() == nil {
		return false
	}
	return pathSuffixMatch(obj.Pkg().Path(), probeInterfacePathSuffix) && types.IsInterface(t)
}

// guarded reports whether the call on receiver expression recv (rendered
// form) is protected by a nil check, looking outward through the ancestor
// stack.
func guarded(recv string, call *ast.CallExpr, stack []ast.Node) bool {
	// Shape 1: an enclosing `if recv != nil { ... }` with the call in the
	// then-branch.
	var inner ast.Node = call
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if containsNode(n.Body, inner) && condAsserts(n.Cond, recv) {
				return true
			}
		case *ast.BinaryExpr:
			// Short-circuit guard: in `recv != nil && ... recv.M() ...` the
			// left conjunct has already established the fact when the right
			// operand evaluates.
			if n.Op == token.LAND && containsNode(n.Y, call) && condAsserts(n.X, recv) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			// A closure may run after the guard's facts expired; don't look
			// past function boundaries except for shape 2 below, which also
			// stops here.
			return earlyReturnGuard(recv, call, stack[i:])
		}
		inner = stack[i]
	}
	return earlyReturnGuard(recv, call, stack)
}

// earlyReturnGuard detects shape 2: within the blocks between the nearest
// function boundary and the call, a preceding statement of the form
// `if recv == nil { return }` (or any terminating body) establishes the
// fact for everything after it.
func earlyReturnGuard(recv string, call *ast.CallExpr, stack []ast.Node) bool {
	var inner ast.Node = call
	for i := len(stack) - 1; i >= 0; i-- {
		if block, ok := stack[i].(*ast.BlockStmt); ok {
			idx := -1
			for j, st := range block.List {
				if st == inner {
					idx = j
					break
				}
			}
			for j := 0; j < idx; j++ {
				if ifs, ok := block.List[j].(*ast.IfStmt); ok &&
					ifs.Else == nil && condRefutes(ifs.Cond, recv) && terminates(ifs.Body) {
					return true
				}
			}
		}
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
		inner = stack[i]
	}
	return false
}

// condAsserts reports whether cond guarantees recv != nil when true:
// either the comparison itself or a top-level && conjunct.
func condAsserts(cond ast.Expr, recv string) bool {
	cond = ast.Unparen(cond)
	if b, ok := cond.(*ast.BinaryExpr); ok {
		switch b.Op {
		case token.LAND:
			return condAsserts(b.X, recv) || condAsserts(b.Y, recv)
		case token.NEQ:
			return nilCompare(b, recv)
		}
	}
	return false
}

// condRefutes reports whether cond being true means recv IS nil
// (`recv == nil`), i.e. the guarded body runs only on the nil path.
func condRefutes(cond ast.Expr, recv string) bool {
	cond = ast.Unparen(cond)
	b, ok := cond.(*ast.BinaryExpr)
	return ok && b.Op == token.EQL && nilCompare(b, recv)
}

// nilCompare reports whether the comparison's operands are recv and nil.
func nilCompare(b *ast.BinaryExpr, recv string) bool {
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(y) {
		return types.ExprString(x) == recv
	}
	if isNilIdent(x) {
		return types.ExprString(y) == recv
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether the block always transfers control away
// (return, panic, continue, break, or goto as its last statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// containsNode reports whether outer's subtree contains n (by position —
// nodes of one file nest by interval).
func containsNode(outer, n ast.Node) bool {
	return outer.Pos() <= n.Pos() && n.End() <= outer.End()
}
