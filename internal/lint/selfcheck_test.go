package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// hotpathFiles are the fast-engine sources whose per-event functions carry
// //mtlint:hotpath annotations.
var hotpathFiles = []string{"fast.go", "heap4.go", "fastcache.go", "fastdir.go"}

// countHotpathDirectives counts //mtlint:hotpath lines across the real
// engine sources so the zero-findings verdict below cannot pass vacuously
// (e.g. if a refactor dropped the annotations).
func countHotpathDirectives(t *testing.T) int {
	t.Helper()
	simDir := filepath.Join(linttest.ModuleRoot(t), "internal", "sim")
	n := 0
	for _, name := range hotpathFiles {
		src, err := os.ReadFile(filepath.Join(simDir, name))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(src), "\n") {
			if strings.TrimSpace(line) == "//mtlint:hotpath" {
				n++
			}
		}
	}
	return n
}

// TestHotpathVerdictOnRealEngine is the static half of the allocation-free
// contract: the hotpath analyzer, run over the real repro/internal/sim
// sources, must report zero findings on the annotated per-event functions.
// TestHotpathMatchesAllocBenchmark below is the dynamic half of the same
// contract; BenchmarkEngineProbeDisabled keeps it measured under -bench.
func TestHotpathVerdictOnRealEngine(t *testing.T) {
	if n := countHotpathDirectives(t); n < 30 {
		t.Fatalf("only %d //mtlint:hotpath annotations found in %v; expected the full per-event set (>= 30)", n, hotpathFiles)
	}
	diags := linttest.Diagnostics(t, []*lint.Analyzer{lint.Hotpath}, "repro/internal/sim")
	for _, d := range diags {
		t.Errorf("hot-path allocation in real engine: %s", d)
	}
}

// selfCheckTrace mirrors bench_test.go's probeBenchTrace: thread length
// scales with events while the working set (16 shared blocks, 4 threads)
// stays fixed, so all setup allocations are identical across lengths.
func selfCheckTrace(events int) *trace.Trace {
	const nThreads = 4
	tr := trace.New("lint-selfcheck", nThreads)
	for i := 0; i < nThreads; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < events; j++ {
			r.Compute(j % 5)
			block := trace.SharedBase + uint64((j+i*3)%16)*sim.DefaultLineSize
			if j%4 == 0 {
				r.Ref(trace.Write, block)
			} else {
				r.Ref(trace.Read, block)
			}
		}
	}
	return tr
}

// TestHotpathMatchesAllocBenchmark cross-checks the analyzer's verdict
// against the runtime allocation count, the same measurement
// BenchmarkEngineProbeDisabled makes: running a 10x longer trace over the
// same working set must not change testing.AllocsPerRun, i.e. the
// annotated per-event path performs zero allocations. If this fails while
// TestHotpathVerdictOnRealEngine passes, the hotpath analyzer has a blind
// spot worth a new check (and vice versa: a new finding with this test
// green means the analyzer is over-approximating).
func TestHotpathMatchesAllocBenchmark(t *testing.T) {
	pl := &placement.Placement{Algorithm: "SELFCHECK", Clusters: [][]int{{0, 1}, {2, 3}}}
	cfg := sim.DefaultConfig(2)
	run := func(tr *trace.Trace) {
		if _, err := sim.RunEngine(tr, pl, cfg, sim.FastEngine); err != nil {
			t.Fatal(err)
		}
	}
	short, long := selfCheckTrace(300), selfCheckTrace(3000)
	allocsShort := testing.AllocsPerRun(5, func() { run(short) })
	allocsLong := testing.AllocsPerRun(5, func() { run(long) })
	if allocsLong != allocsShort {
		t.Errorf("per-event path allocates despite clean hotpath verdict: %.0f allocs for 300-event threads vs %.0f for 3000",
			allocsShort, allocsLong)
	}
}
