// Package linttest is a self-built analysistest-style harness for the lint
// framework: it loads a fixture package from internal/lint/testdata/src,
// runs one analyzer over it, and checks the diagnostics against
// `// want "regexp"` comment assertions in the fixture sources.
//
// Assertion grammar: a line comment containing
//
//	// want "re1" "re2" ...
//
// asserts that the diagnostics reported on that line match the quoted
// regular expressions one-to-one (each regexp matches exactly one
// diagnostic message and every diagnostic is claimed by a regexp). Both
// interpreted (`"..."`) and raw (“ `...` “) quoting are accepted. Lines
// without a want comment must produce no diagnostics.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// loaders caches one Loader per module root: the source importer
// type-checks stdlib dependencies from GOROOT source, which is worth doing
// once per test binary, not once per test.
var loaders sync.Map

func sharedLoader(t *testing.T, root string) *lint.Loader {
	t.Helper()
	if l, ok := loaders.Load(root); ok {
		return l.(*lint.Loader)
	}
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	l.ExtraSrcDirs = []string{filepath.Join(root, "internal", "lint", "testdata", "src")}
	actual, _ := loaders.LoadOrStore(root, l)
	return actual.(*lint.Loader)
}

// ModuleRoot locates the enclosing module root (the directory with go.mod)
// starting from the current working directory.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Run loads the fixture package at pkgPath (relative to testdata/src, or
// any loader-resolvable path) and checks analyzer a's diagnostics against
// the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	root := ModuleRoot(t)
	loader := sharedLoader(t, root)
	pkgs, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", pkgPath, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.Errors {
			t.Errorf("linttest: type error in fixture %s: %v", pkg.Path, terr)
		}
	}
	diags := lint.Run(pkgs, []*lint.Analyzer{a}, loader.ModulePath)
	checkWants(t, pkgs, diags)
}

// lineKey identifies one source line.
type lineKey struct {
	file string
	line int
}

// checkWants matches diagnostics against want comments, failing the test
// on any mismatch in either direction.
func checkWants(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, err := parseWant(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
					}
					if len(patterns) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := lineKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], patterns...)
				}
			}
		}
	}

	unclaimed := make(map[lineKey][]string)
	for _, d := range diags {
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		unclaimed[key] = append(unclaimed[key], d.Message)
	}
	for key, patterns := range wants {
		for _, re := range patterns {
			idx := -1
			for i, msg := range unclaimed[key] {
				if re.MatchString(msg) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none (remaining: %q)",
					key.file, key.line, re.String(), unclaimed[key])
				continue
			}
			unclaimed[key] = append(unclaimed[key][:idx], unclaimed[key][idx+1:]...)
		}
	}
	for key, msgs := range unclaimed {
		for _, msg := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", key.file, key.line, msg)
		}
	}
}

// parseWant extracts the quoted regexps from a `// want ...` comment.
func parseWant(text string) ([]*regexp.Regexp, error) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, nil
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, "want ")
	if !ok {
		return nil, nil
	}
	var patterns []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		var quote byte = rest[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want comment: expected quoted regexp, have %q", rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("want comment: unterminated %c-quote", quote)
		}
		raw := rest[:end+2]
		var lit string
		if quote == '"' {
			var err error
			if lit, err = strconv.Unquote(raw); err != nil {
				return nil, fmt.Errorf("want comment: %v", err)
			}
		} else {
			lit = raw[1 : len(raw)-1]
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad regexp %s: %v", raw, err)
		}
		patterns = append(patterns, re)
		rest = strings.TrimSpace(rest[end+2:])
	}
	return patterns, nil
}

// Load loads packages with the shared loader and returns them — for
// tests that run non-analyzer passes (the shared-state census) or RunFull
// directly. Fixture type errors fail the test.
func Load(t *testing.T, pkgPaths ...string) ([]*lint.Package, *lint.Loader) {
	t.Helper()
	root := ModuleRoot(t)
	loader := sharedLoader(t, root)
	pkgs, err := loader.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", pkgPaths, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.Errors {
			t.Errorf("linttest: type error in %s: %v", pkg.Path, terr)
		}
	}
	return pkgs, loader
}

// Diagnostics loads pkgPath with the shared loader and returns the raw
// diagnostics of the given analyzers — for tests that assert on findings
// directly (e.g. the hot-path cross-check against the real engine
// sources).
func Diagnostics(t *testing.T, analyzers []*lint.Analyzer, pkgPaths ...string) []lint.Diagnostic {
	t.Helper()
	root := ModuleRoot(t)
	loader := sharedLoader(t, root)
	pkgs, err := loader.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("linttest: loading %s: %v", pkgPaths, err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.Errors {
			t.Errorf("linttest: type error in %s: %v", pkg.Path, terr)
		}
	}
	return lint.Run(pkgs, analyzers, loader.ModulePath)
}
