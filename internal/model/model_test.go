package model

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestValidate(t *testing.T) {
	if err := (Machine{RunLength: 10, Latency: 50, SwitchCost: 6}).Validate(); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	if err := (Machine{RunLength: 0, Latency: 50}).Validate(); err == nil {
		t.Error("zero run length accepted")
	}
	if err := (Machine{RunLength: 1, Latency: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestSingleContextLimits(t *testing.T) {
	m := Machine{RunLength: 10, Latency: 50, SwitchCost: 6}
	// One context: busy R out of every R+C+L cycles, in both models.
	want := 10.0 / 66.0
	if got := m.EfficiencyDeterministic(1); !almost(got, want) {
		t.Errorf("deterministic E(1) = %v, want %v", got, want)
	}
	if got := m.EfficiencyMVA(1); !almost(got, want) {
		t.Errorf("MVA E(1) = %v, want %v", got, want)
	}
}

func TestSaturationLimit(t *testing.T) {
	m := Machine{RunLength: 10, Latency: 50, SwitchCost: 6}
	sat := m.Saturation()
	if !almost(sat, 10.0/16.0) {
		t.Errorf("saturation = %v, want 0.625", sat)
	}
	if got := m.EfficiencyDeterministic(100); !almost(got, sat) {
		t.Errorf("deterministic E(100) = %v, want saturation %v", got, sat)
	}
	// MVA approaches but never exceeds saturation.
	if got := m.EfficiencyMVA(200); got > sat || got < 0.99*sat {
		t.Errorf("MVA E(200) = %v, want just below %v", got, sat)
	}
}

func TestSaturationContexts(t *testing.T) {
	m := Machine{RunLength: 10, Latency: 50, SwitchCost: 6}
	if got := m.SaturationContexts(); !almost(got, 66.0/16.0) {
		t.Errorf("N* = %v, want 4.125", got)
	}
	// At ceil(N*) the deterministic model is saturated.
	if got := m.EfficiencyDeterministic(5); !almost(got, m.Saturation()) {
		t.Errorf("E(5) = %v, want saturation", got)
	}
	// Just below, it is not.
	if got := m.EfficiencyDeterministic(4); got >= m.Saturation() {
		t.Errorf("E(4) = %v, want below saturation", got)
	}
}

// Properties: efficiency is in (0, 1], non-decreasing in contexts, and
// the deterministic model dominates MVA (deterministic run lengths hide
// latency at least as well as variable ones).
func TestModelProperties(t *testing.T) {
	f := func(r, l, c uint8, n uint8) bool {
		m := Machine{
			RunLength:  1 + float64(r%50),
			Latency:    float64(l % 200),
			SwitchCost: float64(c % 20),
		}
		contexts := 1 + int(n%32)
		det := m.EfficiencyDeterministic(contexts)
		mva := m.EfficiencyMVA(contexts)
		if det <= 0 || det > 1 || mva <= 0 || mva > 1 {
			return false
		}
		if mva > det+1e-9 {
			return false
		}
		if m.EfficiencyDeterministic(contexts+1) < det-1e-9 {
			return false
		}
		if m.EfficiencyMVA(contexts+1) < mva-1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroLatency(t *testing.T) {
	// With no latency there is nothing to hide: one context already
	// achieves saturation.
	m := Machine{RunLength: 10, Latency: 0, SwitchCost: 5}
	if got := m.EfficiencyDeterministic(1); !almost(got, m.Saturation()) {
		t.Errorf("deterministic E(1) = %v, want %v", got, m.Saturation())
	}
	if got := m.EfficiencyMVA(1); !almost(got, m.Saturation()) {
		t.Errorf("MVA E(1) = %v, want %v", got, m.Saturation())
	}
}

func TestZeroContexts(t *testing.T) {
	m := Machine{RunLength: 10, Latency: 50, SwitchCost: 6}
	if m.EfficiencyDeterministic(0) != 0 || m.EfficiencyMVA(0) != 0 {
		t.Error("zero contexts should give zero efficiency")
	}
}

func TestCurve(t *testing.T) {
	m := Machine{RunLength: 10, Latency: 50, SwitchCost: 6}
	c := Curve(m.EfficiencyMVA, 8)
	if len(c) != 8 {
		t.Fatalf("curve length %d", len(c))
	}
	for i := 1; i < len(c); i++ {
		if c[i] < c[i-1] {
			t.Errorf("curve not monotone at %d: %v", i, c)
		}
	}
}
