// Package model implements analytical processor-efficiency models for
// multithreaded processors, after the related work the paper discusses in
// §5 (Weber & Gupta's saturation analysis, Agarwal's and
// Saavedra-Barrera's models): given the mean useful run length between
// misses, the memory latency and the context switch cost, predict
// processor efficiency as a function of the number of hardware contexts.
//
// Two models are provided: the deterministic two-regime bound (linear
// ramp until the latency is fully hidden, then saturation at R/(R+C)) and
// a machine-repairman queueing model solved by exact mean-value analysis
// (each context cycles between an exponential compute-and-switch station
// and a pure-delay memory station). The ablation experiments compare both
// against the simulator's measured efficiency.
package model

import (
	"fmt"
	"math"
)

// Machine carries the three parameters of the analytical models, all in
// cycles.
type Machine struct {
	// RunLength R is the mean useful execution between blocking memory
	// transactions.
	RunLength float64
	// Latency L is the memory transaction latency.
	Latency float64
	// SwitchCost C is the pipeline-drain cost of a context switch.
	SwitchCost float64
}

// Validate reports the first parameter problem.
func (m Machine) Validate() error {
	if m.RunLength <= 0 {
		return fmt.Errorf("model: run length must be positive, got %v", m.RunLength)
	}
	if m.Latency < 0 || m.SwitchCost < 0 {
		return fmt.Errorf("model: negative latency or switch cost")
	}
	return nil
}

// Saturation returns the efficiency ceiling R/(R+C): with unlimited
// contexts every latency cycle is hidden and only switch overhead remains.
func (m Machine) Saturation() float64 {
	return m.RunLength / (m.RunLength + m.SwitchCost)
}

// SaturationContexts returns the context count at which the deterministic
// model saturates: N* = (R + C + L) / (R + C).
func (m Machine) SaturationContexts() float64 {
	return (m.RunLength + m.SwitchCost + m.Latency) / (m.RunLength + m.SwitchCost)
}

// EfficiencyDeterministic returns the two-regime deterministic model
// (Weber & Gupta): with n contexts of deterministic run length R, the
// processor is busy n·R out of every R+C+L cycles until the other n-1
// contexts fully cover the latency, after which only switches are lost.
func (m Machine) EfficiencyDeterministic(contexts int) float64 {
	if contexts <= 0 {
		return 0
	}
	linear := float64(contexts) * m.RunLength / (m.RunLength + m.SwitchCost + m.Latency)
	if sat := m.Saturation(); linear > sat {
		return sat
	}
	return linear
}

// EfficiencyMVA returns the machine-repairman model solved by exact
// mean-value analysis: a closed network of n customers (contexts) cycling
// between a single-server queueing station with mean service R+C (compute
// then drain) and an infinite-server delay station with mean service L
// (the memory system — the paper's multipath network has no contention).
// Efficiency is the throughput times the useful service R.
func (m Machine) EfficiencyMVA(contexts int) float64 {
	if contexts <= 0 {
		return 0
	}
	service := m.RunLength + m.SwitchCost
	qCPU := 0.0 // mean CPU-station queue length with n-1 customers
	var x float64
	for n := 1; n <= contexts; n++ {
		rCPU := service * (1 + qCPU)
		cycle := rCPU + m.Latency
		x = float64(n) / cycle
		qCPU = x * rCPU
	}
	// Mathematically x*R <= R/(R+C); clamp the floating-point residue.
	return math.Min(x*m.RunLength, m.Saturation())
}

// Curve evaluates a model function for 1..maxContexts.
func Curve(f func(int) float64, maxContexts int) []float64 {
	out := make([]float64, maxContexts)
	for n := 1; n <= maxContexts; n++ {
		out[n-1] = f(n)
	}
	return out
}
