// Package retry is the shared backoff-and-circuit-breaker core behind
// every transient-failure path in the serving tier: the webhook
// dispatcher's redelivery schedule, and serve/client's handling of
// 429/5xx responses (honoring Retry-After) in experiments -remote.
//
// The package is deliberately clock-free and randomness-free: Delay
// takes the attempt number and a caller-supplied jitter unit, Breaker
// methods take the current time as an argument. Callers own their clock
// and their random source, so every schedule the package computes is
// reproducible in tests — the same discipline the determinism analyzer
// enforces on the simulation core.
package retry

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Policy computes exponential-backoff delays with bounded attempts.
// The zero value of each field gets a sensible default.
type Policy struct {
	// BaseDelay is the first retry's delay. Default 250ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Default 30s.
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor. Default 2.
	Multiplier float64
	// MaxAttempts bounds total attempts (first try included). Default 8.
	MaxAttempts int
	// Jitter is the +/- fraction applied to each delay (0.2 = +/-20%).
	// Default 0.2; set negative for exactly zero jitter.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 250 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 30 * time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	switch {
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter == 0:
		p.Jitter = 0.2
	}
	return p
}

// Attempts returns the bounded total number of attempts.
func (p Policy) Attempts() int { return p.withDefaults().MaxAttempts }

// Delay returns how long to wait before retry number attempt (0-based:
// attempt 0 is the delay after the first failure). hint is a
// server-supplied floor — typically a parsed Retry-After — and wins when
// it exceeds the computed backoff; jitterUnit in [0, 1) supplies the
// randomness (pass 0.5 for the midpoint, i.e. no jitter). The result is
// never negative.
func (p Policy) Delay(attempt int, hint time.Duration, jitterUnit float64) time.Duration {
	p = p.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if jitterUnit < 0 {
		jitterUnit = 0
	} else if jitterUnit >= 1 {
		jitterUnit = 1 - 1e-9
	}
	// Spread across [1-Jitter, 1+Jitter) so herds of retriers decorrelate.
	d *= 1 + p.Jitter*(2*jitterUnit-1)
	delay := time.Duration(d)
	if delay > p.MaxDelay {
		delay = p.MaxDelay
	}
	if hint > delay {
		delay = hint
	}
	if delay < 0 {
		delay = 0
	}
	return delay
}

// ParseRetryAfter decodes an HTTP Retry-After header value — either
// delta-seconds or an HTTP date — into a wait duration relative to now.
// Returns false for an absent or unparseable value. A date in the past
// yields 0, true (retry immediately).
func ParseRetryAfter(value string, now time.Time) (time.Duration, bool) {
	if value == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(value); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if when, err := http.ParseTime(value); err == nil {
		d := when.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Breaker is a per-endpoint circuit breaker: after Threshold consecutive
// failures it opens and rejects attempts for Cooldown, then admits a
// single half-open probe whose outcome decides between closing (probe
// succeeded) and re-opening for another cooldown (probe failed).
//
// Like Policy it is clock-free: callers pass the current time, so tests
// drive the breaker through its whole state machine without sleeping.
// Safe for concurrent use.
type Breaker struct {
	mu sync.Mutex
	// threshold and cooldown are fixed at construction.
	threshold int
	cooldown  time.Duration
	// consecutive counts failures since the last success.
	consecutive int
	// openUntil is the end of the current cooldown (zero when closed).
	openUntil time.Time
	// probing marks an in-flight half-open probe.
	probing bool
}

// NewBreaker returns a breaker opening after threshold consecutive
// failures (minimum 1) for cooldown per open period (minimum 1ms).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether an attempt may proceed at time now. While open
// it returns false until the cooldown elapses, then true exactly once
// (the half-open probe) until that probe's outcome is reported.
func (b *Breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.threshold {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// Success reports a successful attempt: the breaker closes and the
// failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	b.openUntil = time.Time{}
}

// Failure reports a failed attempt at time now. Crossing the threshold
// (or failing the half-open probe) opens the breaker for one cooldown.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	b.probing = false
	if b.consecutive >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

// State renders the breaker's condition at time now for metrics and
// health reports: "closed", "open", or "half-open".
func (b *Breaker) State(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.consecutive < b.threshold:
		return "closed"
	case now.Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}
