package retry

import (
	"net/http"
	"testing"
	"time"
)

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, 0, 0.5); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayJitterSpreadsWithinBand(t *testing.T) {
	p := Policy{BaseDelay: time.Second, MaxDelay: time.Minute, Jitter: 0.2}
	lo := p.Delay(0, 0, 0)
	mid := p.Delay(0, 0, 0.5)
	hi := p.Delay(0, 0, 0.999999)
	if lo >= mid || mid >= hi {
		t.Fatalf("jitter not monotone: %v %v %v", lo, mid, hi)
	}
	if lo < 800*time.Millisecond || hi > 1200*time.Millisecond {
		t.Fatalf("jitter outside +/-20%% band: %v .. %v", lo, hi)
	}
	if mid != time.Second {
		t.Fatalf("midpoint jitter = %v, want 1s", mid)
	}
}

func TestDelayHonorsHintFloor(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: -1}
	if got := p.Delay(0, 5*time.Second, 0.5); got != 5*time.Second {
		t.Fatalf("Delay with 5s hint = %v, want 5s (Retry-After wins)", got)
	}
	if got := p.Delay(0, 10*time.Millisecond, 0.5); got != 100*time.Millisecond {
		t.Fatalf("Delay with small hint = %v, want 100ms (backoff wins)", got)
	}
}

func TestDelayNeverNegative(t *testing.T) {
	p := Policy{}
	for _, attempt := range []int{-5, 0, 3, 100} {
		if got := p.Delay(attempt, -time.Hour, 0); got < 0 {
			t.Fatalf("Delay(%d) = %v, negative", attempt, got)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		value string
		want  time.Duration
		ok    bool
	}{
		{"", 0, false},
		{"7", 7 * time.Second, true},
		{"0", 0, true},
		{"-3", 0, false},
		{"garbage", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true},
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.value, now)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = %v, %v; want %v, %v", c.value, got, ok, c.want, c.ok)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	b := NewBreaker(3, time.Minute)

	if !b.Allow(now) || b.State(now) != "closed" {
		t.Fatal("fresh breaker must be closed")
	}
	b.Failure(now)
	b.Failure(now)
	if !b.Allow(now) {
		t.Fatal("breaker opened before threshold")
	}
	b.Failure(now)
	if b.Allow(now) || b.State(now) != "open" {
		t.Fatal("breaker must open at threshold")
	}
	if b.Allow(now.Add(30 * time.Second)) {
		t.Fatal("breaker admitted during cooldown")
	}

	// Cooldown over: exactly one half-open probe.
	later := now.Add(2 * time.Minute)
	if b.State(later) != "half-open" {
		t.Fatalf("State = %q, want half-open", b.State(later))
	}
	if !b.Allow(later) {
		t.Fatal("half-open breaker must admit one probe")
	}
	if b.Allow(later) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: re-open for another full cooldown.
	b.Failure(later)
	if b.Allow(later.Add(30 * time.Second)) {
		t.Fatal("breaker admitted during re-opened cooldown")
	}

	// Next probe succeeds: closed again.
	again := later.Add(2 * time.Minute)
	if !b.Allow(again) {
		t.Fatal("second probe rejected")
	}
	b.Success()
	if !b.Allow(again) || b.State(again) != "closed" {
		t.Fatal("breaker must close after successful probe")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	now := time.Now()
	b := NewBreaker(2, time.Minute)
	b.Failure(now)
	b.Success()
	b.Failure(now)
	if !b.Allow(now) {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}
