package advise

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Recommendation is the advisor's answer: a placement, plus the
// cross-processor traffic accounting behind it.
type Recommendation struct {
	// Placement is the recommended clustering (Algorithm "COHERENCE").
	Placement *placement.Placement
	// CurrentCross is the cross-processor share of the pair traffic
	// under the caller's current placement (0 when none was given).
	CurrentCross uint64
	// ProposedCross is the same quantity under the recommendation.
	ProposedCross uint64
	// PredictedSavings is the predicted cycle savings of adopting the
	// recommendation: avoided cross-processor traffic times the memory
	// latency. 0 when no current placement was given or the
	// recommendation is not an improvement.
	PredictedSavings uint64
}

// Recommend clusters threads by a measured pairwise traffic matrix and
// predicts the savings of adopting the result over the caller's current
// placement (optional). memLatency is the cycle cost charged per
// avoided cross-processor coherence event.
func Recommend(pair [][]uint64, lengths []uint64, procs int, current *placement.Placement, memLatency uint64) (*Recommendation, error) {
	n := len(lengths)
	if n == 0 {
		return nil, fmt.Errorf("advise: no threads")
	}
	if len(pair) != n {
		return nil, fmt.Errorf("advise: pair matrix is %dx? for %d threads", len(pair), n)
	}
	for i, row := range pair {
		if len(row) != n {
			return nil, fmt.Errorf("advise: pair matrix row %d has %d columns, want %d", i, len(row), n)
		}
	}
	pl, err := clusterByTraffic(pair, lengths, procs)
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{
		Placement:     pl,
		ProposedCross: CrossTraffic(pair, AssignOf(pl, n)),
	}
	if current != nil {
		if err := current.Validate(n, procs); err != nil {
			return nil, fmt.Errorf("advise: current placement: %w", err)
		}
		rec.CurrentCross = CrossTraffic(pair, AssignOf(current, n))
		if rec.CurrentCross > rec.ProposedCross {
			rec.PredictedSavings = (rec.CurrentCross - rec.ProposedCross) * memLatency
		}
	}
	return rec, nil
}

// MeasurePairTraffic measures the thread-pair coherence traffic of a
// trace by a one-thread-per-processor run (the paper's §4.2 measurement
// step), returning the symmetrized matrix and the measurement Result.
// cfg.Processors is overridden to the thread count.
func MeasurePairTraffic(tr *trace.Trace, cfg sim.Config, eng sim.Engine) ([][]uint64, *sim.Result, error) {
	n := tr.NumThreads()
	if n == 0 {
		return nil, nil, fmt.Errorf("advise: trace has no threads")
	}
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	pl := &placement.Placement{Algorithm: "ONE-THREAD-PER-PROC", Clusters: clusters}
	cfg.Processors = n
	cfg.MaxContexts = 0
	res, err := sim.RunEngine(tr, pl, cfg, eng)
	if err != nil {
		return nil, nil, err
	}
	return res.PairTrafficSym(), res, nil
}

// Lengths extracts per-thread dynamic lengths from a trace, the load
// measure the balanced clustering uses.
func Lengths(tr *trace.Trace) []uint64 {
	out := make([]uint64, tr.NumThreads())
	for i := range out {
		out[i] = tr.Threads[i].Instructions()
	}
	return out
}
