package advise

import (
	"reflect"
	"testing"

	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ---- virtual algorithm name grammar ----

func TestParseOnlineAlgorithmRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		want OnlineSpec
	}{
		{"ONLINE/COHERENCE@i=200000,c=5000", OnlineSpec{Policy: "COHERENCE", Interval: 200000, Penalty: 5000}},
		{"ONLINE/HYST@i=100,c=0", OnlineSpec{Policy: "HYST", Interval: 100}},
		{"ONLINE/HYST@i=100,c=2000,seed=SHARE-REFS", OnlineSpec{Policy: "HYST", Interval: 100, Penalty: 2000, Seed: "SHARE-REFS"}},
		{"ONLINE/COHERENCE@c=1,i=2", OnlineSpec{Policy: "COHERENCE", Interval: 2, Penalty: 1}},
	}
	for _, tc := range cases {
		spec, ok, err := ParseOnlineAlgorithm(tc.name)
		if err != nil || !ok {
			t.Fatalf("%s: ok=%v err=%v", tc.name, ok, err)
		}
		if spec != tc.want {
			t.Fatalf("%s: parsed %+v, want %+v", tc.name, spec, tc.want)
		}
		// parse -> String -> parse is a fixed point.
		again, ok, err := ParseOnlineAlgorithm(spec.String())
		if err != nil || !ok || again != spec {
			t.Fatalf("%s: canonical %q reparse: %+v ok=%v err=%v", tc.name, spec.String(), again, ok, err)
		}
	}
}

func TestOnlineSpecStringOmitsDefaultSeed(t *testing.T) {
	s := OnlineSpec{Policy: "COHERENCE", Interval: 5, Penalty: 7, Seed: DefaultSeed}
	if got := s.String(); got != "ONLINE/COHERENCE@i=5,c=7" {
		t.Fatalf("default seed leaked into name: %q", got)
	}
	s.Seed = "SHARE-REFS"
	if got := s.String(); got != "ONLINE/COHERENCE@i=5,c=7,seed=SHARE-REFS" {
		t.Fatalf("explicit seed missing from name: %q", got)
	}
	if s.SeedAlgorithm() != "SHARE-REFS" {
		t.Fatalf("SeedAlgorithm: %q", s.SeedAlgorithm())
	}
	if (OnlineSpec{}).SeedAlgorithm() != DefaultSeed {
		t.Fatal("empty seed should resolve to the default")
	}
}

func TestParseOnlineAlgorithmNotOnline(t *testing.T) {
	for _, name := range []string{"LOAD-BAL", "", "COHERENCE", "online/COHERENCE@i=1,c=1"} {
		if _, ok, err := ParseOnlineAlgorithm(name); ok || err != nil {
			t.Fatalf("%q: ok=%v err=%v, want ok=false err=nil", name, ok, err)
		}
	}
	if IsOnlineAlgorithm("LOAD-BAL") || !IsOnlineAlgorithm("ONLINE/x") {
		t.Fatal("IsOnlineAlgorithm prefix check broken")
	}
}

func TestParseOnlineAlgorithmMalformed(t *testing.T) {
	bad := []string{
		"ONLINE/",                           // no policy, no params
		"ONLINE/COHERENCE",                  // no @ section
		"ONLINE/@i=1,c=1",                   // empty policy
		"ONLINE/COHERENCE@i=1,c=1,i=2",      // duplicate key
		"ONLINE/COHERENCE@i=1,c=1,x=3",      // unknown key
		"ONLINE/COHERENCE@i=1,c=",           // empty value
		"ONLINE/COHERENCE@i=1,c",            // no =
		"ONLINE/COHERENCE@i=nope,c=1",       // non-numeric
		"ONLINE/COHERENCE@i=-5,c=1",         // negative
		"ONLINE/COHERENCE@i=0,c=1",          // zero interval
		"ONLINE/NOSUCH@i=1,c=1",             // unknown policy
		"ONLINE/COHERENCE@i=1,c=1,seed=BAD", // unknown seed algorithm
	}
	for _, name := range bad {
		if _, ok, err := ParseOnlineAlgorithm(name); err == nil || ok {
			t.Errorf("%q: accepted malformed name (ok=%v)", name, ok)
		}
	}
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := PolicyByName("NOSUCH"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	opts, err := OnlineSpec{Policy: "HYST", Interval: 9, Penalty: 3}.Options()
	if err != nil || opts.Interval != 9 || opts.Penalty != 3 || opts.Policy.Name() != "HYST" {
		t.Fatalf("Options: %+v err=%v", opts, err)
	}
}

// ---- policy decisions on synthetic checkpoints ----

// syntheticCheckpoint: 4 threads on 2 procs placed {0,1},{2,3} while the
// traffic says the hot pairs are (0,2) and (1,3) — the worst case for the
// seed placement, fully fixable by re-clustering.
func syntheticCheckpoint() (*sim.OnlineCheckpoint, sim.OnlineEnv) {
	pair := [][]uint64{
		{0, 0, 1000, 0},
		{0, 0, 0, 1000},
		{1000, 0, 0, 0},
		{0, 1000, 0, 0},
	}
	ck := &sim.OnlineCheckpoint{
		Epoch:     1,
		Cycle:     1000,
		Assign:    []int{0, 0, 1, 1},
		Pair:      pair,
		EpochPair: pair,
	}
	env := sim.OnlineEnv{Procs: 2, MemLatency: 30, Penalty: 100, Lengths: []uint64{100, 100, 100, 100}}
	return ck, env
}

func TestCoherenceDecide(t *testing.T) {
	ck, env := syntheticCheckpoint()
	want := Coherence{}.Decide(ck, env)
	if want == nil {
		t.Fatal("coherence policy ignored a hot traffic matrix")
	}
	if want[0] != want[2] || want[1] != want[3] || want[0] == want[1] {
		t.Fatalf("hot pairs not co-located: %v", want)
	}
	// No traffic at all: keep the current placement.
	ck.Pair = make([][]uint64, 4)
	for i := range ck.Pair {
		ck.Pair[i] = make([]uint64, 4)
	}
	if got := (Coherence{}).Decide(ck, env); got != nil {
		t.Fatalf("decision without any measured traffic: %v", got)
	}
}

// fixedPolicy always proposes the same assignment.
type fixedPolicy struct{ want []int }

func (fixedPolicy) Name() string                                        { return "FIXED" }
func (p fixedPolicy) Decide(*sim.OnlineCheckpoint, sim.OnlineEnv) []int { return p.want }

func TestHysteresisDecide(t *testing.T) {
	ck, env := syntheticCheckpoint()
	fix := fixedPolicy{want: []int{0, 1, 0, 1}} // co-locate the hot pairs: 2 moves

	// Savings: cur cross = 4000 (all traffic), prop cross = 0.
	// 4000 * MemLatency(30) >> 2 moves * Penalty(100): migrate.
	if got := (Hysteresis{Inner: fix}).Decide(ck, env); !reflect.DeepEqual(got, fix.want) {
		t.Fatalf("profitable migration suppressed: %v", got)
	}

	// Make the epoch window show almost no traffic: predicted savings
	// no longer cover the bill, so hysteresis holds position.
	ck.EpochPair = [][]uint64{
		{0, 0, 1, 0},
		{0, 0, 0, 1},
		{1, 0, 0, 0},
		{0, 1, 0, 0},
	}
	env.MemLatency = 30
	env.Penalty = 1000
	if got := (Hysteresis{Inner: fix}).Decide(ck, env); got != nil {
		t.Fatalf("unprofitable migration allowed: %v", got)
	}

	// Proposal identical to current placement: no moves, no decision.
	if got := (Hysteresis{Inner: fixedPolicy{want: []int{0, 0, 1, 1}}}).Decide(ck, env); got != nil {
		t.Fatalf("no-op proposal should be suppressed: %v", got)
	}

	// Inner declines: hysteresis declines.
	if got := (Hysteresis{Inner: fixedPolicy{}}).Decide(ck, env); got != nil {
		t.Fatalf("nil inner decision should pass through: %v", got)
	}
}

// ---- assignment helpers ----

func TestAssignOfAndCrossTraffic(t *testing.T) {
	pl := &placement.Placement{Algorithm: "X", Clusters: [][]int{{0, 2}, {1}}}
	assign := AssignOf(pl, 4)
	if want := []int{0, 1, 0, -1}; !reflect.DeepEqual(assign, want) {
		t.Fatalf("AssignOf: %v, want %v", assign, want)
	}
	pair := [][]uint64{
		{0, 5, 7, 100},
		{5, 0, 0, 100},
		{7, 0, 0, 100},
		{100, 100, 100, 0},
	}
	// Cross pairs: (0,1) and (1,2)... thread 3 is unplaced and must not
	// contribute. (0,1)=5+5, (1,2)=0+0; (0,2) co-located.
	if got := CrossTraffic(pair, assign); got != 10 {
		t.Fatalf("CrossTraffic: %d, want 10", got)
	}
	if got := CrossTraffic(pair, []int{0, 0, 0, 0}); got != 0 {
		t.Fatalf("co-located CrossTraffic: %d, want 0", got)
	}
}

// ---- Recommend and measurement ----

func TestRecommend(t *testing.T) {
	ck, _ := syntheticCheckpoint()
	lengths := []uint64{100, 100, 100, 100}
	current := &placement.Placement{Algorithm: "SEED", Clusters: [][]int{{0, 1}, {2, 3}}}
	rec, err := Recommend(ck.Pair, lengths, 2, current, 30)
	if err != nil {
		t.Fatal(err)
	}
	assign := AssignOf(rec.Placement, 4)
	if assign[0] != assign[2] || assign[1] != assign[3] {
		t.Fatalf("recommendation does not co-locate hot pairs: %v", assign)
	}
	if rec.ProposedCross != 0 || rec.CurrentCross != 4000 {
		t.Fatalf("cross accounting: cur=%d prop=%d", rec.CurrentCross, rec.ProposedCross)
	}
	if rec.PredictedSavings != 4000*30 {
		t.Fatalf("savings: %d", rec.PredictedSavings)
	}

	// Without a current placement there is nothing to predict against.
	rec, err = Recommend(ck.Pair, lengths, 2, nil, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CurrentCross != 0 || rec.PredictedSavings != 0 {
		t.Fatalf("savings without a baseline: %+v", rec)
	}
}

func TestRecommendRejects(t *testing.T) {
	lengths := []uint64{1, 1}
	square := [][]uint64{{0, 1}, {1, 0}}
	if _, err := Recommend(square, nil, 2, nil, 1); err == nil {
		t.Fatal("no threads accepted")
	}
	if _, err := Recommend([][]uint64{{0}}, lengths, 2, nil, 1); err == nil {
		t.Fatal("matrix/lengths size mismatch accepted")
	}
	if _, err := Recommend([][]uint64{{0, 1}, {1}}, lengths, 2, nil, 1); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	bad := &placement.Placement{Algorithm: "X", Clusters: [][]int{{0, 0}, {1}}}
	if _, err := Recommend(square, lengths, 2, bad, 1); err == nil {
		t.Fatal("invalid current placement accepted")
	}
}

// pairedTrace builds a 4-thread trace where threads 0 and 2 ping-pong
// one shared line, threads 1 and 3 another — disjoint hot pairs.
func pairedTrace() *trace.Trace {
	tr := trace.New("paired", 4)
	for i := 0; i < 4; i++ {
		r := trace.NewRecorder(tr, i)
		line := trace.SharedBase + uint64(i%2)*64*trace.WordSize
		for j := 0; j < 200; j++ {
			r.Compute(2)
			r.Store(line)
		}
	}
	return tr
}

func TestMeasurePairTrafficAndLengths(t *testing.T) {
	tr := pairedTrace()
	pair, res, err := MeasurePairTraffic(tr, sim.DefaultConfig(1), sim.FastEngine)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(pair) != 4 {
		t.Fatalf("measurement shape: %v", pair)
	}
	for a := range pair {
		for b := range pair[a] {
			if pair[a][b] != pair[b][a] {
				t.Fatalf("matrix not symmetric at (%d,%d)", a, b)
			}
		}
	}
	if pair[0][2] == 0 || pair[1][3] == 0 {
		t.Fatalf("hot pairs not measured: %v", pair)
	}
	if pair[0][1] >= pair[0][2] || pair[0][3] >= pair[0][2] {
		t.Fatalf("cold pair outweighs hot pair: %v", pair)
	}
	lengths := Lengths(tr)
	if len(lengths) != 4 || lengths[0] == 0 || lengths[0] != lengths[3] {
		t.Fatalf("lengths: %v", lengths)
	}
	// Measurement must refuse an empty trace.
	if _, _, err := MeasurePairTraffic(trace.New("empty", 0), sim.DefaultConfig(1), sim.FastEngine); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// ---- end to end: real policies driving the online engines ----

// TestOnlinePoliciesEnginesAgree runs the shipped policies through both
// engines on a workload whose seed placement splits the hot pairs, and
// requires bit-identical results — the cross-engine differential for the
// advise layer itself.
func TestOnlinePoliciesEnginesAgree(t *testing.T) {
	tr := pairedTrace()
	seed := &placement.Placement{Algorithm: "SEED", Clusters: [][]int{{0, 1}, {2, 3}}}
	cfg := sim.DefaultConfig(2)
	for _, policy := range []sim.OnlinePolicy{Coherence{}, Hysteresis{}} {
		opts := sim.OnlineOptions{Interval: 400, Penalty: 32, Policy: policy}
		ref, err := sim.RunOnlineGuarded(tr, seed, cfg, sim.ReferenceEngine, opts, nil, sim.Guard{})
		if err != nil {
			t.Fatalf("%s: reference: %v", policy.Name(), err)
		}
		fast, err := sim.RunOnlineGuarded(tr, seed, cfg, sim.FastEngine, opts, nil, sim.Guard{})
		if err != nil {
			t.Fatalf("%s: fast: %v", policy.Name(), err)
		}
		if !reflect.DeepEqual(ref, fast) {
			t.Fatalf("%s: engines diverge: ref exec %d (%d moves) vs fast exec %d (%d moves)",
				policy.Name(), ref.ExecTime, ref.Online.Migrations, fast.ExecTime, fast.Online.Migrations)
		}
		if ref.Online == nil || ref.Online.Policy != policy.Name() {
			t.Fatalf("%s: missing or mislabeled online stats", policy.Name())
		}
		if ref.Online.Migrations == 0 {
			t.Fatalf("%s: pathological seed placement triggered no migration", policy.Name())
		}
	}
}
