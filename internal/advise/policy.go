// Package advise is the placement advisor: online re-placement policies
// for the simulation engines' mid-run migration support
// (sim.RunOnlineGuarded), the virtual ONLINE/… algorithm-name grammar
// the service tier uses to sweep online configurations through the
// unchanged /v1/sweep machinery, and the Recommend core behind the
// /v1/advise endpoint.
//
// The paper's dynamic COHERENCE-TRAFFIC algorithm (§4.2) re-places
// threads *between* runs from a measured pairwise traffic matrix. The
// policies here port that metric to *online* operation: the engine
// checkpoints per-thread-pair coherence stats every detection interval
// and the policy re-clusters mid-run, optionally with hysteresis so a
// migration happens only when its predicted savings exceed the charged
// migration cost.
package advise

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/placement"
	"repro/internal/sim"
)

// Coherence is the ported COHERENCE metric as an online policy: at every
// boundary it re-clusters threads by the cumulative measured
// thread-pair coherence traffic, exactly like
// placement.CoherenceTraffic but fed by live engine stats instead of a
// separate measurement run.
type Coherence struct{}

// Name implements sim.OnlinePolicy.
func (Coherence) Name() string { return "COHERENCE" }

// Decide implements sim.OnlinePolicy: cluster by the cumulative pair
// matrix, thread-balanced like the paper's dynamic algorithm. An
// infeasible clustering (or a boundary before any traffic) keeps the
// current placement.
func (Coherence) Decide(ck *sim.OnlineCheckpoint, env sim.OnlineEnv) []int {
	if !anyTraffic(ck.Pair) {
		return nil
	}
	pl, err := clusterByTraffic(ck.Pair, env.Lengths, env.Procs)
	if err != nil {
		return nil
	}
	return AssignOf(pl, len(env.Lengths))
}

// Hysteresis wraps another policy and suppresses its decision unless the
// predicted cycle savings exceed the migration bill: each avoided unit
// of cross-processor traffic is worth ~MemLatency cycles (extrapolated
// from the last epoch's traffic), each migrated thread costs Penalty.
type Hysteresis struct {
	// Inner produces candidate assignments; zero value means Coherence.
	Inner sim.OnlinePolicy
}

// Name implements sim.OnlinePolicy.
func (h Hysteresis) Name() string { return "HYST" }

// Decide implements sim.OnlinePolicy.
func (h Hysteresis) Decide(ck *sim.OnlineCheckpoint, env sim.OnlineEnv) []int {
	inner := h.Inner
	if inner == nil {
		inner = Coherence{}
	}
	want := inner.Decide(ck, env)
	if want == nil {
		return nil
	}
	moves := uint64(0)
	for t, q := range want {
		if q >= 0 && ck.Assign[t] >= 0 && q != ck.Assign[t] {
			moves++
		}
	}
	if moves == 0 {
		return nil
	}
	cur := CrossTraffic(ck.EpochPair, ck.Assign)
	prop := CrossTraffic(ck.EpochPair, want)
	if cur <= prop {
		return nil
	}
	if (cur-prop)*env.MemLatency <= moves*env.Penalty {
		return nil
	}
	return want
}

// PolicyNames lists the online policies, decision-order stable.
func PolicyNames() []string { return []string{"COHERENCE", "HYST"} }

// PolicyByName resolves an online policy name.
func PolicyByName(name string) (sim.OnlinePolicy, error) {
	switch name {
	case "COHERENCE":
		return Coherence{}, nil
	case "HYST":
		return Hysteresis{}, nil
	}
	return nil, fmt.Errorf("advise: unknown online policy %q", name)
}

// anyTraffic reports whether the matrix has any nonzero entry.
func anyTraffic(m [][]uint64) bool {
	for _, row := range m {
		for _, v := range row {
			if v != 0 {
				return true
			}
		}
	}
	return false
}

// clusterByTraffic runs the paper's §4.2 clustering on a measured
// thread-pair traffic matrix.
func clusterByTraffic(pair [][]uint64, lengths []uint64, procs int) (*placement.Placement, error) {
	d := &analysis.SharingData{Lengths: lengths}
	alg := placement.CoherenceTraffic(pair)
	return alg.Place(d, procs, 0)
}

// AssignOf flattens a placement into a thread→processor assignment.
// Threads missing from the placement map to -1.
func AssignOf(pl *placement.Placement, threads int) []int {
	assign := make([]int, threads)
	for i := range assign {
		assign[i] = -1
	}
	for q, cluster := range pl.Clusters {
		for _, t := range cluster {
			if t >= 0 && t < threads {
				assign[t] = q
			}
		}
	}
	return assign
}

// CrossTraffic sums the pair traffic between threads placed on different
// processors — the interconnect-visible share of the matrix under the
// given assignment. Unplaced threads (-1) contribute nothing.
func CrossTraffic(pair [][]uint64, assign []int) uint64 {
	var sum uint64
	for a, row := range pair {
		if a >= len(assign) || assign[a] < 0 {
			continue
		}
		for b, v := range row {
			if b >= len(assign) || assign[b] < 0 {
				continue
			}
			if assign[a] != assign[b] {
				sum += v
			}
		}
	}
	return sum
}
