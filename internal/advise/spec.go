package advise

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/placement"
	"repro/internal/sim"
)

// Virtual online algorithm names. The service tier sweeps online
// configurations through the same /v1/sweep machinery as static
// algorithms by encoding the whole online configuration in the
// algorithm name:
//
//	ONLINE/<policy>@i=<interval>,c=<cost>[,seed=<static-alg>]
//
// e.g. "ONLINE/COHERENCE@i=200000,c=5000" or
// "ONLINE/HYST@i=100000,c=2000,seed=SHARE-REFS". Because the name flows
// into placement.Placement.Algorithm and from there into
// core.PlacementKey, every cache, store and cluster-shard key is online
// parameter aware with zero wire-protocol changes.

// OnlinePrefix marks a virtual online algorithm name.
const OnlinePrefix = "ONLINE/"

// DefaultSeed is the static placement an online run starts from when
// the name does not pick one: the paper's load-balancing baseline, i.e.
// "online starts where a sharing-oblivious scheduler would".
const DefaultSeed = "LOAD-BAL"

// OnlineSpec is a parsed virtual online algorithm name.
type OnlineSpec struct {
	// Policy is an online policy name (see PolicyNames).
	Policy string
	// Interval is the detection interval in cycles (> 0).
	Interval uint64
	// Penalty is the per-thread migration cost in cycles.
	Penalty uint64
	// Seed is the static algorithm providing the starting placement.
	Seed string
}

// String renders the canonical name: parse→String is idempotent, and
// the default seed is omitted to keep names (and cache keys) stable.
func (s OnlineSpec) String() string {
	name := fmt.Sprintf("%s%s@i=%d,c=%d", OnlinePrefix, s.Policy, s.Interval, s.Penalty)
	if s.Seed != "" && s.Seed != DefaultSeed {
		name += ",seed=" + s.Seed
	}
	return name
}

// Validate checks the spec against the policy and algorithm registries.
func (s OnlineSpec) Validate() error {
	if _, err := PolicyByName(s.Policy); err != nil {
		return err
	}
	if s.Interval == 0 {
		return fmt.Errorf("advise: %s: detection interval must be positive", s.String())
	}
	seed := s.Seed
	if seed == "" {
		seed = DefaultSeed
	}
	if _, err := placement.ByName(seed); err != nil {
		return fmt.Errorf("advise: online seed: %w", err)
	}
	return nil
}

// Options resolves the spec into engine options.
func (s OnlineSpec) Options() (sim.OnlineOptions, error) {
	p, err := PolicyByName(s.Policy)
	if err != nil {
		return sim.OnlineOptions{}, err
	}
	return sim.OnlineOptions{Interval: s.Interval, Penalty: s.Penalty, Policy: p}, nil
}

// SeedAlgorithm returns the effective seed algorithm name.
func (s OnlineSpec) SeedAlgorithm() string {
	if s.Seed == "" {
		return DefaultSeed
	}
	return s.Seed
}

// IsOnlineAlgorithm reports whether name uses the virtual grammar.
func IsOnlineAlgorithm(name string) bool { return strings.HasPrefix(name, OnlinePrefix) }

// ParseOnlineAlgorithm parses a virtual online algorithm name. ok is
// false (with a nil error) when name is not an ONLINE/… name at all;
// a malformed ONLINE/… name returns an error.
func ParseOnlineAlgorithm(name string) (spec OnlineSpec, ok bool, err error) {
	if !IsOnlineAlgorithm(name) {
		return OnlineSpec{}, false, nil
	}
	rest := name[len(OnlinePrefix):]
	policy, params, found := strings.Cut(rest, "@")
	if !found || policy == "" {
		return OnlineSpec{}, false, fmt.Errorf("advise: malformed online algorithm %q: want %sPOLICY@i=N,c=N", name, OnlinePrefix)
	}
	spec = OnlineSpec{Policy: policy}
	seen := map[string]bool{}
	for _, kv := range strings.Split(params, ",") {
		k, v, found := strings.Cut(kv, "=")
		if !found || v == "" {
			return OnlineSpec{}, false, fmt.Errorf("advise: malformed online parameter %q in %q", kv, name)
		}
		if seen[k] {
			return OnlineSpec{}, false, fmt.Errorf("advise: duplicate online parameter %q in %q", k, name)
		}
		seen[k] = true
		switch k {
		case "i":
			spec.Interval, err = strconv.ParseUint(v, 10, 64)
		case "c":
			spec.Penalty, err = strconv.ParseUint(v, 10, 64)
		case "seed":
			spec.Seed = v
		default:
			return OnlineSpec{}, false, fmt.Errorf("advise: unknown online parameter %q in %q", k, name)
		}
		if err != nil {
			return OnlineSpec{}, false, fmt.Errorf("advise: bad online parameter %q in %q: %w", kv, name, err)
		}
	}
	if err := spec.Validate(); err != nil {
		return OnlineSpec{}, false, err
	}
	return spec, true, nil
}
