package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format (all integers are unsigned varints unless noted):
//
//	magic   4 bytes  "MTT1"
//	appLen  uvarint, app name bytes
//	nthreads uvarint
//	per thread:
//	    id      uvarint (must equal index)
//	    nrefs   uvarint
//	    per ref:
//	        gapKind uvarint: gap<<1 | kind
//	        addr    uvarint: zig-zag delta from previous address
//
// Address deltas compress the strided access patterns the kernels produce.

var magic = [4]byte{'M', 'T', 'T', '1'}

// WriteTo serializes the trace in the binary format.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}

	if err := write(magic[:]); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(tr.App))); err != nil {
		return n, err
	}
	if err := write([]byte(tr.App)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(tr.Threads))); err != nil {
		return n, err
	}
	for i, t := range tr.Threads {
		if err := writeUvarint(uint64(i)); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(len(t.events))); err != nil {
			return n, err
		}
		var prev uint64
		for _, wrd := range t.events {
			e := Unpack(wrd)
			gk := uint64(e.Gap) << 1
			if e.Kind == Write {
				gk |= 1
			}
			if err := writeUvarint(gk); err != nil {
				return n, err
			}
			delta := int64(e.Addr) - int64(prev)
			zz := uint64(delta<<1) ^ uint64(delta>>63)
			if err := writeUvarint(zz); err != nil {
				return n, err
			}
			prev = e.Addr
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadFrom parses a trace in the binary format. It validates the header and
// structural invariants and returns a descriptive error on corruption.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	appLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading app name length: %w", err)
	}
	const maxName = 1 << 12
	if appLen == 0 || appLen > maxName {
		return nil, fmt.Errorf("trace: implausible app name length %d", appLen)
	}
	name := make([]byte, appLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading app name: %w", err)
	}
	nthreads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading thread count: %w", err)
	}
	const maxThreads = 1 << 16
	if nthreads == 0 || nthreads > maxThreads {
		return nil, fmt.Errorf("trace: implausible thread count %d", nthreads)
	}
	tr := New(string(name), int(nthreads))
	for i := 0; i < int(nthreads); i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d: reading id: %w", i, err)
		}
		if id != uint64(i) {
			return nil, fmt.Errorf("trace: thread %d has id %d", i, id)
		}
		nrefs, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: thread %d: reading ref count: %w", i, err)
		}
		t := tr.Threads[i]
		t.events = make([]uint64, 0, nrefs)
		var prev uint64
		for j := uint64(0); j < nrefs; j++ {
			gk, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d ref %d: reading gap: %w", i, j, err)
			}
			gap := gk >> 1
			if gap > uint64(MaxGap) {
				return nil, fmt.Errorf("trace: thread %d ref %d: gap %d out of range", i, j, gap)
			}
			zz, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: thread %d ref %d: reading addr: %w", i, j, err)
			}
			delta := int64(zz>>1) ^ -int64(zz&1)
			addr := uint64(int64(prev) + delta)
			if addr > MaxAddr {
				return nil, fmt.Errorf("trace: thread %d ref %d: address %#x out of range", i, j, addr)
			}
			prev = addr
			k := Read
			if gk&1 != 0 {
				k = Write
			}
			t.append(Pack(Event{Gap: uint32(gap), Kind: k, Addr: addr}))
		}
	}
	return tr, nil
}
