package trace

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Binary trace containers. Two variants share one per-event encoding (a
// gap/kind uvarint followed by a zig-zag address-delta uvarint, so the
// strided access patterns the kernels produce compress well):
//
// MTT1 (legacy, read-only):
//
//	magic   4 bytes  "MTT1"
//	appLen  uvarint, app name bytes
//	nthreads uvarint
//	per thread:
//	    id      uvarint (must equal index)
//	    nrefs   uvarint
//	    nrefs × (gapKind uvarint, addr-delta uvarint)
//
// MTT1 has no framing or checksums: truncation at a thread boundary and
// bit flips inside the varint payload can silently decode to a different
// but structurally valid trace. MTT2 (io2.go) closes both holes and is
// what WriteTo emits; ReadFrom accepts either.

var (
	magic1 = [4]byte{'M', 'T', 'T', '1'}
	magic2 = [4]byte{'M', 'T', 'T', '2'}
)

const (
	formatMTT1 = "MTT1"
	formatMTT2 = "MTT2"

	// maxName and maxThreads bound header fields so a corrupt count
	// cannot demand an absurd allocation.
	maxName    = 1 << 12
	maxThreads = 1 << 16
)

// countingReader is a buffered reader that tracks the stream offset
// consumed, so decode errors can report where the damage was detected.
type countingReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.off += int64(n)
	return n, err
}

// appendEvent appends one packed event in the shared per-event encoding,
// returning the extended buffer and the event's address (the next delta
// base).
func appendEvent(buf []byte, w uint64, prev uint64) ([]byte, uint64) {
	e := Unpack(w)
	gk := uint64(e.Gap) << 1
	if e.Kind == Write {
		gk |= 1
	}
	buf = binary.AppendUvarint(buf, gk)
	delta := int64(e.Addr) - int64(prev)
	buf = binary.AppendUvarint(buf, uint64(delta<<1)^uint64(delta>>63))
	return buf, e.Addr
}

// WriteTo serializes the trace in the current (MTT2) binary format.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	return tr.writeMTT2To(w)
}

// writeMTT1To serializes the trace in the legacy MTT1 container. New files
// are always MTT2; this writer exists so tests can prove ReadFrom's
// backward compatibility against real MTT1 bytes.
func (tr *Trace) writeMTT1To(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		return write(buf[:binary.PutUvarint(buf[:], v)])
	}

	if err := write(magic1[:]); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(tr.App))); err != nil {
		return n, err
	}
	if err := write([]byte(tr.App)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(tr.Threads))); err != nil {
		return n, err
	}
	var scratch []byte
	for i, t := range tr.Threads {
		if err := writeUvarint(uint64(i)); err != nil {
			return n, err
		}
		if err := writeUvarint(uint64(len(t.events))); err != nil {
			return n, err
		}
		var prev uint64
		for _, wrd := range t.events {
			scratch, prev = appendEvent(scratch[:0], wrd, prev)
			if err := write(scratch); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// ReadFrom parses a trace in either binary container, dispatching on the
// magic. Every decode failure — truncation, checksum mismatch, structural
// damage — is reported as a *CorruptError carrying the byte offset;
// callers test with errors.As instead of string matching.
func ReadFrom(r io.Reader) (*Trace, error) {
	cr := &countingReader{br: bufio.NewReader(r)}
	var m [4]byte
	if _, err := io.ReadFull(cr, m[:]); err != nil {
		return nil, corruptRead("", cr.off, "magic", err)
	}
	switch m {
	case magic1:
		return readMTT1(cr)
	case magic2:
		return readMTT2(cr)
	default:
		return nil, corruptf("", 0, "magic", "bad magic %q", m)
	}
}

// readMTT1 decodes the legacy unchecksummed container (magic already
// consumed).
func readMTT1(cr *countingReader) (*Trace, error) {
	appLen, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptRead(formatMTT1, cr.off, "header", err)
	}
	if appLen == 0 || appLen > maxName {
		return nil, corruptf(formatMTT1, cr.off, "header", "implausible app name length %d", appLen)
	}
	name := make([]byte, appLen)
	if _, err := io.ReadFull(cr, name); err != nil {
		return nil, corruptRead(formatMTT1, cr.off, "header", err)
	}
	nthreads, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, corruptRead(formatMTT1, cr.off, "header", err)
	}
	if nthreads == 0 || nthreads > maxThreads {
		return nil, corruptf(formatMTT1, cr.off, "header", "implausible thread count %d", nthreads)
	}
	tr := New(string(name), int(nthreads))
	for i := 0; i < int(nthreads); i++ {
		section := threadSection(i)
		id, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, corruptRead(formatMTT1, cr.off, section, err)
		}
		if id != uint64(i) {
			return nil, corruptf(formatMTT1, cr.off, section, "thread at index %d has id %d", i, id)
		}
		nrefs, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, corruptRead(formatMTT1, cr.off, section, err)
		}
		if nrefs == 0 {
			return nil, corruptf(formatMTT1, cr.off, section, "thread has no references")
		}
		t := tr.Threads[i]
		// Cap the pre-allocation hint: MTT1 carries no framing to sanity-
		// check nrefs against, so a corrupt count must not demand a huge
		// slice before the first decode error can surface.
		t.events = make([]uint64, 0, min(nrefs, 1<<16))
		var prev uint64
		for j := uint64(0); j < nrefs; j++ {
			gk, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, corruptRead(formatMTT1, cr.off, section, err)
			}
			zz, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, corruptRead(formatMTT1, cr.off, section, err)
			}
			w, cerr := decodeEvent(gk, zz, &prev)
			if cerr != "" {
				return nil, corruptf(formatMTT1, cr.off, section, "ref %d: %s", j, cerr)
			}
			t.append(w)
		}
	}
	return tr, nil
}

// decodeEvent validates and packs one event from its wire fields. It
// returns a non-empty description on out-of-range values; prev is updated
// to the decoded address.
func decodeEvent(gk, zz uint64, prev *uint64) (uint64, string) {
	gap := gk >> 1
	if gap > uint64(MaxGap) {
		return 0, "gap out of range"
	}
	delta := int64(zz>>1) ^ -int64(zz&1)
	addr := uint64(int64(*prev) + delta)
	if addr > MaxAddr {
		return 0, "address out of range"
	}
	if addr%WordSize != 0 {
		return 0, "address not word-aligned"
	}
	*prev = addr
	k := Read
	if gk&1 != 0 {
		k = Write
	}
	return Pack(Event{Gap: uint32(gap), Kind: k, Addr: addr}), ""
}
