package trace

import (
	"errors"
	"fmt"
	"io"
)

// ErrChecksum marks a section whose stored CRC32 does not match its
// payload: the bytes were damaged between writer and reader.
var ErrChecksum = errors.New("checksum mismatch")

// ErrTruncated marks a stream that ended before the format said it would:
// a partial download, a crashed writer, a chopped file. It wraps
// io.ErrUnexpectedEOF so either sentinel matches with errors.Is.
var ErrTruncated = fmt.Errorf("truncated stream: %w", io.ErrUnexpectedEOF)

// CorruptError is the typed error every trace decode failure is reported
// through: callers distinguish corrupt input from I/O plumbing errors with
// errors.As instead of string matching, and get the byte offset at which
// the damage was detected.
type CorruptError struct {
	// Offset is the byte offset into the stream at which the problem was
	// detected (the reader's position, not necessarily where the damage
	// physically is).
	Offset int64
	// Format is the container variant being decoded ("MTT1", "MTT2", or
	// "" when the magic itself was unreadable).
	Format string
	// Section names the structural element being decoded when the
	// corruption surfaced ("magic", "header", "thread 3", "end").
	Section string
	// Err is the underlying cause: ErrChecksum, ErrTruncated, a plain
	// description, or an error from the underlying reader.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	format := e.Format
	if format == "" {
		format = "trace"
	}
	return fmt.Sprintf("trace: corrupt %s stream at byte %d (%s): %v", format, e.Offset, e.Section, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *CorruptError) Unwrap() error { return e.Err }

// corruptf builds a CorruptError with a formatted cause.
func corruptf(format string, off int64, section, causeFormat string, args ...any) *CorruptError {
	return &CorruptError{
		Offset:  off,
		Format:  format,
		Section: section,
		Err:     fmt.Errorf(causeFormat, args...),
	}
}

// corruptRead wraps a read failure: EOF mid-structure is truncation, and
// every other error is passed through so callers can still reach the root
// cause (e.g. an injected I/O fault) via errors.Is.
func corruptRead(format string, off int64, section string, err error) *CorruptError {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		err = ErrTruncated
	}
	return &CorruptError{Offset: off, Format: format, Section: section, Err: err}
}
