// Package trace defines the per-thread memory reference trace format used
// throughout the reproduction: a compact in-memory event encoding, a
// recorder for workload kernels, sequential cursors for the simulator, and
// a binary on-disk format.
//
// A trace models what the paper obtained from MPtrace on a Sequent
// Symmetry: for every thread of an explicitly parallel program, the ordered
// sequence of data memory references it performs, each annotated with the
// number of non-memory instructions executed since the previous reference.
//
// Addresses are word-granularity byte addresses. Addresses at or above
// SharedBase belong to the program's shared data segment; addresses below
// it are private to some thread. This mirrors the explicit shared-memory
// segment of the Sequent programming model the paper's workload used.
package trace

import (
	"fmt"
	"sort"
)

// SharedBase is the first address of the shared data segment. Every address
// >= SharedBase is shared-segment data; every address below is private.
const SharedBase uint64 = 1 << 40

// WordSize is the granularity of a data reference in bytes. Kernels address
// 8-byte words.
const WordSize = 8

// IsShared reports whether addr lies in the shared data segment.
func IsShared(addr uint64) bool { return addr >= SharedBase }

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Event is one memory reference: Gap instructions of pure computation are
// executed, then the reference itself (which also counts as one
// instruction).
type Event struct {
	// Gap is the number of non-memory instructions executed since the
	// previous reference (or since thread start).
	Gap uint32
	// Kind says whether the reference is a load or a store.
	Kind Kind
	// Addr is the word-aligned byte address referenced.
	Addr uint64
}

// Packed event layout (64 bits):
//
//	bits  0..43  address (44 bits, word addresses up to 16 TB)
//	bit   44     kind (0 = read, 1 = write)
//	bits 45..63  gap (19 bits, up to 524287 instructions)
//
// Gaps larger than maxGap are split by the recorder into filler events, so
// the packed form is lossless for any recorded trace.
const (
	addrBits = 44
	addrMask = (uint64(1) << addrBits) - 1
	kindBit  = uint64(1) << addrBits
	gapShift = addrBits + 1
	// MaxGap is the largest instruction gap representable in one packed
	// event. Recorder splits larger gaps across events.
	MaxGap = (uint32(1) << (64 - gapShift)) - 1
)

// MaxAddr is the largest representable address.
const MaxAddr = addrMask

// Pack encodes an event into its 64-bit representation. It panics if the
// address or gap exceeds the representable range; the Recorder never
// produces such events.
func Pack(e Event) uint64 {
	if e.Addr > addrMask {
		panic(fmt.Sprintf("trace: address %#x exceeds %d-bit range", e.Addr, addrBits))
	}
	if e.Gap > MaxGap {
		panic(fmt.Sprintf("trace: gap %d exceeds max %d", e.Gap, MaxGap))
	}
	w := e.Addr | uint64(e.Gap)<<gapShift
	if e.Kind == Write {
		w |= kindBit
	}
	return w
}

// Unpack decodes a packed event.
func Unpack(w uint64) Event {
	e := Event{
		Addr: w & addrMask,
		Gap:  uint32(w >> gapShift),
	}
	if w&kindBit != 0 {
		e.Kind = Write
	}
	return e
}

// Thread is one thread's complete reference stream.
type Thread struct {
	// ID is the thread's index within its application, dense from 0.
	ID int

	events []uint64

	// cached totals, computed lazily
	instr uint64
	reads uint64
}

// NewThread returns an empty thread with the given ID.
func NewThread(id int) *Thread { return &Thread{ID: id} }

// Refs returns the number of memory references in the thread.
func (t *Thread) Refs() int { return len(t.events) }

// Event returns the i'th reference.
func (t *Thread) Event(i int) Event { return Unpack(t.events[i]) }

// append adds a packed event. Used by the Recorder and the binary reader.
func (t *Thread) append(w uint64) {
	t.events = append(t.events, w)
	t.instr = 0 // invalidate cache
}

// Instructions returns the thread's dynamic length in instructions: every
// reference counts as one instruction plus its preceding gap.
func (t *Thread) Instructions() uint64 {
	if t.instr == 0 && len(t.events) > 0 {
		var n, r uint64
		for _, w := range t.events {
			n += uint64(w>>gapShift) + 1
			if w&kindBit == 0 {
				r++
			}
		}
		t.instr = n
		t.reads = r
	}
	return t.instr
}

// Reads returns the number of load references.
func (t *Thread) Reads() uint64 {
	t.Instructions()
	return t.reads
}

// Writes returns the number of store references.
func (t *Thread) Writes() uint64 { return uint64(t.Refs()) - t.Reads() }

// Cursor returns a sequential reader positioned at the first reference.
func (t *Thread) Cursor() *Cursor { return &Cursor{t: t} }

// Cursor iterates a thread's references in order. The zero Cursor is not
// valid; obtain one from Thread.Cursor.
type Cursor struct {
	t   *Thread
	pos int
}

// Next returns the next reference and true, or a zero Event and false when
// the stream is exhausted.
func (c *Cursor) Next() (Event, bool) {
	if c.pos >= len(c.t.events) {
		return Event{}, false
	}
	e := Unpack(c.t.events[c.pos])
	c.pos++
	return e, true
}

// Remaining returns how many references have not yet been returned by Next.
func (c *Cursor) Remaining() int { return len(c.t.events) - c.pos }

// Reset rewinds the cursor to the beginning of the thread.
func (c *Cursor) Reset() { c.pos = 0 }

// Trace is a complete application trace: one stream per thread.
type Trace struct {
	// App is the application name, e.g. "LocusRoute".
	App string
	// Threads holds every thread, indexed by Thread.ID.
	Threads []*Thread
}

// New returns an empty trace for the named application with n threads.
func New(app string, n int) *Trace {
	tr := &Trace{App: app, Threads: make([]*Thread, n)}
	for i := range tr.Threads {
		tr.Threads[i] = NewThread(i)
	}
	return tr
}

// NumThreads returns the number of threads in the trace.
func (tr *Trace) NumThreads() int { return len(tr.Threads) }

// TotalInstructions sums the dynamic lengths of all threads.
func (tr *Trace) TotalInstructions() uint64 {
	var n uint64
	for _, t := range tr.Threads {
		n += t.Instructions()
	}
	return n
}

// TotalRefs sums the reference counts of all threads.
func (tr *Trace) TotalRefs() uint64 {
	var n uint64
	for _, t := range tr.Threads {
		n += uint64(t.Refs())
	}
	return n
}

// Validate checks structural invariants: thread IDs dense and in order,
// addresses word-aligned, non-empty threads. It returns the first problem
// found, or nil.
func (tr *Trace) Validate() error {
	if tr.App == "" {
		return fmt.Errorf("trace: empty application name")
	}
	for i, t := range tr.Threads {
		if t == nil {
			return fmt.Errorf("trace: thread %d is nil", i)
		}
		if t.ID != i {
			return fmt.Errorf("trace: thread at index %d has ID %d", i, t.ID)
		}
		if t.Refs() == 0 {
			return fmt.Errorf("trace: thread %d has no references", i)
		}
		for j := 0; j < t.Refs(); j++ {
			e := t.Event(j)
			if e.Addr%WordSize != 0 {
				return fmt.Errorf("trace: thread %d event %d: address %#x not word-aligned", i, j, e.Addr)
			}
		}
	}
	return nil
}

// ThreadLengths returns every thread's dynamic length, indexed by thread ID.
func (tr *Trace) ThreadLengths() []uint64 {
	ls := make([]uint64, len(tr.Threads))
	for i, t := range tr.Threads {
		ls[i] = t.Instructions()
	}
	return ls
}

// SortedAddrs returns the distinct addresses referenced by thread t in
// ascending order. Intended for tests and diagnostics.
func (t *Thread) SortedAddrs() []uint64 {
	seen := make(map[uint64]struct{})
	for _, w := range t.events {
		seen[w&addrMask] = struct{}{}
	}
	out := make([]uint64, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
