package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// MTT2: the current on-disk container. Section-framed, length-prefixed,
// CRC32-checksummed:
//
//	magic   4 bytes "MTT2"
//	section, repeated:
//	    kind    1 byte: 'H' header, 'T' thread, 'E' end
//	    len     uvarint, payload length in bytes
//	    payload len bytes
//	    crc     4 bytes little-endian, IEEE CRC32 of payload
//
//	header payload: appLen uvarint, app bytes, nthreads uvarint
//	thread payload: id uvarint, nrefs uvarint, nrefs × per-event encoding
//	end payload:    nthreads uvarint, totalRefs uvarint
//
// Sections must appear as one H, then exactly nthreads T in id order,
// then one E whose counts cross-check what was decoded. The mandatory end
// section makes truncation detectable even at a clean section boundary;
// the per-section CRC makes byte damage (bit flips, duplicated or dropped
// ranges) detectable even when the varint stream still happens to parse.
const (
	sectionHeader = byte('H')
	sectionThread = byte('T')
	sectionEnd    = byte('E')

	// maxSection bounds a section payload so a corrupt length prefix
	// cannot demand an absurd allocation before decoding can fail.
	maxSection = 1 << 28
)

func threadSection(i int) string { return "thread " + strconv.Itoa(i) }

// writeMTT2To serializes the trace in the MTT2 container.
func (tr *Trace) writeMTT2To(w io.Writer) (int64, error) {
	var n int64
	writeSection := func(kind byte, payload []byte) error {
		var hdr [1 + binary.MaxVarintLen64]byte
		hdr[0] = kind
		m := 1 + binary.PutUvarint(hdr[1:], uint64(len(payload)))
		if _, err := w.Write(hdr[:m]); err != nil {
			return err
		}
		n += int64(m)
		if _, err := w.Write(payload); err != nil {
			return err
		}
		n += int64(len(payload))
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(crc[:]); err != nil {
			return err
		}
		n += 4
		return nil
	}

	if _, err := w.Write(magic2[:]); err != nil {
		return n, err
	}
	n += 4
	payload := binary.AppendUvarint(nil, uint64(len(tr.App)))
	payload = append(payload, tr.App...)
	payload = binary.AppendUvarint(payload, uint64(len(tr.Threads)))
	if err := writeSection(sectionHeader, payload); err != nil {
		return n, err
	}
	var total uint64
	for i, t := range tr.Threads {
		payload = binary.AppendUvarint(payload[:0], uint64(i))
		payload = binary.AppendUvarint(payload, uint64(len(t.events)))
		var prev uint64
		for _, wrd := range t.events {
			payload, prev = appendEvent(payload, wrd, prev)
		}
		total += uint64(len(t.events))
		if err := writeSection(sectionThread, payload); err != nil {
			return n, err
		}
	}
	payload = binary.AppendUvarint(payload[:0], uint64(len(tr.Threads)))
	payload = binary.AppendUvarint(payload, total)
	if err := writeSection(sectionEnd, payload); err != nil {
		return n, err
	}
	return n, nil
}

// section is one decoded MTT2 frame.
type section struct {
	kind    byte
	payload []byte
	// start is the stream offset of the first payload byte.
	start int64
}

// readSection decodes and CRC-verifies one frame.
func readSection(cr *countingReader, name string) (section, error) {
	var s section
	kind, err := cr.ReadByte()
	if err != nil {
		return s, corruptRead(formatMTT2, cr.off, name, err)
	}
	s.kind = kind
	length, err := binary.ReadUvarint(cr)
	if err != nil {
		return s, corruptRead(formatMTT2, cr.off, name, err)
	}
	if length > maxSection {
		return s, corruptf(formatMTT2, cr.off, name, "implausible section length %d", length)
	}
	s.start = cr.off
	s.payload, err = readPayload(cr, length)
	if err != nil {
		return s, corruptRead(formatMTT2, cr.off, name, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(cr, crc[:]); err != nil {
		return s, corruptRead(formatMTT2, cr.off, name, err)
	}
	if got, want := crc32.ChecksumIEEE(s.payload), binary.LittleEndian.Uint32(crc[:]); got != want {
		return s, &CorruptError{Offset: s.start, Format: formatMTT2, Section: name,
			Err: fmt.Errorf("%w (stored %#x, computed %#x)", ErrChecksum, want, got)}
	}
	return s, nil
}

// readPayload reads n bytes in bounded chunks, so a corrupt length prefix
// on a truncated stream fails fast instead of allocating the full claim.
func readPayload(cr *countingReader, n uint64) ([]byte, error) {
	const chunk = 64 << 10
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		m := n - uint64(len(buf))
		if m > chunk {
			m = chunk
		}
		old := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(cr, buf[old:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// sliceCursor walks a section payload, reporting stream offsets for
// errors.
type sliceCursor struct {
	data []byte
	pos  int
	base int64 // stream offset of data[0]
}

func (c *sliceCursor) off() int64 { return c.base + int64(c.pos) }

func (c *sliceCursor) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(c.data[c.pos:])
	if n <= 0 {
		return 0, false
	}
	c.pos += n
	return v, true
}

// readMTT2 decodes the checksummed container (magic already consumed).
func readMTT2(cr *countingReader) (*Trace, error) {
	hdr, err := readSection(cr, "header")
	if err != nil {
		return nil, err
	}
	if hdr.kind != sectionHeader {
		return nil, corruptf(formatMTT2, hdr.start, "header", "unexpected section kind %q", hdr.kind)
	}
	hc := sliceCursor{data: hdr.payload, base: hdr.start}
	appLen, ok := hc.uvarint()
	if !ok {
		return nil, corruptf(formatMTT2, hc.off(), "header", "bad app name length varint")
	}
	if appLen == 0 || appLen > maxName || appLen > uint64(len(hdr.payload)-hc.pos) {
		return nil, corruptf(formatMTT2, hc.off(), "header", "implausible app name length %d", appLen)
	}
	name := string(hdr.payload[hc.pos : hc.pos+int(appLen)])
	hc.pos += int(appLen)
	nthreads, ok := hc.uvarint()
	if !ok {
		return nil, corruptf(formatMTT2, hc.off(), "header", "bad thread count varint")
	}
	if nthreads == 0 || nthreads > maxThreads {
		return nil, corruptf(formatMTT2, hc.off(), "header", "implausible thread count %d", nthreads)
	}
	if hc.pos != len(hdr.payload) {
		return nil, corruptf(formatMTT2, hc.off(), "header", "%d trailing payload bytes", len(hdr.payload)-hc.pos)
	}

	tr := New(name, int(nthreads))
	var total uint64
	for i := 0; i < int(nthreads); i++ {
		sname := threadSection(i)
		s, err := readSection(cr, sname)
		if err != nil {
			return nil, err
		}
		if s.kind != sectionThread {
			return nil, corruptf(formatMTT2, s.start, sname, "unexpected section kind %q (stream ends early?)", s.kind)
		}
		c := sliceCursor{data: s.payload, base: s.start}
		id, ok := c.uvarint()
		if !ok {
			return nil, corruptf(formatMTT2, c.off(), sname, "bad thread id varint")
		}
		if id != uint64(i) {
			return nil, corruptf(formatMTT2, c.off(), sname, "thread at index %d has id %d", i, id)
		}
		nrefs, ok := c.uvarint()
		if !ok {
			return nil, corruptf(formatMTT2, c.off(), sname, "bad ref count varint")
		}
		if nrefs == 0 {
			return nil, corruptf(formatMTT2, c.off(), sname, "thread has no references")
		}
		t := tr.Threads[i]
		t.events = make([]uint64, 0, min(nrefs, uint64(len(s.payload))))
		var prev uint64
		for j := uint64(0); j < nrefs; j++ {
			gk, ok := c.uvarint()
			if !ok {
				return nil, corruptf(formatMTT2, c.off(), sname, "ref %d: bad gap varint", j)
			}
			zz, ok := c.uvarint()
			if !ok {
				return nil, corruptf(formatMTT2, c.off(), sname, "ref %d: bad addr varint", j)
			}
			w, cerr := decodeEvent(gk, zz, &prev)
			if cerr != "" {
				return nil, corruptf(formatMTT2, c.off(), sname, "ref %d: %s", j, cerr)
			}
			t.append(w)
		}
		if c.pos != len(s.payload) {
			return nil, corruptf(formatMTT2, c.off(), sname, "%d trailing payload bytes", len(s.payload)-c.pos)
		}
		total += nrefs
	}

	end, err := readSection(cr, "end")
	if err != nil {
		return nil, err
	}
	if end.kind != sectionEnd {
		return nil, corruptf(formatMTT2, end.start, "end", "unexpected section kind %q", end.kind)
	}
	ec := sliceCursor{data: end.payload, base: end.start}
	gotThreads, ok := ec.uvarint()
	if !ok {
		return nil, corruptf(formatMTT2, ec.off(), "end", "bad thread count varint")
	}
	gotRefs, ok := ec.uvarint()
	if !ok {
		return nil, corruptf(formatMTT2, ec.off(), "end", "bad ref total varint")
	}
	if gotThreads != nthreads || gotRefs != total {
		return nil, corruptf(formatMTT2, ec.off(), "end",
			"end section records %d threads / %d refs, stream carried %d / %d", gotThreads, gotRefs, nthreads, total)
	}
	return tr, nil
}

// WriteFile atomically writes the trace to path in the MTT2 format: the
// bytes go to a temporary file in the same directory, are synced to
// stable storage, and only then renamed over path. A crash or write error
// leaves either the previous file or no file — never a partial trace.
func (tr *Trace) WriteFile(path string) (int64, error) {
	f, err := os.CreateTemp(filepath.Dir(path), ".mtt-tmp-*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	n, err := tr.WriteTo(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return n, err
	}
	return n, nil
}

// ReadFile reads a trace file in either container variant.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ReadFrom(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}
