package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func traceEqual(a, b *Trace) bool {
	if a.App != b.App || len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Threads {
		ta, tb := a.Threads[i], b.Threads[i]
		if ta.ID != tb.ID || ta.Refs() != tb.Refs() {
			return false
		}
		for j := 0; j < ta.Refs(); j++ {
			if ta.Event(j) != tb.Event(j) {
				return false
			}
		}
	}
	return true
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		tr := randomTrace(rng, "app", 1+rng.Intn(6), 1+rng.Intn(500))
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !traceEqual(tr, got) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := ReadFrom(strings.NewReader("NOPE-not-a-trace"))
	if err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(2)), "app", 3, 200)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate at a spread of points; every prefix must fail cleanly.
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.9, 0.99} {
		n := int(float64(len(full)) * frac)
		if _, err := ReadFrom(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncated at %d/%d bytes: accepted", n, len(full))
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), "app", 2, 50)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	rng := rand.New(rand.NewSource(4))
	rejected := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		cp := append([]byte(nil), full...)
		// Flip a byte somewhere in the header / counts region where
		// corruption is detectable (payload bit flips can produce a
		// different but structurally valid trace, which is fine).
		cp[rng.Intn(12)] ^= 0xff
		if _, err := ReadFrom(bytes.NewReader(cp)); err != nil {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no header corruption was ever detected")
	}
}

func TestReadRejectsImplausibleCounts(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(0) // app name length 0
	if _, err := ReadFrom(&buf); err == nil {
		t.Error("empty app name accepted")
	}
}

func BenchmarkWriteTo(b *testing.B) {
	tr := randomTrace(rand.New(rand.NewSource(5)), "bench", 8, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrom(b *testing.B) {
	tr := randomTrace(rand.New(rand.NewSource(6)), "bench", 8, 10000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrom(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
