package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func traceEqual(a, b *Trace) bool {
	if a.App != b.App || len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Threads {
		ta, tb := a.Threads[i], b.Threads[i]
		if ta.ID != tb.ID || ta.Refs() != tb.Refs() {
			return false
		}
		for j := 0; j < ta.Refs(); j++ {
			if ta.Event(j) != tb.Event(j) {
				return false
			}
		}
	}
	return true
}

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		tr := randomTrace(rng, "app", 1+rng.Intn(6), 1+rng.Intn(500))
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		if got := buf.Bytes()[:4]; !bytes.Equal(got, magic2[:]) {
			t.Fatalf("WriteTo emitted magic %q, want MTT2", got)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !traceEqual(tr, got) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

// TestReadMTT1BackCompat proves ReadFrom still decodes the legacy
// unchecksummed container byte stream.
func TestReadMTT1BackCompat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		tr := randomTrace(rng, "legacy", 1+rng.Intn(4), 1+rng.Intn(300))
		var buf bytes.Buffer
		if _, err := tr.writeMTT1To(&buf); err != nil {
			t.Fatalf("write MTT1: %v", err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("read MTT1: %v", err)
		}
		if !traceEqual(tr, got) {
			t.Fatalf("trial %d: MTT1 round trip mismatch", trial)
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := ReadFrom(strings.NewReader("NOPE-not-a-trace"))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("bad magic: got %v, want *CorruptError", err)
	}
	if ce.Section != "magic" {
		t.Errorf("section = %q, want magic", ce.Section)
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	for name, write := range map[string]func(*Trace, io.Writer) (int64, error){
		"MTT2": (*Trace).WriteTo,
		"MTT1": (*Trace).writeMTT1To,
	} {
		t.Run(name, func(t *testing.T) {
			tr := randomTrace(rand.New(rand.NewSource(2)), "app", 3, 200)
			var buf bytes.Buffer
			if _, err := write(tr, &buf); err != nil {
				t.Fatal(err)
			}
			full := buf.Bytes()
			// Truncate at every single byte position: every strict prefix
			// must fail cleanly, as a typed truncation error.
			for n := 0; n < len(full); n++ {
				_, err := ReadFrom(bytes.NewReader(full[:n]))
				if err == nil {
					t.Fatalf("truncated at %d/%d bytes: accepted", n, len(full))
				}
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("truncated at %d: got %v, want *CorruptError", n, err)
				}
			}
		})
	}
}

// TestMTT2RejectsEveryByteFlip is the core zero-silent-corruption
// property: under MTT2, flipping any single byte anywhere in the stream
// is detected. (MTT1 cannot promise this — payload flips can decode to a
// different but structurally valid trace.)
func TestMTT2RejectsEveryByteFlip(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(3)), "app", 2, 50)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		for _, mask := range []byte{0x01, 0x80, 0xff} {
			cp := append([]byte(nil), full...)
			cp[i] ^= mask
			got, err := ReadFrom(bytes.NewReader(cp))
			if err == nil {
				t.Fatalf("byte %d ^ %#x: corrupted stream accepted (decoded %d refs)",
					i, mask, got.TotalRefs())
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("byte %d ^ %#x: got %v, want *CorruptError", i, mask, err)
			}
		}
	}
}

// TestMTT2ChecksumError checks that a payload flip surfaces as
// ErrChecksum with a plausible offset.
func TestMTT2ChecksumError(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(7)), "app", 2, 50)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one bit in the middle of the stream: deep inside a thread
	// payload, so the CRC is what catches it.
	cp := append([]byte(nil), full...)
	cp[len(cp)/2] ^= 0x10
	_, err := ReadFrom(bytes.NewReader(cp))
	if err == nil {
		t.Fatal("payload bit flip accepted")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("cause = %v, want ErrChecksum", ce.Err)
	}
	if ce.Offset <= 0 || ce.Offset > int64(len(full)) {
		t.Errorf("offset %d outside stream of %d bytes", ce.Offset, len(full))
	}
}

// TestMTT2RejectsMissingEnd proves that dropping whole trailing sections
// (clean truncation at a frame boundary) is still detected — the hole the
// end section exists to close.
func TestMTT2RejectsMissingEnd(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(8)), "app", 2, 30)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// The end section payload is 2 small uvarints: frame is 1 (kind) + 1
	// (len) + 2 (payload) + 4 (crc) = 8 bytes.
	chopped := full[:len(full)-8]
	_, err := ReadFrom(bytes.NewReader(chopped))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("missing end section: got %v, want ErrTruncated", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Error("ErrTruncated should match io.ErrUnexpectedEOF via errors.Is")
	}
}

// TestMTT2RejectsBadEndCounts crafts an end section whose CRC is valid
// but whose totals disagree with the decoded stream.
func TestMTT2RejectsBadEndCounts(t *testing.T) {
	tr := randomTrace(rand.New(rand.NewSource(9)), "app", 2, 30)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	body := full[:len(full)-8] // strip the genuine end frame
	payload := binary.AppendUvarint(nil, uint64(len(tr.Threads)))
	payload = binary.AppendUvarint(payload, uint64(tr.TotalRefs()+1)) // lie
	frame := append([]byte{sectionEnd}, binary.AppendUvarint(nil, uint64(len(payload)))...)
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	_, err := ReadFrom(bytes.NewReader(append(body, frame...)))
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("lying end section: got %v, want *CorruptError", err)
	}
	if ce.Section != "end" {
		t.Errorf("section = %q, want end", ce.Section)
	}
}

func TestReadRejectsImplausibleCounts(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic1[:])
	buf.WriteByte(0) // app name length 0
	if _, err := ReadFrom(&buf); err == nil {
		t.Error("MTT1: empty app name accepted")
	}

	// Same structural lie in an MTT2 header section with a valid CRC.
	payload := []byte{0} // appLen 0
	buf.Reset()
	buf.Write(magic2[:])
	buf.WriteByte(sectionHeader)
	buf.Write(binary.AppendUvarint(nil, uint64(len(payload))))
	buf.Write(payload)
	buf.Write(binary.LittleEndian.AppendUint32(nil, crc32.ChecksumIEEE(payload)))
	var ce *CorruptError
	if _, err := ReadFrom(&buf); !errors.As(err, &ce) {
		t.Errorf("MTT2: empty app name: got %v, want *CorruptError", err)
	}

	// An implausible section length must fail before any giant allocation.
	buf.Reset()
	buf.Write(magic2[:])
	buf.WriteByte(sectionHeader)
	buf.Write(binary.AppendUvarint(nil, uint64(maxSection)+1))
	if _, err := ReadFrom(&buf); !errors.As(err, &ce) {
		t.Errorf("MTT2: huge section length: got %v, want *CorruptError", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.mtt")
	tr := randomTrace(rand.New(rand.NewSource(10)), "app", 2, 100)
	if _, err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !traceEqual(tr, got) {
		t.Fatal("WriteFile/ReadFile round trip mismatch")
	}

	// Overwrite with a second trace: reads must see either old or new,
	// and no temp files may linger.
	tr2 := randomTrace(rand.New(rand.NewSource(12)), "app2", 3, 80)
	if _, err := tr2.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !traceEqual(tr2, got) {
		t.Fatal("overwrite did not take effect")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".mtt-tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}

	// A failed write (unwritable directory path) must not clobber the
	// existing file.
	if _, err := tr.WriteFile(filepath.Join(dir, "missing-subdir", "x.mtt")); err == nil {
		t.Error("WriteFile into missing directory succeeded")
	}
}

func BenchmarkWriteTo(b *testing.B) {
	tr := randomTrace(rand.New(rand.NewSource(5)), "bench", 8, 10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrom(b *testing.B) {
	tr := randomTrace(rand.New(rand.NewSource(6)), "bench", 8, 10000)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrom(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
