package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	cases := []Event{
		{Gap: 0, Kind: Read, Addr: 0},
		{Gap: 1, Kind: Write, Addr: 8},
		{Gap: MaxGap, Kind: Read, Addr: MaxAddr},
		{Gap: 42, Kind: Write, Addr: SharedBase},
		{Gap: 100, Kind: Read, Addr: SharedBase + 4096},
	}
	for _, e := range cases {
		got := Unpack(Pack(e))
		if got != e {
			t.Errorf("round trip %+v -> %+v", e, got)
		}
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(gap uint32, write bool, addr uint64) bool {
		e := Event{Gap: gap % (MaxGap + 1), Addr: addr % (MaxAddr + 1)}
		if write {
			e.Kind = Write
		}
		return Unpack(Pack(e)) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackPanicsOutOfRange(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("addr", func() { Pack(Event{Addr: MaxAddr + 1}) })
	mustPanic("gap", func() { Pack(Event{Gap: MaxGap + 1}) })
}

func TestRecorderBasics(t *testing.T) {
	tr := New("test", 2)
	r := NewRecorder(tr, 0)
	r.Compute(10)
	r.Load(8)
	r.Compute(5)
	r.Store(16)
	r.Load(SharedBase)

	th := tr.Threads[0]
	if th.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", th.Refs())
	}
	want := []Event{
		{Gap: 10, Kind: Read, Addr: 8},
		{Gap: 5, Kind: Write, Addr: 16},
		{Gap: 0, Kind: Read, Addr: SharedBase},
	}
	for i, w := range want {
		if got := th.Event(i); got != w {
			t.Errorf("event %d = %+v, want %+v", i, got, w)
		}
	}
	if got := th.Instructions(); got != 10+1+5+1+1 {
		t.Errorf("instructions = %d, want 18", got)
	}
	if th.Reads() != 2 || th.Writes() != 1 {
		t.Errorf("reads/writes = %d/%d, want 2/1", th.Reads(), th.Writes())
	}
}

func TestRecorderSplitsHugeGaps(t *testing.T) {
	tr := New("test", 1)
	r := NewRecorder(tr, 0)
	total := int(MaxGap)*2 + 100
	r.Compute(total)
	r.Load(64)
	th := tr.Threads[0]
	if th.Refs() < 2 {
		t.Fatalf("expected gap to split into multiple events, got %d refs", th.Refs())
	}
	// Total instructions must be preserved: gaps + one instruction per ref.
	if got, want := th.Instructions(), uint64(total)+uint64(th.Refs()); got != want {
		t.Errorf("instructions = %d, want %d", got, want)
	}
	// Filler refs must not widen the footprint.
	for i := 0; i < th.Refs(); i++ {
		if a := th.Event(i).Addr; a != 64 {
			t.Errorf("event %d touches %#x, want 0x40", i, a)
		}
	}
}

func TestRecorderUnalignedPanics(t *testing.T) {
	tr := New("test", 1)
	r := NewRecorder(tr, 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unaligned address")
		}
	}()
	r.Load(3)
}

func TestRecorderOutOfRangePanics(t *testing.T) {
	tr := New("test", 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad thread index")
		}
	}()
	NewRecorder(tr, 5)
}

func TestCursor(t *testing.T) {
	tr := New("test", 1)
	r := NewRecorder(tr, 0)
	for i := 0; i < 10; i++ {
		r.Compute(i)
		r.Load(uint64(i * 8))
	}
	c := tr.Threads[0].Cursor()
	if c.Remaining() != 10 {
		t.Fatalf("remaining = %d, want 10", c.Remaining())
	}
	n := 0
	for {
		e, ok := c.Next()
		if !ok {
			break
		}
		if e.Addr != uint64(n*8) || e.Gap != uint32(n) {
			t.Errorf("event %d = %+v", n, e)
		}
		n++
	}
	if n != 10 {
		t.Errorf("iterated %d events, want 10", n)
	}
	c.Reset()
	if c.Remaining() != 10 {
		t.Errorf("after reset remaining = %d, want 10", c.Remaining())
	}
}

func TestValidate(t *testing.T) {
	tr := New("app", 2)
	for i := 0; i < 2; i++ {
		r := NewRecorder(tr, i)
		r.Load(8)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}

	empty := New("app", 1)
	if err := empty.Validate(); err == nil {
		t.Error("trace with empty thread accepted")
	}

	noname := New("", 1)
	NewRecorder(noname, 0).Load(8)
	if err := noname.Validate(); err == nil {
		t.Error("trace with empty name accepted")
	}

	bad := New("app", 2)
	NewRecorder(bad, 0).Load(8)
	NewRecorder(bad, 1).Load(8)
	bad.Threads[1].ID = 7
	if err := bad.Validate(); err == nil {
		t.Error("trace with wrong thread ID accepted")
	}
}

func TestTraceTotals(t *testing.T) {
	tr := New("app", 3)
	for i := 0; i < 3; i++ {
		r := NewRecorder(tr, i)
		for j := 0; j <= i; j++ {
			r.Compute(9)
			r.Store(uint64(8 * (j + 1)))
		}
	}
	if got := tr.TotalRefs(); got != 6 {
		t.Errorf("total refs = %d, want 6", got)
	}
	if got := tr.TotalInstructions(); got != 60 {
		t.Errorf("total instructions = %d, want 60", got)
	}
	ls := tr.ThreadLengths()
	want := []uint64{10, 20, 30}
	for i := range want {
		if ls[i] != want[i] {
			t.Errorf("length[%d] = %d, want %d", i, ls[i], want[i])
		}
	}
}

func TestSharedBaseClassification(t *testing.T) {
	if IsShared(SharedBase - WordSize) {
		t.Error("address below SharedBase classified shared")
	}
	if !IsShared(SharedBase) {
		t.Error("SharedBase itself not classified shared")
	}
}

func TestSortedAddrs(t *testing.T) {
	tr := New("app", 1)
	r := NewRecorder(tr, 0)
	r.Load(24)
	r.Load(8)
	r.Store(24)
	r.Load(16)
	got := tr.Threads[0].SortedAddrs()
	want := []uint64{8, 16, 24}
	if len(got) != len(want) {
		t.Fatalf("addrs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addrs = %v, want %v", got, want)
		}
	}
}

// randomTrace builds a pseudo-random but valid trace for round-trip tests.
func randomTrace(rng *rand.Rand, app string, threads, refs int) *Trace {
	tr := New(app, threads)
	for i := 0; i < threads; i++ {
		r := NewRecorder(tr, i)
		for j := 0; j < refs; j++ {
			r.Compute(rng.Intn(200))
			addr := uint64(rng.Intn(1<<20)) * WordSize
			if rng.Intn(2) == 0 {
				addr += SharedBase
			}
			if rng.Intn(3) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}
	return tr
}
