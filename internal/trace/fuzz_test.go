package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFrom feeds arbitrary bytes to the binary trace reader: it must
// never panic and never return a partially-decoded or invalid trace
// without an error.
func FuzzReadFrom(f *testing.F) {
	// Seed with a valid trace in both container formats plus mutations.
	tr := New("seed", 2)
	for i := 0; i < 2; i++ {
		r := NewRecorder(tr, i)
		r.Compute(5)
		r.Load(SharedBase + uint64(i)*8)
		r.Store(8)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid2 := append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if _, err := tr.writeMTT1To(&buf); err != nil {
		f.Fatal(err)
	}
	valid1 := append([]byte(nil), buf.Bytes()...)
	for _, valid := range [][]byte{valid1, valid2} {
		f.Add(valid)
		truncated := append([]byte(nil), valid[:len(valid)/2]...)
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[6] ^= 0xff
		f.Add(flipped)
		flipped = append([]byte(nil), valid...)
		flipped[len(flipped)-2] ^= 0x01
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("MTT1"))
	f.Add([]byte("MTT2"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			if got != nil {
				t.Fatal("error return carried a partially-decoded trace")
			}
			return // rejection is fine; panics are not
		}
		// Anything accepted must be a complete, internally consistent
		// trace…
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted trace fails Validate: %v", err)
		}
		// …sound enough to re-serialize and read back identically.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if !traceEqual(got, back) {
			t.Fatal("round trip of accepted trace changed it")
		}
	})
}

// FuzzPackUnpack checks the event codec over arbitrary field values.
func FuzzPackUnpack(f *testing.F) {
	f.Add(uint32(0), false, uint64(0))
	f.Add(uint32(MaxGap), true, uint64(MaxAddr))
	f.Fuzz(func(t *testing.T, gap uint32, write bool, addr uint64) {
		e := Event{Gap: gap % (MaxGap + 1), Addr: addr % (MaxAddr + 1)}
		if write {
			e.Kind = Write
		}
		if got := Unpack(Pack(e)); got != e {
			t.Fatalf("round trip %+v -> %+v", e, got)
		}
	})
}
