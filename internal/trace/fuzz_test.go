package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFrom feeds arbitrary bytes to the binary trace reader: it must
// never panic and never return an invalid trace.
func FuzzReadFrom(f *testing.F) {
	// Seed with a valid trace and a few mutations.
	tr := New("seed", 2)
	for i := 0; i < 2; i++ {
		r := NewRecorder(tr, i)
		r.Compute(5)
		r.Load(SharedBase + uint64(i)*8)
		r.Store(8)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MTT1"))
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[6] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must be structurally sound enough to
		// re-serialize and read back identically.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadFrom(&out)
		if err != nil {
			t.Fatalf("round trip of accepted trace failed: %v", err)
		}
		if back.TotalRefs() != got.TotalRefs() {
			t.Fatalf("round trip changed ref count: %d != %d", back.TotalRefs(), got.TotalRefs())
		}
	})
}

// FuzzPackUnpack checks the event codec over arbitrary field values.
func FuzzPackUnpack(f *testing.F) {
	f.Add(uint32(0), false, uint64(0))
	f.Add(uint32(MaxGap), true, uint64(MaxAddr))
	f.Fuzz(func(t *testing.T, gap uint32, write bool, addr uint64) {
		e := Event{Gap: gap % (MaxGap + 1), Addr: addr % (MaxAddr + 1)}
		if write {
			e.Kind = Write
		}
		if got := Unpack(Pack(e)); got != e {
			t.Fatalf("round trip %+v -> %+v", e, got)
		}
	})
}
