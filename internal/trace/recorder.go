package trace

import "fmt"

// Recorder builds one thread's reference stream. Workload kernels drive it
// through Compute/Load/Store calls; it accumulates the instruction gap
// between references and splits gaps that exceed the packed-event range.
//
// A Recorder is not safe for concurrent use; each simulated thread owns its
// own Recorder.
type Recorder struct {
	t   *Thread
	gap uint64
}

// NewRecorder returns a recorder appending to thread t of trace tr.
// It panics if t is out of range.
func NewRecorder(tr *Trace, t int) *Recorder {
	if t < 0 || t >= len(tr.Threads) {
		panic(fmt.Sprintf("trace: recorder for thread %d of %d", t, len(tr.Threads)))
	}
	return &Recorder{t: tr.Threads[t]}
}

// Thread returns the thread being recorded.
func (r *Recorder) Thread() *Thread { return r.t }

// Compute records n non-memory instructions of pure computation.
func (r *Recorder) Compute(n int) {
	if n < 0 {
		panic("trace: negative compute count")
	}
	r.gap += uint64(n)
}

// Load records a data load of addr.
func (r *Recorder) Load(addr uint64) { r.ref(Read, addr) }

// Store records a data store to addr.
func (r *Recorder) Store(addr uint64) { r.ref(Write, addr) }

// Ref records a reference of the given kind.
func (r *Recorder) Ref(k Kind, addr uint64) { r.ref(k, addr) }

func (r *Recorder) ref(k Kind, addr uint64) {
	if addr%WordSize != 0 {
		panic(fmt.Sprintf("trace: unaligned address %#x", addr))
	}
	// Oversized gaps are split across filler reads of the same address.
	// The filler references touch the target address, so they do not
	// perturb the thread's address footprint; each filler adds one
	// instruction (itself) on top of the recorded computation.
	for r.gap > uint64(MaxGap) {
		r.t.append(Pack(Event{Gap: MaxGap, Kind: Read, Addr: addr}))
		r.gap -= uint64(MaxGap)
	}
	r.t.append(Pack(Event{Gap: uint32(r.gap), Kind: k, Addr: addr}))
	r.gap = 0
}

// PendingGap returns computation recorded since the last reference that has
// not yet been attached to an event. A trace whose threads end with a
// pending gap silently drops that tail work; kernels should end each thread
// with a reference (the substrate's Finish helper does this).
func (r *Recorder) PendingGap() uint64 { return r.gap }
