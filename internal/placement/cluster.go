package placement

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/analysis"
)

// Balance selects the cluster-combining constraint.
type Balance int

const (
	// ThreadBalance distributes threads equally: ⌊t/p⌋ or ⌈t/p⌉ per
	// processor (paper §2, "thread-balancing").
	ThreadBalance Balance = iota
	// LoadBalance distributes dynamic instructions equally, within a
	// slack percentage of the ideal per-processor load (the "+LB"
	// criterion, paper §2 item 8).
	LoadBalance
)

// DefaultLoadSlack is the load-balancing tolerance: a combination is
// admissible if the combined cluster load does not exceed the ideal
// per-processor load by more than this fraction. The paper uses
// "typically 10%".
const DefaultLoadSlack = 0.10

// Metric scores the desirability of combining two clusters. Higher primary
// scores combine first; secondary breaks primary ties (used by MIN-PRIV).
type Metric interface {
	// Name is the algorithm name the metric implements.
	Name() string
	// Score rates combining clusters ca and cb under the sharing data.
	Score(d *analysis.SharingData, ca, cb []int) (primary, secondary float64)
}

// avgPairwise computes the paper's sharing-metric normalization: the sum of
// m[ta][tb] over all cross-cluster thread pairs, divided by |ca|·|cb|.
func avgPairwise(m [][]uint64, ca, cb []int) float64 {
	var sum uint64
	for _, a := range ca {
		row := m[a]
		for _, b := range cb {
			sum += row[b]
		}
	}
	return float64(sum) / float64(len(ca)*len(cb))
}

// clus is a cluster with an immutable identity: a given ID always denotes
// the same member set, so pair scores can be cached across clustering
// iterations and across backtracking branches.
type clus struct {
	id      int
	members []int
}

// scorer evaluates and caches metric scores between clusters.
type scorer struct {
	d     *analysis.SharingData
	m     Metric
	next  int
	cache map[uint64][2]float64
}

func newScorer(d *analysis.SharingData, m Metric, initial int) *scorer {
	return &scorer{d: d, m: m, next: initial, cache: make(map[uint64][2]float64)}
}

func (s *scorer) score(a, b clus) (float64, float64) {
	lo, hi := a.id, b.id
	if lo > hi {
		lo, hi = hi, lo
	}
	k := uint64(lo)<<32 | uint64(hi)
	if v, ok := s.cache[k]; ok {
		return v[0], v[1]
	}
	p, sec := s.m.Score(s.d, a.members, b.members)
	s.cache[k] = [2]float64{p, sec}
	return p, sec
}

// merge returns a new cluster list with clusters i and j combined under a
// fresh identity.
func (s *scorer) merge(clusters []clus, i, j int) []clus {
	out := make([]clus, 0, len(clusters)-1)
	comb := make([]int, 0, len(clusters[i].members)+len(clusters[j].members))
	comb = append(comb, clusters[i].members...)
	comb = append(comb, clusters[j].members...)
	for k, c := range clusters {
		if k == i || k == j {
			continue
		}
		out = append(out, c)
	}
	out = append(out, clus{id: s.next, members: comb})
	s.next++
	return out
}

// Cluster runs the greedy agglomerative combining loop of §2.1: start with
// one cluster per thread and repeatedly combine the pair with the best
// metric value that the balance criterion admits, until exactly p clusters
// remain. Under ThreadBalance the search backtracks (paper §2.1 step 4)
// when a greedy choice makes the exact thread balance unreachable;
// infeasible size configurations are memoized so backtracking terminates.
func Cluster(d *analysis.SharingData, p int, m Metric, bal Balance, slack float64) (*Placement, error) {
	t := d.NumThreads()
	if err := checkCounts(t, p); err != nil {
		return nil, fmt.Errorf("%s: %w", m.Name(), err)
	}
	s := newScorer(d, m, t)
	clusters := make([]clus, t)
	for i := range clusters {
		clusters[i] = clus{id: i, members: []int{i}}
	}
	var out [][]int
	var err error
	switch bal {
	case ThreadBalance:
		out, err = clusterThreadBalanced(s, clusters, p)
	case LoadBalance:
		out = clusterLoadBalanced(s, clusters, p, slack)
	default:
		err = fmt.Errorf("unknown balance mode %d", bal)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.Name(), err)
	}
	pl := &Placement{Algorithm: m.Name(), Clusters: out}
	pl.normalize()
	return pl, nil
}

func checkCounts(t, p int) error {
	if p <= 0 {
		return fmt.Errorf("need at least one processor, got %d", p)
	}
	if t < p {
		return fmt.Errorf("cannot place %d threads on %d processors without idle processors", t, p)
	}
	return nil
}

// candidate is a scored cluster pair.
type candidate struct {
	i, j int
	p, s float64
}

// rankCandidates scores every cluster pair and sorts best-first.
// Ties break deterministically on the clusters' immutable IDs.
func rankCandidates(s *scorer, clusters []clus) []candidate {
	cands := make([]candidate, 0, len(clusters)*(len(clusters)-1)/2)
	for i := 0; i < len(clusters); i++ {
		for j := i + 1; j < len(clusters); j++ {
			p, sec := s.score(clusters[i], clusters[j])
			cands = append(cands, candidate{i: i, j: j, p: p, s: sec})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.p != cb.p {
			return ca.p > cb.p
		}
		if ca.s != cb.s {
			return ca.s > cb.s
		}
		ia, ja := clusters[ca.i].id, clusters[ca.j].id
		ib, jb := clusters[cb.i].id, clusters[cb.j].id
		if ia != ib {
			return ia < ib
		}
		return ja < jb
	})
	return cands
}

func members(clusters []clus) [][]int {
	out := make([][]int, len(clusters))
	for i, c := range clusters {
		out[i] = c.members
	}
	return out
}

// feasChecker decides whether a multiset of cluster sizes can still be
// merged into exactly p clusters of size ⌊t/p⌋ or ⌈t/p⌉ (with exactly
// t mod p of the larger size). This is exact-fill bin packing, memoized by
// the sorted size multiset. Using it as a lookahead subsumes the paper's
// backtracking (§2.1 step 4): the greedy loop only takes merges from which
// the balanced partition remains reachable, so it never gets stuck.
type feasChecker struct {
	floor, ceil, r, p int
	memo              map[string]bool
	packMemo          map[string]bool
}

func newFeasChecker(t, p int) *feasChecker {
	return &feasChecker{
		floor:    t / p,
		ceil:     (t + p - 1) / p,
		r:        t % p,
		p:        p,
		memo:     make(map[string]bool),
		packMemo: make(map[string]bool),
	}
}

// check reports whether the size multiset can complete. sizes is consumed
// (sorted in place).
func (f *feasChecker) check(sizes []int) bool {
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if len(sizes) < f.p || sizes[0] > f.ceil {
		return false
	}
	b := make([]byte, 0, 3*len(sizes))
	for _, s := range sizes {
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
	}
	key := string(b)
	if v, ok := f.memo[key]; ok {
		return v
	}
	// Bins that must be filled exactly: r of capacity ceil, p-r of floor.
	bins := make([]int, f.p)
	for i := range bins {
		if i < f.r {
			bins[i] = f.ceil
		} else {
			bins[i] = f.floor
		}
	}
	res := f.pack(sizes, bins)
	f.memo[key] = res
	return res
}

// pack places sizes (sorted descending) into bins so every bin is filled
// exactly. Total conservation (sum sizes == sum bins) is an invariant.
// Sub-problems are memoized on (remaining sizes, sorted bin remainders):
// without the memo, uniform size multisets (e.g. dozens of equal clusters)
// explode combinatorially.
func (f *feasChecker) pack(sizes []int, bins []int) bool {
	if len(sizes) == 0 {
		return true
	}
	if sizes[0] == 1 {
		// Only unit clusters remain: they can fill any exact remainders
		// because the totals match.
		return true
	}
	key := packKey(sizes, bins)
	if v, ok := f.packMemo[key]; ok {
		return v
	}
	s0 := sizes[0]
	res := false
	tried := make(map[int]bool, len(bins))
	for b := range bins {
		if bins[b] < s0 || tried[bins[b]] {
			continue // too small, or symmetric to a bin already tried
		}
		tried[bins[b]] = true
		bins[b] -= s0
		ok := f.pack(sizes[1:], bins)
		bins[b] += s0
		if ok {
			res = true
			break
		}
	}
	f.packMemo[key] = res
	return res
}

// packKey canonically encodes a pack sub-problem. Bin remainders are
// order-insensitive, so they are sorted into the key.
func packKey(sizes []int, bins []int) string {
	rem := make([]int, len(bins))
	copy(rem, bins)
	sort.Ints(rem)
	b := make([]byte, 0, 3*(len(sizes)+len(rem))+1)
	for _, s := range sizes {
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
	}
	b = append(b, '|')
	for _, r := range rem {
		b = strconv.AppendInt(b, int64(r), 10)
		b = append(b, ',')
	}
	return string(b)
}

// clusterThreadBalanced runs the greedy metric-guided loop with the exact
// feasibility lookahead: the best-scoring pair whose merge keeps the
// thread-balanced p-way partition reachable is combined. A feasible state
// always admits at least one feasible merge (merge any two clusters that
// share a bin in a witness packing), so the loop terminates with a
// balanced partition whenever one exists.
func clusterThreadBalanced(s *scorer, clusters []clus, p int) ([][]int, error) {
	t := 0
	for _, c := range clusters {
		t += len(c.members)
	}
	feas := newFeasChecker(t, p)

	sizesAfterMerge := func(cs []clus, i, j int) []int {
		sizes := make([]int, 0, len(cs)-1)
		for k, c := range cs {
			if k == i || k == j {
				continue
			}
			sizes = append(sizes, len(c.members))
		}
		return append(sizes, len(cs[i].members)+len(cs[j].members))
	}

	for len(clusters) > p {
		merged := false
		for _, cand := range rankCandidates(s, clusters) {
			if len(clusters[cand.i].members)+len(clusters[cand.j].members) > feas.ceil {
				continue
			}
			if !feas.check(sizesAfterMerge(clusters, cand.i, cand.j)) {
				continue
			}
			clusters = s.merge(clusters, cand.i, cand.j)
			merged = true
			break
		}
		if !merged {
			return nil, fmt.Errorf("no thread-balanced %d-way clustering of %d threads exists", p, t)
		}
	}
	return members(clusters), nil
}

// clusterLoadBalanced applies the metric first and the load criterion
// second (paper §2 item 8): the best-scoring pair whose combined load stays
// within (1+slack) of the ideal per-processor load is combined. When no
// pair satisfies the load criterion, the pair yielding the smallest
// combined load is merged so the algorithm always terminates with exactly
// p clusters — this mirrors the paper's observation that "+LB" algorithms
// sometimes cannot generate a well balanced load because they satisfy the
// sharing criteria first.
func clusterLoadBalanced(s *scorer, clusters []clus, p int, slack float64) [][]int {
	var total uint64
	for _, l := range s.d.Lengths {
		total += l
	}
	ideal := float64(total) / float64(p)
	limit := ideal * (1 + slack)

	load := func(c clus) float64 {
		var l uint64
		for _, t := range c.members {
			l += s.d.Lengths[t]
		}
		return float64(l)
	}

	for len(clusters) > p {
		mergedOne := false
		for _, cand := range rankCandidates(s, clusters) {
			if load(clusters[cand.i])+load(clusters[cand.j]) <= limit {
				clusters = s.merge(clusters, cand.i, cand.j)
				mergedOne = true
				break
			}
		}
		if mergedOne {
			continue
		}
		// Fallback: minimize the resulting cluster's load.
		bi, bj, best := -1, -1, 0.0
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				l := load(clusters[i]) + load(clusters[j])
				if bi == -1 || l < best {
					bi, bj, best = i, j, l
				}
			}
		}
		clusters = s.merge(clusters, bi, bj)
	}
	return members(clusters)
}
