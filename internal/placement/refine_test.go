package placement

import (
	"math/rand"
	"testing"
)

func TestKLShareReducesCrossSharing(t *testing.T) {
	// Ring sharing: thread i shares heavily with i+1. LOAD-BAL (uniform
	// lengths -> arbitrary grouping) generally cuts many ring edges;
	// KL-SHARE must cut no more than LOAD-BAL and produce a valid,
	// load-respecting placement.
	n := 16
	pairs := make(map[[2]int]uint64)
	for i := 0; i < n; i++ {
		pairs[[2]int{i, (i + 1) % n}] = 100
	}
	d := dataFromMatrix(symmetric(n, pairs))

	lb, err := LoadBal(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	kl, err := KLShare(d, 4, DefaultLoadSlack)
	if err != nil {
		t.Fatal(err)
	}
	if err := kl.Validate(n, 4); err != nil {
		t.Fatal(err)
	}
	if got, base := CrossSharedRefs(d, kl), CrossSharedRefs(d, lb); got > base {
		t.Errorf("KL-SHARE cross sharing %d worse than LOAD-BAL's %d", got, base)
	}
	// A ring over 4 processors cannot do better than 4 cut edges; KL
	// should find a contiguous-arc solution (400) from most starts.
	if got := CrossSharedRefs(d, kl); got > 600 {
		t.Errorf("KL-SHARE cross sharing = %d, want near the 400 optimum", got)
	}
	if imb := kl.LoadImbalance(d.Lengths); imb > DefaultLoadSlack+1e-9 {
		t.Errorf("KL-SHARE violates load slack: %v", imb)
	}
}

func TestKLShareRespectsLoadWithSkew(t *testing.T) {
	n := 12
	pairs := make(map[[2]int]uint64)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs[[2]int{i, j}] = uint64(rng.Intn(50))
		}
	}
	d := dataFromMatrix(symmetric(n, pairs))
	for i := range d.Lengths {
		d.Lengths[i] = uint64(100 + rng.Intn(5000))
	}
	lb, err := LoadBal(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	kl, err := KLShare(d, 3, DefaultLoadSlack)
	if err != nil {
		t.Fatal(err)
	}
	if err := kl.Validate(n, 3); err != nil {
		t.Fatal(err)
	}
	// KL must not be much worse balanced than LOAD-BAL + slack.
	lbMax := maxLoad(lb.Loads(d.Lengths))
	klMax := maxLoad(kl.Loads(d.Lengths))
	var total uint64
	for _, l := range d.Lengths {
		total += l
	}
	limit := float64(total) / 3 * (1 + DefaultLoadSlack)
	if float64(klMax) > limit && klMax > lbMax {
		t.Errorf("KL max load %d exceeds limit %.0f and LOAD-BAL's %d", klMax, limit, lbMax)
	}
}

func maxLoad(loads []uint64) uint64 {
	var m uint64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

func TestKLShareErrors(t *testing.T) {
	d := dataFromMatrix(symmetric(3, nil))
	if _, err := KLShare(d, 5, DefaultLoadSlack); err == nil {
		t.Error("p > t accepted")
	}
}

func TestExtensionsRegistry(t *testing.T) {
	exts := Extensions()
	if len(exts) == 0 {
		t.Fatal("no extensions")
	}
	if exts[0].Name != "KL-SHARE" || !exts[0].SharingBased {
		t.Errorf("unexpected extension %+v", exts[0])
	}
	d := dataFromMatrix(symmetric(8, map[[2]int]uint64{{0, 1}: 5}))
	pl, err := exts[0].Place(d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(8, 2); err != nil {
		t.Error(err)
	}
}

func TestCrossSharedRefs(t *testing.T) {
	d := dataFromMatrix(symmetric(4, map[[2]int]uint64{
		{0, 1}: 10, {2, 3}: 20, {0, 2}: 7,
	}))
	pl := &Placement{Algorithm: "X", Clusters: [][]int{{0, 1}, {2, 3}}}
	if got := CrossSharedRefs(d, pl); got != 7 {
		t.Errorf("cross = %d, want 7", got)
	}
	pl = &Placement{Algorithm: "X", Clusters: [][]int{{0, 2}, {1, 3}}}
	if got := CrossSharedRefs(d, pl); got != 30 {
		t.Errorf("cross = %d, want 30", got)
	}
}
