package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/analysis"
)

// Algorithm is a named placement strategy.
type Algorithm struct {
	// Name is the paper's name for the algorithm, e.g. "SHARE-REFS" or
	// "SHARE-REFS+LB".
	Name string
	// SharingBased reports whether the algorithm's combining criterion
	// is a measure of inter-thread sharing.
	SharingBased bool
	// Place computes the placement of the data's threads onto p
	// processors. seed feeds any randomized choices (only RANDOM uses
	// it); deterministic algorithms ignore it.
	Place func(d *analysis.SharingData, p int, seed int64) (*Placement, error)
}

// ---- sharing metrics ----

// shareRefs implements SHARE-REFS: maximize shared references among
// co-located threads.
type shareRefs struct{}

func (shareRefs) Name() string { return "SHARE-REFS" }
func (shareRefs) Score(d *analysis.SharingData, ca, cb []int) (float64, float64) {
	return avgPairwise(d.SharedRefs, ca, cb), 0
}

// shareAddr implements SHARE-ADDR: maximize shared references per shared
// address, preferring the pair with the denser shared working set.
type shareAddr struct{}

func (shareAddr) Name() string { return "SHARE-ADDR" }
func (shareAddr) Score(d *analysis.SharingData, ca, cb []int) (float64, float64) {
	refs := avgPairwise(d.SharedRefs, ca, cb)
	addrs := avgPairwise(d.SharedAddrs, ca, cb)
	if addrs == 0 {
		return 0, 0
	}
	// Primary: refs per shared address. Secondary: the raw refs, so that
	// among equally dense pairs the heavier sharers combine first.
	return refs / addrs, refs
}

// minPriv implements MIN-PRIV: maximize shared references and, as the tie
// break, minimize the combined count of private addresses per processor.
type minPriv struct{}

func (minPriv) Name() string { return "MIN-PRIV" }
func (minPriv) Score(d *analysis.SharingData, ca, cb []int) (float64, float64) {
	priv := 0
	for _, t := range ca {
		priv += d.PrivateAddrs[t]
	}
	for _, t := range cb {
		priv += d.PrivateAddrs[t]
	}
	return avgPairwise(d.SharedRefs, ca, cb), -float64(priv)
}

// minInvs implements MIN-INVS: minimize cross-processor references that can
// cause invalidations. Greedily combining the pair with the largest
// separation cost (cross-cluster invalidating writes) removes the most
// potential invalidation traffic from the interconnect.
type minInvs struct{}

func (minInvs) Name() string { return "MIN-INVS" }
func (minInvs) Score(d *analysis.SharingData, ca, cb []int) (float64, float64) {
	return avgPairwise(d.InvalidatingRefs, ca, cb), 0
}

// maxWrites implements MAX-WRITES: maximize write-shared data references
// among co-located threads, omitting read-shared data.
type maxWrites struct{}

func (maxWrites) Name() string { return "MAX-WRITES" }
func (maxWrites) Score(d *analysis.SharingData, ca, cb []int) (float64, float64) {
	return avgPairwise(d.WriteSharedRefs, ca, cb), 0
}

// minShare implements MIN-SHARE: the deliberate worst case, co-locating the
// threads that share least.
type minShare struct{}

func (minShare) Name() string { return "MIN-SHARE" }
func (minShare) Score(d *analysis.SharingData, ca, cb []int) (float64, float64) {
	return -avgPairwise(d.SharedRefs, ca, cb), 0
}

// MatrixMetric scores cluster pairs by an externally supplied symmetric
// pairwise matrix. It implements the dynamic coherence-traffic placement of
// §4.2: the matrix is the per-thread-pair coherence traffic measured by a
// one-thread-per-processor simulation.
type MatrixMetric struct {
	// MetricName is the algorithm name to report.
	MetricName string
	// M[a][b] is the pairwise affinity of threads a and b; higher values
	// combine first.
	M [][]uint64
}

// Name returns the configured algorithm name.
func (m *MatrixMetric) Name() string { return m.MetricName }

// Score averages the matrix over cross-cluster thread pairs.
func (m *MatrixMetric) Score(_ *analysis.SharingData, ca, cb []int) (float64, float64) {
	return avgPairwise(m.M, ca, cb), 0
}

// lbSuffix is appended to the name of load-balancing variants.
const lbSuffix = "+LB"

// metricAlgorithm wraps a metric as a registry entry.
func metricAlgorithm(m Metric, bal Balance) Algorithm {
	name := m.Name()
	if bal == LoadBalance {
		name += lbSuffix
	}
	return Algorithm{
		Name:         name,
		SharingBased: true,
		Place: func(d *analysis.SharingData, p int, _ int64) (*Placement, error) {
			pl, err := Cluster(d, p, m, bal, DefaultLoadSlack)
			if err != nil {
				return nil, err
			}
			pl.Algorithm = name
			return pl, nil
		},
	}
}

// LoadBal computes the LOAD-BAL placement: longest-processing-time greedy
// assignment by dynamic thread length, the standard multiprocessor load
// balancing the paper compares against.
func LoadBal(d *analysis.SharingData, p int) (*Placement, error) {
	if err := checkCounts(d.NumThreads(), p); err != nil {
		return nil, fmt.Errorf("LOAD-BAL: %w", err)
	}
	order := make([]int, d.NumThreads())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := d.Lengths[order[a]], d.Lengths[order[b]]
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	clusters := make([][]int, p)
	loads := make([]uint64, p)
	for _, t := range order {
		// Assign to the least-loaded processor; prefer an empty one so
		// no processor is left idle.
		best := 0
		for q := 1; q < p; q++ {
			if loads[q] < loads[best] {
				best = q
			}
		}
		clusters[best] = append(clusters[best], t)
		loads[best] += d.Lengths[t]
	}
	pl := &Placement{Algorithm: "LOAD-BAL", Clusters: clusters}
	pl.normalize()
	return pl, nil
}

// Random computes the RANDOM placement: a seeded shuffle dealt into
// thread-balanced clusters — what a low-overhead runtime scheduler with no
// application knowledge would do.
func Random(d *analysis.SharingData, p int, seed int64) (*Placement, error) {
	t := d.NumThreads()
	if err := checkCounts(t, p); err != nil {
		return nil, fmt.Errorf("RANDOM: %w", err)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(t)
	clusters := make([][]int, p)
	floor, r := t/p, t%p
	pos := 0
	for q := 0; q < p; q++ {
		n := floor
		if q < r {
			n++
		}
		clusters[q] = append(clusters[q], perm[pos:pos+n]...)
		pos += n
	}
	pl := &Placement{Algorithm: "RANDOM", Clusters: clusters}
	pl.normalize()
	return pl, nil
}

// CoherenceTraffic builds the dynamic placement algorithm of §4.2 from a
// measured pairwise coherence-traffic matrix. It clusters exactly like
// SHARE-REFS but with runtime traffic as the metric, representing the best
// placement any sharing-based algorithm could produce.
func CoherenceTraffic(traffic [][]uint64) Algorithm {
	m := &MatrixMetric{MetricName: "COHERENCE", M: traffic}
	return Algorithm{
		Name:         m.MetricName,
		SharingBased: true,
		Place: func(d *analysis.SharingData, p int, _ int64) (*Placement, error) {
			return Cluster(d, p, m, ThreadBalance, DefaultLoadSlack)
		},
	}
}

// sharingMetrics lists the six static sharing metrics in the paper's order.
func sharingMetrics() []Metric {
	return []Metric{shareRefs{}, shareAddr{}, minPriv{}, minInvs{}, maxWrites{}, minShare{}}
}

// All returns every static placement algorithm in the paper's order:
// the six sharing-based algorithms, LOAD-BAL, the six "+LB" variants, and
// RANDOM. The dynamic COHERENCE algorithm is not listed because it needs a
// measured traffic matrix: between runs, build it with CoherenceTraffic;
// mid-run, the advise package's online policies feed the same metric from
// live engine checkpoints (sim.RunOnlineGuarded).
func All() []Algorithm {
	var algs []Algorithm
	for _, m := range sharingMetrics() {
		algs = append(algs, metricAlgorithm(m, ThreadBalance))
	}
	algs = append(algs, Algorithm{
		Name: "LOAD-BAL",
		Place: func(d *analysis.SharingData, p int, _ int64) (*Placement, error) {
			return LoadBal(d, p)
		},
	})
	for _, m := range sharingMetrics() {
		algs = append(algs, metricAlgorithm(m, LoadBalance))
	}
	algs = append(algs, Algorithm{
		Name:  "RANDOM",
		Place: Random,
	})
	return algs
}

// ByName returns the named algorithm from All.
func ByName(name string) (Algorithm, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("placement: unknown algorithm %q", name)
}

// Names returns the names of every algorithm in All, in order.
func Names() []string {
	algs := All()
	ns := make([]string, len(algs))
	for i, a := range algs {
		ns[i] = a.Name
	}
	return ns
}
