package placement

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
)

// dataFromMatrix builds SharingData with the given symmetric shared-refs
// matrix and uniform auxiliary data.
func dataFromMatrix(m [][]uint64) *analysis.SharingData {
	n := len(m)
	d := &analysis.SharingData{
		App:              "test",
		SharedRefs:       m,
		SharedAddrs:      make([][]uint64, n),
		WriteSharedRefs:  make([][]uint64, n),
		InvalidatingRefs: make([][]uint64, n),
		PrivateAddrs:     make([]int, n),
		Lengths:          make([]uint64, n),
	}
	for i := range d.SharedAddrs {
		d.SharedAddrs[i] = make([]uint64, n)
		d.WriteSharedRefs[i] = make([]uint64, n)
		d.InvalidatingRefs[i] = make([]uint64, n)
		d.Lengths[i] = 1000
		for j := range d.SharedAddrs[i] {
			if m[i][j] > 0 {
				d.SharedAddrs[i][j] = 1
			}
		}
	}
	return d
}

func symmetric(n int, pairs map[[2]int]uint64) [][]uint64 {
	m := make([][]uint64, n)
	for i := range m {
		m[i] = make([]uint64, n)
	}
	for k, v := range pairs {
		m[k[0]][k[1]] = v
		m[k[1]][k[0]] = v
	}
	return m
}

// TestPaperWorkedExample reproduces the §2.1.1 example: five threads, two
// processors. Thread 2-3 combine first (highest pairwise sharing), then
// 1-5, then {1,5} with {4}, yielding clusters {2,3} and {1,4,5}.
// Threads here are 0-indexed: paper thread k is index k-1.
func TestPaperWorkedExample(t *testing.T) {
	m := symmetric(5, map[[2]int]uint64{
		{0, 1}: 1,  // s(1,2)
		{0, 2}: 2,  // s(1,3)
		{0, 3}: 6,  // s(1,4)
		{0, 4}: 8,  // s(1,5)
		{1, 2}: 10, // s(2,3) -- highest
		{1, 3}: 5,  // s(2,4)
		{1, 4}: 2,  // s(2,5)
		{2, 3}: 4,  // s(3,4)
		{2, 4}: 1,  // s(3,5)
		{3, 4}: 5,  // s(4,5)
	})
	d := dataFromMatrix(m)

	// The worked metric value from the paper: sharing-metric({2,3},{4})
	// = (5+4)/2 = 4.5.
	if got := avgPairwise(m, []int{1, 2}, []int{3}); got != 4.5 {
		t.Fatalf("sharing-metric({2,3},{4}) = %v, want 4.5", got)
	}

	pl, err := Cluster(d, 2, shareRefs{}, ThreadBalance, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(5, 2); err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 3, 4}, {1, 2}}
	if !reflect.DeepEqual(pl.Clusters, want) {
		t.Errorf("clusters = %v, want %v", pl.Clusters, want)
	}
}

func TestThreadBalanceExact(t *testing.T) {
	for _, tc := range []struct{ threads, procs int }{
		{4, 2}, {5, 2}, {7, 3}, {8, 8}, {9, 4}, {16, 16}, {17, 4}, {32, 16},
	} {
		d := dataFromMatrix(symmetric(tc.threads, nil))
		pl, err := Cluster(d, tc.procs, shareRefs{}, ThreadBalance, 0)
		if err != nil {
			t.Fatalf("%d/%d: %v", tc.threads, tc.procs, err)
		}
		if err := pl.Validate(tc.threads, tc.procs); err != nil {
			t.Errorf("%d/%d: %v", tc.threads, tc.procs, err)
		}
		if !pl.ThreadBalanced() {
			t.Errorf("%d/%d: not thread balanced: %v", tc.threads, tc.procs, pl.Clusters)
		}
	}
}

// Property: every sharing algorithm produces a valid, thread-balanced (or
// load-respecting) partition for random sharing matrices.
func TestAllAlgorithmsValidProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(12)
		p := 2 + r.Intn(3)
		if p > n {
			p = n
		}
		pairs := make(map[[2]int]uint64)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs[[2]int{i, j}] = uint64(r.Intn(100))
			}
		}
		d := dataFromMatrix(symmetric(n, pairs))
		for i := range d.Lengths {
			d.Lengths[i] = uint64(100 + r.Intn(2000))
			d.PrivateAddrs[i] = r.Intn(500)
		}
		for _, alg := range All() {
			pl, err := alg.Place(d, p, seed)
			if err != nil {
				t.Logf("%s: %v", alg.Name, err)
				return false
			}
			if err := pl.Validate(n, p); err != nil {
				t.Logf("%v", err)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestShareRefsMaximizesAndMinShareMinimizes(t *testing.T) {
	// Two tight pairs: (0,1) and (2,3) share heavily; everything else is
	// light. SHARE-REFS must co-locate the pairs; MIN-SHARE must split
	// them.
	m := symmetric(4, map[[2]int]uint64{
		{0, 1}: 100,
		{2, 3}: 100,
		{0, 2}: 1,
		{1, 3}: 1,
	})
	d := dataFromMatrix(m)

	pl, err := Cluster(d, 2, shareRefs{}, ThreadBalance, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1}, {2, 3}}
	if !reflect.DeepEqual(pl.Clusters, want) {
		t.Errorf("SHARE-REFS clusters = %v, want %v", pl.Clusters, want)
	}

	pl, err = Cluster(d, 2, minShare{}, ThreadBalance, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pl.Clusters {
		if reflect.DeepEqual(c, []int{0, 1}) || reflect.DeepEqual(c, []int{2, 3}) {
			t.Errorf("MIN-SHARE co-located a heavy pair: %v", pl.Clusters)
		}
	}
}

func TestMaxWritesUsesWriteSharedOnly(t *testing.T) {
	// (0,1) share many read-only refs; (0,2) share fewer but write-shared
	// refs. MAX-WRITES must prefer (0,2).
	d := dataFromMatrix(symmetric(4, map[[2]int]uint64{
		{0, 1}: 100,
		{0, 2}: 50,
	}))
	d.WriteSharedRefs = symmetric(4, map[[2]int]uint64{
		{0, 2}: 50,
	})
	pl, err := Cluster(d, 2, maxWrites{}, ThreadBalance, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := pl.Assignment()
	if a[0] != a[2] {
		t.Errorf("MAX-WRITES split the write-sharing pair: %v", pl.Clusters)
	}
}

func TestMinPrivTieBreak(t *testing.T) {
	// All sharing equal; thread 3 has a huge private footprint. MIN-PRIV
	// combines the low-private threads first.
	pairs := make(map[[2]int]uint64)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			pairs[[2]int{i, j}] = 10
		}
	}
	d := dataFromMatrix(symmetric(4, pairs))
	d.PrivateAddrs = []int{1, 1, 1, 10000}
	pl, err := Cluster(d, 2, minPriv{}, ThreadBalance, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := pl.Assignment()
	if a[0] != a[1] {
		t.Errorf("MIN-PRIV should combine the two cheapest-private threads first: %v", pl.Clusters)
	}
}

func TestLoadBalLPT(t *testing.T) {
	d := dataFromMatrix(symmetric(5, nil))
	d.Lengths = []uint64{1000, 900, 300, 200, 100}
	pl, err := LoadBal(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(5, 2); err != nil {
		t.Fatal(err)
	}
	loads := pl.Loads(d.Lengths)
	// LPT: 1000 -> p0; 900 -> p1; 300 -> p1 (1200); 200 -> p0 (1200);
	// 100 -> either (1300/1200). Max must be 1300.
	var max uint64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	if max != 1300 {
		t.Errorf("max load = %d, want 1300 (loads %v)", max, loads)
	}
}

func TestLoadBalBeatsWorstCase(t *testing.T) {
	// Skewed lengths: LOAD-BAL imbalance should be far below a
	// deliberately bad contiguous split.
	rng := rand.New(rand.NewSource(3))
	n := 16
	d := dataFromMatrix(symmetric(n, nil))
	for i := range d.Lengths {
		d.Lengths[i] = uint64(100 + rng.Intn(10000))
	}
	pl, err := LoadBal(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if imb := pl.LoadImbalance(d.Lengths); imb > 0.05 {
		t.Errorf("LOAD-BAL imbalance = %v, want <= 0.05", imb)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	d := dataFromMatrix(symmetric(10, nil))
	a, err := Random(d, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(d, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Clusters, b.Clusters) {
		t.Error("RANDOM not deterministic for fixed seed")
	}
	c, err := Random(d, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(10, 3); err != nil {
		t.Fatal(err)
	}
	if !c.ThreadBalanced() {
		t.Error("RANDOM not thread balanced")
	}
}

func TestLBVariantRespectsSlackWhenPossible(t *testing.T) {
	// Uniform lengths: +LB must stay within slack of ideal.
	n := 12
	pairs := make(map[[2]int]uint64)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs[[2]int{i, j}] = uint64(rng.Intn(50))
		}
	}
	d := dataFromMatrix(symmetric(n, pairs))
	pl, err := Cluster(d, 4, shareRefs{}, LoadBalance, DefaultLoadSlack)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(n, 4); err != nil {
		t.Fatal(err)
	}
	if imb := pl.LoadImbalance(d.Lengths); imb > DefaultLoadSlack+1e-9 {
		t.Errorf("+LB imbalance = %v exceeds slack", imb)
	}
}

func TestLBVariantFallsBackWhenImpossible(t *testing.T) {
	// One thread dominates: no placement keeps max load within 10% of
	// ideal, but the algorithm must still terminate with p clusters.
	d := dataFromMatrix(symmetric(6, nil))
	d.Lengths = []uint64{100000, 10, 10, 10, 10, 10}
	pl, err := Cluster(d, 3, shareRefs{}, LoadBalance, DefaultLoadSlack)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(6, 3); err != nil {
		t.Fatal(err)
	}
}

func TestErrorCases(t *testing.T) {
	d := dataFromMatrix(symmetric(3, nil))
	if _, err := Cluster(d, 5, shareRefs{}, ThreadBalance, 0); err == nil {
		t.Error("more processors than threads accepted")
	}
	if _, err := Cluster(d, 0, shareRefs{}, ThreadBalance, 0); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := LoadBal(d, 4); err == nil {
		t.Error("LOAD-BAL with p > t accepted")
	}
	if _, err := Random(d, -1, 0); err == nil {
		t.Error("negative processors accepted")
	}
	if _, err := ByName("NOT-AN-ALGORITHM"); err == nil {
		t.Error("unknown algorithm name accepted")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{
		"SHARE-REFS", "SHARE-ADDR", "MIN-PRIV", "MIN-INVS", "MAX-WRITES",
		"MIN-SHARE", "LOAD-BAL",
		"SHARE-REFS+LB", "SHARE-ADDR+LB", "MIN-PRIV+LB", "MIN-INVS+LB",
		"MAX-WRITES+LB", "MIN-SHARE+LB", "RANDOM",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("names = %v, want %v", names, want)
	}
	for _, name := range want {
		a, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if a.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, a.Name)
		}
	}
	if a, _ := ByName("LOAD-BAL"); a.SharingBased {
		t.Error("LOAD-BAL marked sharing-based")
	}
	if a, _ := ByName("SHARE-REFS"); !a.SharingBased {
		t.Error("SHARE-REFS not marked sharing-based")
	}
}

func TestCoherenceTrafficAlgorithm(t *testing.T) {
	traffic := symmetric(4, map[[2]int]uint64{
		{0, 3}: 500,
		{1, 2}: 400,
	})
	d := dataFromMatrix(symmetric(4, nil))
	alg := CoherenceTraffic(traffic)
	pl, err := alg.Place(d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := pl.Assignment()
	if a[0] != a[3] || a[1] != a[2] {
		t.Errorf("COHERENCE did not co-locate high-traffic pairs: %v", pl.Clusters)
	}
}

func TestAssignmentAndString(t *testing.T) {
	pl := &Placement{Algorithm: "X", Clusters: [][]int{{0, 2}, {1}}}
	a := pl.Assignment()
	if a[0] != 0 || a[2] != 0 || a[1] != 1 {
		t.Errorf("assignment = %v", a)
	}
	if s := pl.String(); s != "X{[0 2][1]}" {
		t.Errorf("string = %q", s)
	}
}

func TestBacktrackingReachesBalance(t *testing.T) {
	// Adversarial metric: greedy scores strongly favour merging into one
	// oversized chain; the DFS must still find a balanced 2-way split of
	// 6 threads (sizes 3+3) rather than getting stuck at 4+1+1.
	m := symmetric(6, map[[2]int]uint64{
		{0, 1}: 100, {1, 2}: 90, {2, 3}: 80, {3, 4}: 70, {4, 5}: 60,
	})
	d := dataFromMatrix(m)
	pl, err := Cluster(d, 2, shareRefs{}, ThreadBalance, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.ThreadBalanced() {
		t.Errorf("not balanced: %v", pl.Clusters)
	}
}
