package placement

import (
	"fmt"
	"math"

	"repro/internal/analysis"
)

// Optimal exhaustive placement for small thread counts: a branch-and-bound
// search over all thread-balanced partitions that maximizes within-cluster
// shared references. Exponential — usable to roughly 16 threads — and
// intended as a quality oracle: tests compare the greedy SHARE-REFS
// clustering against the true optimum, and research users can bound how
// much better *any* static sharing-based placement could possibly do.

// optimalMaxThreads bounds the search; beyond this the state space is
// infeasible.
const optimalMaxThreads = 18

// OptimalShare computes the thread-balanced placement maximizing total
// within-cluster shared references, by exhaustive branch-and-bound.
func OptimalShare(d *analysis.SharingData, p int) (*Placement, error) {
	t := d.NumThreads()
	if err := checkCounts(t, p); err != nil {
		return nil, fmt.Errorf("OPT-SHARE: %w", err)
	}
	if t > optimalMaxThreads {
		return nil, fmt.Errorf("OPT-SHARE: %d threads exceeds the exhaustive-search limit (%d)", t, optimalMaxThreads)
	}

	floor, r := t/p, t%p
	sizes := make([]int, p)
	for i := range sizes {
		sizes[i] = floor
		if i < r {
			sizes[i]++
		}
	}

	assign := make([]int, t)
	for i := range assign {
		assign[i] = -1
	}
	best := make([]int, t)
	bestScore := -1.0
	used := make([]int, p)

	// maxGain[i] is an admissible upper bound on the score obtainable
	// from threads i..t-1: the sum of each remaining thread's largest
	// pairwise sharing values (it over-counts, which is safe).
	maxGain := make([]float64, t+1)
	for i := t - 1; i >= 0; i-- {
		var m float64
		for j := 0; j < t; j++ {
			if j != i {
				m += float64(d.SharedRefs[i][j])
			}
		}
		maxGain[i] = maxGain[i+1] + m
	}

	var dfs func(i int, score float64)
	dfs = func(i int, score float64) {
		if i == t {
			if score > bestScore {
				bestScore = score
				copy(best, assign)
			}
			return
		}
		if score+maxGain[i] <= bestScore {
			return // even the optimistic bound cannot beat the best
		}
		triedEmpty := make(map[int]bool, 2)
		for q := 0; q < p; q++ {
			if used[q] == sizes[q] {
				continue
			}
			// Symmetry pruning: among still-empty clusters of the same
			// target size, trying one is enough.
			if used[q] == 0 {
				if triedEmpty[sizes[q]] {
					continue
				}
				triedEmpty[sizes[q]] = true
			}
			gain := 0.0
			for o := 0; o < i; o++ {
				if assign[o] == q {
					gain += float64(d.SharedRefs[i][o])
				}
			}
			assign[i] = q
			used[q]++
			dfs(i+1, score+gain)
			used[q]--
			assign[i] = -1
		}
	}
	dfs(0, 0)

	clusters := make([][]int, p)
	for i, q := range best {
		clusters[q] = append(clusters[q], i)
	}
	pl := &Placement{Algorithm: "OPT-SHARE", Clusters: clusters}
	pl.normalize()
	return pl, nil
}

// WithinClusterSharedRefs returns the total shared references between
// co-located thread pairs — the objective OptimalShare maximizes and
// SHARE-REFS approximates.
func WithinClusterSharedRefs(d *analysis.SharingData, pl *Placement) uint64 {
	var total uint64
	for _, c := range pl.Clusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				total += d.SharedRefs[c[i]][c[j]]
			}
		}
	}
	return total
}

// GreedyQuality returns SHARE-REFS' within-cluster sharing as a fraction
// of the optimum, for suites small enough to solve exactly. Returns 1 when
// the optimum is zero.
func GreedyQuality(d *analysis.SharingData, p int) (float64, error) {
	greedy, err := Cluster(d, p, shareRefs{}, ThreadBalance, 0)
	if err != nil {
		return 0, err
	}
	opt, err := OptimalShare(d, p)
	if err != nil {
		return 0, err
	}
	o := WithinClusterSharedRefs(d, opt)
	if o == 0 {
		return 1, nil
	}
	g := WithinClusterSharedRefs(d, greedy)
	return math.Min(1, float64(g)/float64(o)), nil
}
