// Package placement implements the thread placement algorithms of §2 of
// the paper: the greedy agglomerative cluster-combining framework, the six
// sharing-based metrics (SHARE-REFS, SHARE-ADDR, MIN-PRIV, MIN-INVS,
// MAX-WRITES, MIN-SHARE), their load-balancing "+LB" variants, LOAD-BAL,
// RANDOM, and the dynamic coherence-traffic algorithm of §4.2.
//
// Every algorithm maps t threads onto p processors. Threads co-located on
// a processor form a "cluster". Thread-balanced algorithms produce clusters
// of ⌊t/p⌋ or ⌈t/p⌉ threads; load-balanced algorithms equalize the total
// dynamic instruction count instead.
package placement

import (
	"fmt"
	"sort"
)

// Placement maps threads to processors.
type Placement struct {
	// Algorithm names the algorithm that produced the placement.
	Algorithm string
	// Clusters[p] lists the thread IDs co-located on processor p, in
	// ascending order.
	Clusters [][]int
}

// NumProcessors returns the number of clusters.
func (pl *Placement) NumProcessors() int { return len(pl.Clusters) }

// NumThreads returns the total number of placed threads.
func (pl *Placement) NumThreads() int {
	n := 0
	for _, c := range pl.Clusters {
		n += len(c)
	}
	return n
}

// Assignment returns the thread -> processor map.
func (pl *Placement) Assignment() []int {
	a := make([]int, pl.NumThreads())
	for i := range a {
		a[i] = -1
	}
	for p, c := range pl.Clusters {
		for _, t := range c {
			if t >= 0 && t < len(a) {
				a[t] = p
			}
		}
	}
	return a
}

// Validate checks that the placement is a partition of exactly `threads`
// thread IDs over exactly `procs` processors with no empty processor.
func (pl *Placement) Validate(threads, procs int) error {
	if len(pl.Clusters) != procs {
		return fmt.Errorf("placement %s: %d clusters, want %d", pl.Algorithm, len(pl.Clusters), procs)
	}
	seen := make([]bool, threads)
	total := 0
	for p, c := range pl.Clusters {
		if len(c) == 0 {
			return fmt.Errorf("placement %s: processor %d empty", pl.Algorithm, p)
		}
		for _, t := range c {
			if t < 0 || t >= threads {
				return fmt.Errorf("placement %s: thread %d out of range", pl.Algorithm, t)
			}
			if seen[t] {
				return fmt.Errorf("placement %s: thread %d placed twice", pl.Algorithm, t)
			}
			seen[t] = true
			total++
		}
	}
	if total != threads {
		return fmt.Errorf("placement %s: placed %d of %d threads", pl.Algorithm, total, threads)
	}
	return nil
}

// ThreadBalanced reports whether every cluster has ⌊t/p⌋ or ⌈t/p⌉ threads,
// with exactly t mod p clusters of the larger size.
func (pl *Placement) ThreadBalanced() bool {
	t, p := pl.NumThreads(), len(pl.Clusters)
	if p == 0 {
		return false
	}
	lo, r := t/p, t%p
	big := 0
	for _, c := range pl.Clusters {
		switch len(c) {
		case lo:
		case lo + 1:
			big++
		default:
			return false
		}
	}
	if r == 0 {
		return big == 0
	}
	return big == r
}

// Loads returns each processor's total dynamic instruction count under the
// given per-thread lengths.
func (pl *Placement) Loads(lengths []uint64) []uint64 {
	loads := make([]uint64, len(pl.Clusters))
	for p, c := range pl.Clusters {
		for _, t := range c {
			loads[p] += lengths[t]
		}
	}
	return loads
}

// LoadImbalance returns (max load − ideal load) / ideal load, the relative
// overshoot of the most loaded processor. Zero means perfectly balanced.
func (pl *Placement) LoadImbalance(lengths []uint64) float64 {
	loads := pl.Loads(lengths)
	var total, max uint64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 0
	}
	ideal := float64(total) / float64(len(loads))
	return (float64(max) - ideal) / ideal
}

// normalize sorts thread IDs within clusters and clusters by first thread,
// giving placements a canonical form for display and tests.
func (pl *Placement) normalize() {
	for _, c := range pl.Clusters {
		sort.Ints(c)
	}
	sort.Slice(pl.Clusters, func(i, j int) bool {
		return pl.Clusters[i][0] < pl.Clusters[j][0]
	})
}

// String renders the placement compactly, e.g. "SHARE-REFS{[0 2][1 3]}".
func (pl *Placement) String() string {
	s := pl.Algorithm + "{"
	for _, c := range pl.Clusters {
		s += fmt.Sprint(c)
	}
	return s + "}"
}
