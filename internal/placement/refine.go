package placement

import (
	"fmt"

	"repro/internal/analysis"
)

// KL-SHARE is an extension beyond the paper's algorithm set: a
// Kernighan-Lin style refinement that starts from the LOAD-BAL placement
// and greedily swaps thread pairs across processors whenever the swap
// reduces cross-processor shared references without violating a load
// constraint. It is the strongest static sharing optimizer in the library
// — if even a placement that optimizes sharing *subject to load balance*
// cannot beat plain LOAD-BAL, the paper's conclusion is reinforced.

// klMaxPasses bounds the refinement sweeps; each pass examines every
// cross-processor thread pair once.
const klMaxPasses = 8

// KLShare computes the KL-SHARE placement: LOAD-BAL followed by
// gain-ordered cross-processor swaps under the given load slack
// (fractional allowed excess over the ideal per-processor load).
func KLShare(d *analysis.SharingData, p int, slack float64) (*Placement, error) {
	base, err := LoadBal(d, p)
	if err != nil {
		return nil, fmt.Errorf("KL-SHARE: %w", err)
	}
	pl := &Placement{Algorithm: "KL-SHARE", Clusters: base.Clusters}
	refineKL(d, pl, slack)
	pl.normalize()
	return pl, nil
}

// refineKL performs the swap passes in place.
func refineKL(d *analysis.SharingData, pl *Placement, slack float64) {
	assign := pl.Assignment()
	n := len(assign)
	p := len(pl.Clusters)

	var total uint64
	for _, l := range d.Lengths {
		total += l
	}
	limit := float64(total) / float64(p) * (1 + slack)

	loads := make([]float64, p)
	for t, q := range assign {
		loads[q] += float64(d.Lengths[t])
	}

	// ext[t][q] = shared refs between t and the threads on processor q.
	ext := make([][]float64, n)
	for t := 0; t < n; t++ {
		ext[t] = make([]float64, p)
		for o := 0; o < n; o++ {
			if o != t {
				ext[t][assign[o]] += float64(d.SharedRefs[t][o])
			}
		}
	}

	for pass := 0; pass < klMaxPasses; pass++ {
		improved := false
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				pa, pb := assign[a], assign[b]
				if pa == pb {
					continue
				}
				// KL gain of swapping a and b: external minus internal
				// connectivity of each, corrected for the a-b edge
				// counted on both sides.
				gain := (ext[a][pb] - ext[a][pa]) + (ext[b][pa] - ext[b][pb]) -
					2*float64(d.SharedRefs[a][b])
				if gain <= 0 {
					continue
				}
				la, lb := float64(d.Lengths[a]), float64(d.Lengths[b])
				if loads[pa]-la+lb > limit || loads[pb]-lb+la > limit {
					continue
				}
				// Apply the swap and update the incremental state.
				assign[a], assign[b] = pb, pa
				loads[pa] += lb - la
				loads[pb] += la - lb
				for t := 0; t < n; t++ {
					if t == a || t == b {
						continue
					}
					w := float64(d.SharedRefs[t][a])
					ext[t][pa] -= w
					ext[t][pb] += w
					w = float64(d.SharedRefs[t][b])
					ext[t][pb] -= w
					ext[t][pa] += w
				}
				// a sees b move pb->pa; b sees a move pa->pb.
				wab := float64(d.SharedRefs[a][b])
				ext[a][pb] -= wab
				ext[a][pa] += wab
				ext[b][pa] -= wab
				ext[b][pb] += wab
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	clusters := make([][]int, p)
	for t, q := range assign {
		clusters[q] = append(clusters[q], t)
	}
	pl.Clusters = clusters
}

// CrossSharedRefs returns the total shared references between threads on
// different processors — the quantity KL-SHARE minimizes.
func CrossSharedRefs(d *analysis.SharingData, pl *Placement) uint64 {
	assign := pl.Assignment()
	var total uint64
	for a := 0; a < len(assign); a++ {
		for b := a + 1; b < len(assign); b++ {
			if assign[a] != assign[b] {
				total += d.SharedRefs[a][b]
			}
		}
	}
	return total
}

// Extensions returns placement algorithms beyond the paper's set.
func Extensions() []Algorithm {
	return []Algorithm{
		{
			Name:         "KL-SHARE",
			SharingBased: true,
			Place: func(d *analysis.SharingData, p int, _ int64) (*Placement, error) {
				return KLShare(d, p, DefaultLoadSlack)
			},
		},
	}
}
