package placement

import (
	"math/rand"
	"testing"
)

func TestOptimalShareExactOnKnownCase(t *testing.T) {
	// Two tight pairs: the optimum co-locates them (score 200).
	m := symmetric(4, map[[2]int]uint64{
		{0, 1}: 100,
		{2, 3}: 100,
		{0, 2}: 30,
		{1, 3}: 30,
	})
	d := dataFromMatrix(m)
	opt, err := OptimalShare(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(4, 2); err != nil {
		t.Fatal(err)
	}
	if got := WithinClusterSharedRefs(d, opt); got != 200 {
		t.Errorf("optimal score = %d, want 200 (%v)", got, opt.Clusters)
	}
}

func TestOptimalDominatesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		n := 6 + rng.Intn(6)
		p := 2 + rng.Intn(2)
		pairs := make(map[[2]int]uint64)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs[[2]int{i, j}] = uint64(rng.Intn(100))
			}
		}
		d := dataFromMatrix(symmetric(n, pairs))
		opt, err := OptimalShare(d, p)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Cluster(d, p, shareRefs{}, ThreadBalance, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.ThreadBalanced() {
			t.Fatalf("trial %d: optimum not thread balanced: %v", trial, opt.Clusters)
		}
		o := WithinClusterSharedRefs(d, opt)
		g := WithinClusterSharedRefs(d, greedy)
		if g > o {
			t.Fatalf("trial %d: greedy (%d) beats 'optimal' (%d) — search is wrong", trial, g, o)
		}
	}
}

func TestGreedyQualityIsHigh(t *testing.T) {
	// The paper's greedy clustering should land near the optimum on
	// random instances; quantify it.
	rng := rand.New(rand.NewSource(23))
	var worst = 1.0
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(5)
		pairs := make(map[[2]int]uint64)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pairs[[2]int{i, j}] = uint64(rng.Intn(50))
			}
		}
		d := dataFromMatrix(symmetric(n, pairs))
		q, err := GreedyQuality(d, 3)
		if err != nil {
			t.Fatal(err)
		}
		if q < worst {
			worst = q
		}
	}
	if worst < 0.75 {
		t.Errorf("greedy quality dropped to %.2f of optimal — clustering regression?", worst)
	}
}

func TestOptimalShareErrors(t *testing.T) {
	d := dataFromMatrix(symmetric(30, nil))
	if _, err := OptimalShare(d, 4); err == nil {
		t.Error("oversized instance accepted")
	}
	small := dataFromMatrix(symmetric(3, nil))
	if _, err := OptimalShare(small, 5); err == nil {
		t.Error("p > t accepted")
	}
}
