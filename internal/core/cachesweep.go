package core

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
)

// CacheSizeRow is one point of the cache-size sweep.
type CacheSizeRow struct {
	// CacheSize is the per-processor capacity in bytes.
	CacheSize int
	ExecTime  uint64
	// ConflictsPerKilo is intra- plus inter-thread conflict misses per
	// 1000 references.
	ConflictsPerKilo float64
	// CompulsoryInvalidationPerKilo is the placement-invariant
	// component per 1000 references.
	CompulsoryInvalidationPerKilo float64
}

// CacheSizeSweep varies the per-processor cache from stressed to the
// paper's 8 MB "infinite" size. Figure 5's mechanism in one axis: growing
// the cache removes conflict misses while compulsory+invalidation misses
// stay put — the part placement was supposed to remove and cannot.
func (s *Suite) CacheSizeSweep(app, alg string, procs int, sizes []int) ([]CacheSizeRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	pl, err := s.Place(app, alg, procs)
	if err != nil {
		return nil, err
	}
	var rows []CacheSizeRow
	for _, size := range sizes {
		cfg, err := s.Config(app, procs, false)
		if err != nil {
			return nil, err
		}
		cfg.CacheSize = size
		res, err := s.simRun(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		tot := res.Totals()
		kilo := float64(tot.Refs) / 1000
		rows = append(rows, CacheSizeRow{
			CacheSize: size,
			ExecTime:  res.ExecTime,
			ConflictsPerKilo: (float64(tot.Misses[sim.ConflictIntra]) +
				float64(tot.Misses[sim.ConflictInter])) / kilo,
			CompulsoryInvalidationPerKilo: (float64(tot.Misses[sim.Compulsory]) +
				float64(tot.Misses[sim.InvalidationMiss])) / kilo,
		})
	}
	return rows, nil
}

// CacheSizeReport renders the cache-size sweep.
func CacheSizeReport(app, alg string, procs int, rows []CacheSizeRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: cache size (%s, %s, %d processors)", app, alg, procs),
		Note:    "(conflict misses vanish with capacity; compulsory+invalidation — the placement-invariant part — stay)",
		Columns: []string{"Cache", "Exec time", "Conflicts /1k", "Comp+Inv /1k"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d KB", r.CacheSize>>10), fmt.Sprint(r.ExecTime),
			report.F(r.ConflictsPerKilo, 2), report.F(r.CompulsoryInvalidationPerKilo, 2))
	}
	return t
}
