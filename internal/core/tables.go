package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table1Row summarizes one application (paper Table 1).
type Table1Row struct {
	App               string
	Grain             workload.Grain
	Threads           int
	TotalInstructions uint64
	MeanThreadLength  float64
	TotalRefs         uint64
	Description       string
}

// Table1 computes the application-suite summary.
func (s *Suite) Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, a := range workload.Apps() {
		tr, err := s.Trace(a.Name)
		if err != nil {
			return nil, err
		}
		total := tr.TotalInstructions()
		rows = append(rows, Table1Row{
			App:               a.Name,
			Grain:             a.Grain,
			Threads:           a.Threads,
			TotalInstructions: total,
			MeanThreadLength:  float64(total) / float64(a.Threads),
			TotalRefs:         tr.TotalRefs(),
			Description:       a.Description,
		})
	}
	return rows, nil
}

// Table1Report renders Table 1.
func Table1Report(rows []Table1Row) *report.Table {
	t := &report.Table{
		Title:   "Table 1: The application suite",
		Note:    "(coarse-grain programs first, then the medium-grain Presto programs)",
		Columns: []string{"Application", "Grain", "Threads", "Instr (1000s)", "Mean thread len (1000s)", "Refs (1000s)"},
	}
	for _, r := range rows {
		t.AddRow(r.App, r.Grain.String(), fmt.Sprint(r.Threads),
			report.K(float64(r.TotalInstructions)), report.K(r.MeanThreadLength), report.K(float64(r.TotalRefs)))
	}
	return t
}

// Table2 computes the measured characteristics of every application
// (paper Table 2).
func (s *Suite) Table2() ([]analysis.Characteristics, error) {
	var rows []analysis.Characteristics
	for _, a := range workload.Apps() {
		set, err := s.Set(a.Name)
		if err != nil {
			return nil, err
		}
		d, err := s.Sharing(a.Name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, set.Characteristics(d))
	}
	return rows, nil
}

// Table2Report renders Table 2 in the paper's Mean/Dev(%) layout.
func Table2Report(rows []analysis.Characteristics) *report.Table {
	t := &report.Table{
		Title: "Table 2: Measured characteristics",
		Note:  "(pairwise/N-way sharing in 1000s of references; Dev is percent standard deviation)",
		Columns: []string{"Application", "Pair Mean", "Pair Dev%", "N-way Mean", "N-way Dev%",
			"Refs/ShAddr", "RSA Dev%", "Shared Refs %", "Thread len (1000s)", "Len Dev%"},
	}
	for _, c := range rows {
		t.AddRow(c.App,
			report.K(c.Pairwise.Mean), report.F(c.Pairwise.Dev, 1),
			report.K(c.NWay.Mean), report.F(c.NWay.Dev, 1),
			report.F(c.RefsPerSharedAddr.Mean, 0), report.F(c.RefsPerSharedAddr.Dev, 1),
			report.F(c.PctSharedRefs, 1),
			report.K(c.Length.Mean), report.F(c.Length.Dev, 1))
	}
	return t
}

// Table3Report renders the architectural inputs (paper Table 3).
func Table3Report() *report.Table {
	t := &report.Table{
		Title:   "Table 3: Architectural inputs to the simulator",
		Columns: []string{"Parameter", "Value"},
	}
	t.AddRow("Number of processors", "2, 4, 8, 16 (varied per experiment)")
	t.AddRow("Hardware contexts per processor", "threads/processors (all threads loaded)")
	t.AddRow("Context switch policy", "round-robin, switch on cache miss")
	t.AddRow("Context switch time", fmt.Sprintf("%d cycles (pipeline drain)", sim.DefaultSwitchCycles))
	t.AddRow("Cache organization", "direct-mapped, write-back")
	t.AddRow("Cache size", "32 KB or 64 KB per application (8 MB for infinite-cache runs)")
	t.AddRow("Cache line size", fmt.Sprintf("%d bytes", sim.DefaultLineSize))
	t.AddRow("Cache hit time", fmt.Sprintf("%d cycle", sim.DefaultHitCycles))
	t.AddRow("Memory latency", fmt.Sprintf("%d cycles (multipath network, no contention)", sim.DefaultMemLatency))
	t.AddRow("Coherence", "distributed directory, MSI invalidate")
	return t
}

// Table4Row compares statically counted sharing against dynamically
// measured coherence traffic for one application (paper Table 4).
type Table4Row struct {
	App   string
	Grain workload.Grain
	// StaticPairwiseMean is the mean statically-counted shared
	// references between thread pairs.
	StaticPairwiseMean float64
	// DynamicPairwiseMean is the mean measured coherence traffic
	// (invalidations, invalidation misses, dirty fetches) between thread
	// pairs, from a one-thread-per-processor simulation.
	DynamicPairwiseMean float64
	// StaticPctOfRefs is statically-counted pairwise shared references
	// relative to total references (percent).
	StaticPctOfRefs float64
	// DynamicPctOfRefs is measured compulsory misses plus coherence
	// traffic relative to total references (percent). At this trace
	// scale it is dominated by compulsory misses, which do not amortize
	// over short threads; see InvalidationPctOfRefs for the
	// scale-insensitive coherence-only view.
	DynamicPctOfRefs float64
	// InvalidationPctOfRefs is invalidations plus invalidation misses
	// relative to total references (percent) — pure coherence traffic,
	// free of the compulsory-miss scale artifact.
	InvalidationPctOfRefs float64
	// OrdersOfMagnitude is log10(static/dynamic) for the pairwise means.
	OrdersOfMagnitude float64
}

// Table4 runs the one-thread-per-processor measurement for every
// application and compares static and dynamic sharing.
func (s *Suite) Table4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, a := range workload.Apps() {
		d, err := s.Sharing(a.Name)
		if err != nil {
			return nil, err
		}
		matrix, res, err := s.CoherenceMeasurement(a.Name)
		if err != nil {
			return nil, err
		}
		n := d.NumThreads()
		var static, dynamic float64
		pairs := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				static += float64(d.SharedRefs[i][j])
				dynamic += float64(matrix[i][j])
				pairs++
			}
		}
		static /= float64(pairs)
		dynamic /= float64(pairs)

		tot := res.Totals()
		row := Table4Row{
			App:                   a.Name,
			Grain:                 a.Grain,
			StaticPairwiseMean:    static,
			DynamicPairwiseMean:   dynamic,
			StaticPctOfRefs:       static / float64(tot.Refs) * 100,
			DynamicPctOfRefs:      float64(res.CoherenceTraffic()) / float64(tot.Refs) * 100,
			InvalidationPctOfRefs: float64(tot.InvalidationsSent+tot.Misses[sim.InvalidationMiss]) / float64(tot.Refs) * 100,
		}
		if dynamic > 0 {
			row.OrdersOfMagnitude = log10(static / dynamic)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4Report renders Table 4.
func Table4Report(rows []Table4Row) *report.Table {
	t := &report.Table{
		Title: "Table 4: Statically counted sharing vs dynamically measured coherence traffic",
		Note:  "(dynamic = one thread per processor; traffic = invalidations + invalidation misses + dirty fetches)",
		Columns: []string{"Application", "Static pair mean", "Dynamic pair mean", "Static/Dynamic (10^x)",
			"Static % of refs", "Dyn+compulsory % of refs", "Invalidation % of refs"},
	}
	for _, r := range rows {
		t.AddRow(r.App,
			report.F(r.StaticPairwiseMean, 0), report.F(r.DynamicPairwiseMean, 1),
			report.F(r.OrdersOfMagnitude, 1),
			report.F(r.StaticPctOfRefs, 2), report.F(r.DynamicPctOfRefs, 2),
			report.F(r.InvalidationPctOfRefs, 2))
	}
	return t
}

// Table5Apps are the six applications of §4.3: from each grain group, the
// three with the least uniform measured sharing (the paper names Water,
// LocusRoute ("Locus"), Pverify, Grav, FFT and Health).
func Table5Apps() []string {
	return []string{"Water", "LocusRoute", "Pverify", "Grav", "FFT", "Health"}
}

// Table5Cell is one (application, processors) measurement of Table 5.
type Table5Cell struct {
	App   string
	Procs int
	// BestStatic names the best static sharing-based algorithm for the
	// cell and BestStaticNorm its execution time normalized to LOAD-BAL.
	BestStatic     string
	BestStaticNorm float64
	// CoherenceNorm is the dynamic coherence-traffic algorithm's
	// execution time normalized to LOAD-BAL.
	CoherenceNorm float64
}

// Table5 runs the infinite-cache (8 MB) comparison of §4.3.
func (s *Suite) Table5() ([]Table5Cell, error) {
	var cells []Table5Cell
	for _, app := range Table5Apps() {
		for _, procs := range s.opts.ProcCounts {
			lb, err := s.RunOne(app, "LOAD-BAL", procs, true)
			if err != nil {
				return nil, err
			}
			results, err := s.RunAlgorithms(app, SharingAlgorithms(), procs, true)
			if err != nil {
				return nil, err
			}
			best := results[0]
			for _, r := range results[1:] {
				if r.Result.ExecTime < best.Result.ExecTime {
					best = r
				}
			}
			coh, err := s.RunCoherencePlacement(app, procs, true)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Table5Cell{
				App:            app,
				Procs:          procs,
				BestStatic:     best.Name,
				BestStaticNorm: float64(best.Result.ExecTime) / float64(lb.ExecTime),
				CoherenceNorm:  float64(coh.ExecTime) / float64(lb.ExecTime),
			})
		}
	}
	return cells, nil
}

// Table5Report renders Table 5 with one row per application and one column
// pair per processor count.
func Table5Report(cells []Table5Cell, procCounts []int) *report.Table {
	cols := []string{"Application"}
	for _, p := range procCounts {
		cols = append(cols, fmt.Sprintf("%dp best-static", p), fmt.Sprintf("%dp coherence", p))
	}
	t := &report.Table{
		Title:   "Table 5: Execution times normalized to LOAD-BAL with an 8 MB cache (no conflict misses)",
		Note:    "(best static sharing-based algorithm and the measured-coherence-traffic algorithm)",
		Columns: cols,
	}
	byApp := make(map[string]map[int]Table5Cell)
	var apps []string
	for _, c := range cells {
		if byApp[c.App] == nil {
			byApp[c.App] = make(map[int]Table5Cell)
			apps = append(apps, c.App)
		}
		byApp[c.App][c.Procs] = c
	}
	sort.SliceStable(apps, func(i, j int) bool {
		return appOrder(apps[i]) < appOrder(apps[j])
	})
	for _, app := range apps {
		row := []string{app}
		for _, p := range procCounts {
			c := byApp[app][p]
			row = append(row, report.F(c.BestStaticNorm, 2), report.F(c.CoherenceNorm, 2))
		}
		t.AddRow(row...)
	}
	return t
}

// appOrder gives the paper's Table 5 ordering.
func appOrder(app string) int {
	for i, a := range Table5Apps() {
		if a == app {
			return i
		}
	}
	return len(Table5Apps())
}

// log10 is math.Log10 guarded against non-positive arguments.
func log10(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log10(x)
}
