package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Ablation experiments: design-choice studies beyond the paper's tables
// and figures, each probing one of the paper's explanations directly.

// ---- associativity ----

// AssocRow is one point of the associativity ablation.
type AssocRow struct {
	Associativity int
	ExecTime      uint64
	// Normalized is ExecTime over the direct-mapped ExecTime.
	Normalized float64
	// InterConflictsPerKilo is inter-thread conflict misses per 1000
	// references — the component the paper's §4.1 thrashing anomaly
	// lives in ("Set associative caching would address this problem").
	InterConflictsPerKilo float64
	TotalMissesPerKilo    float64
}

// AssociativitySweep runs one application/placement across cache
// associativities. The paper observed thrashing between co-located
// threads (Patch at 16 processors) and names associativity as the fix.
func (s *Suite) AssociativitySweep(app, alg string, procs int, assocs []int) ([]AssocRow, error) {
	pl, err := s.Place(app, alg, procs)
	if err != nil {
		return nil, err
	}
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	var rows []AssocRow
	var base uint64
	for _, ways := range assocs {
		cfg, err := s.Config(app, procs, false)
		if err != nil {
			return nil, err
		}
		cfg.Associativity = ways
		res, err := s.simRun(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		tot := res.Totals()
		if base == 0 {
			base = res.ExecTime
		}
		rows = append(rows, AssocRow{
			Associativity:         ways,
			ExecTime:              res.ExecTime,
			Normalized:            float64(res.ExecTime) / float64(base),
			InterConflictsPerKilo: float64(tot.Misses[sim.ConflictInter]) / float64(tot.Refs) * 1000,
			TotalMissesPerKilo:    float64(tot.TotalMisses()) / float64(tot.Refs) * 1000,
		})
	}
	return rows, nil
}

// AssocReport renders the associativity ablation.
func AssocReport(app, alg string, procs int, rows []AssocRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: cache associativity (%s, %s, %d processors)", app, alg, procs),
		Note:    "(the paper suggests associativity as the fix for inter-thread cache thrashing, §4.1)",
		Columns: []string{"Ways", "Exec time", "vs direct", "Inter-thread conflicts /1k", "Total misses /1k"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Associativity), fmt.Sprint(r.ExecTime), report.F(r.Normalized, 3),
			report.F(r.InterConflictsPerKilo, 2), report.F(r.TotalMissesPerKilo, 2))
	}
	return t
}

// ---- hardware contexts ----

// ContextRow is one point of the hardware-context sweep.
type ContextRow struct {
	Contexts int
	ExecTime uint64
	// MeasuredEfficiency is busy cycles over total processor cycles
	// (busy+switch+idle), the simulator's processor utilization.
	MeasuredEfficiency float64
	// Deterministic and MVA are the analytical models' predictions for
	// the same machine parameters.
	Deterministic float64
	MVA           float64
}

// ContextSweep varies the number of hardware contexts per processor
// (Table 3 lists it as a simulator input) and compares the measured
// processor efficiency against the analytical models of the related work
// (§5: Weber & Gupta, Saavedra-Barrera).
func (s *Suite) ContextSweep(app string, procs int, contexts []int) ([]ContextRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	pl, err := s.Place(app, "LOAD-BAL", procs)
	if err != nil {
		return nil, err
	}
	var rows []ContextRow
	for _, n := range contexts {
		cfg, err := s.Config(app, procs, false)
		if err != nil {
			return nil, err
		}
		cfg.MaxContexts = n
		res, err := s.simRun(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		tot := res.Totals()
		cycles := float64(tot.Busy + tot.Switch + tot.Idle)
		measured := 0.0
		if cycles > 0 {
			measured = float64(tot.Busy) / cycles
		}
		// Fit the analytical machine from the run itself: mean useful
		// run length between blocking transactions.
		transactions := float64(tot.TotalMisses() + tot.Upgrades)
		m := model.Machine{
			RunLength:  float64(tot.Busy) / maxf(transactions, 1),
			Latency:    float64(cfg.MemLatency),
			SwitchCost: float64(cfg.SwitchCycles),
		}
		effContexts := n
		if perProc := (tr.NumThreads() + procs - 1) / procs; n == 0 || n > perProc {
			effContexts = perProc
		}
		rows = append(rows, ContextRow{
			Contexts:           effContexts,
			ExecTime:           res.ExecTime,
			MeasuredEfficiency: measured,
			Deterministic:      m.EfficiencyDeterministic(effContexts),
			MVA:                m.EfficiencyMVA(effContexts),
		})
	}
	return rows, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ContextReport renders the context sweep.
func ContextReport(app string, procs int, rows []ContextRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: hardware contexts per processor (%s, LOAD-BAL, %d processors)", app, procs),
		Note:    "(measured processor efficiency vs the deterministic and machine-repairman (MVA) models of §5's related work)",
		Columns: []string{"Contexts", "Exec time", "Measured eff", "Deterministic model", "MVA model"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Contexts), fmt.Sprint(r.ExecTime),
			report.F(r.MeasuredEfficiency, 3), report.F(r.Deterministic, 3), report.F(r.MVA, 3))
	}
	return t
}

// ---- sharing uniformity ----

// UniformityRow is one point of the sharing-uniformity sweep.
type UniformityRow struct {
	Uniformity float64
	// Normalized execution times vs RANDOM for the three placements.
	ShareRefs float64
	KLShare   float64
	LoadBal   float64
	// ShareRefsInvPerKilo is SHARE-REFS' invalidation misses per 1000
	// references; RandomInvPerKilo is RANDOM's.
	ShareRefsInvPerKilo float64
	RandomInvPerKilo    float64
}

// UniformitySweep generates synthetic workloads whose sharing uniformity
// varies from the paper's regime (1.0: every thread pair shares equally)
// to strongly pairwise sharing (0.0), and measures whether sharing-based
// placement starts to win. It tests the paper's §4.2 explanation directly:
// sharing-based placement fails *because* real sharing is uniform; with
// structured sharing it should recover invalidation misses.
func (s *Suite) UniformitySweep(uniformities []float64) ([]UniformityRow, error) {
	var rows []UniformityRow
	for _, u := range uniformities {
		spec := workload.DefaultSyntheticSpec()
		spec.Uniformity = u
		// Uniform thread lengths isolate the sharing effect from load
		// balance noise.
		spec.LengthSkew = 0
		spec.WriteFrac = 0.35
		spec.Name = fmt.Sprintf("Synthetic-u%.2f", u)
		app, err := workload.Synthetic(spec)
		if err != nil {
			return nil, err
		}
		tr, err := app.Build(s.opts.Params)
		if err != nil {
			return nil, err
		}
		d := analysis.Analyze(tr).Sharing()

		const procs = 8
		cfg := sim.DefaultConfig(procs)
		cfg.CacheSize = app.CacheSize

		runAlg := func(name string) (*sim.Result, error) {
			var pl *placement.Placement
			var err error
			switch name {
			case "KL-SHARE":
				pl, err = placement.KLShare(d, procs, placement.DefaultLoadSlack)
			default:
				var alg placement.Algorithm
				alg, err = placement.ByName(name)
				if err == nil {
					pl, err = alg.Place(d, procs, s.opts.RandomSeed)
				}
			}
			if err != nil {
				return nil, err
			}
			return s.simRun(tr, pl, cfg)
		}

		random, err := runAlg("RANDOM")
		if err != nil {
			return nil, err
		}
		shareRefs, err := runAlg("SHARE-REFS")
		if err != nil {
			return nil, err
		}
		kl, err := runAlg("KL-SHARE")
		if err != nil {
			return nil, err
		}
		lb, err := runAlg("LOAD-BAL")
		if err != nil {
			return nil, err
		}

		base := float64(random.ExecTime)
		rows = append(rows, UniformityRow{
			Uniformity:          u,
			ShareRefs:           float64(shareRefs.ExecTime) / base,
			KLShare:             float64(kl.ExecTime) / base,
			LoadBal:             float64(lb.ExecTime) / base,
			ShareRefsInvPerKilo: invPerKilo(shareRefs),
			RandomInvPerKilo:    invPerKilo(random),
		})
	}
	return rows, nil
}

func invPerKilo(r *sim.Result) float64 {
	tot := r.Totals()
	return float64(tot.Misses[sim.InvalidationMiss]) / float64(tot.Refs) * 1000
}

// UniformityReport renders the uniformity sweep.
func UniformityReport(rows []UniformityRow) *report.Table {
	t := &report.Table{
		Title: "Ablation: sharing uniformity (synthetic workload, 8 processors; exec times normalized to RANDOM)",
		Note:  "(uniformity 1.0 = the paper's regime: all pairs share equally; 0.0 = pairwise neighbour sharing)",
		Columns: []string{"Uniformity", "SHARE-REFS", "KL-SHARE", "LOAD-BAL",
			"SHARE-REFS inv/1k", "RANDOM inv/1k"},
	}
	for _, r := range rows {
		t.AddRow(report.F(r.Uniformity, 2), report.F(r.ShareRefs, 3), report.F(r.KLShare, 3),
			report.F(r.LoadBal, 3), report.F(r.ShareRefsInvPerKilo, 2), report.F(r.RandomInvPerKilo, 2))
	}
	return t
}

// ---- write runs ----

// WriteRunRow is one application's §4.2 write-run measurement.
type WriteRunRow struct {
	App   string
	Stats sim.WriteRunStats
}

// WriteRunStudy measures write runs (one thread per processor, as in the
// paper's dynamic measurements) for the given applications.
func (s *Suite) WriteRunStudy(apps []string) ([]WriteRunRow, error) {
	var rows []WriteRunRow
	for _, app := range apps {
		tr, err := s.Trace(app)
		if err != nil {
			return nil, err
		}
		n := tr.NumThreads()
		clusters := make([][]int, n)
		for i := range clusters {
			clusters[i] = []int{i}
		}
		pl := &placement.Placement{Algorithm: "ONE-THREAD-PER-PROC", Clusters: clusters}
		cfg, err := s.Config(app, n, false)
		if err != nil {
			return nil, err
		}
		cfg.TrackWriteRuns = true
		res, err := s.simRun(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WriteRunRow{App: app, Stats: *res.WriteRuns})
	}
	return rows, nil
}

// WriteRunReport renders the write-run study.
func WriteRunReport(rows []WriteRunRow) *report.Table {
	t := &report.Table{
		Title: "Write-run study (§4.2): single-thread write runs over shared blocks",
		Note:  "(the paper reports 73% of FFT's shared elements migratory — long write runs)",
		Columns: []string{"Application", "Written blocks", "Single-writer", "Migratory",
			"Ping-pong", "Migratory %", "Mean run len"},
	}
	for _, r := range rows {
		t.AddRow(r.App, fmt.Sprint(r.Stats.WrittenBlocks), fmt.Sprint(r.Stats.SingleWriterBlocks),
			fmt.Sprint(r.Stats.MigratoryBlocks), fmt.Sprint(r.Stats.PingPongBlocks),
			report.F(r.Stats.MigratoryPct(), 1), report.F(r.Stats.MeanRunLength, 1))
	}
	return t
}
