package core

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestPlacementMemoized: Place returns the identical *Placement for
// repeated calls on the same (app, algorithm, procs) cell.
func TestPlacementMemoized(t *testing.T) {
	s := testSuite()
	a, err := s.Place("Water", "SHARE-REFS", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Place("Water", "SHARE-REFS", 4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("placement not memoized: distinct pointers for identical cell")
	}
	c, err := s.Place("Water", "SHARE-REFS", 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("distinct processor counts share a placement")
	}
}

// TestSimulationMemoized: RunOne returns the identical *Result for
// repeated calls on the same cell, and distinct cells do not collide.
func TestSimulationMemoized(t *testing.T) {
	s := testSuite()
	a, err := s.RunOne("MP3D", "LOAD-BAL", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunOne("MP3D", "LOAD-BAL", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("simulation not memoized: distinct pointers for identical cell")
	}
	inf, err := s.RunOne("MP3D", "LOAD-BAL", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if a == inf {
		t.Error("finite and infinite cache configurations share a result")
	}
}

// TestMemoizationConcurrent hammers one cell from many goroutines; every
// caller must observe the same pointer (exercised under -race by the CI
// tier).
func TestMemoizationConcurrent(t *testing.T) {
	s := testSuite()
	const n = 16
	results := make([]*sim.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.RunOne("Cholesky", "SHARE-ADDR", 8, false)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d observed a different result pointer", i)
		}
	}
}
