package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestProtocolComparison(t *testing.T) {
	s := testSuite()
	rows, err := s.ProtocolComparison("Fullconn", 8, []string{"LOAD-BAL", "RANDOM"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byProto := map[sim.Protocol][]ProtocolRow{}
	for _, r := range rows {
		byProto[r.Protocol] = append(byProto[r.Protocol], r)
	}
	for _, r := range byProto[sim.Invalidate] {
		if r.UpdatesPerKilo != 0 {
			t.Errorf("invalidate run reports updates: %+v", r)
		}
		if r.InvalidationsPerKilo == 0 {
			t.Errorf("Fullconn under invalidate sent no invalidations: %+v", r)
		}
	}
	for _, r := range byProto[sim.Update] {
		if r.InvalidationsPerKilo != 0 {
			t.Errorf("update run reports invalidations: %+v", r)
		}
		if r.UpdatesPerKilo == 0 {
			t.Errorf("Fullconn under update sent no updates: %+v", r)
		}
	}
	out := ProtocolReport("Fullconn", 8, rows).String()
	if !strings.Contains(out, "update") || !strings.Contains(out, "invalidate") {
		t.Error("report missing protocol names")
	}
}

func TestLatencySweep(t *testing.T) {
	s := testSuite()
	rows, err := s.LatencySweep("FFT", 8, []uint64{10, 50, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's conclusion must hold at every latency: LOAD-BAL gains
	// clearly over RANDOM, and the best sharing algorithm does not beat
	// LOAD-BAL meaningfully.
	for _, r := range rows {
		if r.LoadBalGain < 5 {
			t.Errorf("latency %d: LOAD-BAL gain %.1f%%, want clear win", r.Latency, r.LoadBalGain)
		}
		if r.BestSharingGain > r.LoadBalGain+5 {
			t.Errorf("latency %d: sharing gain %.1f%% beats LOAD-BAL's %.1f%%",
				r.Latency, r.BestSharingGain, r.LoadBalGain)
		}
	}
	out := LatencyReport("FFT", 8, rows).String()
	if !strings.Contains(out, "150") {
		t.Error("report missing latency row")
	}
}

func TestContentionSweep(t *testing.T) {
	s := testSuite()
	rows, err := s.ContentionSweep("MP3D", "LOAD-BAL", 8, []int{0, 1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].WaitPerTransaction != 0 || rows[0].Normalized != 1 {
		t.Errorf("uncontended baseline wrong: %+v", rows[0])
	}
	// One channel must hurt more than sixteen.
	if rows[1].ExecTime < rows[3].ExecTime {
		t.Errorf("1 channel (%d) faster than 16 (%d)", rows[1].ExecTime, rows[3].ExecTime)
	}
	if rows[1].WaitPerTransaction == 0 {
		t.Error("single channel shows no queueing")
	}
	out := ContentionReport("MP3D", "LOAD-BAL", 8, rows).String()
	if !strings.Contains(out, "uncontended") {
		t.Error("report missing note")
	}
}

func TestContentionSweepSignature(t *testing.T) {
	s := testSuite()
	if _, err := s.ContentionSweep("NoApp", "LOAD-BAL", 4, []int{0}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := s.ProtocolComparison("Water", 4, []string{"NOPE"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
