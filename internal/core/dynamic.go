package core

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
)

// DynamicRow compares static placements against online self-scheduling
// for one application.
type DynamicRow struct {
	App string
	// StaticLoadBal is LOAD-BAL's execution time under the same
	// hardware-context cap (the oracle static baseline: it knows exact
	// thread lengths a priori).
	StaticLoadBal uint64
	// StaticRandomNorm is RANDOM's execution time over LOAD-BAL's.
	StaticRandomNorm float64
	// DynamicFIFONorm and DynamicLPTNorm are the online schedulers'
	// execution times over LOAD-BAL's.
	DynamicFIFONorm float64
	DynamicLPTNorm  float64
}

// DynamicComparison pits the paper's static placements against an online
// self-scheduler (an extension: the paper studies only static placement,
// describing RANDOM as what a low-overhead runtime scheduler would
// achieve). contextsPerProc seeds that many hardware contexts per
// processor; the scheduler hands out remaining threads as contexts free.
func (s *Suite) DynamicComparison(apps []string, procs, contextsPerProc int) ([]DynamicRow, error) {
	var rows []DynamicRow
	for _, app := range apps {
		tr, err := s.Trace(app)
		if err != nil {
			return nil, err
		}
		cfg, err := s.Config(app, procs, false)
		if err != nil {
			return nil, err
		}
		// Same hardware for everyone: contextsPerProc hardware contexts.
		cfg.MaxContexts = contextsPerProc
		lbPl, err := s.Place(app, "LOAD-BAL", procs)
		if err != nil {
			return nil, err
		}
		lb, err := s.simRun(tr, lbPl, cfg)
		if err != nil {
			return nil, err
		}
		rndPl, err := s.Place(app, "RANDOM", procs)
		if err != nil {
			return nil, err
		}
		random, err := s.simRun(tr, rndPl, cfg)
		if err != nil {
			return nil, err
		}
		fifo, err := s.dynRun(tr, cfg, sim.FIFO)
		if err != nil {
			return nil, err
		}
		lpt, err := s.dynRun(tr, cfg, sim.LongestFirst)
		if err != nil {
			return nil, err
		}
		base := float64(lb.ExecTime)
		rows = append(rows, DynamicRow{
			App:              app,
			StaticLoadBal:    lb.ExecTime,
			StaticRandomNorm: float64(random.ExecTime) / base,
			DynamicFIFONorm:  float64(fifo.ExecTime) / base,
			DynamicLPTNorm:   float64(lpt.ExecTime) / base,
		})
	}
	return rows, nil
}

// DynamicReport renders the static-vs-dynamic comparison.
func DynamicReport(procs, contexts int, rows []DynamicRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: static placement vs online self-scheduling (%d processors, %d seeded contexts)", procs, contexts),
		Note:    "(normalized to static LOAD-BAL, which knows exact thread lengths a priori)",
		Columns: []string{"Application", "LOAD-BAL exec", "RANDOM", "DYNAMIC fifo", "DYNAMIC longest-first"},
	}
	for _, r := range rows {
		t.AddRow(r.App, fmt.Sprint(r.StaticLoadBal), report.F(r.StaticRandomNorm, 3),
			report.F(r.DynamicFIFONorm, 3), report.F(r.DynamicLPTNorm, 3))
	}
	return t
}
