package core

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestDifferentialEngines is the harness that proves the fast engine
// cycle-exact on the real workload: every application, three
// representative placement algorithms (the paper's baselines RANDOM and
// LOAD-BAL plus the best sharing-based algorithm SHARE-REFS), at 2 and 8
// processors. The reference and fast engines must produce deeply equal
// Results — execution times, per-processor stats, miss components,
// invalidations, write runs, everything.
func TestDifferentialEngines(t *testing.T) {
	s := testSuite()
	algs := []string{"RANDOM", "LOAD-BAL", "SHARE-REFS"}
	procCounts := []int{2, 8}
	for _, a := range workload.Apps() {
		app := a.Name
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			tr, err := s.Trace(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range algs {
				for _, procs := range procCounts {
					pl, err := s.Place(app, alg, procs)
					if err != nil {
						t.Fatal(err)
					}
					cfg, err := s.Config(app, procs, false)
					if err != nil {
						t.Fatal(err)
					}
					ref, err := sim.RunEngine(tr, pl, cfg, sim.ReferenceEngine)
					if err != nil {
						t.Fatalf("%s/%dp: reference engine: %v", alg, procs, err)
					}
					fast, err := sim.RunEngine(tr, pl, cfg, sim.FastEngine)
					if err != nil {
						t.Fatalf("%s/%dp: fast engine: %v", alg, procs, err)
					}
					if !reflect.DeepEqual(ref, fast) {
						t.Errorf("%s/%dp: engines diverge:\n  reference: exec %d, totals %+v\n  fast:      exec %d, totals %+v",
							alg, procs, ref.ExecTime, ref.Totals(), fast.ExecTime, fast.Totals())
					}
				}
			}
		})
	}
}
