package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestResultBundleRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full regeneration is slow")
	}
	s := testSuite()
	b, err := s.CollectResults("MP3D")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Table1) != 14 || len(b.Table2) != 14 || len(b.Table4) != 14 {
		t.Fatalf("incomplete bundle: %d/%d/%d rows", len(b.Table1), len(b.Table2), len(b.Table4))
	}
	if len(b.Figures) != 3 || len(b.Figure5) == 0 || len(b.Table5) == 0 {
		t.Fatal("missing figures in bundle")
	}

	path := filepath.Join(t.TempDir(), "results.json")
	if err := b.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadResults(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Table1, got.Table1) {
		t.Error("table 1 changed through JSON round trip")
	}
	if !reflect.DeepEqual(b.Table5, got.Table5) {
		t.Error("table 5 changed through JSON round trip")
	}
	if !reflect.DeepEqual(b.Figures["FFT"], got.Figures["FFT"]) {
		t.Error("FFT figure changed through JSON round trip")
	}
}

func TestLoadResultsErrors(t *testing.T) {
	if _, err := LoadResults("/nonexistent/path.json"); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadResults(bad); err == nil {
		t.Error("corrupt JSON accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
