package core

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/sim"
)

// Second group of ablations: coherence protocol, memory latency and
// interconnect contention — each relaxes one assumption of the paper's
// simulator and asks whether the conclusions survive.

// ---- protocol ----

// ProtocolRow compares the two coherence protocols for one placement.
type ProtocolRow struct {
	Algorithm string
	Protocol  sim.Protocol
	ExecTime  uint64
	// InvalidationsPerKilo and UpdatesPerKilo are coherence messages per
	// 1000 references under the respective protocol.
	InvalidationsPerKilo float64
	UpdatesPerKilo       float64
	MissesPerKilo        float64
}

// ProtocolComparison runs the given placements under both the paper's
// write-invalidate protocol and the write-update extension.
func (s *Suite) ProtocolComparison(app string, procs int, algs []string) ([]ProtocolRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	var rows []ProtocolRow
	for _, alg := range algs {
		pl, err := s.Place(app, alg, procs)
		if err != nil {
			return nil, err
		}
		for _, proto := range []sim.Protocol{sim.Invalidate, sim.Update} {
			cfg, err := s.Config(app, procs, false)
			if err != nil {
				return nil, err
			}
			cfg.Protocol = proto
			res, err := s.simRun(tr, pl, cfg)
			if err != nil {
				return nil, err
			}
			tot := res.Totals()
			kilo := float64(tot.Refs) / 1000
			rows = append(rows, ProtocolRow{
				Algorithm:            alg,
				Protocol:             proto,
				ExecTime:             res.ExecTime,
				InvalidationsPerKilo: float64(tot.InvalidationsSent) / kilo,
				UpdatesPerKilo:       float64(tot.UpdatesSent) / kilo,
				MissesPerKilo:        float64(tot.TotalMisses()) / kilo,
			})
		}
	}
	return rows, nil
}

// ProtocolReport renders the protocol comparison.
func ProtocolReport(app string, procs int, rows []ProtocolRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: coherence protocol (%s, %d processors)", app, procs),
		Note:    "(write-update trades invalidation misses for update messages; the paper simulates invalidate only)",
		Columns: []string{"Algorithm", "Protocol", "Exec time", "Inv /1k", "Updates /1k", "Misses /1k"},
	}
	for _, r := range rows {
		t.AddRow(r.Algorithm, r.Protocol.String(), fmt.Sprint(r.ExecTime),
			report.F(r.InvalidationsPerKilo, 2), report.F(r.UpdatesPerKilo, 2),
			report.F(r.MissesPerKilo, 2))
	}
	return t
}

// ---- latency ----

// LatencyRow is one point of the memory-latency sweep.
type LatencyRow struct {
	Latency uint64
	// LoadBalGain is (1 - LOAD-BAL/RANDOM) x 100: the headline
	// load-balancing advantage at this latency.
	LoadBalGain float64
	// BestSharingGain is the same for the best sharing-based algorithm.
	BestSharingGain float64
}

// LatencySweep re-runs the Figure 2/3-style comparison across memory
// latencies. The paper fixes 50 cycles; the sweep asks whether load
// balancing stays dominant when remote memory becomes much slower.
func (s *Suite) LatencySweep(app string, procs int, latencies []uint64) ([]LatencyRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	algs := append(SharingAlgorithms(), "LOAD-BAL", "RANDOM")
	var rows []LatencyRow
	for _, lat := range latencies {
		var random, loadBal, bestSharing uint64
		for _, alg := range algs {
			pl, err := s.Place(app, alg, procs)
			if err != nil {
				return nil, err
			}
			cfg, err := s.Config(app, procs, false)
			if err != nil {
				return nil, err
			}
			cfg.MemLatency = lat
			res, err := s.simRun(tr, pl, cfg)
			if err != nil {
				return nil, err
			}
			switch alg {
			case "RANDOM":
				random = res.ExecTime
			case "LOAD-BAL":
				loadBal = res.ExecTime
			default:
				if bestSharing == 0 || res.ExecTime < bestSharing {
					bestSharing = res.ExecTime
				}
			}
		}
		rows = append(rows, LatencyRow{
			Latency:         lat,
			LoadBalGain:     (1 - float64(loadBal)/float64(random)) * 100,
			BestSharingGain: (1 - float64(bestSharing)/float64(random)) * 100,
		})
	}
	return rows, nil
}

// LatencyReport renders the latency sweep.
func LatencyReport(app string, procs int, rows []LatencyRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: memory latency (%s, %d processors; gains vs RANDOM)", app, procs),
		Note:    "(the paper fixes 50 cycles; load balancing should dominate at every latency)",
		Columns: []string{"Latency", "LOAD-BAL gain %", "Best sharing gain %"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Latency), report.F(r.LoadBalGain, 1), report.F(r.BestSharingGain, 1))
	}
	return t
}

// ---- contention ----

// ContentionRow is one point of the interconnect-contention sweep.
type ContentionRow struct {
	// Channels is the interconnect channel count (0 = uncontended).
	Channels int
	ExecTime uint64
	// Normalized is ExecTime over the uncontended ExecTime.
	Normalized float64
	// WaitPerTransaction is mean channel-queueing cycles per memory
	// transaction.
	WaitPerTransaction float64
}

// ContentionSweep varies the modeled interconnect width for one
// application/placement. The paper's multipath network is uncontended;
// this asks how much headroom that assumption has.
func (s *Suite) ContentionSweep(app, alg string, procs int, channels []int) ([]ContentionRow, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	pl, err := s.Place(app, alg, procs)
	if err != nil {
		return nil, err
	}
	var rows []ContentionRow
	var base uint64
	for _, ch := range channels {
		cfg, err := s.Config(app, procs, false)
		if err != nil {
			return nil, err
		}
		cfg.NetworkChannels = ch
		res, err := s.simRun(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.ExecTime
		}
		tot := res.Totals()
		transactions := tot.TotalMisses() + tot.Upgrades
		wait := 0.0
		if transactions > 0 {
			wait = float64(tot.NetworkWait) / float64(transactions)
		}
		rows = append(rows, ContentionRow{
			Channels:           ch,
			ExecTime:           res.ExecTime,
			Normalized:         float64(res.ExecTime) / float64(base),
			WaitPerTransaction: wait,
		})
	}
	return rows, nil
}

// ContentionReport renders the contention sweep.
func ContentionReport(app, alg string, procs int, rows []ContentionRow) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: interconnect contention (%s, %s, %d processors)", app, alg, procs),
		Note:    "(0 channels = the paper's uncontended multipath network)",
		Columns: []string{"Channels", "Exec time", "vs uncontended", "Wait/transaction"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.Channels), fmt.Sprint(r.ExecTime),
			report.F(r.Normalized, 3), report.F(r.WaitPerTransaction, 1))
	}
	return t
}
