package core

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestReusePredictsFullyAssociativeMisses cross-validates the analytical
// reuse-distance model against the simulator: for a single thread on one
// processor with a fully associative LRU cache sized at a power of two,
// the histogram's predicted miss ratio is exact (no coherence, no
// conflicts beyond capacity), so the two must agree.
func TestReusePredictsFullyAssociativeMisses(t *testing.T) {
	s := testSuite()
	full, err := s.Trace("Barnes-Hut")
	if err != nil {
		t.Fatal(err)
	}
	h := analysis.ThreadReuse(full.Threads[0], sim.DefaultLineSize)

	// Extract thread 0 into a standalone single-thread trace.
	one := trace.New(full.App, 1)
	r := trace.NewRecorder(one, 0)
	for c := full.Threads[0].Cursor(); ; {
		e, ok := c.Next()
		if !ok {
			break
		}
		r.Compute(int(e.Gap))
		r.Ref(e.Kind, e.Addr)
	}

	for _, blocks := range []int{64, 256, 1024} {
		cfg := sim.DefaultConfig(1)
		cfg.CacheSize = blocks * sim.DefaultLineSize
		cfg.Associativity = blocks // fully associative
		pl := &placement.Placement{Algorithm: "ONE", Clusters: [][]int{{0}}}
		res, err := sim.Run(one, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Totals()
		simRatio := float64(tot.TotalMisses()) / float64(tot.Refs)
		predicted := h.MissRatio(blocks)
		if diff := simRatio - predicted; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("cache %d blocks: simulated %.6f vs predicted %.6f", blocks, simRatio, predicted)
		}
	}
}
