package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// testSuite returns a shared Suite at a reduced scale so the integration
// tests stay fast. Tests must not mutate it.
var testSuite = sync.OnceValue(func() *Suite {
	opts := DefaultOptions()
	opts.Params = workload.Params{Scale: 1, Seed: 1994}
	opts.ProcCounts = []int{2, 4, 8}
	return NewSuite(opts)
})

func TestSuiteCaching(t *testing.T) {
	s := testSuite()
	a, err := s.Trace("Water")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Trace("Water")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace not cached")
	}
	d1, err := s.Sharing("Water")
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := s.Sharing("Water")
	if d1 != d2 {
		t.Error("sharing data not cached")
	}
}

func TestRunOneDeterminism(t *testing.T) {
	s := testSuite()
	a, err := s.RunOne("MP3D", "SHARE-REFS", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunOne("MP3D", "SHARE-REFS", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime {
		t.Errorf("exec times differ: %d vs %d", a.ExecTime, b.ExecTime)
	}
}

func TestRunOneErrors(t *testing.T) {
	s := testSuite()
	if _, err := s.RunOne("NoSuchApp", "LOAD-BAL", 4, false); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := s.RunOne("Water", "NO-SUCH-ALG", 4, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := s.RunOne("Water", "LOAD-BAL", 1000, false); err == nil {
		t.Error("more processors than threads accepted")
	}
}

func TestTable1(t *testing.T) {
	s := testSuite()
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	for _, r := range rows {
		if r.Threads <= 0 || r.TotalInstructions == 0 {
			t.Errorf("%s: empty row %+v", r.App, r)
		}
	}
	out := Table1Report(rows).String()
	for _, want := range []string{"LocusRoute", "Gauss", "coarse", "medium"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 report missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	s := testSuite()
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	out := Table2Report(rows).String()
	if !strings.Contains(out, "Shared Refs %") {
		t.Error("Table 2 report missing shared refs column")
	}
}

func TestTable3(t *testing.T) {
	out := Table3Report().String()
	for _, want := range []string{"50 cycles", "6 cycles", "direct-mapped", "32 bytes", "round-robin"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 report missing %q", want)
		}
	}
}

// TestMissInvariance verifies the paper's central negative result:
// compulsory and invalidation misses are insensitive to the placement
// algorithm. For uniformly sharing applications the per-1000-references
// compulsory+invalidation figure must stay within a tight band across all
// fourteen algorithms at a fixed threads/processor configuration.
func TestMissInvariance(t *testing.T) {
	s := testSuite()
	for _, app := range []string{"Water", "Gauss", "MP3D"} {
		cells, err := s.MissComponentFigure(app)
		if err != nil {
			t.Fatal(err)
		}
		for _, procs := range s.Options().ProcCounts {
			var mean float64
			n := 0
			for _, c := range cells {
				if c.Procs == procs {
					mean += c.CompulsoryPlusInvalidation()
					n++
				}
			}
			if n == 0 {
				t.Fatalf("%s: no cells for %d procs", app, procs)
			}
			mean /= float64(n)
			spread := InvarianceSpread(cells, procs)
			// Spread must be small in absolute terms (misses per 1000
			// refs) and relative to the mean.
			if spread > 6 && spread > 0.35*mean {
				t.Errorf("%s at %dp: compulsory+invalidation spread %.2f (mean %.2f) — placement-sensitive",
					app, procs, spread, mean)
			}
		}
	}
}

// TestLoadBalancingDominates verifies the paper's positive result: for
// applications with large thread-length deviation, LOAD-BAL clearly beats
// RANDOM with few threads per processor; for uniform-length applications
// the two are comparable.
func TestLoadBalancingDominates(t *testing.T) {
	s := testSuite()

	// FFT: the suite's most skewed lengths (paper: 13-56% faster).
	fig, err := s.ExecutionFigure("FFT")
	if err != nil {
		t.Fatal(err)
	}
	cell := fig.Cell("LOAD-BAL", 8)
	if cell == nil {
		t.Fatal("missing FFT LOAD-BAL/8p cell")
	}
	if cell.Normalized > 0.92 {
		t.Errorf("FFT 8p: LOAD-BAL/RANDOM = %.3f, want clear win (< 0.92)", cell.Normalized)
	}

	// Water: near-uniform lengths; LOAD-BAL must not be dramatically
	// better or worse than RANDOM.
	fig, err = s.ExecutionFigure("Water")
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range s.Options().ProcCounts {
		c := fig.Cell("LOAD-BAL", procs)
		if c == nil {
			t.Fatalf("missing Water LOAD-BAL/%dp cell", procs)
		}
		if c.Normalized < 0.85 || c.Normalized > 1.15 {
			t.Errorf("Water %dp: LOAD-BAL/RANDOM = %.3f, want ~1 for uniform lengths", procs, c.Normalized)
		}
	}
}

// TestSharingPlacementDoesNotWin: no sharing-based algorithm beats
// LOAD-BAL by a meaningful margin on the skewed applications — sharing
// criteria cannot compensate for load imbalance.
func TestSharingPlacementDoesNotWin(t *testing.T) {
	s := testSuite()
	results, err := s.RunAlgorithms("FFT", append(SharingAlgorithms(), "LOAD-BAL"), 8, false)
	if err != nil {
		t.Fatal(err)
	}
	var lb uint64
	for _, r := range results {
		if r.Name == "LOAD-BAL" {
			lb = r.Result.ExecTime
		}
	}
	for _, r := range results {
		if r.Name == "LOAD-BAL" {
			continue
		}
		if float64(r.Result.ExecTime) < 0.95*float64(lb) {
			t.Errorf("FFT 8p: %s (%d) beats LOAD-BAL (%d) by >5%%", r.Name, r.Result.ExecTime, lb)
		}
	}
}

// TestStaticOverestimatesDynamic verifies §4.2 / Table 4: static
// per-thread shared-reference counts exceed the dynamically measured
// coherence traffic by orders of magnitude.
func TestStaticOverestimatesDynamic(t *testing.T) {
	s := testSuite()
	rows, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	atLeastOneOrder := 0
	for _, r := range rows {
		if r.DynamicPairwiseMean > r.StaticPairwiseMean {
			t.Errorf("%s: dynamic pairwise traffic (%.1f) exceeds static count (%.1f)",
				r.App, r.DynamicPairwiseMean, r.StaticPairwiseMean)
		}
		if r.DynamicPairwiseMean == 0 || r.OrdersOfMagnitude >= 1 {
			atLeastOneOrder++
		}
	}
	if atLeastOneOrder < 9 {
		t.Errorf("only %d/14 applications show >= 1 order of magnitude static/dynamic gap", atLeastOneOrder)
	}
	out := Table4Report(rows).String()
	if !strings.Contains(out, "Gauss") {
		t.Error("Table 4 report missing Gauss")
	}
}

// TestTable5InfiniteCache verifies §4.3: with an 8 MB cache the best
// sharing-based algorithm does not significantly beat LOAD-BAL (the paper
// reports at most 2% wins; sharing may still lose when it breaks load
// balance).
func TestTable5InfiniteCache(t *testing.T) {
	if testing.Short() {
		t.Skip("infinite-cache sweep is slow")
	}
	s := testSuite()
	cells, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Table5Apps())*len(s.Options().ProcCounts) {
		t.Fatalf("%d cells, want %d", len(cells), len(Table5Apps())*len(s.Options().ProcCounts))
	}
	for _, c := range cells {
		// Sharing-based placement must not *win big* — that would
		// contradict the paper. (Losing is expected for skewed apps.)
		if c.App == "FFT" || c.App == "Health" {
			// With our scaled traces these two apps' giant threads
			// make any thread-balanced placement swing widely; the
			// claim is checked on the better-behaved apps.
			continue
		}
		if c.BestStaticNorm < 0.90 {
			t.Errorf("%s %dp: best static sharing alg beats LOAD-BAL by %.0f%% under infinite cache",
				c.App, c.Procs, (1-c.BestStaticNorm)*100)
		}
	}
	out := Table5Report(cells, s.Options().ProcCounts).String()
	if !strings.Contains(out, "Water") {
		t.Error("Table 5 report missing Water")
	}
}

func TestCoherenceMeasurementCachedAndSane(t *testing.T) {
	s := testSuite()
	m1, res, err := s.CoherenceMeasurement("Barnes-Hut")
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := s.CoherenceMeasurement("Barnes-Hut")
	if err != nil {
		t.Fatal(err)
	}
	if &m1[0] != &m2[0] {
		t.Error("coherence measurement not cached")
	}
	tr, _ := s.Trace("Barnes-Hut")
	if len(m1) != tr.NumThreads() {
		t.Errorf("matrix size %d, want %d", len(m1), tr.NumThreads())
	}
	if len(res.Procs) != tr.NumThreads() {
		t.Errorf("measurement used %d procs, want one per thread", len(res.Procs))
	}
	// Symmetry.
	for i := range m1 {
		for j := range m1 {
			if m1[i][j] != m1[j][i] {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestRunCoherencePlacement(t *testing.T) {
	s := testSuite()
	res, err := s.RunCoherencePlacement("Barnes-Hut", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime == 0 {
		t.Error("zero execution time")
	}
	if res.Algorithm != "COHERENCE" {
		t.Errorf("algorithm = %q, want COHERENCE", res.Algorithm)
	}
}

func TestExecutionFigureStructure(t *testing.T) {
	s := testSuite()
	fig, err := s.ExecutionFigure("Topopt")
	if err != nil {
		t.Fatal(err)
	}
	want := len(AllAlgorithms()) * len(s.Options().ProcCounts)
	if len(fig.Cells) != want {
		t.Fatalf("%d cells, want %d", len(fig.Cells), want)
	}
	for _, procs := range s.Options().ProcCounts {
		c := fig.Cell("RANDOM", procs)
		if c == nil || c.Normalized != 1.0 {
			t.Errorf("RANDOM at %dp not normalized to 1.0: %+v", procs, c)
		}
	}
	for _, c := range fig.Cells {
		if c.Normalized <= 0 || c.ExecTime == 0 {
			t.Errorf("degenerate cell %+v", c)
		}
	}
	chart := fig.Chart("test").String()
	if !strings.Contains(chart, "RANDOM") || !strings.Contains(chart, "2 processors") {
		t.Error("chart missing expected content")
	}
}

func TestMissComponentReportAndSpread(t *testing.T) {
	cells := []MissComponentCell{
		{Algorithm: "A", Procs: 4, PerKilo: [4]float64{2, 1, 1, 1}},
		{Algorithm: "B", Procs: 4, PerKilo: [4]float64{2.5, 5, 1, 1.5}},
		{Algorithm: "C", Procs: 8, PerKilo: [4]float64{9, 0, 0, 9}},
	}
	// A: comp+inv = 3; B: 4. Spread at 4p = 1.
	if got := InvarianceSpread(cells, 4); got != 1 {
		t.Errorf("spread = %v, want 1", got)
	}
	if got := InvarianceSpread(cells, 16); got != 0 {
		t.Errorf("empty spread = %v, want 0", got)
	}
	out := MissComponentReport("X", cells).String()
	for _, want := range []string{"Compulsory", "Invalidation", "Comp+Inv", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestConfigSelection(t *testing.T) {
	s := testSuite()
	cfg, err := s.Config("Water", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CacheSize != 32<<10 {
		t.Errorf("Water cache = %d, want 32KB", cfg.CacheSize)
	}
	cfg, err = s.Config("Fullconn", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CacheSize != 64<<10 {
		t.Errorf("Fullconn cache = %d, want 64KB", cfg.CacheSize)
	}
	cfg, err = s.Config("Water", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CacheSize != sim.InfiniteCacheSize {
		t.Errorf("infinite cache = %d, want %d", cfg.CacheSize, sim.InfiniteCacheSize)
	}
}

func TestRandomSeedVariesByConfig(t *testing.T) {
	s := testSuite()
	if s.randomSeed("Water", 2) == s.randomSeed("Water", 4) {
		t.Error("same RANDOM seed for different processor counts")
	}
	if s.randomSeed("Water", 2) == s.randomSeed("FFT", 2) {
		t.Error("same RANDOM seed for different applications")
	}
}
