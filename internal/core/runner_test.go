package core

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/placement"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runnerOptions returns the reduced-scale options the runner tests use.
func runnerOptions() Options {
	opts := DefaultOptions()
	opts.Params = workload.Params{Scale: 1, Seed: 1994}
	opts.ProcCounts = []int{2, 4}
	return opts
}

// TestRunnerSeesEverySimulation: every simulation a sweep performs —
// memoized cells, the coherence measurement, cache sweeps and dynamic
// scheduling — funnels through the installed Runner/DynRunner hooks.
func TestRunnerSeesEverySimulation(t *testing.T) {
	var runs, dynRuns atomic.Uint64
	opts := runnerOptions()
	opts.Runner = func(tr *trace.Trace, pl *placement.Placement, cfg sim.Config) (*sim.Result, error) {
		runs.Add(1)
		return sim.Run(tr, pl, cfg)
	}
	opts.DynRunner = func(tr *trace.Trace, cfg sim.Config, policy sim.SchedulePolicy) (*sim.Result, error) {
		dynRuns.Add(1)
		return sim.RunDynamic(tr, cfg, policy)
	}
	s := NewSuite(opts)

	if _, err := s.RunOne("MP3D", "LOAD-BAL", 2, false); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("RunOne drove %d runner calls, want 1", runs.Load())
	}
	// A memoized re-run must not re-enter the runner.
	if _, err := s.RunOne("MP3D", "LOAD-BAL", 2, false); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("memoized cell re-entered the runner (%d calls)", runs.Load())
	}
	if _, _, err := s.CoherenceMeasurement("MP3D"); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("coherence measurement bypassed the runner (%d calls)", runs.Load())
	}
	if _, err := s.DynamicComparison([]string{"MP3D"}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if dynRuns.Load() != 2 {
		t.Fatalf("dynamic comparison drove %d DynRunner calls, want 2 (FIFO, LPT)", dynRuns.Load())
	}
}

// TestRunnerEngineGuardDropIn: a resilience.EngineGuard installs as the
// suite's Runner unchanged and leaves every result bit-identical to an
// unguarded suite.
func TestRunnerEngineGuardDropIn(t *testing.T) {
	plain := NewSuite(runnerOptions())
	want, err := plain.RunOne("Water", "SHARE-REFS", 4, false)
	if err != nil {
		t.Fatal(err)
	}

	g := &resilience.EngineGuard{SampleEvery: 1}
	opts := runnerOptions()
	opts.Runner = g.Run
	opts.DynRunner = g.RunDynamic
	guarded := NewSuite(opts)
	got, err := guarded.RunOne("Water", "SHARE-REFS", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("guarded suite result differs from unguarded suite")
	}
	if g.Degraded() {
		t.Error("healthy sweep degraded the guard")
	}
	runs, checks := g.Stats()
	if runs != 1 || checks != 1 {
		t.Errorf("guard stats %d/%d, want 1/1", runs, checks)
	}
}
