package core

import (
	"fmt"
	"math"

	"repro/internal/report"
	"repro/internal/sim"
)

// FigureCell is one bar of an execution-time figure: an algorithm at a
// processor count.
type FigureCell struct {
	Algorithm string
	Procs     int
	// ExecTime is the maximum execution time over all processors.
	ExecTime uint64
	// Normalized is ExecTime divided by the baseline algorithm's at the
	// same processor count.
	Normalized float64
}

// Figure is the data behind Figures 2-4: every placement algorithm at
// every processor count, normalized to RANDOM.
type Figure struct {
	App      string
	Baseline string
	Cells    []FigureCell
}

// ExecutionFigure runs all fourteen static algorithms for every processor
// count and normalizes execution time to RANDOM (Figures 2, 3 and 4 use
// LocusRoute, FFT and Barnes-Hut respectively).
func (s *Suite) ExecutionFigure(app string) (*Figure, error) {
	f := &Figure{App: app, Baseline: "RANDOM"}
	for _, procs := range s.opts.ProcCounts {
		results, err := s.RunAlgorithms(app, AllAlgorithms(), procs, false)
		if err != nil {
			return nil, err
		}
		var base uint64
		for _, r := range results {
			if r.Name == f.Baseline {
				base = r.Result.ExecTime
			}
		}
		if base == 0 {
			return nil, fmt.Errorf("core: %s: baseline %s missing", app, f.Baseline)
		}
		for _, r := range results {
			f.Cells = append(f.Cells, FigureCell{
				Algorithm:  r.Name,
				Procs:      procs,
				ExecTime:   r.Result.ExecTime,
				Normalized: float64(r.Result.ExecTime) / float64(base),
			})
		}
	}
	return f, nil
}

// Cell returns the named cell, or nil.
func (f *Figure) Cell(alg string, procs int) *FigureCell {
	for i := range f.Cells {
		if f.Cells[i].Algorithm == alg && f.Cells[i].Procs == procs {
			return &f.Cells[i]
		}
	}
	return nil
}

// Chart renders the figure as a grouped bar chart in the paper's layout:
// one group per processor count, one bar per algorithm, height =
// normalized execution time.
func (f *Figure) Chart(title string) *report.BarChart {
	c := &report.BarChart{
		Title: title,
		Note:  fmt.Sprintf("(execution time normalized to %s; shorter is faster)", f.Baseline),
	}
	groups := make(map[int]*report.BarGroup)
	var order []int
	for _, cell := range f.Cells {
		g, ok := groups[cell.Procs]
		if !ok {
			g = &report.BarGroup{Label: fmt.Sprintf("%d processors", cell.Procs)}
			groups[cell.Procs] = g
			order = append(order, cell.Procs)
		}
		g.Bars = append(g.Bars, report.BarItem{Label: cell.Algorithm, Value: cell.Normalized})
	}
	for _, p := range order {
		c.Groups = append(c.Groups, *groups[p])
	}
	return c
}

// MissComponentCell is one bar of Figure 5: the miss components of one
// placement algorithm at one processor count.
type MissComponentCell struct {
	Algorithm string
	Procs     int
	// ThreadsPerProc is threads/processors for the x-axis.
	ThreadsPerProc float64
	// PerKilo are misses per 1000 references by kind (compulsory,
	// intra-thread conflict, inter-thread conflict, invalidation).
	PerKilo [4]float64
	// TotalPerKilo is total misses per 1000 references.
	TotalPerKilo float64
}

// CompulsoryPlusInvalidation returns the figure's key quantity: compulsory
// plus invalidation misses per 1000 references.
func (c MissComponentCell) CompulsoryPlusInvalidation() float64 {
	return c.PerKilo[sim.Compulsory] + c.PerKilo[sim.InvalidationMiss]
}

// MissComponentFigure computes Figure 5 for an application: the cache-miss
// components for every algorithm and processor count.
func (s *Suite) MissComponentFigure(app string) ([]MissComponentCell, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	threads := float64(tr.NumThreads())
	var cells []MissComponentCell
	for _, procs := range s.opts.ProcCounts {
		results, err := s.RunAlgorithms(app, AllAlgorithms(), procs, false)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			tot := r.Result.Totals()
			cell := MissComponentCell{
				Algorithm:      r.Name,
				Procs:          procs,
				ThreadsPerProc: threads / float64(procs),
			}
			for k := 0; k < 4; k++ {
				cell.PerKilo[k] = float64(tot.Misses[k]) / float64(tot.Refs) * 1000
				cell.TotalPerKilo += cell.PerKilo[k]
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// MissComponentReport renders Figure 5 as a table: one row per
// (processors, algorithm), miss components per 1000 references.
func MissComponentReport(app string, cells []MissComponentCell) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 5: Cache miss components for %s (misses per 1000 references)", app),
		Note:  "(compulsory + invalidation stays ~constant across placement algorithms at fixed threads/processor)",
		Columns: []string{"Procs", "Thr/Proc", "Algorithm", "Compulsory", "Intra-conflict",
			"Inter-conflict", "Invalidation", "Comp+Inv", "Total"},
	}
	for _, c := range cells {
		t.AddRow(fmt.Sprint(c.Procs), report.F(c.ThreadsPerProc, 1), c.Algorithm,
			report.F(c.PerKilo[sim.Compulsory], 2),
			report.F(c.PerKilo[sim.ConflictIntra], 2),
			report.F(c.PerKilo[sim.ConflictInter], 2),
			report.F(c.PerKilo[sim.InvalidationMiss], 2),
			report.F(c.CompulsoryPlusInvalidation(), 2),
			report.F(c.TotalPerKilo, 2))
	}
	return t
}

// InvarianceSpread measures the paper's headline claim for one processor
// count: the spread (max-min, in misses per 1000 references) of compulsory
// plus invalidation misses across placement algorithms. Small spreads mean
// the components are insensitive to placement.
func InvarianceSpread(cells []MissComponentCell, procs int) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cells {
		if c.Procs != procs {
			continue
		}
		v := c.CompulsoryPlusInvalidation()
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return 0
	}
	return hi - lo
}
