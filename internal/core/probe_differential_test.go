package core

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestDifferentialProbes proves the observability layer's core contract
// on the real workload: attaching a probe changes nothing. For every
// application, placement algorithm and engine in the differential sweep,
// a run with a full probe stack (counter + sampler + tracer through
// Multi) must produce a Result deeply equal to the bare run, and the
// probe streams the two engines see must agree on every architectural
// count.
func TestDifferentialProbes(t *testing.T) {
	s := testSuite()
	algs := []string{"RANDOM", "LOAD-BAL", "SHARE-REFS"}
	procCounts := []int{2, 8}
	for _, a := range workload.Apps() {
		app := a.Name
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			tr, err := s.Trace(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range algs {
				for _, procs := range procCounts {
					pl, err := s.Place(app, alg, procs)
					if err != nil {
						t.Fatal(err)
					}
					cfg, err := s.Config(app, procs, false)
					if err != nil {
						t.Fatal(err)
					}
					counters := map[sim.Engine]*obs.Counter{}
					for _, eng := range []sim.Engine{sim.ReferenceEngine, sim.FastEngine} {
						bare, err := sim.RunEngine(tr, pl, cfg, eng)
						if err != nil {
							t.Fatalf("%s/%dp/%v: %v", alg, procs, eng, err)
						}
						c := &obs.Counter{}
						probe := obs.Multi(c, obs.NewSampler(10_000), obs.NewTracer())
						probed, err := sim.RunObserved(tr, pl, cfg, eng, probe)
						if err != nil {
							t.Fatalf("%s/%dp/%v: probed run: %v", alg, procs, eng, err)
						}
						if !reflect.DeepEqual(bare, probed) {
							t.Errorf("%s/%dp/%v: probe perturbed the Result:\n  bare   exec %d %+v\n  probed exec %d %+v",
								alg, procs, eng, bare.ExecTime, bare.Totals(), probed.ExecTime, probed.Totals())
						}
						counters[eng] = c
					}
					// The two engines must emit identical architectural event
					// streams; only queue-depth statistics are engine-internal.
					ref, fast := counters[sim.ReferenceEngine], counters[sim.FastEngine]
					refArch, fastArch := *ref, *fast
					refArch.QueueSamples, fastArch.QueueSamples = 0, 0
					refArch.MaxQueueDepth, fastArch.MaxQueueDepth = 0, 0
					refArch.Meta.Engine, fastArch.Meta.Engine = "", ""
					if refArch != fastArch {
						t.Errorf("%s/%dp: engines emitted different probe streams:\n  reference %+v\n  fast      %+v",
							alg, procs, refArch, fastArch)
					}
				}
			}
		})
	}
}

// TestDifferentialProbesDynamic extends the identity check to the
// dynamic self-scheduling path.
func TestDifferentialProbesDynamic(t *testing.T) {
	s := testSuite()
	tr, err := s.Trace("MP3D")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config("MP3D", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []sim.SchedulePolicy{sim.FIFO, sim.LongestFirst} {
		bare, err := sim.RunDynamic(tr, cfg, policy)
		if err != nil {
			t.Fatal(err)
		}
		probed, err := sim.RunDynamicObserved(tr, cfg, policy,
			obs.Multi(&obs.Counter{}, obs.NewSampler(10_000)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, probed) {
			t.Errorf("%v: probe perturbed the dynamic Result", policy)
		}
	}
}
