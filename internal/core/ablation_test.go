package core

import (
	"strings"
	"testing"
)

func TestAssociativitySweep(t *testing.T) {
	s := testSuite()
	rows, err := s.AssociativitySweep("Patch", "LOAD-BAL", 8, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Normalized != 1.0 {
		t.Errorf("first row not the baseline: %v", rows[0].Normalized)
	}
	// Associativity must not increase inter-thread conflicts, and the
	// 4-way cache should reduce them versus direct-mapped.
	if rows[2].InterConflictsPerKilo > rows[0].InterConflictsPerKilo {
		t.Errorf("4-way inter conflicts %.2f exceed direct-mapped %.2f",
			rows[2].InterConflictsPerKilo, rows[0].InterConflictsPerKilo)
	}
	out := AssocReport("Patch", "LOAD-BAL", 8, rows).String()
	if !strings.Contains(out, "Ways") {
		t.Error("report missing Ways column")
	}
}

func TestContextSweep(t *testing.T) {
	s := testSuite()
	rows, err := s.ContextSweep("Water", 4, []int{1, 2, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// More contexts must not hurt execution time much, and measured
	// efficiency with several contexts must exceed the single-context
	// efficiency (latency gets hidden).
	if rows[2].MeasuredEfficiency <= rows[0].MeasuredEfficiency {
		t.Errorf("efficiency did not improve with contexts: %v -> %v",
			rows[0].MeasuredEfficiency, rows[2].MeasuredEfficiency)
	}
	for _, r := range rows {
		if r.MeasuredEfficiency <= 0 || r.MeasuredEfficiency > 1 {
			t.Errorf("efficiency out of range: %+v", r)
		}
		if r.Deterministic < r.MVA-1e-9 {
			t.Errorf("deterministic model below MVA: %+v", r)
		}
		// The analytical models should land in the right ballpark of
		// the measurement (they ignore conflicts-vs-contexts coupling,
		// so allow a generous band).
		if r.MVA < r.MeasuredEfficiency*0.5 || r.Deterministic > r.MeasuredEfficiency*2.5 {
			t.Errorf("models far from measurement: %+v", r)
		}
	}
	out := ContextReport("Water", 4, rows).String()
	if !strings.Contains(out, "MVA") {
		t.Error("report missing MVA column")
	}
}

func TestUniformitySweep(t *testing.T) {
	s := testSuite()
	rows, err := s.UniformitySweep([]float64{1.0, 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	uniform, pairwise := rows[0], rows[1]
	// The paper's regime: with uniform sharing, SHARE-REFS cannot beat
	// RANDOM's invalidation misses by much.
	if uniform.ShareRefsInvPerKilo < uniform.RandomInvPerKilo*0.7 {
		t.Errorf("uniform sharing: SHARE-REFS inv %.2f unexpectedly far below RANDOM %.2f",
			uniform.ShareRefsInvPerKilo, uniform.RandomInvPerKilo)
	}
	// The break-down regime: with pairwise sharing, SHARE-REFS recovers
	// most invalidation misses.
	if pairwise.ShareRefsInvPerKilo > pairwise.RandomInvPerKilo*0.6 {
		t.Errorf("pairwise sharing: SHARE-REFS inv %.2f not clearly below RANDOM %.2f",
			pairwise.ShareRefsInvPerKilo, pairwise.RandomInvPerKilo)
	}
	out := UniformityReport(rows).String()
	if !strings.Contains(out, "KL-SHARE") {
		t.Error("report missing KL-SHARE column")
	}
}

func TestWriteRunStudy(t *testing.T) {
	s := testSuite()
	rows, err := s.WriteRunStudy([]string{"FFT", "Water", "Fullconn"})
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]WriteRunRow{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// FFT: migratory data dominates its multi-writer blocks (the paper
	// reports 73% of shared elements migratory).
	if fft := byApp["FFT"]; fft.Stats.MigratoryPct() < 50 {
		t.Errorf("FFT migratory = %.1f%%, want majority", fft.Stats.MigratoryPct())
	}
	// Water: owner-written positions — single-writer blocks only.
	if w := byApp["Water"]; w.Stats.MigratoryBlocks+w.Stats.PingPongBlocks > w.Stats.SingleWriterBlocks/10 {
		t.Errorf("Water shows heavy multi-writer data: %+v", w.Stats)
	}
	// Fullconn: random message slots ping-pong.
	if f := byApp["Fullconn"]; f.Stats.MeanRunLength > 3 && f.Stats.PingPongBlocks == 0 {
		t.Errorf("Fullconn write-run stats implausible: %+v", f.Stats)
	}
	out := WriteRunReport(rows).String()
	if !strings.Contains(out, "Migratory %") {
		t.Error("report missing migratory column")
	}
}

func TestCacheSizeSweep(t *testing.T) {
	s := testSuite()
	rows, err := s.CacheSizeSweep("Water", "LOAD-BAL", 8, []int{8 << 10, 64 << 10, 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Conflicts must fall monotonically with capacity and be ~zero at
	// 8 MB; the compulsory+invalidation component must not grow much
	// smaller (it is capacity-independent, modulo conflicts converting
	// into invalidation misses).
	if rows[0].ConflictsPerKilo <= rows[2].ConflictsPerKilo {
		t.Errorf("conflicts did not fall with cache size: %+v", rows)
	}
	if rows[2].ConflictsPerKilo > 0.5 {
		t.Errorf("8 MB cache still shows %.2f conflicts/1k", rows[2].ConflictsPerKilo)
	}
	lo, hi := rows[0].CompulsoryInvalidationPerKilo, rows[2].CompulsoryInvalidationPerKilo
	if hi < 0.5*lo || hi > 2.5*lo {
		t.Errorf("comp+inv not capacity-stable: %.2f -> %.2f", lo, hi)
	}
	out := CacheSizeReport("Water", "LOAD-BAL", 8, rows).String()
	if !strings.Contains(out, "8192 KB") {
		t.Error("report missing 8 MB row")
	}
}
