// Package core orchestrates the paper's experiments: it builds the
// fourteen-application workload, derives the static sharing data, computes
// every placement, drives the simulator, and produces the data behind each
// of the paper's tables and figures (Tables 1-5, Figures 2-5).
package core

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures a Suite.
type Options struct {
	// Params controls workload generation (scale and seed).
	Params workload.Params
	// ProcCounts are the processor configurations swept by the figures;
	// the paper uses 2, 4, 8 and 16.
	ProcCounts []int
	// RandomSeed seeds the RANDOM placement algorithm.
	RandomSeed int64
	// Parallelism bounds concurrent simulations (default: NumCPU).
	Parallelism int
	// Runner, when non-nil, replaces sim.Run for every static-placement
	// simulation the suite performs. Installing a runner — typically a
	// resilience.EngineGuard's Run method — threads watchdogs and
	// runtime engine cross-checking through every cell of a sweep.
	Runner func(*trace.Trace, *placement.Placement, sim.Config) (*sim.Result, error)
	// DynRunner is the same hook for dynamic-scheduling simulations;
	// nil means sim.RunDynamic.
	DynRunner func(*trace.Trace, sim.Config, sim.SchedulePolicy) (*sim.Result, error)
}

// DefaultOptions returns the paper's configuration sweep at the library's
// default workload scale.
func DefaultOptions() Options {
	return Options{
		Params:     workload.DefaultParams(),
		ProcCounts: []int{2, 4, 8, 16},
		RandomSeed: 1,
	}
}

// Suite lazily builds and caches traces, analyses, coherence
// measurements, placements and simulation results for the application
// suite. It is safe for concurrent use. Cached values (including the
// *sim.Result and *placement.Placement returned by RunOne, Place and
// friends) are shared between callers and must be treated as read-only.
type Suite struct {
	opts Options

	mu        sync.Mutex
	traces    map[string]*trace.Trace
	sets      map[string]*analysis.Set
	sharing   map[string]*analysis.SharingData
	coherence map[string]*coherenceEntry
	places    map[placeKey]*placeCell
	sims      map[simKey]*simCell
}

type coherenceEntry struct {
	matrix [][]uint64
	result *sim.Result
}

// placeKey identifies one memoized placement computation. The RANDOM
// algorithm's seed is a pure function of (app, procs) within a suite, so
// the key is complete.
type placeKey struct {
	app, alg string
	procs    int
}

// placeCell is a once-guarded placement computation, so concurrent
// requests for the same cell compute it exactly once without holding the
// suite lock across the (potentially expensive) clustering.
type placeCell struct {
	once sync.Once
	pl   *placement.Placement
	err  error
}

// simKey identifies one memoized simulation: the application, the exact
// placement (algorithm name plus every cluster's thread list — an exact
// encoding, not a lossy hash) and the full simulator configuration
// (comparable: all fields are scalars). Figure sweeps that revisit
// identical cells hit this cache instead of re-simulating.
type simKey struct {
	app       string
	placement string
	cfg       sim.Config
}

// simCell is a once-guarded simulation, the same discipline as placeCell.
type simCell struct {
	once sync.Once
	res  *sim.Result
	err  error
}

// PlacementKey encodes a placement exactly (collision-free): the
// algorithm name plus every cluster's thread list. It is the Suite's own
// memoization key for simulation cells, exported so other caches — the
// serving layer's content-addressed result cache in particular — key on
// the identical cell identity instead of reinventing a lossy one.
func PlacementKey(pl *placement.Placement) string {
	var b strings.Builder
	b.WriteString(pl.Algorithm)
	for _, cluster := range pl.Clusters {
		b.WriteByte('|')
		for j, tid := range cluster {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(tid))
		}
	}
	return b.String()
}

// NewSuite returns a Suite over the given options.
func NewSuite(opts Options) *Suite {
	if len(opts.ProcCounts) == 0 {
		opts.ProcCounts = []int{2, 4, 8, 16}
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	return &Suite{
		opts:      opts,
		traces:    make(map[string]*trace.Trace),
		sets:      make(map[string]*analysis.Set),
		sharing:   make(map[string]*analysis.SharingData),
		coherence: make(map[string]*coherenceEntry),
		places:    make(map[placeKey]*placeCell),
		sims:      make(map[simKey]*simCell),
	}
}

// Options returns the suite's configuration.
func (s *Suite) Options() Options { return s.opts }

// simRun dispatches one static-placement simulation through the
// configured Runner (sim.Run by default). Every simulation the suite
// performs funnels through here or dynRun, so an installed runner sees
// the whole sweep.
func (s *Suite) simRun(tr *trace.Trace, pl *placement.Placement, cfg sim.Config) (*sim.Result, error) {
	if s.opts.Runner != nil {
		return s.opts.Runner(tr, pl, cfg)
	}
	return sim.Run(tr, pl, cfg)
}

// dynRun dispatches one dynamic-scheduling simulation through the
// configured DynRunner (sim.RunDynamic by default).
func (s *Suite) dynRun(tr *trace.Trace, cfg sim.Config, policy sim.SchedulePolicy) (*sim.Result, error) {
	if s.opts.DynRunner != nil {
		return s.opts.DynRunner(tr, cfg, policy)
	}
	return sim.RunDynamic(tr, cfg, policy)
}

// Trace returns the application's (cached) trace.
func (s *Suite) Trace(app string) (*trace.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceLocked(app)
}

func (s *Suite) traceLocked(app string) (*trace.Trace, error) {
	if tr, ok := s.traces[app]; ok {
		return tr, nil
	}
	a, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	tr, err := a.Build(s.opts.Params)
	if err != nil {
		return nil, err
	}
	// Warm the lazily computed per-thread totals so the trace is
	// strictly read-only during concurrent simulation.
	tr.TotalInstructions()
	s.traces[app] = tr
	return tr, nil
}

// Set returns the application's (cached) static analysis.
func (s *Suite) Set(app string) (*analysis.Set, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.setLocked(app)
}

func (s *Suite) setLocked(app string) (*analysis.Set, error) {
	if set, ok := s.sets[app]; ok {
		return set, nil
	}
	tr, err := s.traceLocked(app)
	if err != nil {
		return nil, err
	}
	set := analysis.Analyze(tr)
	s.sets[app] = set
	return set, nil
}

// Sharing returns the application's (cached) pairwise sharing data.
func (s *Suite) Sharing(app string) (*analysis.SharingData, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.sharing[app]; ok {
		return d, nil
	}
	set, err := s.setLocked(app)
	if err != nil {
		return nil, err
	}
	d := set.Sharing()
	s.sharing[app] = d
	return d, nil
}

// Config returns the simulator configuration the paper would use for this
// application and processor count.
func (s *Suite) Config(app string, procs int, infinite bool) (sim.Config, error) {
	a, err := workload.ByName(app)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.DefaultConfig(procs)
	cfg.CacheSize = a.CacheSize
	if infinite {
		// §4.3: "We approximated infinite caches with 8MB caches".
		cfg.CacheSize = sim.InfiniteCacheSize
	}
	return cfg, nil
}

// randomSeed derives the seed of the RANDOM placement for a given app and
// processor count: deterministic, but distinct across configurations.
func (s *Suite) randomSeed(app string, procs int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", app, procs)
	return s.opts.RandomSeed ^ int64(h.Sum64())
}

// Place computes the named algorithm's placement for the application,
// memoized per (app, algorithm, procs). The returned placement is shared;
// treat it as read-only.
func (s *Suite) Place(app, alg string, procs int) (*placement.Placement, error) {
	key := placeKey{app: app, alg: alg, procs: procs}
	s.mu.Lock()
	cell, ok := s.places[key]
	if !ok {
		cell = &placeCell{}
		s.places[key] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		d, err := s.Sharing(app)
		if err != nil {
			cell.err = err
			return
		}
		a, err := placement.ByName(alg)
		if err != nil {
			cell.err = err
			return
		}
		cell.pl, cell.err = a.Place(d, procs, s.randomSeed(app, procs))
	})
	return cell.pl, cell.err
}

// RunOne simulates one (application, algorithm, processors) cell.
func (s *Suite) RunOne(app, alg string, procs int, infinite bool) (*sim.Result, error) {
	pl, err := s.Place(app, alg, procs)
	if err != nil {
		return nil, err
	}
	return s.runPlacement(app, pl, procs, infinite)
}

// runPlacement simulates (app, placement, config), memoized on the exact
// cell so sweeps that revisit identical cells (figures and tables share
// many) reuse the result instead of re-simulating. The returned result is
// shared; treat it as read-only.
func (s *Suite) runPlacement(app string, pl *placement.Placement, procs int, infinite bool) (*sim.Result, error) {
	tr, err := s.Trace(app)
	if err != nil {
		return nil, err
	}
	cfg, err := s.Config(app, procs, infinite)
	if err != nil {
		return nil, err
	}
	key := simKey{app: app, placement: PlacementKey(pl), cfg: cfg}
	s.mu.Lock()
	cell, ok := s.sims[key]
	if !ok {
		cell = &simCell{}
		s.sims[key] = cell
	}
	s.mu.Unlock()
	cell.once.Do(func() {
		cell.res, cell.err = s.simRun(tr, pl, cfg)
	})
	return cell.res, cell.err
}

// AlgResult pairs an algorithm name with its simulation result.
type AlgResult struct {
	Name   string
	Result *sim.Result
}

// RunAlgorithms simulates the named algorithms concurrently and returns
// results in the same order.
func (s *Suite) RunAlgorithms(app string, algs []string, procs int, infinite bool) ([]AlgResult, error) {
	out := make([]AlgResult, len(algs))
	errs := make([]error, len(algs))
	sem := make(chan struct{}, s.opts.Parallelism)
	var wg sync.WaitGroup
	for i, alg := range algs {
		wg.Add(1)
		go func(i int, alg string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := s.RunOne(app, alg, procs, infinite)
			out[i] = AlgResult{Name: alg, Result: res}
			errs[i] = err
		}(i, alg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: %s/%s/%dp: %w", app, algs[i], procs, err)
		}
	}
	return out, nil
}

// CoherenceMeasurement returns the dynamically measured pairwise coherence
// traffic for the application (§4.2): a simulation with one thread per
// processor and as many processors as threads, so traffic between
// processor pairs equals traffic between thread pairs. The result is
// cached.
func (s *Suite) CoherenceMeasurement(app string) ([][]uint64, *sim.Result, error) {
	s.mu.Lock()
	if e, ok := s.coherence[app]; ok {
		s.mu.Unlock()
		return e.matrix, e.result, nil
	}
	s.mu.Unlock()

	tr, err := s.Trace(app)
	if err != nil {
		return nil, nil, err
	}
	n := tr.NumThreads()
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	pl := &placement.Placement{Algorithm: "ONE-THREAD-PER-PROC", Clusters: clusters}
	cfg, err := s.Config(app, n, false)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.simRun(tr, pl, cfg)
	if err != nil {
		return nil, nil, err
	}
	matrix := res.PairTrafficSym()

	s.mu.Lock()
	s.coherence[app] = &coherenceEntry{matrix: matrix, result: res}
	s.mu.Unlock()
	return matrix, res, nil
}

// RunCoherencePlacement simulates the dynamic COHERENCE placement (§4.2):
// clustering by measured pairwise coherence traffic — the best placement a
// sharing-based algorithm could possibly produce.
func (s *Suite) RunCoherencePlacement(app string, procs int, infinite bool) (*sim.Result, error) {
	matrix, _, err := s.CoherenceMeasurement(app)
	if err != nil {
		return nil, err
	}
	d, err := s.Sharing(app)
	if err != nil {
		return nil, err
	}
	alg := placement.CoherenceTraffic(matrix)
	pl, err := alg.Place(d, procs, 0)
	if err != nil {
		return nil, err
	}
	return s.runPlacement(app, pl, procs, infinite)
}

// SharingAlgorithms returns the names of the six static sharing-based
// (thread-balanced) algorithms.
func SharingAlgorithms() []string {
	return []string{"SHARE-REFS", "SHARE-ADDR", "MIN-PRIV", "MIN-INVS", "MAX-WRITES", "MIN-SHARE"}
}

// AllAlgorithms returns every static algorithm name in the paper's order.
func AllAlgorithms() []string { return placement.Names() }
