package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// goldenSuite pins the paper's default configuration — workload scale 1,
// seed 1994, 2/4/8/16 processors — whose numbers the golden file locks
// down. It is separate from testSuite so changes to the test sweep never
// silently move the goldens.
var goldenSuite = sync.OnceValue(func() *Suite {
	return NewSuite(DefaultOptions())
})

// goldenFig5App is the application Figure 5 shows (the paper uses MP3D).
const goldenFig5App = "MP3D"

// goldenData is everything golden.json locks: the Table 4 static-vs-
// dynamic sharing comparison and the Figure 5 miss components.
type goldenData struct {
	Table4  []Table4Row         `json:"table4"`
	Figure5 []MissComponentCell `json:"figure5"`
}

// TestGolden compares Table 4 and Figure 5 at the default scale against
// internal/core/testdata/golden.json. Any engine change that shifts a
// number fails here; run with UPDATE_GOLDEN=1 to regenerate after an
// intentional change (and justify the diff in review).
func TestGolden(t *testing.T) {
	s := goldenSuite()
	var got goldenData
	var err error
	if got.Table4, err = s.Table4(); err != nil {
		t.Fatal(err)
	}
	if got.Figure5, err = s.MissComponentFigure(goldenFig5App); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(got); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create it)", err)
	}
	var want goldenData
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	if len(got.Table4) != len(want.Table4) {
		t.Fatalf("Table 4: %d rows, golden has %d", len(got.Table4), len(want.Table4))
	}
	for i, w := range want.Table4 {
		if !reflect.DeepEqual(got.Table4[i], w) {
			t.Errorf("Table 4 row %d (%s) drifted:\n  got  %+v\n  want %+v", i, w.App, got.Table4[i], w)
		}
	}
	if len(got.Figure5) != len(want.Figure5) {
		t.Fatalf("Figure 5: %d cells, golden has %d", len(got.Figure5), len(want.Figure5))
	}
	for i, w := range want.Figure5 {
		if !reflect.DeepEqual(got.Figure5[i], w) {
			t.Errorf("Figure 5 cell %d (%s/%dp) drifted:\n  got  %+v\n  want %+v",
				i, w.Algorithm, w.Procs, got.Figure5[i], w)
		}
	}
}
