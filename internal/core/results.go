package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/workload"
)

// ResultBundle is the JSON-serializable record of one full experiment
// regeneration: everything EXPERIMENTS.md reports, in machine-readable
// form, so two runs (e.g. before and after a workload change) can be
// diffed mechanically.
type ResultBundle struct {
	// Params echoes the workload generation parameters.
	Params workload.Params `json:"params"`
	// ProcCounts echoes the processor sweep.
	ProcCounts []int `json:"procCounts"`

	Table1  []Table1Row                `json:"table1,omitempty"`
	Table2  []analysis.Characteristics `json:"table2,omitempty"`
	Figures map[string][]FigureCell    `json:"figures,omitempty"`
	Figure5 []MissComponentCell        `json:"figure5,omitempty"`
	Table4  []Table4Row                `json:"table4,omitempty"`
	Table5  []Table5Cell               `json:"table5,omitempty"`
}

// CollectResults regenerates every table and figure into a bundle.
// fig5App selects the Figure 5 application (the paper shows one
// representative program).
func (s *Suite) CollectResults(fig5App string) (*ResultBundle, error) {
	b := &ResultBundle{
		Params:     s.opts.Params,
		ProcCounts: s.opts.ProcCounts,
		Figures:    make(map[string][]FigureCell),
	}
	var err error
	if b.Table1, err = s.Table1(); err != nil {
		return nil, fmt.Errorf("table 1: %w", err)
	}
	if b.Table2, err = s.Table2(); err != nil {
		return nil, fmt.Errorf("table 2: %w", err)
	}
	for _, app := range []string{"LocusRoute", "FFT", "Barnes-Hut"} {
		fig, err := s.ExecutionFigure(app)
		if err != nil {
			return nil, fmt.Errorf("figure for %s: %w", app, err)
		}
		b.Figures[app] = fig.Cells
	}
	if b.Figure5, err = s.MissComponentFigure(fig5App); err != nil {
		return nil, fmt.Errorf("figure 5: %w", err)
	}
	if b.Table4, err = s.Table4(); err != nil {
		return nil, fmt.Errorf("table 4: %w", err)
	}
	if b.Table5, err = s.Table5(); err != nil {
		return nil, fmt.Errorf("table 5: %w", err)
	}
	return b, nil
}

// WriteJSON serializes the bundle with stable indentation.
func (b *ResultBundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// SaveJSON writes the bundle to a file, creating parent directories.
func (b *ResultBundle) SaveJSON(path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if werr := b.WriteJSON(f); werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// LoadResults reads a bundle written by SaveJSON.
func LoadResults(path string) (*ResultBundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b ResultBundle
	if err := json.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decoding %s: %w", path, err)
	}
	return &b, nil
}
