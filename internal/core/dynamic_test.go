package core

import (
	"strings"
	"testing"
)

func TestDynamicComparison(t *testing.T) {
	s := testSuite()
	rows, err := s.DynamicComparison([]string{"FFT", "Gauss"}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.StaticLoadBal == 0 || r.DynamicFIFONorm <= 0 || r.DynamicLPTNorm <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		// The online scheduler needs no a-priori knowledge yet must land
		// in the same ballpark as the oracle static placement.
		if r.DynamicFIFONorm > 2 {
			t.Errorf("%s: dynamic FIFO %.2fx LOAD-BAL — scheduler broken?", r.App, r.DynamicFIFONorm)
		}
	}
	// FFT's skew: online FIFO must clearly beat static RANDOM.
	for _, r := range rows {
		if r.App == "FFT" && r.DynamicFIFONorm > r.StaticRandomNorm {
			t.Errorf("FFT: dynamic FIFO (%.2f) worse than static RANDOM (%.2f)",
				r.DynamicFIFONorm, r.StaticRandomNorm)
		}
	}
	out := DynamicReport(8, 2, rows).String()
	if !strings.Contains(out, "DYNAMIC fifo") {
		t.Error("report missing dynamic column")
	}
}
