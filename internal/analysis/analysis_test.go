package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// buildTrace constructs a trace from a compact description: per thread, a
// list of (kind, addr) pairs each preceded by one compute instruction.
func buildTrace(t *testing.T, app string, threads [][]trace.Event) *trace.Trace {
	t.Helper()
	tr := trace.New(app, len(threads))
	for i, evs := range threads {
		r := trace.NewRecorder(tr, i)
		for _, e := range evs {
			r.Compute(int(e.Gap))
			r.Ref(e.Kind, e.Addr)
		}
	}
	return tr
}

func sh(i int) uint64 { return trace.SharedBase + uint64(i)*trace.WordSize }
func pv(i int) uint64 { return uint64(i+1) * trace.WordSize }

func TestProfileThread(t *testing.T) {
	tr := buildTrace(t, "app", [][]trace.Event{{
		{Gap: 3, Kind: trace.Read, Addr: sh(0)},
		{Gap: 0, Kind: trace.Write, Addr: sh(0)},
		{Gap: 2, Kind: trace.Read, Addr: sh(1)},
		{Gap: 0, Kind: trace.Read, Addr: pv(0)},
		{Gap: 0, Kind: trace.Write, Addr: pv(1)},
	}})
	p := ProfileThread(tr.Threads[0])
	if p.TotalRefs != 5 {
		t.Errorf("TotalRefs = %d, want 5", p.TotalRefs)
	}
	if p.SharedRefs != 3 {
		t.Errorf("SharedRefs = %d, want 3", p.SharedRefs)
	}
	if p.SharedAddrs() != 2 {
		t.Errorf("SharedAddrs = %d, want 2", p.SharedAddrs())
	}
	if p.PrivateAddrs != 2 {
		t.Errorf("PrivateAddrs = %d, want 2", p.PrivateAddrs)
	}
	if got := p.Shared[sh(0)]; got != (RefCount{Reads: 1, Writes: 1}) {
		t.Errorf("counts for sh(0) = %+v", got)
	}
	if got, want := p.RefsPerSharedAddr(), 1.5; got != want {
		t.Errorf("RefsPerSharedAddr = %v, want %v", got, want)
	}
	if p.Length != 5+5 {
		t.Errorf("Length = %d, want 10", p.Length)
	}
}

func TestSharingMatrices(t *testing.T) {
	// Thread 0: reads sh0 twice, writes sh1 once, reads pv.
	// Thread 1: reads sh0 once, reads sh1 three times.
	// Thread 2: touches only private data.
	tr := buildTrace(t, "app", [][]trace.Event{
		{
			{Kind: trace.Read, Addr: sh(0)},
			{Kind: trace.Read, Addr: sh(0)},
			{Kind: trace.Write, Addr: sh(1)},
			{Kind: trace.Read, Addr: pv(0)},
		},
		{
			{Kind: trace.Read, Addr: sh(0)},
			{Kind: trace.Read, Addr: sh(1)},
			{Kind: trace.Read, Addr: sh(1)},
			{Kind: trace.Read, Addr: sh(1)},
		},
		{
			{Kind: trace.Read, Addr: pv(10)},
			{Kind: trace.Write, Addr: pv(11)},
		},
	})
	d := Analyze(tr).Sharing()

	// shared refs 0<->1: sh0 contributes 2+1, sh1 contributes 1+3 = total 7.
	if got := d.SharedRefs[0][1]; got != 7 {
		t.Errorf("SharedRefs[0][1] = %d, want 7", got)
	}
	if d.SharedRefs[0][1] != d.SharedRefs[1][0] {
		t.Error("SharedRefs not symmetric")
	}
	if got := d.SharedAddrs[0][1]; got != 2 {
		t.Errorf("SharedAddrs[0][1] = %d, want 2", got)
	}
	// write-shared: only sh1 (written by thread 0): 1+3 = 4.
	if got := d.WriteSharedRefs[0][1]; got != 4 {
		t.Errorf("WriteSharedRefs[0][1] = %d, want 4", got)
	}
	// thread 2 shares nothing.
	for other := 0; other < 2; other++ {
		if d.SharedRefs[2][other] != 0 || d.SharedAddrs[2][other] != 0 {
			t.Errorf("thread 2 shows sharing with %d", other)
		}
	}
	if d.PrivateAddrs[2] != 2 {
		t.Errorf("PrivateAddrs[2] = %d, want 2", d.PrivateAddrs[2])
	}
	if d.SharedRefs[1][1] != 0 {
		t.Error("diagonal not zero")
	}
}

// TestSharingMatchesPairOracle cross-checks the inverted-index computation
// against the direct pairwise intersection on random traces.
func TestSharingMatchesPairOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(6)
		tr := trace.New("rand", n)
		for i := 0; i < n; i++ {
			r := trace.NewRecorder(tr, i)
			for j := 0; j < 200; j++ {
				addr := sh(rng.Intn(50))
				if rng.Intn(4) == 0 {
					addr = pv(i*100 + rng.Intn(20))
				}
				if rng.Intn(3) == 0 {
					r.Store(addr)
				} else {
					r.Load(addr)
				}
			}
		}
		s := Analyze(tr)
		d := s.Sharing()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if got, want := d.SharedRefs[a][b], s.PairSharedRefs(a, b); got != want {
					t.Fatalf("trial %d: SharedRefs[%d][%d] = %d, oracle %d", trial, a, b, got, want)
				}
			}
		}
	}
}

// TestInvertedIndexCanonical locks the inverted index's ordering
// invariant: every address's user list is sorted by thread ID (the
// construction is profile-major), independent of map iteration order.
// mtlint's determinism analyzer enforces the sorted-key construction
// statically; this is the runtime half of that contract.
func TestInvertedIndexCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	n := 6
	tr := trace.New("inv", n)
	for i := 0; i < n; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 300; j++ {
			r.Load(sh(rng.Intn(40)))
		}
	}
	s := Analyze(tr)
	idx := s.invertedIndex()
	if len(idx) == 0 {
		t.Fatal("empty inverted index")
	}
	for addr, users := range idx {
		for i := 1; i < len(users); i++ {
			if users[i-1].thread >= users[i].thread {
				t.Fatalf("addr %#x: users not in ascending thread order: %d then %d",
					addr, users[i-1].thread, users[i].thread)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Dev-40) > 1e-9 { // sd = 2, 2/5 = 40%
		t.Errorf("dev = %v, want 40", s.Dev)
	}
	if math.Abs(s.AbsDev()-2) > 1e-9 {
		t.Errorf("absdev = %v, want 2", s.AbsDev())
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("empty summary = %+v", got)
	}
	if got := Summarize([]float64{0, 0}); got.Dev != 0 {
		t.Errorf("zero-mean dev = %v, want 0", got.Dev)
	}
}

// Property: Summarize mean always lies within [min, max] and Dev >= 0 for
// positive data.
func TestSummarizeProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r % 10000)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		s := Summarize(xs)
		return s.Mean >= lo-1e-9 && s.Mean <= hi+1e-9 && s.Dev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCharacteristics(t *testing.T) {
	// Uniform sharing: every thread reads the same 10 shared addresses
	// the same number of times -> pairwise deviation must be ~0.
	n := 6
	tr := trace.New("uniform", n)
	for i := 0; i < n; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 10; j++ {
			r.Compute(5)
			r.Load(sh(j))
		}
		r.Compute(5)
		r.Load(pv(i))
	}
	s := Analyze(tr)
	c := s.Characteristics(nil)
	if c.Threads != n {
		t.Errorf("threads = %d", c.Threads)
	}
	if c.Pairwise.Mean != 20 { // 10 common addrs x (1+1) refs
		t.Errorf("pairwise mean = %v, want 20", c.Pairwise.Mean)
	}
	if c.Pairwise.Dev != 0 {
		t.Errorf("pairwise dev = %v, want 0", c.Pairwise.Dev)
	}
	if math.Abs(c.PctSharedRefs-10.0/11*100) > 1e-9 {
		t.Errorf("pct shared = %v", c.PctSharedRefs)
	}
	if c.Length.Dev != 0 {
		t.Errorf("length dev = %v, want 0", c.Length.Dev)
	}
	if c.NWay.Mean == 0 {
		t.Error("nway mean = 0")
	}
	if c.RefsPerSharedAddr.Mean != 1 {
		t.Errorf("refs/shared addr = %v, want 1", c.RefsPerSharedAddr.Mean)
	}
}

func TestCharacteristicsSkewedLengths(t *testing.T) {
	tr := trace.New("skewed", 4)
	lens := []int{10, 10, 10, 1000}
	for i, l := range lens {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < l; j++ {
			r.Compute(9)
			r.Load(sh(0))
		}
	}
	c := Analyze(tr).Characteristics(nil)
	if c.Length.Dev < 100 {
		t.Errorf("length dev = %v, want large (>100%%)", c.Length.Dev)
	}
}

func TestCharacteristicsDeterministic(t *testing.T) {
	tr := trace.New("det", 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 100; j++ {
			r.Load(sh(rng.Intn(30)))
		}
	}
	a := Analyze(tr).Characteristics(nil)
	b := Analyze(tr).Characteristics(nil)
	if a != b {
		t.Errorf("characteristics not deterministic:\n%+v\n%+v", a, b)
	}
}
