package analysis

import "math"

// Summary is a mean together with its percentage standard deviation, the
// "Mean / Dev(%)" presentation Table 2 of the paper uses.
type Summary struct {
	Mean float64
	// Dev is the standard deviation expressed as a percentage of the
	// mean (0 when the mean is 0).
	Dev float64
}

// Summarize computes the mean and percent deviation of xs. An empty slice
// yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)))
	s := Summary{Mean: mean}
	if mean != 0 {
		s.Dev = sd / mean * 100
	}
	return s
}

// AbsDev returns the standard deviation as an absolute quantity (the
// paper's "absolute deviation" used in §4.3's app selection: a large
// percentage deviation on a tiny mean is still a tiny absolute deviation).
func (s Summary) AbsDev() float64 { return s.Dev / 100 * s.Mean }
