package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// bruteDistances computes stack distances by the naive O(n^2) definition.
func bruteDistances(addrs []uint64, blockSize int) (dists []int, cold int) {
	shift := uint(0)
	for 1<<shift < blockSize {
		shift++
	}
	var seq []uint64 // blocks in access order
	for _, a := range addrs {
		b := a >> shift
		prev := -1
		for i := len(seq) - 1; i >= 0; i-- {
			if seq[i] == b {
				prev = i
				break
			}
		}
		if prev == -1 {
			cold++
		} else {
			distinct := map[uint64]struct{}{}
			for _, x := range seq[prev+1:] {
				distinct[x] = struct{}{}
			}
			dists = append(dists, len(distinct))
		}
		seq = append(seq, b)
	}
	return dists, cold
}

func traceOf(addrs []uint64) *trace.Thread {
	tr := trace.New("r", 1)
	r := trace.NewRecorder(tr, 0)
	for _, a := range addrs {
		r.Load(a)
	}
	return tr.Threads[0]
}

func TestThreadReuseMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(200)
		addrs := make([]uint64, n)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(30)) * 32 // block-aligned, colliding
		}
		h := ThreadReuse(traceOf(addrs), 32)
		dists, cold := bruteDistances(addrs, 32)

		if h.Cold != uint64(cold) {
			t.Fatalf("trial %d: cold = %d, want %d", trial, h.Cold, cold)
		}
		// Rebuild the bucket histogram from the brute distances.
		want := make([]uint64, len(h.Buckets))
		for _, d := range dists {
			b := 0
			for x := d; x > 1; x >>= 1 {
				b++
			}
			for len(want) <= b {
				want = append(want, 0)
			}
			want[b]++
		}
		if len(want) != len(h.Buckets) {
			t.Fatalf("trial %d: bucket count %d vs %d", trial, len(h.Buckets), len(want))
		}
		for i := range want {
			if h.Buckets[i] != want[i] {
				t.Fatalf("trial %d: bucket %d = %d, want %d", trial, i, h.Buckets[i], want[i])
			}
		}
	}
}

func TestReuseSimplePatterns(t *testing.T) {
	// Sequential scan: every re-access in the second pass has distance
	// equal to the number of distinct blocks - ... here: every ref in
	// pass 2 has distance 9 (the 9 other blocks).
	var addrs []uint64
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 10; i++ {
			addrs = append(addrs, uint64(i)*32)
		}
	}
	h := ThreadReuse(traceOf(addrs), 32)
	if h.Cold != 10 {
		t.Errorf("cold = %d, want 10", h.Cold)
	}
	if h.Distinct != 10 {
		t.Errorf("distinct = %d, want 10", h.Distinct)
	}
	// Distance 9 lands in bucket 3 ([8,16)).
	if h.Buckets[3] != 10 {
		t.Errorf("buckets = %v, want all 10 re-refs at distance 9", h.Buckets)
	}
	// An LRU cache of 16 blocks captures the scan; 8 does not.
	if r := h.MissRatio(16); r != 0.5 { // only the 10 cold of 20
		t.Errorf("miss ratio @16 = %v, want 0.5", r)
	}
	if r := h.MissRatio(8); r != 1.0 {
		t.Errorf("miss ratio @8 = %v, want 1.0", r)
	}
}

func TestReuseTightLoop(t *testing.T) {
	// A-B-A-B...: distances of 1 after warmup; any cache of >= 2 blocks
	// holds it.
	var addrs []uint64
	for i := 0; i < 50; i++ {
		addrs = append(addrs, uint64(i%2)*32)
	}
	h := ThreadReuse(traceOf(addrs), 32)
	if r := h.MissRatio(4); r > 0.05 {
		t.Errorf("tight loop misses %.2f at 4 blocks", r)
	}
}

func TestMissRatioMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	addrs := make([]uint64, 3000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(500)) * 32
	}
	h := ThreadReuse(traceOf(addrs), 32)
	prev := 1.1
	for _, size := range []int{1, 4, 16, 64, 256, 1024} {
		r := h.MissRatio(size)
		if r > prev+1e-12 {
			t.Fatalf("miss ratio not monotone: %v at %d after %v", r, size, prev)
		}
		prev = r
	}
}

func TestReuseMergeAndSetHelper(t *testing.T) {
	tr := trace.New("m", 2)
	for i := 0; i < 2; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 20; j++ {
			r.Load(trace.SharedBase + uint64(j%5)*32)
		}
	}
	set := Analyze(tr)
	h := set.Reuse(tr, 32)
	if h.Total != 40 {
		t.Errorf("total = %d, want 40", h.Total)
	}
	if h.Cold != 10 { // 5 blocks cold per thread
		t.Errorf("cold = %d, want 10", h.Cold)
	}
}

func TestReusePanicsOnBadBlockSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ThreadReuse(traceOf([]uint64{0}), 24)
}
