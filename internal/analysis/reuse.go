package analysis

import (
	"fmt"

	"repro/internal/trace"
)

// Reuse-distance (LRU stack distance) analysis. For each reference, the
// stack distance is the number of distinct blocks touched since the
// previous access to the same block; a fully associative LRU cache of S
// blocks misses exactly the references with distance >= S (plus cold
// references). The histogram therefore predicts the miss ratio of ideal
// caches of every size at once — the analytical counterpart of the
// simulator's capacity behaviour, computed in O(n log n) with a Fenwick
// tree over access times (Olken's algorithm).

// ReuseHistogram summarizes one reference stream's stack distances at
// power-of-two granularity.
type ReuseHistogram struct {
	// Buckets[i] counts references with stack distance in
	// [2^i, 2^(i+1)); Buckets[0] holds distances 0 and 1.
	Buckets []uint64
	// Cold counts first-ever references to a block.
	Cold uint64
	// Total counts all references.
	Total uint64
	// Distinct counts distinct blocks.
	Distinct int
}

// fenwick is a binary indexed tree over access-time slots.
type fenwick struct{ tree []int32 }

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int32, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += int32(delta)
	}
}

// sum returns the prefix sum over slots [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += int(f.tree[i])
	}
	return s
}

// ThreadReuse computes the reuse histogram of one thread's reference
// stream at the given block size.
func ThreadReuse(t *trace.Thread, blockSize int) *ReuseHistogram {
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 {
		panic(fmt.Sprintf("analysis: block size %d not a positive power of two", blockSize))
	}
	shift := uint(0)
	for 1<<shift < blockSize {
		shift++
	}
	n := t.Refs()
	h := &ReuseHistogram{Total: uint64(n)}
	last := make(map[uint64]int, 1024) // block -> time of previous access
	bit := newFenwick(n)
	live := 0 // blocks currently marked in the tree

	time := 0
	for c := t.Cursor(); ; time++ {
		e, ok := c.Next()
		if !ok {
			break
		}
		block := e.Addr >> shift
		if prev, seen := last[block]; seen {
			// Distance = live blocks accessed after prev.
			dist := live - bit.sum(prev)
			h.record(dist)
			bit.add(prev, -1)
			live--
		} else {
			h.Cold++
		}
		last[block] = time
		bit.add(time, 1)
		live++
	}
	h.Distinct = len(last)
	return h
}

func (h *ReuseHistogram) record(dist int) {
	b := 0
	for d := dist; d > 1; d >>= 1 {
		b++
	}
	for len(h.Buckets) <= b {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[b]++
}

// MissRatio predicts the miss ratio of a fully associative LRU cache with
// the given number of blocks: cold misses plus references whose stack
// distance is at least the capacity. Bucket granularity makes the estimate
// conservative (a bucket straddling the capacity counts as missing).
func (h *ReuseHistogram) MissRatio(cacheBlocks int) float64 {
	if h.Total == 0 {
		return 0
	}
	misses := h.Cold
	for i, count := range h.Buckets {
		lo := 1
		if i > 0 {
			lo = 1 << i
		}
		if lo >= cacheBlocks {
			misses += count
		}
	}
	return float64(misses) / float64(h.Total)
}

// Merge folds another histogram into this one (e.g. to aggregate threads).
func (h *ReuseHistogram) Merge(o *ReuseHistogram) {
	for len(h.Buckets) < len(o.Buckets) {
		h.Buckets = append(h.Buckets, 0)
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	h.Cold += o.Cold
	h.Total += o.Total
	h.Distinct += o.Distinct // distinct per thread; an upper bound overall
}

// Reuse computes the merged reuse histogram of every thread in the set's
// application at the given block size.
func (s *Set) Reuse(tr *trace.Trace, blockSize int) *ReuseHistogram {
	total := &ReuseHistogram{}
	for _, t := range tr.Threads {
		total.Merge(ThreadReuse(t, blockSize))
	}
	return total
}
