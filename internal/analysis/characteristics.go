package analysis

import "math/rand"

// Characteristics is the measured-characteristics row the paper reports per
// application in Table 2.
type Characteristics struct {
	// App is the application name.
	App string
	// Threads is the thread count.
	Threads int
	// Pairwise is inter-thread sharing at the two-threads-per-processor
	// extreme: shared-references(ta, tb) over all thread pairs.
	Pairwise Summary
	// NWay is inter-thread sharing at the other extreme — the maximum
	// number of threads per processor (two processors): total shared
	// references within each half of random thread-balanced two-way
	// partitions.
	NWay Summary
	// RefsPerSharedAddr is the temporal-locality metric: per-thread
	// shared references per distinct shared address.
	RefsPerSharedAddr Summary
	// PctSharedRefs is the mean percentage of data references that
	// target the shared segment.
	PctSharedRefs float64
	// Length is the simulated thread length in instructions.
	Length Summary
}

// nwaySamples is how many random balanced 2-way partitions the N-way
// statistic averages over. The paper computed the statistic for "the
// maximum number of threads possible"; with the grouping unspecified we
// sample balanced partitions, which is what a thread-balanced scheduler
// induces.
const nwaySamples = 16

// Characteristics computes the Table 2 row for this application. The
// sharing matrices are computed if not supplied (pass nil to let the
// method derive them).
func (s *Set) Characteristics(d *SharingData) Characteristics {
	if d == nil {
		d = s.Sharing()
	}
	n := len(s.Profiles)
	c := Characteristics{App: s.App, Threads: n}

	// Pairwise sharing over all distinct pairs.
	var pair []float64
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pair = append(pair, float64(d.SharedRefs[a][b]))
		}
	}
	c.Pairwise = Summarize(pair)

	// N-way: random balanced 2-way partitions; per-cluster total of
	// within-cluster pairwise shared references.
	rng := rand.New(rand.NewSource(int64(n)*7919 + 1))
	var nway []float64
	perm := make([]int, n)
	for s := 0; s < nwaySamples; s++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		half := n / 2
		groups := [][]int{perm[:half], perm[half:]}
		for _, g := range groups {
			var total uint64
			for i := 0; i < len(g); i++ {
				for j := i + 1; j < len(g); j++ {
					total += d.SharedRefs[g[i]][g[j]]
				}
			}
			nway = append(nway, float64(total))
		}
	}
	c.NWay = Summarize(nway)

	// Per-thread metrics.
	var rpsa, pct, lens []float64
	for _, p := range s.Profiles {
		rpsa = append(rpsa, p.RefsPerSharedAddr())
		if p.TotalRefs > 0 {
			pct = append(pct, float64(p.SharedRefs)/float64(p.TotalRefs)*100)
		}
		lens = append(lens, float64(p.Length))
	}
	c.RefsPerSharedAddr = Summarize(rpsa)
	c.PctSharedRefs = Summarize(pct).Mean
	c.Length = Summarize(lens)
	return c
}
