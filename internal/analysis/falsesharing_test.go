package analysis

import (
	"testing"

	"repro/internal/trace"
)

func TestFalseSharingClassification(t *testing.T) {
	// Line size 32 bytes = 4 words. Construct three lines:
	//   line 0: words 0,1 touched by thread 0 only      -> single-thread
	//   line 1: word 4 touched by threads 0 and 1       -> true shared
	//   line 2: word 8 by thread 0, word 9 by thread 1  -> false only
	tr := trace.New("fs", 2)
	r0 := trace.NewRecorder(tr, 0)
	r0.Load(sh(0))
	r0.Load(sh(1))
	r0.Load(sh(4))
	r0.Store(sh(8))
	r0.Store(sh(8))
	r1 := trace.NewRecorder(tr, 1)
	r1.Load(sh(4))
	r1.Load(sh(9))

	rep := Analyze(tr).FalseSharing(32)
	if rep.SingleThreadLines != 1 {
		t.Errorf("single-thread lines = %d, want 1", rep.SingleThreadLines)
	}
	if rep.TrueSharedLines != 1 {
		t.Errorf("true shared lines = %d, want 1", rep.TrueSharedLines)
	}
	if rep.FalseOnlyLines != 1 {
		t.Errorf("false-only lines = %d, want 1", rep.FalseOnlyLines)
	}
	if rep.FalseOnlyRefs != 3 { // two stores to word 8 + one load of word 9
		t.Errorf("false-only refs = %d, want 3", rep.FalseOnlyRefs)
	}
	if rep.SharedSegmentRefs != 7 {
		t.Errorf("shared refs = %d, want 7", rep.SharedSegmentRefs)
	}
	if rep.MultiThreadLines() != 2 {
		t.Errorf("multi-thread lines = %d, want 2", rep.MultiThreadLines())
	}
	if pct := rep.FalseOnlyRefsPct(); pct < 42 || pct > 43 {
		t.Errorf("false-only pct = %.1f, want ~42.9", pct)
	}
}

func TestFalseSharingEmpty(t *testing.T) {
	tr := trace.New("fs", 1)
	trace.NewRecorder(tr, 0).Load(pv(0))
	rep := Analyze(tr).DefaultFalseSharing()
	if rep.MultiThreadLines() != 0 || rep.FalseOnlyRefsPct() != 0 {
		t.Errorf("private-only trace reports sharing: %+v", rep)
	}
}
