package analysis

// FalseSharingReport classifies the shared-segment cache lines of an
// application the way the paper's footnote 1 does: the paper counts
// distinct addresses rather than lines, noting its programs had little
// false sharing (0.2%-5.8% of data misses) after restructuring. This
// static analogue finds lines touched by multiple threads where no single
// word is touched by more than one thread — pure false sharing that
// placement algorithms working on addresses cannot see.
type FalseSharingReport struct {
	// LineSize is the cache line size analyzed, in bytes.
	LineSize int
	// SingleThreadLines are lines touched by exactly one thread.
	SingleThreadLines int
	// TrueSharedLines are multi-thread lines where at least one word is
	// itself touched by two or more threads.
	TrueSharedLines int
	// FalseOnlyLines are multi-thread lines where every word is private
	// to one thread: the line sharing is entirely an artifact of layout.
	FalseOnlyLines int
	// FalseOnlyRefs counts references to FalseOnlyLines.
	FalseOnlyRefs uint64
	// SharedSegmentRefs counts all shared-segment references.
	SharedSegmentRefs uint64
}

// MultiThreadLines returns the number of lines touched by several threads.
func (r FalseSharingReport) MultiThreadLines() int {
	return r.TrueSharedLines + r.FalseOnlyLines
}

// FalseOnlyRefsPct returns references to falsely shared lines as a
// percentage of shared-segment references.
func (r FalseSharingReport) FalseOnlyRefsPct() float64 {
	if r.SharedSegmentRefs == 0 {
		return 0
	}
	return float64(r.FalseOnlyRefs) / float64(r.SharedSegmentRefs) * 100
}

// FalseSharing computes the report for the given line size.
func (s *Set) FalseSharing(lineSize int) FalseSharingReport {
	r := FalseSharingReport{LineSize: lineSize}
	shift := uint(0)
	for 1<<shift < lineSize {
		shift++
	}

	type lineInfo struct {
		threads  map[int]struct{}
		refs     uint64
		trueWord bool
	}
	lines := make(map[uint64]*lineInfo)
	for _, p := range s.Profiles {
		for addr, rc := range p.Shared {
			block := addr >> shift
			li := lines[block]
			if li == nil {
				li = &lineInfo{threads: make(map[int]struct{})}
				lines[block] = li
			}
			li.threads[p.Thread] = struct{}{}
			li.refs += rc.Total()
			r.SharedSegmentRefs += rc.Total()
		}
	}
	// Second pass: a word touched by >= 2 threads marks its line as
	// truly shared.
	for addr, users := range s.invertedIndex() {
		if len(users) >= 2 {
			if li := lines[addr>>shift]; li != nil {
				li.trueWord = true
			}
		}
	}
	for _, li := range lines {
		switch {
		case len(li.threads) < 2:
			r.SingleThreadLines++
		case li.trueWord:
			r.TrueSharedLines++
		default:
			r.FalseOnlyLines++
			r.FalseOnlyRefs += li.refs
		}
	}
	return r
}

// DefaultFalseSharing runs FalseSharing at the paper's 32-byte line size.
func (s *Set) DefaultFalseSharing() FalseSharingReport {
	return s.FalseSharing(32)
}
