package analysis

// Pairwise sharing matrices. All matrices are symmetric with zero
// diagonals, indexed by thread ID.

// SharingData bundles every statically derived quantity the placement
// algorithms consume (§2 of the paper).
type SharingData struct {
	// App names the application the data was derived from.
	App string
	// SharedRefs[a][b] is shared-references(ta, tb): the number of
	// references made by threads a and b to their common data addresses.
	SharedRefs [][]uint64
	// SharedAddrs[a][b] is the number of distinct addresses referenced by
	// both a and b.
	SharedAddrs [][]uint64
	// WriteSharedRefs[a][b] counts references by a and b to common
	// addresses that at least one of the two writes — the invalidation-
	// relevant subset used by MAX-WRITES.
	WriteSharedRefs [][]uint64
	// InvalidatingRefs[a][b] counts the write references by a and b to
	// their common addresses — the references that can cause
	// invalidations if a and b run on different processors (MIN-INVS).
	InvalidatingRefs [][]uint64
	// PrivateAddrs[t] is thread t's distinct private address count
	// (MIN-PRIV).
	PrivateAddrs []int
	// Lengths[t] is thread t's dynamic length in instructions (LOAD-BAL
	// and the +LB variants).
	Lengths []uint64
}

// NumThreads returns the number of threads covered.
func (d *SharingData) NumThreads() int { return len(d.Lengths) }

func newMatrix(n int) [][]uint64 {
	m := make([][]uint64, n)
	for i := range m {
		m[i] = make([]uint64, n)
	}
	return m
}

// Sharing computes the full SharingData for the set. The computation walks
// the inverted shared-address index once: an address used by k threads
// contributes to k·(k-1)/2 pairs.
func (s *Set) Sharing() *SharingData {
	n := len(s.Profiles)
	d := &SharingData{
		App:              s.App,
		SharedRefs:       newMatrix(n),
		SharedAddrs:      newMatrix(n),
		WriteSharedRefs:  newMatrix(n),
		InvalidatingRefs: newMatrix(n),
		PrivateAddrs:     s.PrivateAddrs(),
		Lengths:          s.Lengths(),
	}
	for _, users := range s.invertedIndex() {
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				a, b := users[i], users[j]
				refs := a.count.Total() + b.count.Total()
				d.SharedRefs[a.thread][b.thread] += refs
				d.SharedRefs[b.thread][a.thread] += refs
				d.SharedAddrs[a.thread][b.thread]++
				d.SharedAddrs[b.thread][a.thread]++
				if a.count.Writes > 0 || b.count.Writes > 0 {
					d.WriteSharedRefs[a.thread][b.thread] += refs
					d.WriteSharedRefs[b.thread][a.thread] += refs
				}
				if w := uint64(a.count.Writes) + uint64(b.count.Writes); w > 0 {
					d.InvalidatingRefs[a.thread][b.thread] += w
					d.InvalidatingRefs[b.thread][a.thread] += w
				}
			}
		}
	}
	return d
}

// PairSharedRefs returns shared-references(a, b) directly from the
// profiles, without building the full matrix. Used by tests as an
// independent oracle for Sharing.
func (s *Set) PairSharedRefs(a, b int) uint64 {
	pa, pb := s.Profiles[a], s.Profiles[b]
	// iterate the smaller footprint
	if len(pb.Shared) < len(pa.Shared) {
		pa, pb = pb, pa
	}
	var total uint64
	for addr, ca := range pa.Shared {
		if cb, ok := pb.Shared[addr]; ok {
			total += ca.Total() + cb.Total()
		}
	}
	return total
}
