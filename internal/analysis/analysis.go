// Package analysis performs the static, per-thread trace analysis the paper
// feeds to its placement algorithms (§2, §3.1): per-thread address
// footprints, pairwise and N-way inter-thread sharing, references per
// shared address, percentage of shared references, and thread lengths
// (the measured characteristics of Table 2).
//
// "Static" means derived from each thread's trace in isolation, with no
// cross-thread temporal information — exactly the limitation the paper
// identifies (§4.2): static shared-reference counts over-estimate runtime
// coherence traffic by one to three orders of magnitude.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// RefCount tallies loads and stores to a single address by a single thread.
type RefCount struct {
	Reads  uint32
	Writes uint32
}

// Total returns reads+writes.
func (c RefCount) Total() uint64 { return uint64(c.Reads) + uint64(c.Writes) }

// Profile summarizes one thread's memory footprint.
type Profile struct {
	// Thread is the thread ID within the application.
	Thread int
	// Shared maps each shared-segment address the thread touched to its
	// reference counts.
	Shared map[uint64]RefCount
	// TotalRefs is the thread's total data reference count.
	TotalRefs uint64
	// SharedRefs is the number of references to the shared segment.
	SharedRefs uint64
	// PrivateAddrs is the number of distinct private addresses touched.
	PrivateAddrs int
	// Length is the thread's dynamic length in instructions.
	Length uint64
}

// SharedAddrs returns the number of distinct shared addresses touched.
func (p *Profile) SharedAddrs() int { return len(p.Shared) }

// RefsPerSharedAddr returns the thread's temporal-locality metric used by
// SHARE-ADDR: shared references divided by distinct shared addresses.
// It returns 0 for a thread that touches no shared data.
func (p *Profile) RefsPerSharedAddr() float64 {
	if len(p.Shared) == 0 {
		return 0
	}
	return float64(p.SharedRefs) / float64(len(p.Shared))
}

// ProfileThread computes a thread's footprint profile.
func ProfileThread(t *trace.Thread) *Profile {
	p := &Profile{Thread: t.ID, Shared: make(map[uint64]RefCount)}
	private := make(map[uint64]struct{})
	for c := t.Cursor(); ; {
		e, ok := c.Next()
		if !ok {
			break
		}
		p.TotalRefs++
		if trace.IsShared(e.Addr) {
			p.SharedRefs++
			rc := p.Shared[e.Addr]
			if e.Kind == trace.Write {
				rc.Writes++
			} else {
				rc.Reads++
			}
			p.Shared[e.Addr] = rc
		} else {
			private[e.Addr] = struct{}{}
		}
	}
	p.PrivateAddrs = len(private)
	p.Length = t.Instructions()
	return p
}

// Set is the full static analysis of one application trace.
type Set struct {
	// App is the application name.
	App string
	// Profiles holds one profile per thread, indexed by thread ID.
	Profiles []*Profile

	// inverted index: shared address -> sharers, built lazily
	sharers map[uint64][]addrUse
}

type addrUse struct {
	thread int
	count  RefCount
}

// Analyze profiles every thread of tr.
func Analyze(tr *trace.Trace) *Set {
	s := &Set{App: tr.App, Profiles: make([]*Profile, tr.NumThreads())}
	for i, t := range tr.Threads {
		s.Profiles[i] = ProfileThread(t)
	}
	return s
}

// NumThreads returns the number of threads analyzed.
func (s *Set) NumThreads() int { return len(s.Profiles) }

// invertedIndex returns the shared-address -> users index, built on first
// use. Each address's user list is appended profile-major, so it is always
// sorted by thread ID; iterating each profile's addresses in sorted order
// keeps the whole construction canonical rather than map-ordered.
func (s *Set) invertedIndex() map[uint64][]addrUse {
	if s.sharers == nil {
		s.sharers = make(map[uint64][]addrUse)
		var addrs []uint64
		for _, p := range s.Profiles {
			addrs = addrs[:0]
			for a := range p.Shared {
				addrs = append(addrs, a)
			}
			sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
			for _, a := range addrs {
				s.sharers[a] = append(s.sharers[a], addrUse{thread: p.Thread, count: p.Shared[a]})
			}
		}
	}
	return s.sharers
}

// Lengths returns every thread's dynamic length, indexed by thread ID.
func (s *Set) Lengths() []uint64 {
	ls := make([]uint64, len(s.Profiles))
	for i, p := range s.Profiles {
		ls[i] = p.Length
	}
	return ls
}

// PrivateAddrs returns every thread's distinct private address count.
func (s *Set) PrivateAddrs() []int {
	ns := make([]int, len(s.Profiles))
	for i, p := range s.Profiles {
		ns[i] = p.PrivateAddrs
	}
	return ns
}

// String summarizes the set for diagnostics.
func (s *Set) String() string {
	var refs uint64
	for _, p := range s.Profiles {
		refs += p.TotalRefs
	}
	return fmt.Sprintf("analysis.Set{%s: %d threads, %d refs}", s.App, len(s.Profiles), refs)
}
