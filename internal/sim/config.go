// Package sim is the trace-driven multithreaded multiprocessor simulator
// of §3.2 of the paper: processors with multiple hardware contexts and
// round-robin context switching on cache misses, per-processor direct-
// mapped caches with full miss-component classification, a distributed
// directory-based invalidation coherence protocol, and a multipath
// interconnect modeled as a flat memory latency (no contention).
//
// The simulator is deterministic: given the same trace, placement and
// configuration it produces identical results.
package sim

import "fmt"

// Architectural defaults from Table 3 of the paper.
const (
	// DefaultLineSize is the cache block size in bytes.
	DefaultLineSize = 32
	// DefaultHitCycles is the cache hit time.
	DefaultHitCycles = 1
	// DefaultMemLatency approximates the average memory latency of a
	// moderately loaded Alewife-style multiprocessor.
	DefaultMemLatency = 50
	// DefaultSwitchCycles is the context switch time — draining the
	// execution pipeline.
	DefaultSwitchCycles = 6
	// DefaultCacheSize is the per-processor cache capacity. The paper
	// uses 32 KB for the coarse-grain programs (plus Health and FFT) and
	// 64 KB for the other medium-grain programs; workloads carry their
	// preferred size.
	DefaultCacheSize = 32 << 10
	// InfiniteCacheSize is the 8 MB capacity the paper uses to
	// approximate an infinite cache (§4.3) — large enough to eliminate
	// all capacity and conflict misses for the scaled workloads.
	InfiniteCacheSize = 8 << 20
)

// Config describes one simulated machine.
type Config struct {
	// Processors is the number of processors. Each holds as many
	// hardware contexts as the placement assigns it threads (the paper
	// assumes all threads are loaded into hardware contexts), unless
	// MaxContexts caps them.
	Processors int
	// MaxContexts, when positive, caps the hardware contexts per
	// processor: threads beyond the cap wait until a completing thread
	// frees a context (Table 3 lists the number of hardware contexts as
	// a simulator input). Zero means one context per assigned thread.
	MaxContexts int
	// CacheSize is the per-processor data cache capacity in bytes.
	CacheSize int
	// Associativity is the cache's set associativity with LRU
	// replacement. Zero or one is direct-mapped — the paper's
	// configuration; the paper suggests higher associativity as the fix
	// for the inter-thread cache thrashing it observed (§4.1).
	Associativity int
	// LineSize is the cache block size in bytes (power of two).
	LineSize int
	// HitCycles is the cache hit time in cycles.
	HitCycles uint64
	// MemLatency is the cost in cycles of any memory transaction that
	// crosses the interconnect (misses and ownership upgrades).
	MemLatency uint64
	// SwitchCycles is the pipeline-drain cost charged at every blocking
	// transaction before another context may issue.
	SwitchCycles uint64
	// Protocol selects the coherence protocol: the paper's
	// directory-based write-invalidate (default) or a write-update
	// extension in which writers propagate values to sharers instead of
	// invalidating them.
	Protocol Protocol
	// NetworkChannels, when positive, models interconnect contention:
	// every memory transaction must acquire one of this many channels
	// for NetworkOccupancy cycles, queueing (FCFS) when all are busy.
	// Zero reproduces the paper's uncontended multipath network.
	NetworkChannels int
	// NetworkOccupancy is the channel holding time per transaction when
	// NetworkChannels is positive (default DefaultNetworkOccupancy).
	NetworkOccupancy uint64
	// TrackWriteRuns enables the write-run / migratory-data measurement
	// of §4.2 (footnote 2); results appear in Result.WriteRuns.
	TrackWriteRuns bool
	// InfiniteCache disables capacity/conflict behaviour entirely: the
	// cache never evicts. Equivalent to a cache larger than the
	// workload's footprint; see also InfiniteCacheSize for the paper's
	// literal 8 MB variant.
	InfiniteCache bool
}

// Protocol identifies a coherence protocol.
type Protocol int

const (
	// Invalidate is the paper's protocol: a write removes remote copies.
	Invalidate Protocol = iota
	// Update is the extension protocol: a write propagates the new value
	// to remote copies, which stay valid. Invalidation misses disappear
	// at the price of update messages on every write to shared data.
	Update
)

// String names the protocol.
func (p Protocol) String() string {
	if p == Update {
		return "update"
	}
	return "invalidate"
}

// DefaultNetworkOccupancy is the channel holding time of one transaction
// when contention is modeled: one line transfer on the interconnect.
const DefaultNetworkOccupancy = 8

// DefaultConfig returns the paper's architectural parameters for the given
// processor count.
func DefaultConfig(procs int) Config {
	return Config{
		Processors:   procs,
		CacheSize:    DefaultCacheSize,
		LineSize:     DefaultLineSize,
		HitCycles:    DefaultHitCycles,
		MemLatency:   DefaultMemLatency,
		SwitchCycles: DefaultSwitchCycles,
	}
}

// Validate reports the first configuration problem, or nil.
func (c Config) Validate() error {
	if c.Processors <= 0 {
		return fmt.Errorf("sim: need at least one processor, got %d", c.Processors)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("sim: line size %d is not a positive power of two", c.LineSize)
	}
	if c.Associativity < 0 {
		return fmt.Errorf("sim: negative associativity %d", c.Associativity)
	}
	if c.MaxContexts < 0 {
		return fmt.Errorf("sim: negative context cap %d", c.MaxContexts)
	}
	if c.Protocol != Invalidate && c.Protocol != Update {
		return fmt.Errorf("sim: unknown protocol %d", c.Protocol)
	}
	if c.NetworkChannels < 0 {
		return fmt.Errorf("sim: negative channel count %d", c.NetworkChannels)
	}
	if !c.InfiniteCache {
		ways := c.Associativity
		if ways == 0 {
			ways = 1
		}
		if c.CacheSize < c.LineSize*ways {
			return fmt.Errorf("sim: cache size %d cannot hold one %d-way set of %d-byte lines", c.CacheSize, ways, c.LineSize)
		}
		if c.CacheSize%(c.LineSize*ways) != 0 {
			return fmt.Errorf("sim: cache size %d not a multiple of set size %d", c.CacheSize, c.LineSize*ways)
		}
	}
	if c.HitCycles == 0 {
		return fmt.Errorf("sim: hit time must be at least one cycle")
	}
	if c.MemLatency == 0 {
		return fmt.Errorf("sim: memory latency must be at least one cycle")
	}
	return nil
}

// lineShift returns log2(LineSize).
func (c Config) lineShift() uint {
	s := uint(0)
	for 1<<s < c.LineSize {
		s++
	}
	return s
}
