package sim

// Write-run measurement (§4.2 of the paper, footnote 2: "write runs are
// sequences of accesses by a single thread"). The paper's analysis of FFT
// found 73% of shared elements migratory — accessed in long write runs —
// which explains why a preponderance of static shared references produces
// almost no interconnect traffic. Enabling Config.TrackWriteRuns collects
// the equivalent dynamic statistic: per written shared block, the lengths
// of the maximal single-thread write runs in global time order.

// writeRunState accumulates one block's write history.
type writeRunState struct {
	lastWriter  int32 // global thread ID of the last writer
	firstWriter int32
	multiWriter bool
	curRun      uint32
	runs        uint32
	writes      uint64
}

// writeRunTracker observes every shared-segment write in simulation order.
type writeRunTracker struct {
	blocks map[uint64]*writeRunState
}

func newWriteRunTracker() *writeRunTracker {
	return &writeRunTracker{blocks: make(map[uint64]*writeRunState)}
}

// observe records a write to block by the given global thread.
func (w *writeRunTracker) observe(block uint64, thread int32) {
	st := w.blocks[block]
	if st == nil {
		st = &writeRunState{lastWriter: thread, firstWriter: thread, curRun: 1, writes: 1}
		w.blocks[block] = st
		return
	}
	st.writes++
	if st.lastWriter == thread {
		st.curRun++
		return
	}
	st.multiWriter = true
	st.runs++
	st.curRun = 1
	st.lastWriter = thread
}

// MigratoryRunLength is the minimum mean write-run length for a
// multi-writer block to count as migratory.
const MigratoryRunLength = 4

// WriteRunStats summarizes the write-sharing behaviour of one run.
type WriteRunStats struct {
	// WrittenBlocks is the number of shared blocks written at least once.
	WrittenBlocks int
	// SingleWriterBlocks were only ever written by one thread.
	SingleWriterBlocks int
	// MigratoryBlocks had multiple writers in long (>= MigratoryRunLength)
	// single-thread write runs — data that moves between threads but is
	// used in bursts, producing little coherence traffic per reference.
	MigratoryBlocks int
	// PingPongBlocks had multiple writers in short runs — the
	// alternating pattern that does produce per-access traffic.
	PingPongBlocks int
	// MeanRunLength is the mean single-thread write-run length over all
	// multi-writer blocks.
	MeanRunLength float64
}

// MigratoryPct returns migratory blocks as a percentage of multi-writer
// blocks (the paper's "73% of all shared elements are migratory" figure
// for FFT).
func (s WriteRunStats) MigratoryPct() float64 {
	multi := s.MigratoryBlocks + s.PingPongBlocks
	if multi == 0 {
		return 0
	}
	return float64(s.MigratoryBlocks) / float64(multi) * 100
}

// stats finalizes the tracker into summary statistics.
func (w *writeRunTracker) stats() *WriteRunStats {
	out := &WriteRunStats{}
	var totalWrites, totalRuns float64
	for _, st := range w.blocks {
		out.WrittenBlocks++
		if !st.multiWriter {
			out.SingleWriterBlocks++
			continue
		}
		runs := st.runs + 1 // the still-open final run
		mean := float64(st.writes) / float64(runs)
		if mean >= MigratoryRunLength {
			out.MigratoryBlocks++
		} else {
			out.PingPongBlocks++
		}
		totalWrites += float64(st.writes)
		totalRuns += float64(runs)
	}
	if totalRuns > 0 {
		out.MeanRunLength = totalWrites / totalRuns
	}
	return out
}
