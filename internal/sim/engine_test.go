package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/placement"
	"repro/internal/trace"
)

// mkTrace builds a trace from per-thread event lists.
func mkTrace(threads ...[]trace.Event) *trace.Trace {
	tr := trace.New("test", len(threads))
	for i, evs := range threads {
		r := trace.NewRecorder(tr, i)
		for _, e := range evs {
			r.Compute(int(e.Gap))
			r.Ref(e.Kind, e.Addr)
		}
	}
	return tr
}

// mkPlacement builds an explicit placement.
func mkPlacement(clusters ...[]int) *placement.Placement {
	return &placement.Placement{Algorithm: "TEST", Clusters: clusters}
}

func sh(i int) uint64 { return trace.SharedBase + uint64(i)*trace.WordSize }

// shBlock returns an address i whole cache lines into the shared segment,
// so consecutive i never collide within a line.
func shBlock(i int) uint64 { return trace.SharedBase + uint64(i)*DefaultLineSize }

func TestSingleRefTiming(t *testing.T) {
	// One thread, one reference, gap 0: miss at 0, memory until 50,
	// retried hit completes at 51.
	tr := mkTrace([]trace.Event{{Kind: trace.Read, Addr: sh(0)}})
	res, err := Run(tr, mkPlacement([]int{0}), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != 50 {
		t.Errorf("exec time = %d, want 50", res.ExecTime)
	}
	p := res.Procs[0]
	if p.Busy != 1 || p.Switch != 6 || p.Idle != 0 {
		t.Errorf("busy/switch/idle = %d/%d/%d, want 1/6/0", p.Busy, p.Switch, p.Idle)
	}
	if p.Misses[Compulsory] != 1 || p.Hits != 0 || p.Refs != 1 {
		t.Errorf("miss/hit/refs = %d/%d/%d, want 1/0/1", p.Misses[Compulsory], p.Hits, p.Refs)
	}
	if p.SharedRefs != 1 {
		t.Errorf("shared refs = %d, want 1", p.SharedRefs)
	}
}

func TestHitAfterMissTiming(t *testing.T) {
	// First reference misses (completes at 50); the processor idles
	// until the context resumes, then the second reference hits: 50+1.
	tr := mkTrace([]trace.Event{
		{Kind: trace.Read, Addr: sh(0)},
		{Kind: trace.Read, Addr: sh(0)},
	})
	res, err := Run(tr, mkPlacement([]int{0}), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != 51 {
		t.Errorf("exec time = %d, want 51", res.ExecTime)
	}
	p := res.Procs[0]
	if p.TotalMisses() != 1 || p.Hits != 1 {
		t.Errorf("misses/hits = %d/%d, want 1/1", p.TotalMisses(), p.Hits)
	}
	if p.Idle != 44 {
		t.Errorf("idle = %d, want 44 (stall between switch and resume)", p.Idle)
	}
}

func TestGapExecution(t *testing.T) {
	// gap 10 before a missing ref: miss at 10, completes at 60.
	tr := mkTrace([]trace.Event{{Gap: 10, Kind: trace.Read, Addr: sh(0)}})
	res, err := Run(tr, mkPlacement([]int{0}), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime != 60 {
		t.Errorf("exec time = %d, want 60", res.ExecTime)
	}
	if res.Procs[0].Busy != 11 {
		t.Errorf("busy = %d, want 11", res.Procs[0].Busy)
	}
}

func TestMultithreadingHidesLatency(t *testing.T) {
	// Two threads with disjoint missing references on one processor:
	// the second context runs during the first's memory stall.
	evs := func(base int) []trace.Event {
		var out []trace.Event
		for i := 0; i < 10; i++ {
			out = append(out, trace.Event{Kind: trace.Read, Addr: shBlock(base + i)})
		}
		return out
	}
	serialA, err := Run(mkTrace(evs(0)), mkPlacement([]int{0}), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	both, err := Run(mkTrace(evs(0), evs(100)), mkPlacement([]int{0, 1}), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved execution must be far below twice the serial time.
	if both.ExecTime >= 2*serialA.ExecTime {
		t.Errorf("multithreaded exec %d not faster than serial %d x2", both.ExecTime, serialA.ExecTime)
	}
	// And idle time must drop.
	if both.Procs[0].Idle >= serialA.Procs[0].Idle*2 {
		t.Errorf("idle %d did not drop vs serial %d x2", both.Procs[0].Idle, serialA.Procs[0].Idle)
	}
}

func TestCoherenceInvalidation(t *testing.T) {
	// P0 writes X; P1 reads X (fetches dirty data, P0 downgrades);
	// P0 upgrades (invalidates P1); P1 re-reads: invalidation miss.
	x := shBlock(0)
	tr := mkTrace(
		[]trace.Event{
			{Kind: trace.Write, Addr: x},           // t=0: compulsory miss, M
			{Gap: 200, Kind: trace.Write, Addr: x}, // t~251: upgrade w/ invalidation
		},
		[]trace.Event{
			{Gap: 100, Kind: trace.Read, Addr: x}, // t=100: compulsory miss, fetch from P0
			{Gap: 300, Kind: trace.Read, Addr: x}, // t~451: invalidation miss
		},
	)
	res, err := RunChecked(tr, mkPlacement([]int{0}, []int{1}), DefaultConfig(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := res.Procs[0], res.Procs[1]
	if p0.Misses[Compulsory] != 1 {
		t.Errorf("p0 compulsory = %d, want 1", p0.Misses[Compulsory])
	}
	if p0.Upgrades != 1 {
		t.Errorf("p0 upgrades = %d, want 1", p0.Upgrades)
	}
	if p0.InvalidationsSent != 1 {
		t.Errorf("p0 invalidations sent = %d, want 1", p0.InvalidationsSent)
	}
	if p0.Writebacks != 2 {
		t.Errorf("p0 writebacks = %d, want 2 (downgrade + dirty fetch at the invalidation miss)", p0.Writebacks)
	}
	if p1.Misses[Compulsory] != 1 || p1.Misses[InvalidationMiss] != 1 {
		t.Errorf("p1 misses = %+v", p1.Misses)
	}
	if p1.InvalidationsReceived != 1 {
		t.Errorf("p1 invalidations received = %d, want 1", p1.InvalidationsReceived)
	}
	// Pair traffic: P1's two dirty fetches from P0 -> pair[1][0] = 2;
	// P0's invalidation of P1 plus P1's invalidation miss -> pair[0][1] = 2.
	if res.PairTraffic[1][0] != 2 {
		t.Errorf("pair[1][0] = %d, want 2", res.PairTraffic[1][0])
	}
	if res.PairTraffic[0][1] != 2 {
		t.Errorf("pair[0][1] = %d, want 2", res.PairTraffic[0][1])
	}
	if res.CoherenceTraffic() != 2+1+1 { // 2 compulsory + 1 inv miss + 1 inv
		t.Errorf("coherence traffic = %d, want 4", res.CoherenceTraffic())
	}
}

func TestSilentUpgradeIsFree(t *testing.T) {
	// Read then write the same block with no other sharers: the write is
	// a silent upgrade, not a transaction.
	x := shBlock(0)
	tr := mkTrace([]trace.Event{
		{Kind: trace.Read, Addr: x},
		{Kind: trace.Write, Addr: x},
	})
	res, err := RunChecked(tr, mkPlacement([]int{0}), DefaultConfig(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Procs[0]
	if p.Upgrades != 0 {
		t.Errorf("upgrades = %d, want 0 (silent)", p.Upgrades)
	}
	if res.ExecTime != 51 { // read miss completes at 50, upgrade-hit at 51
		t.Errorf("exec time = %d, want 51", res.ExecTime)
	}
}

func TestWriteMissInvalidatesAllSharers(t *testing.T) {
	x := shBlock(0)
	// P0, P1 read X; P2 writes X later.
	tr := mkTrace(
		[]trace.Event{{Kind: trace.Read, Addr: x}, {Gap: 500, Kind: trace.Read, Addr: sh(100 * DefaultLineSize / trace.WordSize)}},
		[]trace.Event{{Gap: 100, Kind: trace.Read, Addr: x}, {Gap: 500, Kind: trace.Read, Addr: sh(101 * DefaultLineSize / trace.WordSize)}},
		[]trace.Event{{Gap: 200, Kind: trace.Write, Addr: x}},
	)
	res, err := RunChecked(tr, mkPlacement([]int{0}, []int{1}, []int{2}), DefaultConfig(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[2].InvalidationsSent; got != 2 {
		t.Errorf("invalidations sent by writer = %d, want 2", got)
	}
	if res.Procs[0].InvalidationsReceived != 1 || res.Procs[1].InvalidationsReceived != 1 {
		t.Error("sharers did not each receive one invalidation")
	}
}

func TestIntraVsInterThreadConflicts(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.CacheSize = 64 // 2 lines; blocks 0 and 2 collide in set 0
	a := trace.SharedBase
	b := trace.SharedBase + 2*DefaultLineSize

	// Intra: one thread ping-pongs two colliding blocks.
	tr := mkTrace([]trace.Event{
		{Kind: trace.Read, Addr: a},
		{Kind: trace.Read, Addr: b},
		{Kind: trace.Read, Addr: a},
		{Kind: trace.Read, Addr: b},
	})
	res, err := Run(tr, mkPlacement([]int{0}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Procs[0]
	if p.Misses[Compulsory] != 2 || p.Misses[ConflictIntra] != 2 || p.Misses[ConflictInter] != 0 {
		t.Errorf("intra case misses = %+v", p.Misses)
	}

	// Inter: two co-located threads ping-pong the same set.
	tr = mkTrace(
		[]trace.Event{{Kind: trace.Read, Addr: a}, {Gap: 120, Kind: trace.Read, Addr: a}},
		[]trace.Event{{Gap: 60, Kind: trace.Read, Addr: b}, {Gap: 120, Kind: trace.Read, Addr: b}},
	)
	res, err = Run(tr, mkPlacement([]int{0, 1}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	p = res.Procs[0]
	if p.Misses[ConflictInter] == 0 {
		t.Errorf("inter case misses = %+v, want inter-thread conflicts", p.Misses)
	}
}

func TestInfiniteCacheEliminatesConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := trace.New("rnd", 4)
	for i := 0; i < 4; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 2000; j++ {
			r.Compute(rng.Intn(5))
			addr := sh(rng.Intn(5000))
			if rng.Intn(4) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}
	cfg := DefaultConfig(2)
	cfg.InfiniteCache = true
	res, err := RunChecked(tr, mkPlacement([]int{0, 1}, []int{2, 3}), cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.Misses[ConflictIntra] != 0 || tot.Misses[ConflictInter] != 0 {
		t.Errorf("infinite cache produced conflict misses: %+v", tot.Misses)
	}
	if tot.Misses[Compulsory] == 0 {
		t.Error("no compulsory misses at all")
	}
	if tot.Misses[InvalidationMiss] == 0 {
		t.Error("random read/write sharing produced no invalidation misses")
	}
}

// TestConservationInvariants: every reference completes exactly one hit,
// and total busy time equals total trace instructions.
func TestConservationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 4; trial++ {
		n := 4 + rng.Intn(5)
		tr := trace.New("rnd", n)
		for i := 0; i < n; i++ {
			r := trace.NewRecorder(tr, i)
			refs := 500 + rng.Intn(1500)
			for j := 0; j < refs; j++ {
				r.Compute(rng.Intn(8))
				addr := sh(rng.Intn(3000))
				if rng.Intn(5) == 0 {
					addr = uint64(i*100000+rng.Intn(200)) * trace.WordSize
				}
				if rng.Intn(3) == 0 {
					r.Store(addr)
				} else {
					r.Load(addr)
				}
			}
		}
		procs := 2 + rng.Intn(2)
		var clusters [][]int
		for q := 0; q < procs; q++ {
			clusters = append(clusters, nil)
		}
		for i := 0; i < n; i++ {
			clusters[i%procs] = append(clusters[i%procs], i)
		}
		cfg := DefaultConfig(procs)
		cfg.CacheSize = 4 << 10 // small cache to force conflicts
		res, err := RunChecked(tr, mkPlacement(clusters...), cfg, 500)
		if err != nil {
			t.Fatal(err)
		}
		tot := res.Totals()
		if tot.Refs != tr.TotalRefs() {
			t.Errorf("trial %d: refs = %d, want %d", trial, tot.Refs, tr.TotalRefs())
		}
		if got := tot.Hits + tot.TotalMisses() + tot.Upgrades; got != tr.TotalRefs() {
			t.Errorf("trial %d: hits+misses+upgrades = %d, want %d", trial, got, tr.TotalRefs())
		}
		if tot.Busy != tr.TotalInstructions() {
			t.Errorf("trial %d: busy = %d, want %d", trial, tot.Busy, tr.TotalInstructions())
		}
		// Invalidations received == invalidations sent.
		if tot.InvalidationsSent != tot.InvalidationsReceived {
			t.Errorf("trial %d: inv sent %d != received %d", trial, tot.InvalidationsSent, tot.InvalidationsReceived)
		}
		// Every thread finished.
		for tid, f := range res.ThreadFinish {
			if f == 0 {
				t.Errorf("trial %d: thread %d never finished", trial, tid)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := trace.New("rnd", 6)
	for i := 0; i < 6; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 3000; j++ {
			r.Compute(rng.Intn(4))
			if rng.Intn(3) == 0 {
				r.Store(sh(rng.Intn(2000)))
			} else {
				r.Load(sh(rng.Intn(2000)))
			}
		}
	}
	pl := mkPlacement([]int{0, 1}, []int{2, 3}, []int{4, 5})
	cfg := DefaultConfig(3)
	a, err := Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("simulation not deterministic")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	tr := mkTrace([]trace.Event{{Kind: trace.Read, Addr: sh(0)}})
	if _, err := Run(tr, mkPlacement([]int{0}, []int{0}), DefaultConfig(2)); err == nil {
		t.Error("double-placed thread accepted")
	}
	if _, err := Run(tr, mkPlacement([]int{0}), Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Run(tr, mkPlacement([]int{0}), DefaultConfig(2)); err == nil {
		t.Error("placement/config processor mismatch accepted")
	}
}

func TestThreadFinishOrdering(t *testing.T) {
	// Thread 1 is much longer than thread 0; both on one processor.
	short := []trace.Event{{Kind: trace.Read, Addr: sh(0)}}
	var long []trace.Event
	for i := 0; i < 50; i++ {
		long = append(long, trace.Event{Gap: 20, Kind: trace.Read, Addr: shBlock(i + 10)})
	}
	tr := mkTrace(short, long)
	res, err := Run(tr, mkPlacement([]int{0, 1}), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThreadFinish[0] >= res.ThreadFinish[1] {
		t.Errorf("short thread finished at %d, long at %d", res.ThreadFinish[0], res.ThreadFinish[1])
	}
	if res.ExecTime != res.Procs[0].Finish {
		t.Errorf("exec time %d != proc finish %d", res.ExecTime, res.Procs[0].Finish)
	}
}

func TestPairTrafficSymmetry(t *testing.T) {
	r := &Result{PairTraffic: [][]uint64{{0, 3}, {1, 0}}}
	m := r.PairTrafficSym()
	if m[0][1] != 4 || m[1][0] != 4 {
		t.Errorf("sym = %v", m)
	}
}

func TestMissFractionsAndTotals(t *testing.T) {
	tr := mkTrace([]trace.Event{
		{Kind: trace.Read, Addr: sh(0)},
		{Kind: trace.Read, Addr: sh(0)},
		{Kind: trace.Read, Addr: shBlock(5)},
	})
	res, err := Run(tr, mkPlacement([]int{0}), DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	f := res.MissFractions()
	if f[Compulsory] < 0.66 || f[Compulsory] > 0.67 {
		t.Errorf("compulsory fraction = %v, want 2/3", f[Compulsory])
	}
	if f[InvalidationMiss] != 0 {
		t.Errorf("invalidation fraction = %v, want 0", f[InvalidationMiss])
	}
	empty := &Result{Procs: []ProcStats{{}}}
	if got := empty.MissFractions(); got[Compulsory] != 0 {
		t.Error("zero-ref result should give zero fractions")
	}
}
