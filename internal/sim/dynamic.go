package sim

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Dynamic scheduling: an extension beyond the paper's static placements.
// The paper's RANDOM baseline is "what a low-overhead runtime scheduler
// would adopt, given no a priori application knowledge" — but a real
// runtime scheduler is *online*: it hands the next waiting thread to
// whichever processor frees a context first, load-balancing without any
// static analysis. RunDynamic simulates that discipline, bounding what
// static LOAD-BAL's oracle knowledge (exact thread lengths) is worth.

// SchedulePolicy orders the dynamic scheduler's ready queue.
type SchedulePolicy int

const (
	// FIFO hands out threads in creation order.
	FIFO SchedulePolicy = iota
	// LongestFirst hands out the longest remaining thread first (online
	// LPT — needs thread lengths, but no sharing analysis).
	LongestFirst
)

// String names the policy.
func (p SchedulePolicy) String() string {
	if p == LongestFirst {
		return "longest-first"
	}
	return "fifo"
}

// RunDynamic simulates the trace with online self-scheduling instead of a
// static placement: each processor starts ContextsPerProc threads (from
// cfg.MaxContexts, default 1) and pulls the next queued thread whenever a
// context frees. Returns the same Result as Run; Result.Algorithm is
// "DYNAMIC/<policy>".
//
// Implementation: the global queue is consumed through the same engine as
// static runs. Because context-free events occur in deterministic global
// time order, the simulation is reproducible.
func RunDynamic(tr *trace.Trace, cfg Config, policy SchedulePolicy) (*Result, error) {
	return RunDynamicObserved(tr, cfg, policy, nil)
}

// RunDynamicObserved is RunDynamic with an observation probe attached (see
// RunObserved). A nil probe is exactly RunDynamic.
func RunDynamicObserved(tr *trace.Trace, cfg Config, policy SchedulePolicy, probe obs.Probe) (*Result, error) {
	m, pl, err := newDynamicMachine(tr, cfg, policy)
	if err != nil {
		return nil, err
	}
	m.probe = probe
	return m.run(tr, pl, 0)
}

// newDynamicMachine builds the self-scheduling machine and its seed
// placement (shared by RunDynamicObserved and RunDynamicGuarded).
func newDynamicMachine(tr *trace.Trace, cfg Config, policy SchedulePolicy) (*machine, *placement.Placement, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	n := tr.NumThreads()
	perProc := cfg.MaxContexts
	if perProc <= 0 {
		perProc = 1
	}
	if cfg.Processors*perProc > n {
		return nil, nil, fmt.Errorf("sim: dynamic run needs at least %d threads to seed %d processors x %d contexts, got %d",
			cfg.Processors*perProc, cfg.Processors, perProc, n)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if policy == LongestFirst {
		sort.SliceStable(order, func(a, b int) bool {
			la, lb := tr.Threads[order[a]].Instructions(), tr.Threads[order[b]].Instructions()
			if la != lb {
				return la > lb
			}
			return order[a] < order[b]
		})
	}

	// Seed each processor with its initial contexts; the rest form the
	// global ready queue.
	clusters := make([][]int, cfg.Processors)
	pos := 0
	for q := 0; q < cfg.Processors; q++ {
		clusters[q] = append(clusters[q], order[pos:pos+perProc]...)
		pos += perProc
	}
	queue := append([]int(nil), order[pos:]...)

	pl := &placement.Placement{
		Algorithm: "DYNAMIC/" + policy.String(),
		Clusters:  clusters,
	}
	// The engine treats queue as shared: newMachine wires it through
	// cfg-independent state below.
	m, err := newMachineDynamic(tr, pl, cfg, queue)
	if err != nil {
		return nil, nil, err
	}
	return m, pl, nil
}

// newMachineDynamic builds a machine whose processors pull additional
// threads from a shared queue when contexts free.
func newMachineDynamic(tr *trace.Trace, pl *placement.Placement, cfg Config, queue []int) (*machine, error) {
	// The seeded clusters do not cover all threads, so the standard
	// placement validation does not apply; check the basics directly.
	if len(pl.Clusters) != cfg.Processors {
		return nil, fmt.Errorf("sim: %d clusters for %d processors", len(pl.Clusters), cfg.Processors)
	}
	// Build via a full placement covering every thread, then strip the
	// queued threads back out of the per-processor context lists.
	full := &placement.Placement{Algorithm: pl.Algorithm, Clusters: make([][]int, len(pl.Clusters))}
	for i, c := range pl.Clusters {
		full.Clusters[i] = append([]int(nil), c...)
	}
	full.Clusters[0] = append(full.Clusters[0], queue...)
	cfgAll := cfg
	cfgAll.MaxContexts = 0
	m, err := newMachine(tr, full, cfgAll)
	if err != nil {
		return nil, err
	}
	m.cfg = cfg
	// Detach the queued threads from processor 0: they wait in the
	// global queue instead.
	p0 := m.procs[0]
	seeded := len(pl.Clusters[0])
	for _, c := range p0.ctxs[seeded:] {
		if c.state == ctxDone {
			// Empty thread: leave it accounted as done on p0.
			continue
		}
		c.state = ctxUnloaded
		m.dynQueue = append(m.dynQueue, dynThread{thread: c.thread, cur: c.cur, pending: c.pending})
	}
	p0.ctxs = p0.ctxs[:seeded]
	p0.nextLoad = len(p0.ctxs)
	p0.rr = len(p0.ctxs) - 1
	m.dynamic = true
	return m, nil
}

// dynThread is a thread waiting in the dynamic scheduler's global queue.
type dynThread struct {
	thread  int
	cur     *trace.Cursor
	pending trace.Event
}

// ---- mid-run checkpoint/restore ----
//
// An OnlineCheckpoint is the engine's mid-run hand-off unit: the
// placement advisor (internal/advise, /v1/advise) consumes it, and a
// paused online run can be resumed from it. The binary encoding is
// deterministic — field order is fixed, matrices are row-major — so a
// round-trip is byte-identical (asserted in the online test suite).

// ckMagic frames an encoded OnlineCheckpoint ("MTC1": multithreaded
// checkpoint, version 1).
const ckMagic = "MTC1"

// maxCheckpointThreads bounds untrusted decode allocations.
const maxCheckpointThreads = 1 << 16

// EncodeOnlineCheckpoint serializes ck deterministically.
func EncodeOnlineCheckpoint(ck *OnlineCheckpoint) []byte {
	n := len(ck.Assign)
	buf := make([]byte, 0, 4+8+8+8+8*n+2*8*n*n)
	buf = append(buf, ckMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(ck.Epoch))
	buf = binary.BigEndian.AppendUint64(buf, ck.Cycle)
	buf = binary.BigEndian.AppendUint64(buf, uint64(n))
	for _, p := range ck.Assign {
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(p)))
	}
	for _, m := range [][][]uint64{ck.Pair, ck.EpochPair} {
		for _, row := range m {
			for _, v := range row {
				buf = binary.BigEndian.AppendUint64(buf, v)
			}
		}
	}
	return buf
}

// DecodeOnlineCheckpoint parses an EncodeOnlineCheckpoint payload,
// rejecting truncation, trailing bytes and oversized thread counts.
func DecodeOnlineCheckpoint(b []byte) (*OnlineCheckpoint, error) {
	if len(b) < 4 || string(b[:4]) != ckMagic {
		return nil, fmt.Errorf("sim: checkpoint: bad magic")
	}
	b = b[4:]
	take := func() (uint64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("sim: checkpoint: truncated")
		}
		v := binary.BigEndian.Uint64(b)
		b = b[8:]
		return v, nil
	}
	epoch, err := take()
	if err != nil {
		return nil, err
	}
	cycle, err := take()
	if err != nil {
		return nil, err
	}
	n64, err := take()
	if err != nil {
		return nil, err
	}
	if n64 > maxCheckpointThreads {
		return nil, fmt.Errorf("sim: checkpoint: %d threads exceeds limit %d", n64, maxCheckpointThreads)
	}
	n := int(n64)
	if want := 8*n + 2*8*n*n; len(b) != want {
		return nil, fmt.Errorf("sim: checkpoint: body is %d bytes, want %d", len(b), want)
	}
	ck := &OnlineCheckpoint{Epoch: int(epoch), Cycle: cycle, Assign: make([]int, n)}
	for i := range ck.Assign {
		v, _ := take()
		ck.Assign[i] = int(int64(v))
	}
	read := func() [][]uint64 {
		m := make([][]uint64, n)
		for i := range m {
			m[i] = make([]uint64, n)
			for j := range m[i] {
				v, _ := take()
				m[i][j] = v
			}
		}
		return m
	}
	ck.Pair = read()
	ck.EpochPair = read()
	return ck, nil
}

// pullDynamic hands the processor the next queued thread, if any,
// installing it in a fresh hardware context.
func (m *machine) pullDynamic(p *proc) bool {
	if len(m.dynQueue) == 0 {
		return false
	}
	dt := m.dynQueue[0]
	m.dynQueue = m.dynQueue[1:]
	c := &context{
		idx:     int32(len(p.ctxs)),
		thread:  dt.thread,
		cur:     dt.cur,
		pending: dt.pending,
		state:   ctxReady,
	}
	p.ctxs = append(p.ctxs, c)
	p.nextLoad = len(p.ctxs)
	return true
}
