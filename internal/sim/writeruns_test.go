package sim

import (
	"testing"

	"repro/internal/trace"
)

func TestWriteRunTrackerDirect(t *testing.T) {
	w := newWriteRunTracker()
	// Block 1: thread 0 writes 8 times, then thread 1 writes 8 times:
	// two long runs -> migratory.
	for i := 0; i < 8; i++ {
		w.observe(1, 0)
	}
	for i := 0; i < 8; i++ {
		w.observe(1, 1)
	}
	// Block 2: strict ping-pong.
	for i := 0; i < 8; i++ {
		w.observe(2, int32(i%2))
	}
	// Block 3: single writer.
	w.observe(3, 5)
	w.observe(3, 5)

	s := w.stats()
	if s.WrittenBlocks != 3 {
		t.Errorf("written blocks = %d, want 3", s.WrittenBlocks)
	}
	if s.SingleWriterBlocks != 1 {
		t.Errorf("single-writer blocks = %d, want 1", s.SingleWriterBlocks)
	}
	if s.MigratoryBlocks != 1 {
		t.Errorf("migratory blocks = %d, want 1", s.MigratoryBlocks)
	}
	if s.PingPongBlocks != 1 {
		t.Errorf("ping-pong blocks = %d, want 1", s.PingPongBlocks)
	}
	if s.MigratoryPct() != 50 {
		t.Errorf("migratory pct = %v, want 50", s.MigratoryPct())
	}
	// Mean run: block1 has 16 writes in 2 runs; block2 has 8 writes in
	// 8 runs -> (16+8)/(2+8) = 2.4.
	if s.MeanRunLength < 2.39 || s.MeanRunLength > 2.41 {
		t.Errorf("mean run length = %v, want 2.4", s.MeanRunLength)
	}
}

func TestWriteRunsThroughSimulation(t *testing.T) {
	// Thread 0 writes block X ten times early; thread 1 writes it ten
	// times later: simulation order preserves the two long runs.
	x := shBlock(0)
	var t0, t1 []trace.Event
	for i := 0; i < 10; i++ {
		t0 = append(t0, trace.Event{Gap: 1, Kind: trace.Write, Addr: x})
	}
	for i := 0; i < 10; i++ {
		t1 = append(t1, trace.Event{Gap: 200, Kind: trace.Write, Addr: x})
	}
	tr := mkTrace(t0, t1)
	cfg := DefaultConfig(2)
	cfg.TrackWriteRuns = true
	res, err := Run(tr, mkPlacement([]int{0}, []int{1}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteRuns == nil {
		t.Fatal("write runs not collected")
	}
	if res.WriteRuns.MigratoryBlocks != 1 {
		t.Errorf("stats = %+v, want one migratory block", res.WriteRuns)
	}

	// Disabled by default.
	res, err = Run(tr, mkPlacement([]int{0}, []int{1}), DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteRuns != nil {
		t.Error("write runs collected without the flag")
	}
}

func TestWriteRunsIgnorePrivateWrites(t *testing.T) {
	tr := mkTrace([]trace.Event{
		{Kind: trace.Write, Addr: 64},    // private
		{Kind: trace.Write, Addr: sh(0)}, // shared
	})
	cfg := DefaultConfig(1)
	cfg.TrackWriteRuns = true
	res, err := Run(tr, mkPlacement([]int{0}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteRuns.WrittenBlocks != 1 {
		t.Errorf("written blocks = %d, want 1 (shared only)", res.WriteRuns.WrittenBlocks)
	}
}
