package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// sampleCheckpoint builds a checkpoint with non-trivial values in every
// field, including a negative Assign entry (an unplaced thread) to
// exercise the signed round-trip through uint64.
func sampleCheckpoint() *OnlineCheckpoint {
	return &OnlineCheckpoint{
		Epoch:  7,
		Cycle:  123456789,
		Assign: []int{2, 0, -1, 1},
		Pair: [][]uint64{
			{0, 10, 0, 3},
			{10, 0, 99, 0},
			{0, 99, 0, 1},
			{3, 0, 1, 0},
		},
		EpochPair: [][]uint64{
			{0, 4, 0, 0},
			{4, 0, 7, 0},
			{0, 7, 0, 1},
			{0, 0, 1, 0},
		},
	}
}

// TestCheckpointRoundTrip: decode(encode(ck)) reproduces ck exactly and
// re-encoding the decoded value is byte-identical — the encoding is a
// deterministic bijection over its domain.
func TestCheckpointRoundTrip(t *testing.T) {
	cases := map[string]*OnlineCheckpoint{
		"sample": sampleCheckpoint(),
		"empty":  {Epoch: 0, Cycle: 0, Assign: []int{}, Pair: [][]uint64{}, EpochPair: [][]uint64{}},
		"single": {Epoch: 1, Cycle: 42, Assign: []int{0}, Pair: [][]uint64{{0}}, EpochPair: [][]uint64{{0}}},
	}
	for name, ck := range cases {
		enc := EncodeOnlineCheckpoint(ck)
		got, err := DecodeOnlineCheckpoint(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(ck, got) {
			t.Fatalf("%s: round-trip mismatch:\n in: %+v\nout: %+v", name, ck, got)
		}
		again := EncodeOnlineCheckpoint(got)
		if !bytes.Equal(enc, again) {
			t.Fatalf("%s: re-encode is not byte-identical", name)
		}
	}
}

// TestCheckpointLiveRoundTrip runs the online engine and round-trips
// every checkpoint the policy observes, proving the mid-run hand-off
// unit survives serialization without loss.
func TestCheckpointLiveRoundTrip(t *testing.T) {
	tr, pl, cfg := onlineTestWorkload(t)
	seen := 0
	probe := func(ck *OnlineCheckpoint) {
		seen++
		enc := EncodeOnlineCheckpoint(ck)
		got, err := DecodeOnlineCheckpoint(enc)
		if err != nil {
			t.Fatalf("epoch %d: decode: %v", ck.Epoch, err)
		}
		if !reflect.DeepEqual(ck, got) {
			t.Fatalf("epoch %d: live checkpoint round-trip mismatch", ck.Epoch)
		}
		if !bytes.Equal(enc, EncodeOnlineCheckpoint(got)) {
			t.Fatalf("epoch %d: re-encode differs", ck.Epoch)
		}
	}
	opts := OnlineOptions{Interval: 500, Penalty: 8, Policy: checkpointSpyPolicy{probe}}
	if _, err := RunOnlineGuarded(tr, pl, cfg, FastEngine, opts, nil, Guard{}); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("policy saw no checkpoints")
	}
}

// checkpointSpyPolicy inspects every checkpoint and never migrates.
type checkpointSpyPolicy struct{ probe func(*OnlineCheckpoint) }

func (checkpointSpyPolicy) Name() string { return "SPY" }
func (p checkpointSpyPolicy) Decide(ck *OnlineCheckpoint, _ OnlineEnv) []int {
	p.probe(ck)
	return nil
}

// TestCheckpointDecodeErrors: malformed payloads are rejected, never
// misparsed.
func TestCheckpointDecodeErrors(t *testing.T) {
	good := EncodeOnlineCheckpoint(sampleCheckpoint())

	badMagic := append([]byte("MTCX"), good[4:]...)
	oversized := append([]byte(nil), good...)
	// Rewrite the thread count (offset 4+8+8) past the limit.
	copy(oversized[20:28], []byte{0, 0, 0, 0, 0, 1, 0, 1})

	cases := map[string][]byte{
		"empty":       nil,
		"short":       good[:3],
		"bad magic":   badMagic,
		"no header":   good[:10],
		"truncated":   good[:len(good)-8],
		"trailing":    append(append([]byte(nil), good...), 0),
		"oversized":   oversized,
		"header only": good[:28],
	}
	for name, b := range cases {
		if _, err := DecodeOnlineCheckpoint(b); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
}
