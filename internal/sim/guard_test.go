package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// guardTrace builds a multi-thread shared-access workload big enough for
// the watchdog to have something to interrupt.
func guardTrace(threads, refs int) *trace.Trace {
	rng := rand.New(rand.NewSource(42))
	tr := trace.New("guard", threads)
	for i := 0; i < threads; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < refs; j++ {
			r.Compute(rng.Intn(4))
			addr := sh(rng.Intn(64))
			if rng.Intn(3) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}
	return tr
}

func TestGuardZeroValueIsPlainRun(t *testing.T) {
	tr := guardTrace(4, 200)
	pl := mkPlacement([]int{0, 1}, []int{2, 3})
	cfg := DefaultConfig(2)
	for _, eng := range []Engine{FastEngine, ReferenceEngine} {
		plain, err := RunEngine(tr, pl, cfg, eng)
		if err != nil {
			t.Fatal(err)
		}
		guarded, err := RunGuarded(tr, pl, cfg, eng, nil, Guard{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, guarded) {
			t.Errorf("%s: zero-guard result differs from plain run", eng)
		}
	}
}

func TestGuardLooseBudgetDoesNotFire(t *testing.T) {
	tr := guardTrace(4, 100)
	pl := mkPlacement([]int{0, 1}, []int{2, 3})
	cfg := DefaultConfig(2)
	for _, eng := range []Engine{FastEngine, ReferenceEngine} {
		plain, err := RunEngine(tr, pl, cfg, eng)
		if err != nil {
			t.Fatal(err)
		}
		// A finite run processes a bounded number of engine events; any
		// budget above that must not alter the result.
		guarded, err := RunGuarded(tr, pl, cfg, eng, nil, Guard{MaxSteps: 1 << 30})
		if err != nil {
			t.Fatalf("%s: loose budget fired: %v", eng, err)
		}
		if !reflect.DeepEqual(plain, guarded) {
			t.Errorf("%s: guarded result differs from plain run", eng)
		}
	}
}

func TestGuardStepBudgetAborts(t *testing.T) {
	tr := guardTrace(4, 500)
	pl := mkPlacement([]int{0, 1}, []int{2, 3})
	cfg := DefaultConfig(2)
	for _, eng := range []Engine{FastEngine, ReferenceEngine} {
		probe := &obs.Counter{}
		res, err := RunGuarded(tr, pl, cfg, eng, probe, Guard{MaxSteps: 100})
		if err == nil {
			t.Fatalf("%s: budget of 100 steps did not abort (result %v)", eng, res)
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: got %v, want *BudgetError", eng, err)
		}
		if be.Canceled {
			t.Errorf("%s: Canceled set on a step-budget abort", eng)
		}
		if be.Steps != 101 {
			t.Errorf("%s: aborted after %d steps, want 101", eng, be.Steps)
		}
		if be.Engine != eng.String() || be.App != "guard" {
			t.Errorf("%s: diagnostic names %s/%s", eng, be.Engine, be.App)
		}
		if be.Error() == "" {
			t.Errorf("%s: empty diagnostic", eng)
		}
		if probe.Faults[obs.FaultWatchdog] != 1 {
			t.Errorf("%s: watchdog fault events = %d, want 1", eng, probe.Faults[obs.FaultWatchdog])
		}
	}
}

func TestGuardCancelAborts(t *testing.T) {
	tr := guardTrace(6, 3000)
	pl := mkPlacement([]int{0, 1, 2}, []int{3, 4, 5})
	cfg := DefaultConfig(2)
	for _, eng := range []Engine{FastEngine, ReferenceEngine} {
		var cancel atomic.Bool
		cancel.Store(true) // pre-canceled: must abort at the first poll
		_, err := RunGuarded(tr, pl, cfg, eng, nil, Guard{Cancel: &cancel})
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("%s: got %v, want *BudgetError", eng, err)
		}
		if !be.Canceled {
			t.Errorf("%s: Canceled not set on a cancellation abort", eng)
		}
		// The flag is polled every cancelPollMask+1 steps.
		if be.Steps != cancelPollMask+1 {
			t.Errorf("%s: aborted after %d steps, want %d", eng, be.Steps, cancelPollMask+1)
		}
	}
}

func TestGuardDynamic(t *testing.T) {
	tr := guardTrace(8, 400)
	cfg := DefaultConfig(2)

	plain, err := RunDynamic(tr, cfg, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := RunDynamicGuarded(tr, cfg, FIFO, nil, Guard{MaxSteps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, guarded) {
		t.Error("guarded dynamic result differs from plain run")
	}

	_, err = RunDynamicGuarded(tr, cfg, FIFO, nil, Guard{MaxSteps: 50})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("dynamic budget abort: got %v, want *BudgetError", err)
	}
}

func TestSetFastEngineFault(t *testing.T) {
	tr := guardTrace(4, 100)
	pl := mkPlacement([]int{0, 1}, []int{2, 3})
	cfg := DefaultConfig(2)

	honest, err := RunEngine(tr, pl, cfg, FastEngine)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetFastEngineFault(func(r *Result) { r.ExecTime += 1000 })
	defer SetFastEngineFault(prev)

	broken, err := RunEngine(tr, pl, cfg, FastEngine)
	if err != nil {
		t.Fatal(err)
	}
	if broken.ExecTime != honest.ExecTime+1000 {
		t.Errorf("fault hook not applied: %d vs %d", broken.ExecTime, honest.ExecTime)
	}
	// The reference engine must be untouched by the hook.
	ref, err := RunEngine(tr, pl, cfg, ReferenceEngine)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ExecTime != honest.ExecTime {
		t.Errorf("reference engine affected by fast-engine fault hook")
	}

	if SetFastEngineFault(nil) == nil {
		t.Error("SetFastEngineFault(nil) did not return the installed hook")
	}
	clean, err := RunEngine(tr, pl, cfg, FastEngine)
	if err != nil {
		t.Fatal(err)
	}
	if clean.ExecTime != honest.ExecTime {
		t.Error("clearing the fault hook did not restore honest results")
	}
}
