package sim

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestSetAssociativityEliminatesPingPong(t *testing.T) {
	// Blocks 0 and 2 collide in a 64-byte direct-mapped cache (2 sets).
	// A thread alternating between them thrashes; a 2-way cache holds
	// both after the compulsory misses.
	a := trace.SharedBase
	b := trace.SharedBase + 2*DefaultLineSize
	var evs []trace.Event
	for i := 0; i < 20; i++ {
		evs = append(evs, trace.Event{Kind: trace.Read, Addr: a}, trace.Event{Kind: trace.Read, Addr: b})
	}
	tr := mkTrace(evs)

	direct := DefaultConfig(1)
	direct.CacheSize = 64
	res, err := Run(tr, mkPlacement([]int{0}), direct)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Procs[0].Misses[ConflictIntra]; got < 30 {
		t.Errorf("direct-mapped: %d intra conflicts, want thrashing (>= 30)", got)
	}

	assoc := direct
	assoc.Associativity = 2
	res, err = RunChecked(tr, mkPlacement([]int{0}), assoc, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Procs[0]
	if p.TotalMisses() != 2 {
		t.Errorf("2-way: misses = %d (%+v), want 2 compulsory only", p.TotalMisses(), p.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.CacheSize = 64
	cfg.Associativity = 2 // one set, two ways
	c := newCache(cfg)
	c.fill(10, shared, 0)
	c.fill(20, shared, 0)
	// Touch 10 so 20 becomes LRU.
	if c.lookup(10) != shared {
		t.Fatal("block 10 missing")
	}
	victim, _, evicted := c.fill(30, shared, 0)
	if !evicted || victim != 20 {
		t.Errorf("evicted %v/%d, want block 20 (LRU)", evicted, victim)
	}
	if c.lookup(10) != shared || c.lookup(30) != shared || c.lookup(20) != invalid {
		t.Error("post-eviction residency wrong")
	}
}

func TestAssociativityConfigValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Associativity = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative associativity accepted")
	}
	cfg = DefaultConfig(1)
	cfg.CacheSize = 96 // not a multiple of 32*4
	cfg.Associativity = 4
	if err := cfg.Validate(); err == nil {
		t.Error("cache size not multiple of set size accepted")
	}
	cfg = DefaultConfig(1)
	cfg.Associativity = 4
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid 4-way config rejected: %v", err)
	}
	cfg.MaxContexts = -2
	if err := cfg.Validate(); err == nil {
		t.Error("negative context cap accepted")
	}
}

func TestAssociativeProtocolInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr := trace.New("rnd", 6)
	for i := 0; i < 6; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 2000; j++ {
			r.Compute(rng.Intn(4))
			addr := sh(rng.Intn(1500))
			if rng.Intn(3) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}
	cfg := DefaultConfig(3)
	cfg.CacheSize = 4 << 10
	cfg.Associativity = 4
	if _, err := RunChecked(tr, mkPlacement([]int{0, 1}, []int{2, 3}, []int{4, 5}), cfg, 500); err != nil {
		t.Fatal(err)
	}
}

func TestMaxContextsSerializes(t *testing.T) {
	// Four threads on one processor with a single hardware context must
	// run strictly one after another.
	mk := func(base int) []trace.Event {
		var evs []trace.Event
		for i := 0; i < 10; i++ {
			evs = append(evs, trace.Event{Gap: 5, Kind: trace.Read, Addr: shBlock(base + i)})
		}
		return evs
	}
	tr := mkTrace(mk(0), mk(100), mk(200), mk(300))
	pl := mkPlacement([]int{0, 1, 2, 3})

	one := DefaultConfig(1)
	one.MaxContexts = 1
	serial, err := RunChecked(tr, pl, one, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Threads finish in placement order.
	for i := 1; i < 4; i++ {
		if serial.ThreadFinish[i] <= serial.ThreadFinish[i-1] {
			t.Errorf("thread %d finished at %d, before thread %d at %d",
				i, serial.ThreadFinish[i], i-1, serial.ThreadFinish[i-1])
		}
	}
	// The first thread must fully complete before the second starts:
	// with 10 all-miss refs the first finishes at ~10*55; the second
	// can only finish after roughly double that.
	if serial.ThreadFinish[1] < serial.ThreadFinish[0]+400 {
		t.Errorf("thread 1 overlapped thread 0: finishes %d vs %d",
			serial.ThreadFinish[1], serial.ThreadFinish[0])
	}

	multi := DefaultConfig(1)
	parallel, err := Run(tr, pl, multi)
	if err != nil {
		t.Fatal(err)
	}
	if parallel.ExecTime >= serial.ExecTime {
		t.Errorf("unbounded contexts (%d) not faster than single context (%d)",
			parallel.ExecTime, serial.ExecTime)
	}
	// Work totals are identical either way.
	if parallel.Totals().Refs != serial.Totals().Refs {
		t.Error("reference counts differ between context configurations")
	}
}

func TestMaxContextsLargerThanThreadsIsNoop(t *testing.T) {
	tr := mkTrace(
		[]trace.Event{{Kind: trace.Read, Addr: sh(0)}},
		[]trace.Event{{Gap: 9, Kind: trace.Read, Addr: sh(64)}},
	)
	pl := mkPlacement([]int{0, 1})
	capped := DefaultConfig(1)
	capped.MaxContexts = 8
	a, err := Run(tr, pl, capped)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, pl, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime {
		t.Errorf("cap larger than thread count changed exec time: %d vs %d", a.ExecTime, b.ExecTime)
	}
}
