package sim

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestMissClassMirrorsMissKind locks the obs.MissClass values to
// sim.MissKind: the engines convert with a bare obs.MissClass(kind), so
// neither enum may reorder without the other.
func TestMissClassMirrorsMissKind(t *testing.T) {
	pairs := []struct {
		kind  MissKind
		class obs.MissClass
	}{
		{Compulsory, obs.MissCompulsory},
		{ConflictIntra, obs.MissConflictIntra},
		{ConflictInter, obs.MissConflictInter},
		{InvalidationMiss, obs.MissInvalidation},
	}
	for _, p := range pairs {
		if int(p.kind) != int(p.class) {
			t.Errorf("sim.%v = %d but obs.%v = %d", p.kind, p.kind, p.class, p.class)
		}
	}
	if int(numMissKinds) != int(obs.NumMissClasses) {
		t.Errorf("numMissKinds = %d but obs.NumMissClasses = %d", numMissKinds, obs.NumMissClasses)
	}
}

// probeTrace builds a workload with enough sharing to exercise every
// probe event: misses of several classes, invalidations, dirty fetches,
// context switches and multi-context scheduling.
func probeTrace() *trace.Trace {
	nThreads := 4
	tr := trace.New("probe", nThreads)
	for i := 0; i < nThreads; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 200; j++ {
			// Private work, then a strided walk over a small shared region
			// with writes: every processor keeps invalidating the others.
			r.Compute(j % 7)
			r.Ref(trace.Read, sh(i*64+j%32))
			if j%3 == 0 {
				r.Ref(trace.Write, shBlock(j%10))
			} else {
				r.Ref(trace.Read, shBlock((j+i)%10))
			}
		}
	}
	return tr
}

// TestProbeDoesNotPerturbResults is the unit-level identity check: for
// both engines, Run with a probe attached must produce a Result deeply
// equal to Run without one (the full-workload version lives in
// internal/core's differential suite).
func TestProbeDoesNotPerturbResults(t *testing.T) {
	tr := probeTrace()
	pl := mkPlacement([]int{0, 1}, []int{2, 3})
	cfg := DefaultConfig(2)

	for _, eng := range []Engine{ReferenceEngine, FastEngine} {
		bare, err := RunEngine(tr, pl, cfg, eng)
		if err != nil {
			t.Fatal(err)
		}
		var c obs.Counter
		probed, err := RunObserved(tr, pl, cfg, eng, &c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, probed) {
			t.Errorf("%v: probe perturbed the Result:\n  bare   %+v\n  probed %+v",
				eng, bare.Totals(), probed.Totals())
		}
		if c.Runs != 1 {
			t.Errorf("%v: RunBegin fired %d times", eng, c.Runs)
		}
	}
}

// TestCounterMatchesResult cross-checks the probe event stream against
// the engine's own accounting: every hit, miss, invalidation, update and
// switch the Result reports must have been observed exactly once.
func TestCounterMatchesResult(t *testing.T) {
	tr := probeTrace()
	pl := mkPlacement([]int{0, 1}, []int{2, 3})

	for _, proto := range []Protocol{Invalidate, Update} {
		cfg := DefaultConfig(2)
		cfg.Protocol = proto
		for _, eng := range []Engine{ReferenceEngine, FastEngine} {
			var c obs.Counter
			res, err := RunObserved(tr, pl, cfg, eng, &c)
			if err != nil {
				t.Fatal(err)
			}
			tot := res.Totals()

			if c.Hits != tot.Hits {
				t.Errorf("%v/%v: probe hits %d != result hits %d", proto, eng, c.Hits, tot.Hits)
			}
			for k := MissKind(0); k < numMissKinds; k++ {
				if c.Misses[k] != tot.Misses[k] {
					t.Errorf("%v/%v: probe %v misses %d != result %d",
						proto, eng, k, c.Misses[k], tot.Misses[k])
				}
			}
			if c.Invalidations != tot.InvalidationsReceived {
				t.Errorf("%v/%v: probe invalidations %d != result received %d",
					proto, eng, c.Invalidations, tot.InvalidationsReceived)
			}
			if c.Updates != tot.UpdatesReceived {
				t.Errorf("%v/%v: probe updates %d != result received %d",
					proto, eng, c.Updates, tot.UpdatesReceived)
			}
			var pair uint64
			for _, row := range res.PairTraffic {
				for _, v := range row {
					pair += v
				}
			}
			if c.Pair != pair {
				t.Errorf("%v/%v: probe pair traffic %d != result %d", proto, eng, c.Pair, pair)
			}
			if c.Finishes != uint64(tr.NumThreads()) {
				t.Errorf("%v/%v: probe finishes %d != %d threads",
					proto, eng, c.Finishes, tr.NumThreads())
			}
			if c.ExecTime != res.ExecTime {
				t.Errorf("%v/%v: probe exec %d != result %d", proto, eng, c.ExecTime, res.ExecTime)
			}
		}
	}
}

// TestProbeThreadLifecycle checks the documented lifecycle contract on a
// scripted single-processor run: every ThreadRun is eventually closed by
// a Pause or Finish, pauses resume in the future, and per-thread event
// times are monotone.
func TestProbeThreadLifecycle(t *testing.T) {
	tr := probeTrace()
	pl := mkPlacement([]int{0, 1, 2, 3})
	cfg := DefaultConfig(1)

	for _, eng := range []Engine{ReferenceEngine, FastEngine} {
		lc := &lifecycleProbe{t: t, eng: eng, running: map[int]bool{}, last: map[int]uint64{}}
		if _, err := RunObserved(tr, pl, cfg, eng, lc); err != nil {
			t.Fatal(err)
		}
		for thread, on := range lc.running {
			if on {
				t.Errorf("%v: thread %d still running at RunEnd", eng, thread)
			}
		}
		if lc.finishes != tr.NumThreads() {
			t.Errorf("%v: %d finishes for %d threads", eng, lc.finishes, tr.NumThreads())
		}
	}
}

// lifecycleProbe asserts run/pause/finish pairing as events arrive.
type lifecycleProbe struct {
	obs.Counter
	t        *testing.T
	eng      Engine
	running  map[int]bool
	last     map[int]uint64
	finishes int
}

func (l *lifecycleProbe) mono(t uint64, thread int) {
	if t < l.last[thread] {
		l.t.Errorf("%v: thread %d time went backwards: %d after %d", l.eng, thread, t, l.last[thread])
	}
	l.last[thread] = t
}

func (l *lifecycleProbe) ThreadRun(t uint64, proc, thread int) {
	if l.running[thread] {
		l.t.Errorf("%v: thread %d scheduled while already running", l.eng, thread)
	}
	l.mono(t, thread)
	l.running[thread] = true
	l.Counter.ThreadRun(t, proc, thread)
}

func (l *lifecycleProbe) ThreadPause(t uint64, proc, thread int, resumeAt uint64) {
	if !l.running[thread] {
		l.t.Errorf("%v: thread %d paused while not running", l.eng, thread)
	}
	if resumeAt < t {
		l.t.Errorf("%v: thread %d resumes at %d before pause at %d", l.eng, thread, resumeAt, t)
	}
	l.mono(t, thread)
	l.running[thread] = false
	l.Counter.ThreadPause(t, proc, thread, resumeAt)
}

func (l *lifecycleProbe) ThreadFinish(t uint64, proc, thread int) {
	l.mono(t, thread)
	l.running[thread] = false
	l.finishes++
	l.Counter.ThreadFinish(t, proc, thread)
}

// TestRunDynamicObserved mirrors the identity check for the dynamic
// scheduler path.
func TestRunDynamicObserved(t *testing.T) {
	tr := probeTrace()
	cfg := DefaultConfig(2)

	for _, policy := range []SchedulePolicy{FIFO, LongestFirst} {
		bare, err := RunDynamic(tr, cfg, policy)
		if err != nil {
			t.Fatal(err)
		}
		var c obs.Counter
		probed, err := RunDynamicObserved(tr, cfg, policy, &c)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, probed) {
			t.Errorf("%v: probe perturbed the dynamic Result", policy)
		}
		if c.Hits != probed.Totals().Hits {
			t.Errorf("%v: probe hits %d != result %d", policy, c.Hits, probed.Totals().Hits)
		}
	}
}
