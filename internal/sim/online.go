package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Online adaptive placement: an extension beyond the paper's dynamic
// COHERENCE-TRAFFIC algorithm, which only re-places threads *between*
// runs. Here the engine checkpoints per-thread-pair coherence statistics
// at a fixed detection interval, hands them to a pluggable OnlinePolicy,
// and applies the returned placement mid-run — migrated threads pay a
// modeled migration penalty (pipeline drain plus the working-set refill
// that emerges naturally as compulsory misses on the destination cache).
//
// With the interval disabled the online path delegates to the exact
// static run: RunOnlineGuarded with zero OnlineOptions is RunGuarded,
// cycle for cycle, on both engines (asserted by the differential suite).

// OnlineOptions configure mid-run adaptive re-placement.
type OnlineOptions struct {
	// Interval is the detection interval in cycles: the engine stops at
	// every multiple, snapshots the per-thread-pair coherence stats and
	// asks Policy for a placement. 0 disables online mode entirely.
	Interval uint64
	// Penalty is the migration cost in cycles charged to every migrated
	// thread (pipeline drain + working-set refill allowance). The refill
	// itself is also modeled organically: a migrated thread's blocks are
	// compulsory misses on its new processor's cache.
	Penalty uint64
	// Policy decides the placement at each boundary. nil disables online
	// mode.
	Policy OnlinePolicy
}

// enabled reports whether the options actually turn online mode on.
func (o OnlineOptions) enabled() bool { return o.Interval > 0 && o.Policy != nil }

// OnlineEnv is the static context an OnlinePolicy decides in.
type OnlineEnv struct {
	// Procs is the processor count.
	Procs int
	// MemLatency is the machine's memory latency in cycles — the unit
	// cost a policy should charge per avoided coherence event.
	MemLatency uint64
	// Penalty is OnlineOptions.Penalty, so a policy can weigh predicted
	// savings against the migration bill it is about to run up.
	Penalty uint64
	// Lengths[t] is thread t's dynamic length in instructions.
	Lengths []uint64
}

// OnlinePolicy decides thread placement at detection boundaries.
// Implementations must be deterministic: the differential harness runs
// the same policy on both engines and requires identical decisions.
type OnlinePolicy interface {
	// Name identifies the policy in Result.Online and virtual algorithm
	// names.
	Name() string
	// Decide returns the desired thread→processor assignment, or nil to
	// keep the current placement. The engine migrates every thread whose
	// assignment differs and is migratable (not running, not done);
	// others retry at the next boundary.
	Decide(ck *OnlineCheckpoint, env OnlineEnv) []int
}

// OnlineCheckpoint is the statistics snapshot handed to a policy at one
// detection boundary. It is also the engine's mid-run checkpoint unit:
// EncodeOnlineCheckpoint/DecodeOnlineCheckpoint (dynamic.go) round-trip
// it byte-identically for resume.
type OnlineCheckpoint struct {
	// Epoch counts boundaries, starting at 1.
	Epoch int
	// Cycle is the boundary's simulated time.
	Cycle uint64
	// Assign[t] is thread t's current processor.
	Assign []int
	// Pair[a][b] is the cumulative thread-pair coherence traffic caused
	// by thread a at thread b's expense since cycle 0.
	Pair [][]uint64
	// EpochPair is Pair restricted to the last detection interval.
	EpochPair [][]uint64
}

// OnlineMove records one applied migration.
type OnlineMove struct {
	// Epoch and Cycle locate the decision boundary.
	Epoch int
	Cycle uint64
	// Thread moved from processor From to processor To.
	Thread int
	From   int
	To     int
}

// OnlineStats summarizes an online run; Result.Online carries it (nil
// for static runs, keeping static Result JSON byte-identical).
type OnlineStats struct {
	// Policy is the deciding policy's name.
	Policy string
	// Interval and Penalty echo the options.
	Interval uint64
	Penalty  uint64
	// Epochs counts detection boundaries processed.
	Epochs int
	// Migrations counts applied thread moves; PenaltyCycles is the total
	// migration cost charged.
	Migrations    int
	PenaltyCycles uint64
	// Moves lists every applied migration in decision order.
	Moves []OnlineMove
}

// blockOn keys the online attribution maps: a block as seen by one
// processor's cache.
type blockOn struct {
	block uint64
	proc  int32
}

// onlineState is the engines' shared online-mode bookkeeping. The cache
// stores only {tag, state} per line, so thread-level attribution of
// coherence events needs two side maps, both driven by the identical
// event sequence on both engines (hence deterministic and
// engine-identical):
//
//   - lastTouch[{block, proc}] is the thread that most recently accessed
//     the block on that processor — the presumed owner of the copy a
//     remote coherence action hits.
//   - invBy[{block, proc}] is the thread whose write invalidated that
//     processor's copy, consumed when a thread there re-misses on it
//     (mirroring cache.invalidator's processor-level ledger).
type onlineState struct {
	opts  OnlineOptions
	env   OnlineEnv
	next  uint64
	epoch int

	pair      [][]uint64 // cumulative thread-pair traffic
	epochPair [][]uint64 // current epoch's slice of pair
	lastTouch map[blockOn]int32
	invBy     map[blockOn]int32

	stats OnlineStats
}

func newOnlineState(opts OnlineOptions, tr *trace.Trace, cfg Config) *onlineState {
	n := tr.NumThreads()
	o := &onlineState{
		opts:      opts,
		next:      opts.Interval,
		pair:      make([][]uint64, n),
		epochPair: make([][]uint64, n),
		lastTouch: make(map[blockOn]int32),
		invBy:     make(map[blockOn]int32),
		stats: OnlineStats{
			Policy:   opts.Policy.Name(),
			Interval: opts.Interval,
			Penalty:  opts.Penalty,
		},
	}
	for i := range o.pair {
		o.pair[i] = make([]uint64, n)
		o.epochPair[i] = make([]uint64, n)
	}
	lengths := make([]uint64, n)
	for i := range lengths {
		lengths[i] = tr.Threads[i].Instructions()
	}
	o.env = OnlineEnv{
		Procs:      cfg.Processors,
		MemLatency: cfg.MemLatency,
		Penalty:    opts.Penalty,
		Lengths:    lengths,
	}
	return o
}

// touch records thread as the latest user of block on proc. Called at
// every shared-segment access (hits included): the thread that last
// touched a copy is the one a later remote coherence action victimizes.
func (o *onlineState) touch(block uint64, proc, thread int) {
	o.lastTouch[blockOn{block, int32(proc)}] = int32(thread)
}

// credit adds one unit of thread-pair traffic caused by thread from at
// thread to's expense. Unattributable victims (to < 0) are dropped — the
// count stays deterministic either way.
func (o *onlineState) credit(from, to int32) {
	if from < 0 || to < 0 || from == to {
		return
	}
	o.pair[from][to]++
	o.epochPair[from][to]++
}

// victimThread returns the last thread to use block on proc, or -1.
func (o *onlineState) victimThread(block uint64, proc int) int32 {
	if th, ok := o.lastTouch[blockOn{block, int32(proc)}]; ok {
		return th
	}
	return -1
}

// invalidated attributes thread actor invalidating proc q's copy of
// block, and remembers actor so q's eventual invalidation re-miss is
// credited too.
func (o *onlineState) invalidated(block uint64, actor int32, q int) {
	o.credit(actor, o.victimThread(block, q))
	o.invBy[blockOn{block, int32(q)}] = actor
}

// invalidationMiss attributes an invalidation miss by thread cur on proc
// back to the thread whose write caused it.
func (o *onlineState) invalidationMiss(block uint64, proc int, cur int32) {
	if by, ok := o.invBy[blockOn{block, int32(proc)}]; ok {
		o.credit(by, cur)
	}
}

// fetched attributes a non-invalidating remote service of block held on
// proc q (dirty-data fetch downgrade, write-update push) to thread actor.
func (o *onlineState) fetched(block uint64, actor int32, q int) {
	o.credit(actor, o.victimThread(block, q))
}

// copyMatrix deep-copies a square traffic matrix.
func copyMatrix(m [][]uint64) [][]uint64 {
	out := make([][]uint64, len(m))
	for i := range m {
		out[i] = append([]uint64(nil), m[i]...)
	}
	return out
}

// decide advances one epoch at boundary cycle b: snapshot the
// checkpoint, consult the policy and reset the epoch matrix. It returns
// the desired assignment, or nil to keep the current placement. assign
// is the caller-built current thread→processor map.
func (o *onlineState) decide(b uint64, assign []int) []int {
	o.epoch++
	o.stats.Epochs++
	ck := &OnlineCheckpoint{
		Epoch:     o.epoch,
		Cycle:     b,
		Assign:    append([]int(nil), assign...),
		Pair:      copyMatrix(o.pair),
		EpochPair: copyMatrix(o.epochPair),
	}
	want := o.opts.Policy.Decide(ck, o.env)
	for i := range o.epochPair {
		for j := range o.epochPair[i] {
			o.epochPair[i][j] = 0
		}
	}
	if len(want) != len(assign) {
		return nil
	}
	return want
}

// record books one applied migration.
func (o *onlineState) record(b uint64, thread, from, to int) {
	o.stats.Migrations++
	o.stats.PenaltyCycles += o.opts.Penalty
	o.stats.Moves = append(o.stats.Moves, OnlineMove{
		Epoch: o.epoch, Cycle: b, Thread: thread, From: from, To: to,
	})
}

// migratable reports whether a context's state allows a boundary move:
// running contexts have a live issue event in flight and done contexts
// have nowhere to go; both retry (or stay) at the next boundary. The
// boundary additionally refuses contexts with the moved flag set (see
// context.moved) so every migration is separated by real execution.
func migratable(st ctxState) bool { return st == ctxReady || st == ctxBlocked }

// onlineBoundary processes one detection boundary at cycle o.next on the
// reference engine: consult the policy, migrate what it asks, repair
// scheduler bookkeeping on every affected processor.
func (m *machine) onlineBoundary() {
	o := m.online
	b := o.next
	o.next += o.opts.Interval

	assign := make([]int, len(m.threadFinish))
	for i := range assign {
		assign[i] = -1
	}
	for _, p := range m.procs {
		for _, c := range p.ctxs {
			assign[c.thread] = p.id
		}
	}
	want := o.decide(b, assign)
	if want == nil {
		return
	}

	// Snapshot which processors are idle-waiting (their one pending event
	// is a wake at p.wake >= b) before any context moves.
	type preState struct {
		idleWaiting bool
		wake        uint64
	}
	pre := make([]preState, len(m.procs))
	for i, p := range m.procs {
		pre[i] = preState{p.running < 0 && p.done < len(p.ctxs), p.wake}
	}

	affected := make([]bool, len(m.procs))
	for pid, p := range m.procs {
		kept := p.ctxs[:0]
		for _, c := range p.ctxs {
			q := want[c.thread]
			if q == pid || q < 0 || q >= len(m.procs) || !migratable(c.state) || c.moved {
				kept = append(kept, c)
				continue
			}
			// Migrate: the thread blocks until the boundary plus the
			// migration penalty; its working set refills on the new cache
			// as compulsory misses.
			if c.readyAt < b {
				c.readyAt = b
			}
			c.readyAt += o.opts.Penalty
			c.state = ctxBlocked
			c.moved = true
			m.procs[q].ctxs = append(m.procs[q].ctxs, c)
			affected[pid], affected[q] = true, true
			o.record(b, c.thread, pid, q)
			if m.probe != nil {
				m.probe.Migrate(b, c.thread, pid, q)
			}
		}
		p.ctxs = kept
	}

	for pid, p := range m.procs {
		if !affected[pid] {
			continue
		}
		for i, c := range p.ctxs {
			c.idx = int32(i)
		}
		if p.running >= 0 {
			// The running context's issue event stays valid; only its
			// index may have shifted.
			for i, c := range p.ctxs {
				if c.state == ctxRunning {
					p.running = i
					break
				}
			}
			p.rr = p.running
			continue
		}
		// Idle processor: its pending wake event (if any) is stale now
		// that its context set changed. Un-charge the idle span beyond the
		// boundary and reschedule from b; scheduleNext re-charges whatever
		// idle time is still real.
		if pre[pid].idleWaiting && pre[pid].wake > b {
			p.stats.Idle -= pre[pid].wake - b
		}
		p.rr = len(p.ctxs) - 1
		m.push(b, p)
	}
}

// onlineBoundary is the fast engine's line-for-line mirror of the
// reference boundary above (value-slab contexts instead of pointers).
func (m *fastMachine) onlineBoundary() {
	o := m.online
	b := o.next
	o.next += o.opts.Interval

	assign := make([]int, len(m.threadFinish))
	for i := range assign {
		assign[i] = -1
	}
	for i := range m.procs {
		p := &m.procs[i]
		for k := range p.ctxs {
			assign[p.ctxs[k].thread] = p.id
		}
	}
	want := o.decide(b, assign)
	if want == nil {
		return
	}

	type preState struct {
		idleWaiting bool
		wake        uint64
	}
	pre := make([]preState, len(m.procs))
	for i := range m.procs {
		p := &m.procs[i]
		pre[i] = preState{p.running < 0 && p.done < len(p.ctxs), p.wake}
	}

	affected := make([]bool, len(m.procs))
	for pid := range m.procs {
		p := &m.procs[pid]
		kept := p.ctxs[:0]
		for i := range p.ctxs {
			c := p.ctxs[i]
			q := want[c.thread]
			if q == pid || q < 0 || q >= len(m.procs) || !migratable(c.state) || c.moved {
				kept = append(kept, c)
				continue
			}
			if c.readyAt < b {
				c.readyAt = b
			}
			c.readyAt += o.opts.Penalty
			c.state = ctxBlocked
			c.moved = true
			m.procs[q].ctxs = append(m.procs[q].ctxs, c)
			affected[pid], affected[q] = true, true
			o.record(b, c.thread, pid, q)
			if m.probe != nil {
				m.probe.Migrate(b, c.thread, pid, q)
			}
		}
		p.ctxs = kept
	}

	for pid := range m.procs {
		if !affected[pid] {
			continue
		}
		p := &m.procs[pid]
		for i := range p.ctxs {
			p.ctxs[i].idx = int32(i)
		}
		if p.running >= 0 {
			for i := range p.ctxs {
				if p.ctxs[i].state == ctxRunning {
					p.running = i
					break
				}
			}
			p.rr = p.running
			continue
		}
		if pre[pid].idleWaiting && pre[pid].wake > b {
			p.stats.Idle -= pre[pid].wake - b
		}
		p.rr = len(p.ctxs) - 1
		m.push(b, p)
	}
}

// finish returns the run's OnlineStats for Result.Online.
func (o *onlineState) finish() *OnlineStats {
	s := o.stats
	return &s
}

// RunOnline simulates with online adaptive placement on the fast engine.
// pl is the seed placement the run starts from. Zero opts make it
// exactly Run.
func RunOnline(tr *trace.Trace, pl *placement.Placement, cfg Config, opts OnlineOptions) (*Result, error) {
	return RunOnlineGuarded(tr, pl, cfg, FastEngine, opts, nil, Guard{})
}

// RunOnlineObserved is RunOnline with an engine choice and a probe (see
// RunObserved); migrations reach the probe as Migrate events.
func RunOnlineObserved(tr *trace.Trace, pl *placement.Placement, cfg Config, eng Engine, opts OnlineOptions, probe obs.Probe) (*Result, error) {
	return RunOnlineGuarded(tr, pl, cfg, eng, opts, probe, Guard{})
}

// RunOnlineGuarded is the full online entry point: engine choice, probe
// and watchdog. With opts disabled (zero Interval or nil Policy) it
// delegates to RunGuarded unchanged — the online machinery is not even
// constructed, so the run is cycle-exact against the static path.
func RunOnlineGuarded(tr *trace.Trace, pl *placement.Placement, cfg Config, eng Engine, opts OnlineOptions, probe obs.Probe, guard Guard) (*Result, error) {
	if !opts.enabled() {
		return RunGuarded(tr, pl, cfg, eng, probe, guard)
	}
	if cfg.MaxContexts > 0 {
		return nil, fmt.Errorf("sim: online placement is incompatible with MaxContexts (loaded-context admission would race migrations)")
	}
	switch eng {
	case ReferenceEngine:
		m, err := newMachine(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		m.probe = probe
		m.guard = newGuardState(guard)
		m.online = newOnlineState(opts, tr, m.cfg)
		return m.run(tr, pl, 0)
	case FastEngine:
		m, err := newFastMachine(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		m.probe = probe
		m.guard = newGuardState(guard)
		m.online = newOnlineState(opts, tr, m.cfg)
		return m.run(tr, pl)
	default:
		return nil, fmt.Errorf("sim: unknown engine %d", eng)
	}
}
