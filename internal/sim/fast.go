package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/trace"
)

// The fast engine: a semantically identical port of the reference machine
// in engine.go, restructured for throughput.
//
//   - events live in a concrete 4-ary min-heap (heap4.go) instead of a
//     container/heap with interface boxing;
//   - each processor's hardware contexts are a contiguous []context slab
//     instead of a []*context of separately allocated nodes;
//   - the cache indexes sets by mask and takes a single-way path when
//     direct-mapped (fastcache.go);
//   - the directory stores entries in flat slabs with an arena-backed
//     sharer bitmap, and sharer sets are gathered into a scratch buffer
//     reused across transactions (fastdir.go).
//
// Every scheduling and accounting decision is kept line for line with the
// reference engine; the differential suite in internal/core asserts the
// two produce deeply equal Results over the whole application suite.

// fastProc is one simulated processor (fast engine).
type fastProc struct {
	id       int
	cache    fastCache
	ctxs     []context
	running  int
	rr       int
	seq      uint64
	done     int
	nextLoad int
	// wake is the pending wake time while idle-waiting (running == -1
	// with blocked contexts); online boundaries use it to un-charge idle
	// time when a migration re-activates the processor early.
	wake  uint64
	stats ProcStats
}

// fastMachine is the whole simulated system (fast engine). It does not
// implement dynamic self-scheduling; RunDynamic uses the reference
// machine.
type fastMachine struct {
	cfg          Config
	procs        []fastProc
	dir          *fastDirectory
	h            quadHeap
	pair         [][]uint64
	threadFinish []uint64
	wr           *writeRunTracker
	channels     []uint64
	// scratch is the reusable sharer buffer for invalidation and update
	// fan-out; it grows to the maximum sharer count once and is then
	// reused for every transaction.
	scratch []int32
	// probe, when non-nil, receives observability events at the same
	// call sites as the reference engine. Probes never influence
	// simulation state.
	probe obs.Probe
	// guard, when non-nil, is the run's watchdog (step budget and
	// cancellation, see RunGuarded). Nil for unguarded runs.
	guard *guardState
	// online, when non-nil, is the mid-run adaptive-placement state (see
	// RunOnlineGuarded). Nil for static runs: the hot loop pays one nil
	// check and nothing else.
	online *onlineState
}

func newFastMachine(tr *trace.Trace, pl *placement.Placement, cfg Config) (*fastMachine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(tr.NumThreads(), cfg.Processors); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	m := &fastMachine{
		cfg:          cfg,
		dir:          newFastDirectory(cfg.Processors),
		procs:        make([]fastProc, cfg.Processors),
		pair:         make([][]uint64, cfg.Processors),
		threadFinish: make([]uint64, tr.NumThreads()),
	}
	for i := range m.pair {
		m.pair[i] = make([]uint64, cfg.Processors)
	}
	if cfg.TrackWriteRuns {
		m.wr = newWriteRunTracker()
	}
	if cfg.NetworkChannels > 0 {
		m.channels = make([]uint64, cfg.NetworkChannels)
		if m.cfg.NetworkOccupancy == 0 {
			m.cfg.NetworkOccupancy = DefaultNetworkOccupancy
		}
	}
	for pid, cluster := range pl.Clusters {
		p := &m.procs[pid]
		p.id = pid
		p.running = -1
		p.cache.init(cfg)
		p.ctxs = make([]context, len(cluster))
		for i, tid := range cluster {
			c := &p.ctxs[i]
			c.idx = int32(i)
			c.thread = tid
			c.cur = tr.Threads[tid].Cursor()
			switch {
			case cfg.MaxContexts > 0 && i >= cfg.MaxContexts:
				c.state = ctxUnloaded
			default:
				if e, ok := c.cur.Next(); ok {
					c.pending = e
					c.state = ctxReady
				} else {
					c.state = ctxDone
					p.done++
				}
			}
		}
		p.nextLoad = len(p.ctxs)
		if cfg.MaxContexts > 0 && cfg.MaxContexts < len(p.ctxs) {
			p.nextLoad = cfg.MaxContexts
			// An initially loaded thread may be empty (its context is done
			// from cycle zero); each such context is a free slot a waiting
			// thread must be admitted into, or it would never run.
			for free := p.done; free > 0; free-- {
				m.admitNext(p)
			}
		}
		p.rr = len(p.ctxs) - 1
	}
	return m, nil
}

// admitNext loads the next waiting thread into the hardware context a
// completed thread freed.
//
//mtlint:hotpath
func (m *fastMachine) admitNext(p *fastProc) {
	for p.nextLoad < len(p.ctxs) {
		c := &p.ctxs[p.nextLoad]
		p.nextLoad++
		if c.state != ctxUnloaded {
			continue
		}
		if e, ok := c.cur.Next(); ok {
			c.pending = e
			c.state = ctxReady
			return
		}
		c.state = ctxDone
		p.done++
	}
}

func (m *fastMachine) run(tr *trace.Trace, pl *placement.Placement) (*Result, error) {
	if m.probe != nil {
		m.probe.RunBegin(obs.RunMeta{
			App: tr.App, Algorithm: pl.Algorithm, Engine: FastEngine.String(),
			Processors: len(m.procs), Threads: tr.NumThreads(),
		})
	}
	for i := range m.procs {
		p := &m.procs[i]
		if p.done < len(p.ctxs) {
			m.scheduleNext(p, 0)
		}
	}
	for m.h.len() > 0 {
		if m.online != nil && m.h.a[0].time >= m.online.next {
			// A detection boundary falls before the next event: process it
			// without consuming the event.
			m.onlineBoundary()
			continue
		}
		ev := m.h.pop()
		if m.guard != nil && m.guard.tripped() {
			meta := obs.RunMeta{App: tr.App, Algorithm: pl.Algorithm, Engine: FastEngine.String()}
			return nil, m.guard.budgetError(meta, ev.time, m.h.len(), m.probe)
		}
		p := &m.procs[ev.proc]
		if ev.seq != p.seq {
			continue
		}
		if m.probe != nil {
			m.probe.QueueDepth(ev.time, m.h.len())
		}
		if p.running < 0 {
			m.scheduleNext(p, ev.time)
			continue
		}
		m.access(p, &p.ctxs[p.running], ev.time)
	}

	res := &Result{
		App:          tr.App,
		Algorithm:    pl.Algorithm,
		Config:       m.cfg,
		Procs:        make([]ProcStats, len(m.procs)),
		PairTraffic:  m.pair,
		ThreadFinish: m.threadFinish,
	}
	for i := range m.procs {
		p := &m.procs[i]
		res.Procs[i] = p.stats
		if p.stats.Finish > res.ExecTime {
			res.ExecTime = p.stats.Finish
		}
	}
	if m.wr != nil {
		res.WriteRuns = m.wr.stats()
	}
	if m.online != nil {
		res.Online = m.online.finish()
	}
	if f := fastFault.Load(); f != nil {
		// Test-only corruption hook (SetFastEngineFault): deliberately
		// damage the result so the divergence guard's detection path can
		// be exercised end to end.
		(*f)(res)
	}
	if m.probe != nil {
		m.probe.RunEnd(res.ExecTime)
	}
	return res, nil
}

// push schedules the processor's next action.
//
//mtlint:hotpath
func (m *fastMachine) push(t uint64, p *fastProc) {
	p.seq++
	m.h.push(event{time: t, proc: p.id, seq: p.seq})
}

// scheduleNext picks the next ready context round-robin and schedules its
// issue; with no ready context the processor idles until the earliest
// blocked completion.
//
//mtlint:hotpath
func (m *fastMachine) scheduleNext(p *fastProc, t uint64) {
	n := len(p.ctxs)
	chosen := -1
	for i := 1; i <= n; i++ {
		q := p.rr + i
		if q >= n {
			q -= n
		}
		c := &p.ctxs[q]
		if c.state == ctxReady || (c.state == ctxBlocked && c.readyAt <= t) {
			chosen = q
			break
		}
	}
	if chosen >= 0 {
		p.rr = chosen
		p.running = chosen
		c := &p.ctxs[chosen]
		c.state = ctxRunning
		c.moved = false
		if m.probe != nil {
			m.probe.ThreadRun(t, p.id, c.thread)
		}
		gap := uint64(c.pending.Gap)
		p.stats.Busy += gap
		m.push(t+gap, p)
		return
	}

	p.running = -1
	var wake uint64
	found := false
	for i := range p.ctxs {
		c := &p.ctxs[i]
		if c.state == ctxBlocked && (!found || c.readyAt < wake) {
			wake = c.readyAt
			found = true
		}
	}
	if !found {
		return // all contexts done; finish time already recorded
	}
	if wake > t {
		p.stats.Idle += wake - t
	} else {
		wake = t
	}
	p.wake = wake
	m.push(wake, p)
}

// access issues context c's pending reference at time t, drives the cache
// and coherence protocol, and schedules the processor's next action.
//
//mtlint:hotpath
func (m *fastMachine) access(p *fastProc, c *context, t uint64) {
	e := c.pending
	p.stats.Refs++
	if trace.IsShared(e.Addr) {
		p.stats.SharedRefs++
	}
	block := p.cache.block(e.Addr)
	if m.wr != nil && e.Kind == trace.Write && trace.IsShared(e.Addr) {
		m.wr.observe(block, int32(c.thread))
	}
	if m.online != nil && trace.IsShared(e.Addr) {
		m.online.touch(block, p.id, c.thread)
	}
	st := p.cache.lookup(block)

	switch {
	case e.Kind == trace.Read && st != invalid:
		m.completeHit(p, c, t)
		return

	case e.Kind == trace.Write && st == modified:
		m.completeHit(p, c, t)
		return

	case e.Kind == trace.Write && st == shared:
		ei := m.dir.entry(block)
		if m.cfg.Protocol == Update {
			m.updateOthers(p, ei, block, t)
			m.completeHit(p, c, t)
			return
		}
		m.scratch = m.dir.appendOthers(ei, p.id, m.scratch[:0])
		if len(m.scratch) == 0 {
			// Silent upgrade: sole sharer takes ownership without a
			// network transaction.
			p.cache.setState(block, modified)
			m.dir.setOwner(ei, int32(p.id))
			m.completeHit(p, c, t)
			return
		}
		// Upgrade with remote sharers: a network transaction (stall +
		// switch) but not a miss.
		p.stats.Upgrades++
		m.invalidateOthers(p, ei, block, t)
		m.dir.setOwner(ei, int32(p.id))
		p.cache.setState(block, modified)
		m.completeTransaction(p, c, t)
		return
	}

	// Miss.
	kind := p.cache.classifyMiss(block, c.idx)
	p.stats.Misses[kind]++
	if m.probe != nil {
		m.probe.CacheMiss(t, p.id, c.thread, obs.MissClass(kind))
	}
	if kind == InvalidationMiss {
		if m.online != nil {
			m.online.invalidationMiss(block, p.id, int32(c.thread))
		}
		if by, ok := p.cache.invalidator(block); ok {
			m.pair[by][p.id]++
			if m.probe != nil {
				m.probe.PairTraffic(t, int(by), p.id)
			}
		}
	}

	ei := m.dir.entry(block)
	if e.Kind == trace.Read {
		if own := m.dir.owner(ei); own >= 0 && int(own) != p.id {
			// Fetch dirty data from the owner; owner downgrades M->S.
			owner := &m.procs[own]
			owner.cache.setState(block, shared)
			owner.stats.Writebacks++
			m.pair[p.id][owner.id]++
			if m.online != nil {
				m.online.fetched(block, int32(c.thread), owner.id)
			}
			if m.probe != nil {
				m.probe.PairTraffic(t, p.id, owner.id)
			}
			m.dir.setOwner(ei, -1)
		}
		m.dir.add(ei, p.id)
		m.fill(p, c, block, shared)
	} else if m.cfg.Protocol == Update {
		// Write miss under write-update: fetch the line, keep remote
		// copies valid and push them the new value.
		m.updateOthers(p, ei, block, t)
		m.dir.add(ei, p.id)
		m.fill(p, c, block, shared)
	} else {
		if own := m.dir.owner(ei); own >= 0 && int(own) != p.id {
			owner := &m.procs[own]
			if present, _ := owner.cache.invalidate(block, int32(p.id)); present {
				owner.stats.Writebacks++
				owner.stats.InvalidationsReceived++
				p.stats.InvalidationsSent++
				m.pair[p.id][owner.id]++
				if m.online != nil {
					m.online.invalidated(block, int32(c.thread), owner.id)
				}
				if m.probe != nil {
					m.probe.Invalidation(t, p.id, owner.id)
					m.probe.PairTraffic(t, p.id, owner.id)
				}
			}
			m.dir.remove(ei, owner.id)
			m.dir.setOwner(ei, -1)
		}
		m.invalidateOthers(p, ei, block, t)
		m.dir.add(ei, p.id)
		m.dir.setOwner(ei, int32(p.id))
		m.fill(p, c, block, modified)
	}
	m.completeTransaction(p, c, t)
}

// invalidateOthers invalidates every remote sharer of the entry and
// updates the directory so p is the only sharer. The sharer set is
// gathered into the machine's scratch buffer first (same ascending order
// as the reference directory's callback iteration).
//
//mtlint:hotpath
func (m *fastMachine) invalidateOthers(p *fastProc, ei int32, block uint64, t uint64) {
	m.scratch = m.dir.appendOthers(ei, p.id, m.scratch[:0])
	for _, q := range m.scratch {
		victim := &m.procs[q]
		if present, _ := victim.cache.invalidate(block, int32(p.id)); present {
			victim.stats.InvalidationsReceived++
			p.stats.InvalidationsSent++
			m.pair[p.id][q]++
			if m.online != nil {
				m.online.invalidated(block, int32(p.ctxs[p.running].thread), int(q))
			}
			if m.probe != nil {
				m.probe.Invalidation(t, p.id, int(q))
				m.probe.PairTraffic(t, p.id, int(q))
			}
		}
	}
	m.dir.clearSharers(ei)
	m.dir.add(ei, p.id)
}

// updateOthers pushes a written value to every remote sharer of the entry
// (write-update protocol).
//
//mtlint:hotpath
func (m *fastMachine) updateOthers(p *fastProc, ei int32, block uint64, t uint64) {
	m.scratch = m.dir.appendOthers(ei, p.id, m.scratch[:0])
	for _, q := range m.scratch {
		m.acquireChannel(t)
		m.procs[q].stats.UpdatesReceived++
		p.stats.UpdatesSent++
		m.pair[p.id][q]++
		if m.online != nil {
			m.online.fetched(block, int32(p.ctxs[p.running].thread), int(q))
		}
		if m.probe != nil {
			m.probe.Update(t, p.id, int(q))
			m.probe.PairTraffic(t, p.id, int(q))
		}
	}
}

// fill installs the block in p's cache and handles victim write-back and
// directory maintenance.
//
//mtlint:hotpath
func (m *fastMachine) fill(p *fastProc, c *context, block uint64, st lineState) {
	victim, dirty, evicted := p.cache.fill(block, st, c.idx)
	if !evicted {
		return
	}
	if vei := m.dir.peek(victim); vei >= 0 {
		m.dir.remove(vei, p.id)
		if int(m.dir.owner(vei)) == p.id {
			m.dir.setOwner(vei, -1)
		}
	}
	if dirty {
		p.stats.Writebacks++
	}
}

// completeHit charges the hit and advances the context in place.
//
//mtlint:hotpath
func (m *fastMachine) completeHit(p *fastProc, c *context, t uint64) {
	p.stats.Hits++
	if m.probe != nil {
		m.probe.CacheHit(t, p.id, c.thread)
	}
	p.stats.Busy += m.cfg.HitCycles
	done := t + m.cfg.HitCycles
	if next, ok := c.cur.Next(); ok {
		c.pending = next
		gap := uint64(next.Gap)
		p.stats.Busy += gap
		m.push(done+gap, p)
		return
	}
	// Thread complete.
	c.state = ctxDone
	p.done++
	m.threadFinish[c.thread] = done
	if done > p.stats.Finish {
		p.stats.Finish = done
	}
	if m.probe != nil {
		m.probe.ThreadFinish(done, p.id, c.thread)
	}
	m.admitNext(p)
	if p.done == len(p.ctxs) {
		p.running = -1
		return
	}
	// Switch to another context (pipeline drain applies).
	p.stats.Switch += m.cfg.SwitchCycles
	if m.probe != nil {
		m.probe.ContextSwitch(done, p.id)
	}
	m.scheduleNext(p, done+m.cfg.SwitchCycles)
}

// acquireChannel reserves an interconnect channel at time t and returns
// the queueing delay (zero without a contention model).
//
//mtlint:hotpath
func (m *fastMachine) acquireChannel(t uint64) uint64 {
	if len(m.channels) == 0 {
		return 0
	}
	best := 0
	for i := 1; i < len(m.channels); i++ {
		if m.channels[i] < m.channels[best] {
			best = i
		}
	}
	start := t
	if m.channels[best] > start {
		start = m.channels[best]
	}
	m.channels[best] = start + m.cfg.NetworkOccupancy
	return start - t
}

// completeTransaction finishes a reference that required a network
// transaction, exactly like the reference engine.
//
//mtlint:hotpath
func (m *fastMachine) completeTransaction(p *fastProc, c *context, t uint64) {
	p.stats.Busy++ // the issuing instruction occupies the pipeline
	wait := m.acquireChannel(t)
	p.stats.NetworkWait += wait
	done := t + wait + m.cfg.MemLatency
	if m.probe != nil {
		m.probe.ThreadPause(t, p.id, c.thread, done)
	}
	if next, ok := c.cur.Next(); ok {
		c.pending = next
		c.state = ctxBlocked
		c.readyAt = done
	} else {
		// The thread's final reference completes when memory responds.
		c.state = ctxDone
		p.done++
		m.threadFinish[c.thread] = done
		if done > p.stats.Finish {
			p.stats.Finish = done
		}
		if m.probe != nil {
			m.probe.ThreadFinish(done, p.id, c.thread)
		}
		m.admitNext(p)
	}
	p.stats.Switch += m.cfg.SwitchCycles
	if m.probe != nil {
		m.probe.ContextSwitch(t, p.id)
	}
	m.scheduleNext(p, t+m.cfg.SwitchCycles)
}
