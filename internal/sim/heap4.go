package sim

// quadHeap is the fast engine's event queue: a 4-ary min-heap specialized
// to the concrete event type, ordered by (time, proc) exactly like the
// reference eventHeap. Specialization removes the interface{} boxing
// container/heap imposes (one heap allocation per Push); the 4-ary layout
// halves tree depth versus binary, touching fewer cache lines per
// operation on the simulator's hot loop.
//
// Events with equal (time, proc) are mutually unordered, as in the
// reference heap. That ambiguity cannot change results: all events for
// one processor at one time share a position in the global order, and at
// most one of them is fresh (seq == proc.seq) — the rest are skipped.
type quadHeap struct {
	a []event
}

// eventLess is the reference eventHeap.Less ordering.
//
//mtlint:hotpath
func eventLess(x, y event) bool {
	if x.time != y.time {
		return x.time < y.time
	}
	return x.proc < y.proc
}

//mtlint:hotpath
func (h *quadHeap) len() int { return len(h.a) }

// push inserts e, sifting it up to its heap position.
//
//mtlint:hotpath
func (h *quadHeap) push(e event) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(h.a[i], h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// pop removes and returns the minimum event. It panics on an empty heap,
// like the reference heap.
//
//mtlint:hotpath
func (h *quadHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	if last > 1 {
		h.siftDown()
	}
	return top
}

// siftDown restores the heap property from the root.
//
//mtlint:hotpath
func (h *quadHeap) siftDown() {
	n := len(h.a)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if eventLess(h.a[j], h.a[best]) {
				best = j
			}
		}
		if !eventLess(h.a[best], h.a[i]) {
			return
		}
		h.a[i], h.a[best] = h.a[best], h.a[i]
		i = best
	}
}
