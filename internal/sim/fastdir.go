package sim

import "math/bits"

// fastDirectory is the fast engine's full-map directory. Where the
// reference directory allocates a *dirEntry plus a fresh sharer bitmap
// per block, entries here live in flat slabs addressed by a compact
// index: owners[i] is entry i's owner and its sharer bitmap occupies
// bitsArena[i*words : (i+1)*words]. Creating an entry is one map insert
// and two amortized appends — no per-entry allocation.
//
// Entries are referenced by index, not pointer, because the slabs may be
// reallocated by growth while a transaction is in flight.
type fastDirectory struct {
	nprocs int
	words  int
	index  map[uint64]int32
	owners []int32
	// bitsArena holds every entry's sharer bitmap back to back.
	bitsArena []uint64
	// zero is a words-long all-zero slice appended (copied) when a new
	// entry is created.
	zero []uint64
}

func newFastDirectory(nprocs int) *fastDirectory {
	words := (nprocs + 63) / 64
	return &fastDirectory{
		nprocs: nprocs,
		words:  words,
		index:  make(map[uint64]int32),
		zero:   make([]uint64, words),
	}
}

// entry returns block's entry index, creating the entry if needed.
//
//mtlint:hotpath
func (d *fastDirectory) entry(block uint64) int32 {
	if ei, ok := d.index[block]; ok {
		return ei
	}
	ei := int32(len(d.owners))
	d.index[block] = ei
	d.owners = append(d.owners, -1)
	d.bitsArena = append(d.bitsArena, d.zero...)
	return ei
}

// peek returns block's entry index, or -1 without creating one.
//
//mtlint:hotpath
func (d *fastDirectory) peek(block uint64) int32 {
	if ei, ok := d.index[block]; ok {
		return ei
	}
	return -1
}

// sharers returns entry ei's bitmap words.
//
//mtlint:hotpath
func (d *fastDirectory) sharers(ei int32) []uint64 {
	return d.bitsArena[int(ei)*d.words : (int(ei)+1)*d.words]
}

//mtlint:hotpath
func (d *fastDirectory) owner(ei int32) int32 { return d.owners[ei] }

//mtlint:hotpath
func (d *fastDirectory) setOwner(ei int32, p int32) { d.owners[ei] = p }

//mtlint:hotpath
func (d *fastDirectory) add(ei int32, p int) {
	d.bitsArena[int(ei)*d.words+p/64] |= 1 << (uint(p) % 64)
}

//mtlint:hotpath
func (d *fastDirectory) remove(ei int32, p int) {
	d.bitsArena[int(ei)*d.words+p/64] &^= 1 << (uint(p) % 64)
}

//mtlint:hotpath
func (d *fastDirectory) clearSharers(ei int32) {
	s := d.sharers(ei)
	for i := range s {
		s[i] = 0
	}
}

// appendOthers appends every sharer of entry ei except p to buf, in
// ascending processor order (the reference directory's iteration order),
// and returns the extended buffer. Callers pass a scratch buffer owned by
// the machine so steady-state transactions allocate nothing.
//
//mtlint:hotpath
func (d *fastDirectory) appendOthers(ei int32, p int, buf []int32) []int32 {
	for wi, w := range d.sharers(ei) {
		for ; w != 0; w &= w - 1 {
			q := wi*64 + bits.TrailingZeros64(w)
			if q != p {
				buf = append(buf, int32(q))
			}
		}
	}
	return buf
}
