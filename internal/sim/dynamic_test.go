package sim

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// skewedTrace builds threads of strongly unequal lengths.
func skewedTrace(t *testing.T, n int) *trace.Trace {
	t.Helper()
	tr := trace.New("skewed", n)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		r := trace.NewRecorder(tr, i)
		refs := 20 + rng.Intn(50)
		if i%7 == 0 {
			refs *= 10
		}
		for j := 0; j < refs; j++ {
			r.Compute(8)
			r.Load(trace.SharedBase + uint64((i*1000+j%200))*DefaultLineSize)
		}
	}
	return tr
}

func TestDynamicSchedulingCompletesAllThreads(t *testing.T) {
	tr := skewedTrace(t, 24)
	cfg := DefaultConfig(4)
	cfg.MaxContexts = 2
	res, err := RunDynamic(tr, cfg, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.Refs != tr.TotalRefs() {
		t.Errorf("refs = %d, want %d", tot.Refs, tr.TotalRefs())
	}
	if tot.Busy != tr.TotalInstructions() {
		t.Errorf("busy = %d, want %d", tot.Busy, tr.TotalInstructions())
	}
	for tid, f := range res.ThreadFinish {
		if f == 0 {
			t.Errorf("thread %d never finished", tid)
		}
	}
	if res.Algorithm != "DYNAMIC/fifo" {
		t.Errorf("algorithm = %q", res.Algorithm)
	}
}

func TestDynamicBalancesLoadOnline(t *testing.T) {
	tr := skewedTrace(t, 24)
	cfg := DefaultConfig(4)
	cfg.MaxContexts = 2

	dyn, err := RunDynamic(tr, cfg, LongestFirst)
	if err != nil {
		t.Fatal(err)
	}

	// A deliberately bad static placement: all four long threads
	// (IDs 0, 7, 14, 21) on one processor.
	clusters := [][]int{
		{0, 7, 14, 21, 1, 2},
		{3, 4, 5, 6, 8, 9},
		{10, 11, 12, 13, 15, 16},
		{17, 18, 19, 20, 22, 23},
	}
	static, err := Run(tr, mkPlacement(clusters...), DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.ExecTime >= static.ExecTime {
		t.Errorf("dynamic scheduling (%d) not faster than a bad static placement (%d)",
			dyn.ExecTime, static.ExecTime)
	}
}

func TestDynamicPoliciesDiffer(t *testing.T) {
	tr := skewedTrace(t, 24)
	cfg := DefaultConfig(4)
	fifo, err := RunDynamic(tr, cfg, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := RunDynamic(tr, cfg, LongestFirst)
	if err != nil {
		t.Fatal(err)
	}
	// Longest-first dispatches the giants early; it must not lose badly
	// to FIFO on a skewed workload.
	if float64(lpt.ExecTime) > 1.2*float64(fifo.ExecTime) {
		t.Errorf("longest-first (%d) much slower than FIFO (%d)", lpt.ExecTime, fifo.ExecTime)
	}
}

func TestDynamicDeterministic(t *testing.T) {
	tr := skewedTrace(t, 24)
	cfg := DefaultConfig(4)
	cfg.MaxContexts = 2
	a, err := RunDynamic(tr, cfg, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDynamic(tr, cfg, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime {
		t.Error("dynamic run not deterministic")
	}
}

func TestDynamicErrors(t *testing.T) {
	tr := skewedTrace(t, 4)
	cfg := DefaultConfig(8) // 8 seeds needed, only 4 threads
	if _, err := RunDynamic(tr, cfg, FIFO); err == nil {
		t.Error("under-seeded dynamic run accepted")
	}
	if _, err := RunDynamic(tr, Config{}, FIFO); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSchedulePolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || LongestFirst.String() != "longest-first" {
		t.Error("policy names wrong")
	}
}
