package sim

// lineState is the MSI state of a cache line.
type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

func (s lineState) String() string {
	switch s {
	case shared:
		return "S"
	case modified:
		return "M"
	}
	return "I"
}

// goneReason records why a block is no longer resident, for miss
// classification on the next access.
type goneReason struct {
	// invalidated is true when a remote write removed the block.
	invalidated bool
	// by is the evicting thread's context index (for conflicts) or the
	// invalidating processor (for invalidations).
	by int32
}

// line is one cache way.
type line struct {
	tag   uint64
	state lineState
}

// cache is one processor's set-associative (LRU) or infinite data cache.
// Tags are full block addresses (addr >> lineShift). The paper simulates
// direct-mapped caches (associativity 1) and suggests set associativity as
// the fix for the inter-thread thrashing it observed; both are supported.
type cache struct {
	lineShift uint
	nsets     uint64
	ways      int

	// lines[set*ways .. set*ways+ways) holds the set in LRU order:
	// index 0 is most recently used, ways-1 is the eviction victim.
	lines []line

	// infinite-cache storage
	infinite  bool
	infStates map[uint64]lineState

	// gone records, per block ever resident, why it left. A block with
	// no entry has never been cached here: its next miss is compulsory.
	gone map[uint64]goneReason
}

func newCache(cfg Config) *cache {
	c := &cache{
		lineShift: cfg.lineShift(),
		gone:      make(map[uint64]goneReason),
	}
	if cfg.InfiniteCache {
		c.infinite = true
		c.infStates = make(map[uint64]lineState)
		return c
	}
	c.ways = cfg.Associativity
	if c.ways <= 0 {
		c.ways = 1
	}
	c.nsets = uint64(cfg.CacheSize / (cfg.LineSize * c.ways))
	c.lines = make([]line, int(c.nsets)*c.ways)
	return c
}

// block maps an address to its block (line tag) number.
func (c *cache) block(addr uint64) uint64 { return addr >> c.lineShift }

// set returns the slice of ways for the block's set, in LRU order.
func (c *cache) set(block uint64) []line {
	s := block % c.nsets
	return c.lines[s*uint64(c.ways) : (s+1)*uint64(c.ways)]
}

// touch moves way i of the set to the MRU position.
func touch(set []line, i int) {
	if i == 0 {
		return
	}
	l := set[i]
	copy(set[1:i+1], set[0:i])
	set[0] = l
}

// lookup returns the state of the block (invalid if absent) and promotes
// it to MRU when present.
func (c *cache) lookup(block uint64) lineState {
	if c.infinite {
		return c.infStates[block]
	}
	set := c.set(block)
	for i := range set {
		if set[i].state != invalid && set[i].tag == block {
			st := set[i].state
			touch(set, i)
			return st
		}
	}
	return invalid
}

// classifyMiss explains a miss on block by context ctx, using the ledger.
func (c *cache) classifyMiss(block uint64, ctx int32) MissKind {
	g, seen := c.gone[block]
	switch {
	case !seen:
		return Compulsory
	case g.invalidated:
		return InvalidationMiss
	case g.by == ctx:
		return ConflictIntra
	default:
		return ConflictInter
	}
}

// invalidator returns the processor that invalidated block, and true, when
// the block's last departure was an invalidation.
func (c *cache) invalidator(block uint64) (int32, bool) {
	g, seen := c.gone[block]
	if seen && g.invalidated {
		return g.by, true
	}
	return 0, false
}

// fill installs block with the given state on behalf of context ctx. An
// evicted victim's departure is attributed to ctx (the evicting context),
// so a re-reference by the victim's user classifies as an intra- or
// inter-thread conflict depending on who caused the eviction.
// It returns the victim block and whether the victim was dirty; victim is
// meaningful only when evicted is true.
func (c *cache) fill(block uint64, st lineState, ctx int32) (victim uint64, dirty, evicted bool) {
	if c.infinite {
		c.infStates[block] = st
		return 0, false, false
	}
	set := c.set(block)
	// Prefer an invalid way; otherwise evict the LRU way.
	way := -1
	for i := range set {
		if set[i].state == invalid {
			way = i
			break
		}
	}
	if way == -1 {
		way = len(set) - 1
		victim = set[way].tag
		dirty = set[way].state == modified
		evicted = true
		c.gone[victim] = goneReason{by: ctx}
	}
	set[way] = line{tag: block, state: st}
	touch(set, way)
	return victim, dirty, evicted
}

// setState changes the state of a resident block (upgrade or downgrade).
// It panics if the block is absent, which would indicate a protocol bug.
func (c *cache) setState(block uint64, st lineState) {
	if c.infinite {
		if c.infStates[block] == invalid {
			panic("sim: setState on non-resident block")
		}
		c.infStates[block] = st
		return
	}
	set := c.set(block)
	for i := range set {
		if set[i].state != invalid && set[i].tag == block {
			set[i].state = st
			return
		}
	}
	panic("sim: setState on non-resident block")
}

// invalidate removes block if resident, recording the invalidating
// processor. It returns whether the block was resident and whether it was
// dirty.
func (c *cache) invalidate(block uint64, byProc int32) (present, dirty bool) {
	if c.infinite {
		st := c.infStates[block]
		if st == invalid {
			return false, false
		}
		delete(c.infStates, block)
		c.gone[block] = goneReason{invalidated: true, by: byProc}
		return true, st == modified
	}
	set := c.set(block)
	for i := range set {
		if set[i].state != invalid && set[i].tag == block {
			dirty = set[i].state == modified
			set[i].state = invalid
			c.gone[block] = goneReason{invalidated: true, by: byProc}
			return true, dirty
		}
	}
	return false, false
}

// residentBlocks returns every resident block and its state. Used by the
// protocol-invariant checker in tests.
func (c *cache) residentBlocks() map[uint64]lineState {
	out := make(map[uint64]lineState)
	if c.infinite {
		for b, s := range c.infStates {
			if s != invalid {
				out[b] = s
			}
		}
		return out
	}
	for i := range c.lines {
		if c.lines[i].state != invalid {
			out[c.lines[i].tag] = c.lines[i].state
		}
	}
	return out
}
