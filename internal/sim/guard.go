package sim

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Guard bounds a simulation run. The paper's sweeps chain thousands of
// runs; one livelocked dynamic schedule (or a pathological config) must
// abort with a diagnostic instead of spinning the whole sweep forever.
// The zero Guard imposes no bounds and adds no per-event cost beyond one
// nil check.
type Guard struct {
	// MaxSteps aborts the run after that many simulated references have
	// been issued. 0 means unlimited. A finite trace issues each reference
	// exactly once per context activation, so any bound comfortably above
	// the trace's total reference count only ever fires on livelock.
	MaxSteps uint64
	// Cancel, when non-nil, is polled periodically (every few thousand
	// steps); once it reads true the run aborts. Setting it from another
	// goroutine is the supported way to impose wall-clock timeouts.
	Cancel *atomic.Bool
}

// enabled reports whether the guard imposes any bound.
func (g Guard) enabled() bool { return g.MaxSteps != 0 || g.Cancel != nil }

// cancelPollMask: the cancel flag is polled every 4096 steps, keeping the
// atomic load off almost every hot-loop iteration.
const cancelPollMask = 4095

// guardState is the per-run watchdog embedded in both engines' machines.
// A nil *guardState is the unguarded hot path.
type guardState struct {
	maxSteps uint64
	cancel   *atomic.Bool
	steps    uint64
	canceled bool
}

func newGuardState(g Guard) *guardState {
	if !g.enabled() {
		return nil
	}
	return &guardState{maxSteps: g.MaxSteps, cancel: g.Cancel}
}

// tripped counts one simulation step and reports whether the run must
// abort. It is on the per-event hot path: no allocation, one atomic load
// every 4096 steps, everything else plain arithmetic. Error construction
// lives in budgetError, off the hot path.
//
//mtlint:hotpath
func (g *guardState) tripped() bool {
	g.steps++
	if g.maxSteps != 0 && g.steps > g.maxSteps {
		return true
	}
	if g.cancel != nil && g.steps&cancelPollMask == 0 && g.cancel.Load() {
		g.canceled = true
		return true
	}
	return false
}

// BudgetError reports a run aborted by its Guard, with enough context to
// tell a livelock (queue still busy at a huge cycle count) from an
// external cancellation.
type BudgetError struct {
	// App and Algorithm identify the aborted run.
	App, Algorithm string
	// Engine is "fast" or "reference".
	Engine string
	// Steps is the number of references issued before the abort.
	Steps uint64
	// Cycle is the simulated time of the last processed event.
	Cycle uint64
	// Queue is the event-queue depth at abort.
	Queue int
	// Canceled is true when the guard's Cancel flag (not the step budget)
	// stopped the run.
	Canceled bool
}

// Error implements error.
func (e *BudgetError) Error() string {
	cause := fmt.Sprintf("step budget (%d steps) exhausted", e.Steps)
	if e.Canceled {
		cause = fmt.Sprintf("canceled after %d steps", e.Steps)
	}
	return fmt.Sprintf("sim: %s/%s aborted on %s engine: %s at cycle %d with %d queued events",
		e.App, e.Algorithm, e.Engine, cause, e.Cycle, e.Queue)
}

// budgetError builds the abort diagnostic (cold path) and reports the
// watchdog trip to the probe.
func (g *guardState) budgetError(meta obs.RunMeta, cycle uint64, queue int, probe obs.Probe) error {
	if probe != nil {
		probe.Fault(cycle, obs.FaultWatchdog)
	}
	return &BudgetError{
		App: meta.App, Algorithm: meta.Algorithm, Engine: meta.Engine,
		Steps: g.steps, Cycle: cycle, Queue: queue, Canceled: g.canceled,
	}
}

// RunGuarded is RunObserved with a watchdog attached: the run aborts with
// a *BudgetError once guard.MaxSteps references have been issued or
// guard.Cancel reads true. The zero Guard makes it exactly RunObserved.
func RunGuarded(tr *trace.Trace, pl *placement.Placement, cfg Config, eng Engine, probe obs.Probe, guard Guard) (*Result, error) {
	switch eng {
	case ReferenceEngine:
		m, err := newMachine(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		m.probe = probe
		m.guard = newGuardState(guard)
		return m.run(tr, pl, 0)
	case FastEngine:
		m, err := newFastMachine(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		m.probe = probe
		m.guard = newGuardState(guard)
		return m.run(tr, pl)
	default:
		return nil, fmt.Errorf("sim: unknown engine %d", eng)
	}
}

// RunDynamicGuarded is RunDynamicObserved with a watchdog attached (see
// RunGuarded). Dynamic schedules are where the watchdog earns its keep:
// the online scheduler's feedback loop is the one place a bad
// configuration can livelock rather than merely finish slowly.
func RunDynamicGuarded(tr *trace.Trace, cfg Config, policy SchedulePolicy, probe obs.Probe, guard Guard) (*Result, error) {
	m, pl, err := newDynamicMachine(tr, cfg, policy)
	if err != nil {
		return nil, err
	}
	m.probe = probe
	m.guard = newGuardState(guard)
	return m.run(tr, pl, 0)
}

// fastFault, when set, mutates the fast engine's Result just before it is
// returned — a deliberate, test-only corruption hook the divergence-guard
// demo uses to prove a broken fast engine is caught and benched at
// runtime. Atomic so tests and sweeps on other goroutines never race.
var fastFault atomic.Pointer[func(*Result)]

// SetFastEngineFault installs (or, with nil, clears) a test-only hook
// that corrupts every subsequent fast-engine Result. It returns the
// previous hook so tests can restore it.
func SetFastEngineFault(f func(*Result)) (prev func(*Result)) {
	var p *func(*Result)
	if f != nil {
		p = &f
	}
	if old := fastFault.Swap(p); old != nil {
		return *old
	}
	return nil
}
