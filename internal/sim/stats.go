package sim

// MissKind classifies a cache miss the way the paper's cache unit does
// (§3.2): compulsory, intra-thread conflict, inter-thread conflict, and
// invalidation misses. (With a direct-mapped cache, capacity misses fold
// into the conflict categories.)
type MissKind int

const (
	// Compulsory is the first reference to a block by this processor.
	Compulsory MissKind = iota
	// ConflictIntra re-fetches a block the same thread evicted.
	ConflictIntra
	// ConflictInter re-fetches a block a co-located thread evicted.
	ConflictInter
	// InvalidationMiss re-fetches a block a remote write invalidated.
	InvalidationMiss
	numMissKinds
)

// String names the miss kind.
func (k MissKind) String() string {
	switch k {
	case Compulsory:
		return "compulsory"
	case ConflictIntra:
		return "intra-thread conflict"
	case ConflictInter:
		return "inter-thread conflict"
	case InvalidationMiss:
		return "invalidation"
	}
	return "unknown"
}

// ProcStats accumulates one processor's activity.
type ProcStats struct {
	// Busy is cycles spent executing instructions (including cache
	// hits).
	Busy uint64
	// Switch is cycles spent draining the pipeline at blocking
	// transactions.
	Switch uint64
	// Idle is cycles with no ready context.
	Idle uint64
	// Finish is the cycle at which the processor's last context
	// completed.
	Finish uint64
	// Refs is the number of data references issued (retries after a
	// miss are not double counted).
	Refs uint64
	// SharedRefs is the subset of Refs to the shared segment.
	SharedRefs uint64
	// Hits counts references satisfied without a network transaction.
	Hits uint64
	// Misses counts misses by kind.
	Misses [numMissKinds]uint64
	// Upgrades counts writes that hit a Shared line but required remote
	// invalidations (a network transaction that is not a miss).
	Upgrades uint64
	// InvalidationsSent counts invalidation messages this processor's
	// writes caused.
	InvalidationsSent uint64
	// InvalidationsReceived counts lines invalidated in this cache by
	// remote writes.
	InvalidationsReceived uint64
	// Writebacks counts dirty lines written back (evictions and
	// remote-read downgrades).
	Writebacks uint64
	// UpdatesSent counts update messages this processor's writes sent
	// (write-update protocol only).
	UpdatesSent uint64
	// UpdatesReceived counts lines updated in place in this cache by
	// remote writes (write-update protocol only).
	UpdatesReceived uint64
	// NetworkWait is cycles spent queueing for an interconnect channel
	// (only with Config.NetworkChannels set).
	NetworkWait uint64
}

// TotalMisses sums all miss kinds.
func (s *ProcStats) TotalMisses() uint64 {
	var n uint64
	for _, m := range s.Misses {
		n += m
	}
	return n
}

// Result is the outcome of one simulation.
type Result struct {
	// App and Algorithm identify the run.
	App       string
	Algorithm string
	// Config echoes the simulated machine.
	Config Config
	// Procs holds per-processor statistics.
	Procs []ProcStats
	// ExecTime is the paper's figure of merit: the maximum finish time
	// over all processors.
	ExecTime uint64
	// PairTraffic[a][b] counts coherence events caused at processor b's
	// cache by processor a: invalidation messages a→b plus dirty-data
	// fetches a took from b. Symmetrized views are available via
	// PairTrafficSym.
	PairTraffic [][]uint64
	// ThreadFinish is the completion cycle of each thread (global ID).
	ThreadFinish []uint64
	// WriteRuns holds the §4.2 write-run statistics when
	// Config.TrackWriteRuns was set, else nil.
	WriteRuns *WriteRunStats
	// Online holds the migration log of an online adaptive run (see
	// RunOnlineGuarded), nil for static runs. The omitempty tag keeps
	// every static Result's JSON encoding byte-identical to before online
	// mode existed — result caches and stored sweeps are unaffected.
	Online *OnlineStats `json:"Online,omitempty"`
}

// Totals aggregates the per-processor stats.
func (r *Result) Totals() ProcStats {
	var t ProcStats
	for i := range r.Procs {
		p := &r.Procs[i]
		t.Busy += p.Busy
		t.Switch += p.Switch
		t.Idle += p.Idle
		t.Refs += p.Refs
		t.SharedRefs += p.SharedRefs
		t.Hits += p.Hits
		for k := range t.Misses {
			t.Misses[k] += p.Misses[k]
		}
		t.Upgrades += p.Upgrades
		t.InvalidationsSent += p.InvalidationsSent
		t.InvalidationsReceived += p.InvalidationsReceived
		t.Writebacks += p.Writebacks
		t.UpdatesSent += p.UpdatesSent
		t.UpdatesReceived += p.UpdatesReceived
		t.NetworkWait += p.NetworkWait
		if p.Finish > t.Finish {
			t.Finish = p.Finish
		}
	}
	return t
}

// CoherenceTraffic returns the paper's §4.2 quantity: compulsory misses
// plus invalidation misses plus invalidations, summed machine-wide.
func (r *Result) CoherenceTraffic() uint64 {
	t := r.Totals()
	return t.Misses[Compulsory] + t.Misses[InvalidationMiss] + t.InvalidationsSent
}

// PairTrafficSym returns the symmetric pairwise coherence-traffic matrix
// used as the metric of the dynamic COHERENCE placement algorithm.
func (r *Result) PairTrafficSym() [][]uint64 {
	n := len(r.PairTraffic)
	m := make([][]uint64, n)
	for i := range m {
		m[i] = make([]uint64, n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			v := r.PairTraffic[a][b] + r.PairTraffic[b][a]
			m[a][b] = v
			m[b][a] = v
		}
	}
	return m
}

// MissFractions returns each miss kind as a fraction of total references.
func (r *Result) MissFractions() [numMissKinds]float64 {
	t := r.Totals()
	var f [numMissKinds]float64
	if t.Refs == 0 {
		return f
	}
	for k := range f {
		f[k] = float64(t.Misses[k]) / float64(t.Refs)
	}
	return f
}
