package sim

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// pingPongTrace builds two threads alternately writing one shared block.
func pingPongTrace(writesEach int) *trace.Trace {
	x := shBlock(0)
	var t0, t1 []trace.Event
	for i := 0; i < writesEach; i++ {
		t0 = append(t0, trace.Event{Gap: 100, Kind: trace.Write, Addr: x})
		t1 = append(t1, trace.Event{Gap: 100, Kind: trace.Write, Addr: x})
	}
	return mkTrace(t0, t1)
}

func TestUpdateProtocolEliminatesInvalidations(t *testing.T) {
	tr := pingPongTrace(20)
	pl := mkPlacement([]int{0}, []int{1})

	inv := DefaultConfig(2)
	invRes, err := RunChecked(tr, pl, inv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if invRes.Totals().InvalidationsSent == 0 {
		t.Fatal("invalidate protocol sent no invalidations on a ping-pong")
	}

	upd := DefaultConfig(2)
	upd.Protocol = Update
	updRes, err := RunChecked(tr, pl, upd, 1)
	if err != nil {
		t.Fatal(err)
	}
	tot := updRes.Totals()
	if tot.InvalidationsSent != 0 || tot.Misses[InvalidationMiss] != 0 {
		t.Errorf("update protocol produced invalidations: %+v", tot)
	}
	if tot.UpdatesSent == 0 || tot.UpdatesSent != tot.UpdatesReceived {
		t.Errorf("updates sent/received = %d/%d", tot.UpdatesSent, tot.UpdatesReceived)
	}
	if tot.Writebacks != 0 {
		t.Errorf("update protocol wrote back %d dirty lines; memory is always current", tot.Writebacks)
	}
	// Ping-pong data is where update protocols win: after each side's
	// compulsory miss every write hits.
	if updRes.ExecTime >= invRes.ExecTime {
		t.Errorf("update exec %d not below invalidate exec %d on ping-pong data",
			updRes.ExecTime, invRes.ExecTime)
	}
}

func TestUpdateProtocolInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr := trace.New("rnd", 6)
	for i := 0; i < 6; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 2000; j++ {
			r.Compute(rng.Intn(4))
			addr := sh(rng.Intn(1200))
			if rng.Intn(3) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}
	cfg := DefaultConfig(3)
	cfg.Protocol = Update
	cfg.CacheSize = 4 << 10
	res, err := RunChecked(tr, mkPlacement([]int{0, 1}, []int{2, 3}, []int{4, 5}), cfg, 500)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.Refs != tr.TotalRefs() || tot.Busy != tr.TotalInstructions() {
		t.Error("conservation broken under update protocol")
	}
}

func TestProtocolString(t *testing.T) {
	if Invalidate.String() != "invalidate" || Update.String() != "update" {
		t.Error("protocol names wrong")
	}
	cfg := DefaultConfig(1)
	cfg.Protocol = Protocol(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestNetworkContentionAddsWait(t *testing.T) {
	// Eight threads on eight processors, all missing constantly: with a
	// single channel every transaction serializes.
	var threads [][]trace.Event
	for i := 0; i < 8; i++ {
		var evs []trace.Event
		for j := 0; j < 30; j++ {
			evs = append(evs, trace.Event{Kind: trace.Read, Addr: shBlock(i*1000 + j)})
		}
		threads = append(threads, evs)
	}
	tr := mkTrace(threads...)
	var clusters [][]int
	for i := 0; i < 8; i++ {
		clusters = append(clusters, []int{i})
	}
	pl := mkPlacement(clusters...)

	free, err := Run(tr, pl, DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8)
	cfg.NetworkChannels = 1
	cfg.NetworkOccupancy = 16
	congested, err := Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if congested.Totals().NetworkWait == 0 {
		t.Fatal("single-channel network recorded no queueing")
	}
	if congested.ExecTime <= free.ExecTime {
		t.Errorf("contention did not slow execution: %d vs %d", congested.ExecTime, free.ExecTime)
	}
	if free.Totals().NetworkWait != 0 {
		t.Error("uncontended run recorded network wait")
	}

	// Plenty of channels: close to the uncontended time.
	cfg.NetworkChannels = 64
	wide, err := Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wide.ExecTime > free.ExecTime+free.ExecTime/10 {
		t.Errorf("64 channels still slow: %d vs %d", wide.ExecTime, free.ExecTime)
	}
}

func TestNetworkChannelsValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.NetworkChannels = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative channels accepted")
	}
}

func TestContentionDeterministic(t *testing.T) {
	tr := pingPongTrace(50)
	pl := mkPlacement([]int{0}, []int{1})
	cfg := DefaultConfig(2)
	cfg.NetworkChannels = 2
	a, err := Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.Totals().NetworkWait != b.Totals().NetworkWait {
		t.Error("contended simulation not deterministic")
	}
}
