package sim

// fastCache is the fast engine's data cache. It mirrors the reference
// cache's observable behaviour bit for bit (same LRU order, same eviction
// choice, same departure ledger) but indexes sets with a mask when the
// set count is a power of two — always true for the paper's capacities —
// and takes a single-way path for the direct-mapped configuration the
// paper simulates, so the hit path performs no division, no slicing and
// no allocation.
type fastCache struct {
	lineShift uint
	nsets     uint64
	// setMask is nsets-1 when nsets is a power of two, else 0 (fall back
	// to modulo).
	setMask uint64
	ways    int
	lines   []line

	infinite  bool
	infStates map[uint64]lineState

	// gone records, per block ever resident, why it left; identical
	// semantics to the reference cache.
	gone map[uint64]goneReason
}

func (c *fastCache) init(cfg Config) {
	c.lineShift = cfg.lineShift()
	c.gone = make(map[uint64]goneReason)
	if cfg.InfiniteCache {
		c.infinite = true
		c.infStates = make(map[uint64]lineState)
		return
	}
	c.ways = cfg.Associativity
	if c.ways <= 0 {
		c.ways = 1
	}
	c.nsets = uint64(cfg.CacheSize / (cfg.LineSize * c.ways))
	if c.nsets&(c.nsets-1) == 0 {
		c.setMask = c.nsets - 1
	}
	c.lines = make([]line, int(c.nsets)*c.ways)
}

//mtlint:hotpath
func (c *fastCache) block(addr uint64) uint64 { return addr >> c.lineShift }

// setIndex maps a block to its set number.
//
//mtlint:hotpath
func (c *fastCache) setIndex(block uint64) uint64 {
	if c.setMask != 0 {
		return block & c.setMask
	}
	return block % c.nsets
}

// set returns the ways of the block's set in LRU order.
//
//mtlint:hotpath
func (c *fastCache) set(block uint64) []line {
	s := c.setIndex(block)
	return c.lines[s*uint64(c.ways) : (s+1)*uint64(c.ways)]
}

// lookup returns the state of the block (invalid if absent) and promotes
// it to MRU when present.
//
//mtlint:hotpath
func (c *fastCache) lookup(block uint64) lineState {
	if c.infinite {
		return c.infStates[block]
	}
	if c.ways == 1 {
		l := &c.lines[c.setIndex(block)]
		if l.state != invalid && l.tag == block {
			return l.state
		}
		return invalid
	}
	set := c.set(block)
	for i := range set {
		if set[i].state != invalid && set[i].tag == block {
			st := set[i].state
			touch(set, i)
			return st
		}
	}
	return invalid
}

// classifyMiss explains a miss on block by context ctx, using the ledger.
//
//mtlint:hotpath
func (c *fastCache) classifyMiss(block uint64, ctx int32) MissKind {
	g, seen := c.gone[block]
	switch {
	case !seen:
		return Compulsory
	case g.invalidated:
		return InvalidationMiss
	case g.by == ctx:
		return ConflictIntra
	default:
		return ConflictInter
	}
}

// invalidator returns the processor that invalidated block, and true, when
// the block's last departure was an invalidation.
//
//mtlint:hotpath
func (c *fastCache) invalidator(block uint64) (int32, bool) {
	g, seen := c.gone[block]
	if seen && g.invalidated {
		return g.by, true
	}
	return 0, false
}

// fill installs block with the given state on behalf of context ctx,
// attributing any eviction to ctx exactly like the reference cache.
//
//mtlint:hotpath
func (c *fastCache) fill(block uint64, st lineState, ctx int32) (victim uint64, dirty, evicted bool) {
	if c.infinite {
		c.infStates[block] = st
		return 0, false, false
	}
	if c.ways == 1 {
		l := &c.lines[c.setIndex(block)]
		if l.state != invalid {
			victim = l.tag
			dirty = l.state == modified
			evicted = true
			c.gone[victim] = goneReason{by: ctx}
		}
		*l = line{tag: block, state: st}
		return victim, dirty, evicted
	}
	set := c.set(block)
	way := -1
	for i := range set {
		if set[i].state == invalid {
			way = i
			break
		}
	}
	if way == -1 {
		way = len(set) - 1
		victim = set[way].tag
		dirty = set[way].state == modified
		evicted = true
		c.gone[victim] = goneReason{by: ctx}
	}
	set[way] = line{tag: block, state: st}
	touch(set, way)
	return victim, dirty, evicted
}

// setState changes the state of a resident block (upgrade or downgrade).
//
//mtlint:hotpath
func (c *fastCache) setState(block uint64, st lineState) {
	if c.infinite {
		if c.infStates[block] == invalid {
			panic("sim: setState on non-resident block")
		}
		c.infStates[block] = st
		return
	}
	if c.ways == 1 {
		l := &c.lines[c.setIndex(block)]
		if l.state != invalid && l.tag == block {
			l.state = st
			return
		}
		panic("sim: setState on non-resident block")
	}
	set := c.set(block)
	for i := range set {
		if set[i].state != invalid && set[i].tag == block {
			set[i].state = st
			return
		}
	}
	panic("sim: setState on non-resident block")
}

// invalidate removes block if resident, recording the invalidating
// processor.
//
//mtlint:hotpath
func (c *fastCache) invalidate(block uint64, byProc int32) (present, dirty bool) {
	if c.infinite {
		st := c.infStates[block]
		if st == invalid {
			return false, false
		}
		delete(c.infStates, block)
		c.gone[block] = goneReason{invalidated: true, by: byProc}
		return true, st == modified
	}
	if c.ways == 1 {
		l := &c.lines[c.setIndex(block)]
		if l.state != invalid && l.tag == block {
			dirty = l.state == modified
			l.state = invalid
			c.gone[block] = goneReason{invalidated: true, by: byProc}
			return true, dirty
		}
		return false, false
	}
	set := c.set(block)
	for i := range set {
		if set[i].state != invalid && set[i].tag == block {
			dirty = set[i].state == modified
			set[i].state = invalid
			c.gone[block] = goneReason{invalidated: true, by: byProc}
			return true, dirty
		}
	}
	return false, false
}
