package sim

import "math/bits"

// directory is the distributed, full-map directory of the cache coherence
// protocol (§3.2 cites Censier-Feautrier style directory coherence). Homes
// are distributed by block address; since the interconnect is modeled as a
// flat latency, home placement affects no timing and the directory is
// implemented as one logical map.
type directory struct {
	nprocs int
	words  int
	// entries maps block -> sharer bitmap. A block in Modified state has
	// exactly one bit set and owner >= 0.
	entries map[uint64]*dirEntry
}

// dirEntry tracks one block's global state.
type dirEntry struct {
	sharers []uint64 // bitmap over processors
	owner   int32    // processor holding the block Modified, or -1
}

func newDirectory(nprocs int) *directory {
	return &directory{
		nprocs:  nprocs,
		words:   (nprocs + 63) / 64,
		entries: make(map[uint64]*dirEntry),
	}
}

func (d *directory) entry(block uint64) *dirEntry {
	e := d.entries[block]
	if e == nil {
		e = &dirEntry{sharers: make([]uint64, d.words), owner: -1}
		d.entries[block] = e
	}
	return e
}

// peek returns the entry without creating one.
func (d *directory) peek(block uint64) *dirEntry { return d.entries[block] }

func (e *dirEntry) has(p int) bool { return e.sharers[p/64]&(1<<(uint(p)%64)) != 0 }
func (e *dirEntry) add(p int)      { e.sharers[p/64] |= 1 << (uint(p) % 64) }
func (e *dirEntry) remove(p int)   { e.sharers[p/64] &^= 1 << (uint(p) % 64) }

func (e *dirEntry) clearSharers() {
	for i := range e.sharers {
		e.sharers[i] = 0
	}
}

// count returns the number of sharers.
func (e *dirEntry) count() int {
	n := 0
	for _, w := range e.sharers {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// others calls f for every sharer except p, in ascending processor order.
func (e *dirEntry) others(p int, f func(q int)) {
	for wi, w := range e.sharers {
		for ; w != 0; w &= w - 1 {
			q := wi*64 + bits.TrailingZeros64(w)
			if q != p {
				f(q)
			}
		}
	}
}
