package sim

import (
	"container/heap"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/placement"
	"repro/internal/trace"
)

// randWorkload derives a random synthetic trace, a random valid placement
// and a random (valid) configuration from one seed. It exercises both the
// power-of-two and the modulo set-index paths, associative and
// direct-mapped caches, both protocols, context caps, contention and
// write-run tracking.
func randWorkload(rng *rand.Rand) (*trace.Trace, *placement.Placement, Config) {
	threads := 1 + rng.Intn(6)
	tr := trace.New("quick", threads)
	for i := 0; i < threads; i++ {
		r := trace.NewRecorder(tr, i)
		refs := rng.Intn(400) // zero is legal: the engine must cope with empty threads
		for j := 0; j < refs; j++ {
			r.Compute(rng.Intn(6))
			var addr uint64
			if rng.Intn(3) == 0 {
				addr = uint64(i*4096+rng.Intn(64)) * trace.WordSize // private
			} else {
				addr = trace.SharedBase + uint64(rng.Intn(256))*trace.WordSize
			}
			if rng.Intn(3) == 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}
	}

	procs := 1 + rng.Intn(threads)
	clusters := make([][]int, procs)
	perm := rng.Perm(threads)
	// One thread per cluster first (empty clusters are invalid), the rest
	// wherever the dice land.
	for q := 0; q < procs; q++ {
		clusters[q] = []int{perm[q]}
	}
	for _, tid := range perm[procs:] {
		q := rng.Intn(procs)
		clusters[q] = append(clusters[q], tid)
	}
	pl := &placement.Placement{Algorithm: "QUICK", Clusters: clusters}

	cfg := DefaultConfig(procs)
	ways := rng.Intn(3) // 0 = direct-mapped
	cfg.Associativity = ways
	if ways == 0 {
		ways = 1
	}
	// nsets 3 and 100 exercise the modulo fallback; the rest the mask path.
	nsets := []int{1, 2, 3, 8, 100, 256}[rng.Intn(6)]
	cfg.CacheSize = DefaultLineSize * ways * nsets
	cfg.MaxContexts = rng.Intn(3)
	if rng.Intn(4) == 0 {
		cfg.Protocol = Update
	}
	if rng.Intn(4) == 0 {
		cfg.NetworkChannels = 1 + rng.Intn(3)
	}
	cfg.TrackWriteRuns = rng.Intn(2) == 0
	if rng.Intn(8) == 0 {
		cfg.InfiniteCache = true
	}
	cfg.MemLatency = []uint64{1, 13, 50}[rng.Intn(3)]
	cfg.SwitchCycles = uint64(rng.Intn(8))
	return tr, pl, cfg
}

// TestQuickEnginesAgree is the core property: for random synthetic
// workloads, random valid placements and random configurations, the fast
// engine's Result is bit-identical to the reference engine's, and
// deterministic across runs (same seed => identical Result).
func TestQuickEnginesAgree(t *testing.T) {
	prop := func(seed int64) bool {
		tr, pl, cfg := randWorkload(rand.New(rand.NewSource(seed)))
		ref, err := RunEngine(tr, pl, cfg, ReferenceEngine)
		if err != nil {
			t.Logf("seed %d: reference engine error: %v", seed, err)
			return false
		}
		fast, err := RunEngine(tr, pl, cfg, FastEngine)
		if err != nil {
			t.Logf("seed %d: fast engine error: %v", seed, err)
			return false
		}
		again, err := RunEngine(tr, pl, cfg, FastEngine)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(ref, fast) {
			t.Logf("seed %d: engines diverge: ref exec %d vs fast exec %d", seed, ref.ExecTime, fast.ExecTime)
			return false
		}
		if !reflect.DeepEqual(fast, again) {
			t.Logf("seed %d: fast engine not deterministic", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeapOrderInvariance: the fast engine's quadHeap pops events in
// the same (time, proc) order as the reference container/heap regardless
// of insertion order, so results cannot depend on how the event queue was
// built.
func TestQuickHeapOrderInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		events := make([]event, n)
		for i := range events {
			// Narrow ranges force plenty of (time, proc) ties.
			events[i] = event{
				time: uint64(rng.Intn(16)),
				proc: rng.Intn(4),
				seq:  uint64(rng.Intn(8)),
			}
		}

		var ref eventHeap
		for _, e := range events {
			heap.Push(&ref, e)
		}
		// Insert the same multiset into two quadHeaps in different orders.
		var a, b quadHeap
		for _, e := range events {
			a.push(e)
		}
		for _, i := range rng.Perm(n) {
			b.push(events[i])
		}

		for i := 0; i < n; i++ {
			re := heap.Pop(&ref).(event)
			ae, be := a.pop(), b.pop()
			// Events tied on (time, proc) are mutually interchangeable;
			// only the (time, proc) sequence is observable.
			if ae.time != re.time || ae.proc != re.proc {
				t.Logf("seed %d pop %d: quadHeap (%d,%d) vs reference (%d,%d)", seed, i, ae.time, ae.proc, re.time, re.proc)
				return false
			}
			if be.time != re.time || be.proc != re.proc {
				t.Logf("seed %d pop %d: insertion order changed pop order", seed, i)
				return false
			}
		}
		return a.len() == 0 && b.len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
