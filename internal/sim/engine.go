package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/trace"
)

// ctxState is a hardware context's scheduling state.
type ctxState uint8

const (
	ctxReady ctxState = iota
	ctxRunning
	ctxBlocked
	ctxDone
	// ctxUnloaded: the thread waits for a hardware context to free up
	// (only with Config.MaxContexts set).
	ctxUnloaded
)

// context is one hardware context, statically loaded with one thread.
//
// A memory reference that misses is completed *at issue time*: the cache
// fill and all coherence actions happen immediately, the memory latency is
// charged by blocking the context, and on resume the context proceeds to
// its next reference. (Re-issuing the access after the latency would
// livelock when two processors ping-pong writes to one block.)
type context struct {
	idx     int32 // index within the processor
	thread  int   // global thread ID
	cur     *trace.Cursor
	pending trace.Event
	state   ctxState
	readyAt uint64 // completion time while blocked
	// moved marks a context migrated by online placement that has not
	// executed since; it may not migrate again until it runs, so an
	// adversarial policy cannot defer a thread forever by re-migrating it
	// at every boundary (each migration is separated by real execution,
	// and a finite trace then bounds total migrations).
	moved bool
}

// proc is one simulated processor.
type proc struct {
	id       int
	cache    *cache
	ctxs     []*context
	running  int // context index, or -1 while idle/finished
	rr       int // round-robin pointer (last scheduled context)
	seq      uint64
	done     int
	nextLoad int // next unloaded context to admit when one frees
	// wake is the pending wake time while idle-waiting (running == -1
	// with blocked contexts); online boundaries use it to un-charge idle
	// time when a migration re-activates the processor early.
	wake  uint64
	stats ProcStats
}

// event is a scheduled processor action: issue the running context's
// pending reference, or wake from idle.
type event struct {
	time uint64
	proc int
	seq  uint64
}

// eventHeap is the reference engine's container/heap-backed event queue.
// Every Push boxes the event into an interface{} (one heap allocation per
// scheduled action); the fast engine replaces it with the concrete
// quadHeap in heap4.go.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].proc < h[j].proc
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// machine is the whole simulated system (reference engine). The fast
// engine in fast.go mirrors this structure with flattened storage; any
// semantic change here must be ported there (the differential suite fails
// loudly if the two drift).
type machine struct {
	cfg          Config
	procs        []*proc
	dir          *directory
	h            eventHeap
	pair         [][]uint64
	threadFinish []uint64
	wr           *writeRunTracker
	// channels holds each interconnect channel's next free time when
	// contention is modeled (Config.NetworkChannels > 0).
	channels []uint64
	// dynamic self-scheduling state (RunDynamic): threads waiting for a
	// processor to free a context.
	dynamic  bool
	dynQueue []dynThread
	// probe, when non-nil, receives observability events. Probes never
	// influence simulation state: probe-on and probe-off runs produce
	// deeply equal Results (asserted by the differential suite).
	probe obs.Probe
	// guard, when non-nil, is the run's watchdog (step budget and
	// cancellation, see RunGuarded). Nil for unguarded runs.
	guard *guardState
	// online, when non-nil, is the mid-run adaptive-placement state (see
	// RunOnlineGuarded). Nil for static runs: the hot loop pays one nil
	// check and nothing else.
	online *onlineState
}

// Engine selects one of the two simulation engine implementations. Both
// produce bit-identical Results for any (trace, placement, config); the
// differential suite in internal/core asserts this across the whole
// application suite.
type Engine int

const (
	// FastEngine is the default optimized engine: a concrete 4-ary event
	// heap (no interface boxing), contexts stored in a contiguous slab,
	// mask-indexed allocation-free cache lookups, and an arena-backed
	// directory with reusable sharer scratch buffers.
	FastEngine Engine = iota
	// ReferenceEngine is the original straightforward implementation,
	// kept as the oracle for differential testing and for RunChecked's
	// protocol-invariant verification.
	ReferenceEngine
)

// String names the engine.
func (e Engine) String() string {
	if e == ReferenceEngine {
		return "reference"
	}
	return "fast"
}

// Run simulates trace tr on the machine described by cfg under the given
// placement. It is deterministic and returns per-processor statistics, the
// execution time (max finish over processors), and the pairwise coherence
// traffic matrix. It uses the fast engine; RunEngine selects explicitly.
func Run(tr *trace.Trace, pl *placement.Placement, cfg Config) (*Result, error) {
	return RunEngine(tr, pl, cfg, FastEngine)
}

// RunEngine is Run with an explicit engine choice. The two engines are
// bit-for-bit interchangeable; ReferenceEngine exists as the slower oracle
// the differential tests compare FastEngine against.
func RunEngine(tr *trace.Trace, pl *placement.Placement, cfg Config, eng Engine) (*Result, error) {
	return RunObserved(tr, pl, cfg, eng, nil)
}

// RunObserved is RunEngine with an observability probe attached: the
// engine reports thread scheduling, cache hits and misses, coherence
// messages, context switches and event-queue depth to the probe as they
// happen. A nil probe is the plain RunEngine hot path (no per-event cost
// beyond one nil check per emission site); any probe leaves the Result
// bit-identical to the unobserved run.
func RunObserved(tr *trace.Trace, pl *placement.Placement, cfg Config, eng Engine, probe obs.Probe) (*Result, error) {
	switch eng {
	case ReferenceEngine:
		m, err := newMachine(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		m.probe = probe
		return m.run(tr, pl, 0)
	case FastEngine:
		m, err := newFastMachine(tr, pl, cfg)
		if err != nil {
			return nil, err
		}
		m.probe = probe
		return m.run(tr, pl)
	default:
		return nil, fmt.Errorf("sim: unknown engine %d", eng)
	}
}

// RunChecked is Run with the global coherence-protocol invariants verified
// every checkEvery events (and once at the end). It is slower and intended
// for tests; the invariant checker lives on the reference engine.
func RunChecked(tr *trace.Trace, pl *placement.Placement, cfg Config, checkEvery int) (*Result, error) {
	m, err := newMachine(tr, pl, cfg)
	if err != nil {
		return nil, err
	}
	return m.run(tr, pl, checkEvery)
}

func newMachine(tr *trace.Trace, pl *placement.Placement, cfg Config) (*machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(tr.NumThreads(), cfg.Processors); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	m := &machine{
		cfg:          cfg,
		dir:          newDirectory(cfg.Processors),
		pair:         make([][]uint64, cfg.Processors),
		threadFinish: make([]uint64, tr.NumThreads()),
	}
	for i := range m.pair {
		m.pair[i] = make([]uint64, cfg.Processors)
	}
	if cfg.TrackWriteRuns {
		m.wr = newWriteRunTracker()
	}
	if cfg.NetworkChannels > 0 {
		m.channels = make([]uint64, cfg.NetworkChannels)
		if m.cfg.NetworkOccupancy == 0 {
			m.cfg.NetworkOccupancy = DefaultNetworkOccupancy
		}
	}
	for pid, cluster := range pl.Clusters {
		p := &proc{id: pid, cache: newCache(cfg), running: -1}
		for i, tid := range cluster {
			c := &context{idx: int32(i), thread: tid, cur: tr.Threads[tid].Cursor()}
			switch {
			case cfg.MaxContexts > 0 && i >= cfg.MaxContexts:
				// No free hardware context yet; the thread waits.
				c.state = ctxUnloaded
			default:
				if e, ok := c.cur.Next(); ok {
					c.pending = e
					c.state = ctxReady
				} else {
					c.state = ctxDone
					p.done++
				}
			}
			p.ctxs = append(p.ctxs, c)
		}
		p.nextLoad = len(p.ctxs)
		if cfg.MaxContexts > 0 && cfg.MaxContexts < len(p.ctxs) {
			p.nextLoad = cfg.MaxContexts
			// An initially loaded thread may be empty (its context is done
			// from cycle zero); each such context is a free slot a waiting
			// thread must be admitted into, or it would never run.
			for free := p.done; free > 0; free-- {
				m.admitNext(p)
			}
		}
		p.rr = len(p.ctxs) - 1
		m.procs = append(m.procs, p)
	}
	return m, nil
}

// admitNext loads the next waiting thread into the hardware context a
// completed thread freed.
func (m *machine) admitNext(p *proc) {
	for p.nextLoad < len(p.ctxs) {
		c := p.ctxs[p.nextLoad]
		p.nextLoad++
		if c.state != ctxUnloaded {
			continue
		}
		if e, ok := c.cur.Next(); ok {
			c.pending = e
			c.state = ctxReady
			return
		}
		c.state = ctxDone
		p.done++
	}
}

func (m *machine) run(tr *trace.Trace, pl *placement.Placement, checkEvery int) (*Result, error) {
	heap.Init(&m.h)
	if m.probe != nil {
		m.probe.RunBegin(obs.RunMeta{
			App: tr.App, Algorithm: pl.Algorithm, Engine: ReferenceEngine.String(),
			Processors: len(m.procs), Threads: tr.NumThreads(),
		})
	}
	for _, p := range m.procs {
		if p.done < len(p.ctxs) {
			m.scheduleNext(p, 0)
		}
	}
	steps := 0
	for m.h.Len() > 0 {
		if m.online != nil && m.h[0].time >= m.online.next {
			// A detection boundary falls before the next event: process it
			// without consuming the event.
			m.onlineBoundary()
			continue
		}
		ev := heap.Pop(&m.h).(event)
		if m.guard != nil && m.guard.tripped() {
			meta := obs.RunMeta{App: tr.App, Algorithm: pl.Algorithm, Engine: ReferenceEngine.String()}
			return nil, m.guard.budgetError(meta, ev.time, m.h.Len(), m.probe)
		}
		p := m.procs[ev.proc]
		if ev.seq != p.seq {
			continue
		}
		if m.probe != nil {
			m.probe.QueueDepth(ev.time, m.h.Len())
		}
		if p.running < 0 {
			m.scheduleNext(p, ev.time)
			continue
		}
		m.access(p, p.ctxs[p.running], ev.time)
		steps++
		if checkEvery > 0 && steps%checkEvery == 0 {
			if err := m.checkInvariants(); err != nil {
				return nil, fmt.Errorf("sim: protocol invariant violated at step %d: %w", steps, err)
			}
		}
	}
	if checkEvery > 0 {
		if err := m.checkInvariants(); err != nil {
			return nil, fmt.Errorf("sim: protocol invariant violated at end: %w", err)
		}
	}

	res := &Result{
		App:          tr.App,
		Algorithm:    pl.Algorithm,
		Config:       m.cfg,
		Procs:        make([]ProcStats, len(m.procs)),
		PairTraffic:  m.pair,
		ThreadFinish: m.threadFinish,
	}
	for i, p := range m.procs {
		res.Procs[i] = p.stats
		if p.stats.Finish > res.ExecTime {
			res.ExecTime = p.stats.Finish
		}
	}
	if m.wr != nil {
		res.WriteRuns = m.wr.stats()
	}
	if m.online != nil {
		res.Online = m.online.finish()
	}
	if m.probe != nil {
		m.probe.RunEnd(res.ExecTime)
	}
	return res, nil
}

// push schedules the processor's next action.
func (m *machine) push(t uint64, p *proc) {
	p.seq++
	heap.Push(&m.h, event{time: t, proc: p.id, seq: p.seq})
}

// scheduleNext picks the next ready context round-robin and schedules its
// issue; with no ready context the processor idles until the earliest
// blocked completion.
func (m *machine) scheduleNext(p *proc, t uint64) {
	n := len(p.ctxs)
	chosen := -1
	for i := 1; i <= n; i++ {
		q := (p.rr + i) % n
		c := p.ctxs[q]
		if c.state == ctxReady || (c.state == ctxBlocked && c.readyAt <= t) {
			chosen = q
			break
		}
	}
	if chosen >= 0 {
		p.rr = chosen
		p.running = chosen
		c := p.ctxs[chosen]
		c.state = ctxRunning
		c.moved = false
		if m.probe != nil {
			m.probe.ThreadRun(t, p.id, c.thread)
		}
		gap := uint64(c.pending.Gap)
		p.stats.Busy += gap
		m.push(t+gap, p)
		return
	}

	p.running = -1
	var wake uint64
	found := false
	for _, c := range p.ctxs {
		if c.state == ctxBlocked && (!found || c.readyAt < wake) {
			wake = c.readyAt
			found = true
		}
	}
	if !found {
		return // all contexts done; finish time already recorded
	}
	if wake > t {
		p.stats.Idle += wake - t
	} else {
		wake = t
	}
	p.wake = wake
	m.push(wake, p)
}

// access issues context c's pending reference at time t, drives the cache
// and coherence protocol, and schedules the processor's next action.
func (m *machine) access(p *proc, c *context, t uint64) {
	e := c.pending
	p.stats.Refs++
	if trace.IsShared(e.Addr) {
		p.stats.SharedRefs++
	}
	block := p.cache.block(e.Addr)
	if m.wr != nil && e.Kind == trace.Write && trace.IsShared(e.Addr) {
		m.wr.observe(block, int32(c.thread))
	}
	if m.online != nil && trace.IsShared(e.Addr) {
		m.online.touch(block, p.id, c.thread)
	}
	st := p.cache.lookup(block)

	switch {
	case e.Kind == trace.Read && st != invalid:
		m.completeHit(p, c, t)
		return

	case e.Kind == trace.Write && st == modified:
		m.completeHit(p, c, t)
		return

	case e.Kind == trace.Write && st == shared:
		en := m.dir.entry(block)
		if m.cfg.Protocol == Update {
			// Write-update: propagate the value to remote copies from
			// the write buffer; the writer does not stall and every
			// copy stays valid.
			m.updateOthers(p, en, block, t)
			m.completeHit(p, c, t)
			return
		}
		remote := false
		en.others(p.id, func(int) { remote = true })
		if !remote {
			// Silent upgrade: sole sharer takes ownership without a
			// network transaction.
			p.cache.setState(block, modified)
			en.owner = int32(p.id)
			m.completeHit(p, c, t)
			return
		}
		// Upgrade with remote sharers: a network transaction (stall +
		// switch) but not a miss.
		p.stats.Upgrades++
		m.invalidateOthers(p, en, block, t)
		en.owner = int32(p.id)
		p.cache.setState(block, modified)
		m.completeTransaction(p, c, t)
		return
	}

	// Miss.
	kind := p.cache.classifyMiss(block, c.idx)
	p.stats.Misses[kind]++
	if m.probe != nil {
		m.probe.CacheMiss(t, p.id, c.thread, obs.MissClass(kind))
	}
	if kind == InvalidationMiss {
		if m.online != nil {
			m.online.invalidationMiss(block, p.id, int32(c.thread))
		}
		if by, ok := p.cache.invalidator(block); ok {
			m.pair[by][p.id]++
			if m.probe != nil {
				m.probe.PairTraffic(t, int(by), p.id)
			}
		}
	}

	en := m.dir.entry(block)
	if e.Kind == trace.Read {
		if en.owner >= 0 && int(en.owner) != p.id {
			// Fetch dirty data from the owner; owner downgrades M->S.
			owner := m.procs[en.owner]
			owner.cache.setState(block, shared)
			owner.stats.Writebacks++
			m.pair[p.id][owner.id]++
			if m.online != nil {
				m.online.fetched(block, int32(c.thread), owner.id)
			}
			if m.probe != nil {
				m.probe.PairTraffic(t, p.id, owner.id)
			}
			en.owner = -1
		}
		en.add(p.id)
		m.fill(p, c, block, shared)
	} else if m.cfg.Protocol == Update {
		// Write miss under write-update: fetch the line, keep remote
		// copies valid and push them the new value.
		m.updateOthers(p, en, block, t)
		en.add(p.id)
		m.fill(p, c, block, shared)
	} else {
		if en.owner >= 0 && int(en.owner) != p.id {
			owner := m.procs[en.owner]
			if present, _ := owner.cache.invalidate(block, int32(p.id)); present {
				owner.stats.Writebacks++
				owner.stats.InvalidationsReceived++
				p.stats.InvalidationsSent++
				m.pair[p.id][owner.id]++
				if m.online != nil {
					m.online.invalidated(block, int32(c.thread), owner.id)
				}
				if m.probe != nil {
					m.probe.Invalidation(t, p.id, owner.id)
					m.probe.PairTraffic(t, p.id, owner.id)
				}
			}
			en.remove(owner.id)
			en.owner = -1
		}
		m.invalidateOthers(p, en, block, t)
		en.add(p.id)
		en.owner = int32(p.id)
		m.fill(p, c, block, modified)
	}
	m.completeTransaction(p, c, t)
}

// invalidateOthers invalidates every remote sharer of block and updates
// the directory so p is the only sharer.
func (m *machine) invalidateOthers(p *proc, en *dirEntry, block uint64, t uint64) {
	en.others(p.id, func(q int) {
		victim := m.procs[q]
		if present, _ := victim.cache.invalidate(block, int32(p.id)); present {
			victim.stats.InvalidationsReceived++
			p.stats.InvalidationsSent++
			m.pair[p.id][q]++
			if m.online != nil {
				m.online.invalidated(block, int32(p.ctxs[p.running].thread), q)
			}
			if m.probe != nil {
				m.probe.Invalidation(t, p.id, q)
				m.probe.PairTraffic(t, p.id, q)
			}
		}
	})
	en.clearSharers()
	en.add(p.id)
}

// updateOthers pushes a written value to every remote sharer of the entry
// (write-update protocol). The messages occupy interconnect channels but
// do not stall the writer.
func (m *machine) updateOthers(p *proc, en *dirEntry, block uint64, t uint64) {
	en.others(p.id, func(q int) {
		m.acquireChannel(t)
		m.procs[q].stats.UpdatesReceived++
		p.stats.UpdatesSent++
		m.pair[p.id][q]++
		if m.online != nil {
			m.online.fetched(block, int32(p.ctxs[p.running].thread), q)
		}
		if m.probe != nil {
			m.probe.Update(t, p.id, q)
			m.probe.PairTraffic(t, p.id, q)
		}
	})
}

// fill installs the block in p's cache and handles victim write-back and
// directory maintenance.
func (m *machine) fill(p *proc, c *context, block uint64, st lineState) {
	victim, dirty, evicted := p.cache.fill(block, st, c.idx)
	if !evicted {
		return
	}
	if ven := m.dir.peek(victim); ven != nil {
		ven.remove(p.id)
		if int(ven.owner) == p.id {
			ven.owner = -1
		}
	}
	if dirty {
		p.stats.Writebacks++
	}
}

// completeHit charges the hit and advances the context in place.
func (m *machine) completeHit(p *proc, c *context, t uint64) {
	p.stats.Hits++
	if m.probe != nil {
		m.probe.CacheHit(t, p.id, c.thread)
	}
	p.stats.Busy += m.cfg.HitCycles
	done := t + m.cfg.HitCycles
	if next, ok := c.cur.Next(); ok {
		c.pending = next
		gap := uint64(next.Gap)
		p.stats.Busy += gap
		m.push(done+gap, p)
		return
	}
	// Thread complete.
	c.state = ctxDone
	p.done++
	m.threadFinish[c.thread] = done
	if done > p.stats.Finish {
		p.stats.Finish = done
	}
	if m.probe != nil {
		m.probe.ThreadFinish(done, p.id, c.thread)
	}
	if m.dynamic {
		m.pullDynamic(p)
	}
	m.admitNext(p)
	if p.done == len(p.ctxs) {
		p.running = -1
		return
	}
	// Switch to another context (pipeline drain applies).
	p.stats.Switch += m.cfg.SwitchCycles
	if m.probe != nil {
		m.probe.ContextSwitch(done, p.id)
	}
	m.scheduleNext(p, done+m.cfg.SwitchCycles)
}

// acquireChannel reserves an interconnect channel at time t and returns
// the queueing delay (zero without a contention model).
func (m *machine) acquireChannel(t uint64) uint64 {
	if len(m.channels) == 0 {
		return 0
	}
	best := 0
	for i := 1; i < len(m.channels); i++ {
		if m.channels[i] < m.channels[best] {
			best = i
		}
	}
	start := t
	if m.channels[best] > start {
		start = m.channels[best]
	}
	m.channels[best] = start + m.cfg.NetworkOccupancy
	return start - t
}

// completeTransaction finishes a reference that required a network
// transaction: the issuing instruction is charged, the context blocks for
// the memory latency (plus any channel queueing) and advances to its next
// reference, and the processor switches to another ready context.
func (m *machine) completeTransaction(p *proc, c *context, t uint64) {
	p.stats.Busy++ // the issuing instruction occupies the pipeline
	wait := m.acquireChannel(t)
	p.stats.NetworkWait += wait
	done := t + wait + m.cfg.MemLatency
	if m.probe != nil {
		m.probe.ThreadPause(t, p.id, c.thread, done)
	}
	if next, ok := c.cur.Next(); ok {
		c.pending = next
		c.state = ctxBlocked
		c.readyAt = done
	} else {
		// The thread's final reference completes when memory responds.
		c.state = ctxDone
		p.done++
		m.threadFinish[c.thread] = done
		if done > p.stats.Finish {
			p.stats.Finish = done
		}
		if m.probe != nil {
			m.probe.ThreadFinish(done, p.id, c.thread)
		}
		if m.dynamic {
			m.pullDynamic(p)
		}
		m.admitNext(p)
	}
	p.stats.Switch += m.cfg.SwitchCycles
	if m.probe != nil {
		m.probe.ContextSwitch(t, p.id)
	}
	m.scheduleNext(p, t+m.cfg.SwitchCycles)
}

// checkInvariants verifies global protocol consistency: at most one
// Modified copy of any block, no Shared copies alongside a Modified one,
// and directory state matching cache contents. Tests call this through an
// exported hook.
func (m *machine) checkInvariants() error {
	type holder struct {
		proc int
		st   lineState
	}
	blocks := make(map[uint64][]holder)
	for _, p := range m.procs {
		for b, st := range p.cache.residentBlocks() {
			blocks[b] = append(blocks[b], holder{p.id, st})
		}
	}
	for b, hs := range blocks {
		mods := 0
		for _, h := range hs {
			if h.st == modified {
				mods++
			}
		}
		if mods > 1 {
			return fmt.Errorf("block %#x modified in %d caches", b, mods)
		}
		if mods == 1 && len(hs) > 1 {
			return fmt.Errorf("block %#x modified alongside %d other copies", b, len(hs)-1)
		}
		en := m.dir.peek(b)
		if en == nil {
			return fmt.Errorf("block %#x cached but unknown to directory", b)
		}
		for _, h := range hs {
			if !en.has(h.proc) {
				return fmt.Errorf("block %#x in cache %d but not in directory sharers", b, h.proc)
			}
			if h.st == modified && int(en.owner) != h.proc {
				return fmt.Errorf("block %#x modified in %d but directory owner is %d", b, h.proc, en.owner)
			}
		}
	}
	// The directory must not list phantom sharers.
	for b, en := range m.dir.entries {
		if got, want := en.count(), len(blocks[b]); got != want {
			return fmt.Errorf("block %#x: directory lists %d sharers, caches hold %d", b, got, want)
		}
	}
	return nil
}
