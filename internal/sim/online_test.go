package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/trace"
)

// Test policies. The real policies live in internal/advise (which
// imports sim); these minimal ones exercise the engine mechanics —
// keeping, rotating, and pair-matrix-driven decisions — without an
// import cycle.

// keepPolicy never migrates: boundaries fire, stats are snapshotted,
// nothing moves. Timing must be identical to the static run.
type keepPolicy struct{}

func (keepPolicy) Name() string                              { return "KEEP" }
func (keepPolicy) Decide(*OnlineCheckpoint, OnlineEnv) []int { return nil }

// rotatePolicy shifts every thread one processor to the right at every
// boundary — maximal migration churn.
type rotatePolicy struct{}

func (rotatePolicy) Name() string { return "ROTATE" }
func (rotatePolicy) Decide(ck *OnlineCheckpoint, env OnlineEnv) []int {
	want := make([]int, len(ck.Assign))
	for t, q := range ck.Assign {
		if q < 0 {
			want[t] = q
			continue
		}
		want[t] = (q + 1) % env.Procs
	}
	return want
}

// pairPolicy co-locates the hottest communicating thread pair — a
// decision actually driven by the measured matrix, so any divergence in
// the engines' traffic attribution shows up as divergent placements.
type pairPolicy struct{}

func (pairPolicy) Name() string { return "PAIR" }
func (pairPolicy) Decide(ck *OnlineCheckpoint, env OnlineEnv) []int {
	ba, bb, best := -1, -1, uint64(0)
	for a, row := range ck.Pair {
		for b, v := range row {
			if v > best {
				ba, bb, best = a, b, v
			}
		}
	}
	if ba < 0 || ck.Assign[ba] < 0 || ck.Assign[ba] == ck.Assign[bb] {
		return nil
	}
	want := append([]int(nil), ck.Assign...)
	want[bb] = want[ba]
	return want
}

// onlineWorkload is randWorkload constrained to online-compatible
// configurations (MaxContexts must be 0).
func onlineWorkload(rng *rand.Rand) (*trace.Trace, *placement.Placement, Config) {
	tr, pl, cfg := randWorkload(rng)
	cfg.MaxContexts = 0
	return tr, pl, cfg
}

// TestOnlineDisabledIsStatic: zero options delegate to the exact static
// path — bit-identical Results on both engines, no Online block.
func TestOnlineDisabledIsStatic(t *testing.T) {
	prop := func(seed int64) bool {
		tr, pl, cfg := randWorkload(rand.New(rand.NewSource(seed)))
		for _, eng := range []Engine{ReferenceEngine, FastEngine} {
			static, err := RunGuarded(tr, pl, cfg, eng, nil, Guard{})
			if err != nil {
				t.Logf("seed %d %v: static: %v", seed, eng, err)
				return false
			}
			online, err := RunOnlineGuarded(tr, pl, cfg, eng, OnlineOptions{}, nil, Guard{})
			if err != nil {
				t.Logf("seed %d %v: online-off: %v", seed, eng, err)
				return false
			}
			if online.Online != nil {
				t.Logf("seed %d %v: disabled online run has Online stats", seed, eng)
				return false
			}
			if !reflect.DeepEqual(static, online) {
				t.Logf("seed %d %v: online-off diverges from static", seed, eng)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineKeepPolicyIsStatic: with boundaries firing but no
// migrations, the run's timing and statistics must equal the static
// run's exactly — boundary processing itself must be invisible.
func TestOnlineKeepPolicyIsStatic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, pl, cfg := onlineWorkload(rng)
		opts := OnlineOptions{
			Interval: uint64(1 + rng.Intn(500)),
			Penalty:  uint64(rng.Intn(100)),
			Policy:   keepPolicy{},
		}
		for _, eng := range []Engine{ReferenceEngine, FastEngine} {
			static, err := RunGuarded(tr, pl, cfg, eng, nil, Guard{})
			if err != nil {
				t.Logf("seed %d %v: static: %v", seed, eng, err)
				return false
			}
			online, err := RunOnlineGuarded(tr, pl, cfg, eng, opts, nil, Guard{})
			if err != nil {
				t.Logf("seed %d %v: online: %v", seed, eng, err)
				return false
			}
			if online.Online == nil || online.Online.Migrations != 0 {
				t.Logf("seed %d %v: keep policy migrated", seed, eng)
				return false
			}
			onl := *online
			onl.Online = nil
			if !reflect.DeepEqual(static, &onl) {
				t.Logf("seed %d %v: keep-policy online run perturbed the simulation", seed, eng)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineEnginesAgree is the online differential property: for
// random workloads, intervals, penalties and migration-heavy policies,
// the fast engine's Result (including the Online block) is bit-identical
// to the reference engine's, and deterministic across runs.
func TestOnlineEnginesAgree(t *testing.T) {
	policies := []OnlinePolicy{rotatePolicy{}, pairPolicy{}}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, pl, cfg := onlineWorkload(rng)
		opts := OnlineOptions{
			Interval: uint64(1 + rng.Intn(400)),
			Penalty:  uint64(rng.Intn(200)),
			Policy:   policies[rng.Intn(len(policies))],
		}
		ref, err := RunOnlineGuarded(tr, pl, cfg, ReferenceEngine, opts, nil, Guard{})
		if err != nil {
			t.Logf("seed %d: reference: %v", seed, err)
			return false
		}
		fast, err := RunOnlineGuarded(tr, pl, cfg, FastEngine, opts, nil, Guard{})
		if err != nil {
			t.Logf("seed %d: fast: %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(ref, fast) {
			t.Logf("seed %d: online engines diverge: ref exec %d (%d moves) vs fast exec %d (%d moves)",
				seed, ref.ExecTime, ref.Online.Migrations, fast.ExecTime, fast.Online.Migrations)
			return false
		}
		again, err := RunOnlineGuarded(tr, pl, cfg, FastEngine, opts, nil, Guard{})
		if err != nil || !reflect.DeepEqual(fast, again) {
			t.Logf("seed %d: online fast engine not deterministic", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// onlineTestWorkload builds a small deterministic two-proc workload with
// real cross-thread sharing, long enough to cross several boundaries.
func onlineTestWorkload(t *testing.T) (*trace.Trace, *placement.Placement, Config) {
	t.Helper()
	tr := trace.New("online", 4)
	for i := 0; i < 4; i++ {
		r := trace.NewRecorder(tr, i)
		for j := 0; j < 300; j++ {
			r.Compute(2)
			r.Store(trace.SharedBase + uint64(j%16)*trace.WordSize)
			r.Load(uint64(i*4096+j%32) * trace.WordSize)
		}
	}
	pl := &placement.Placement{Algorithm: "SEED", Clusters: [][]int{{0, 1}, {2, 3}}}
	return tr, pl, DefaultConfig(2)
}

// TestOnlineMigrationAccounting: moves, counters and probe events agree.
func TestOnlineMigrationAccounting(t *testing.T) {
	tr, pl, cfg := onlineTestWorkload(t)
	opts := OnlineOptions{Interval: 500, Penalty: 64, Policy: rotatePolicy{}}
	counter := &obs.Counter{}
	res, err := RunOnlineObserved(tr, pl, cfg, FastEngine, opts, counter)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Online
	if st == nil {
		t.Fatal("online run returned no Online stats")
	}
	if st.Policy != "ROTATE" || st.Interval != opts.Interval || st.Penalty != opts.Penalty {
		t.Fatalf("stats echo wrong options: %+v", st)
	}
	if st.Epochs == 0 || st.Migrations == 0 {
		t.Fatalf("rotate policy should migrate across boundaries: %+v", st)
	}
	if len(st.Moves) != st.Migrations {
		t.Fatalf("moves list %d != migrations %d", len(st.Moves), st.Migrations)
	}
	if st.PenaltyCycles != uint64(st.Migrations)*opts.Penalty {
		t.Fatalf("penalty cycles %d != %d moves x %d", st.PenaltyCycles, st.Migrations, opts.Penalty)
	}
	if counter.Migrations != uint64(st.Migrations) {
		t.Fatalf("probe saw %d migrations, stats say %d", counter.Migrations, st.Migrations)
	}
	for _, mv := range st.Moves {
		if mv.From == mv.To || mv.From < 0 || mv.To >= cfg.Processors || mv.Thread < 0 || mv.Thread >= 4 {
			t.Fatalf("implausible move %+v", mv)
		}
		if mv.Cycle%opts.Interval != 0 {
			t.Fatalf("move off-boundary: %+v", mv)
		}
	}
	// A static run must not carry online stats.
	static, err := Run(tr, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if static.Online != nil {
		t.Fatal("static Result has Online stats")
	}
	if static.ExecTime == res.ExecTime {
		t.Log("note: online exec time equals static (allowed, just unusual under rotate)")
	}
}

// TestOnlineSamplerAndTracerSeeMigrations: the bounded sampler side list
// and the tracer timeline both record migrations.
func TestOnlineSamplerAndTracerSeeMigrations(t *testing.T) {
	tr, pl, cfg := onlineTestWorkload(t)
	opts := OnlineOptions{Interval: 500, Penalty: 16, Policy: rotatePolicy{}}
	sampler := obs.NewSampler(1000)
	tracer := obs.NewTracer()
	res, err := RunOnlineObserved(tr, pl, cfg, ReferenceEngine, opts, obs.Multi(sampler, tracer))
	if err != nil {
		t.Fatal(err)
	}
	marks, dropped := sampler.Migrations()
	if len(marks)+dropped != res.Online.Migrations {
		t.Fatalf("sampler saw %d+%d migrations, stats say %d", len(marks), dropped, res.Online.Migrations)
	}
	for i, mk := range marks {
		mv := res.Online.Moves[i]
		if mk.T != mv.Cycle || mk.Thread != mv.Thread || mk.From != mv.From || mk.To != mv.To {
			t.Fatalf("mark %d: %+v != move %+v", i, mk, mv)
		}
	}
	var buf strings.Builder
	if err := tracer.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if !containsSub(buf.String(), "migrate:t") {
		t.Fatal("tracer timeline has no migrate events")
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestOnlineRejectsMaxContexts: loaded-context admission and migration
// cannot compose; the entry point refuses rather than silently skewing.
func TestOnlineRejectsMaxContexts(t *testing.T) {
	tr, pl, cfg := onlineTestWorkload(t)
	cfg.MaxContexts = 1
	opts := OnlineOptions{Interval: 100, Penalty: 1, Policy: keepPolicy{}}
	if _, err := RunOnlineGuarded(tr, pl, cfg, FastEngine, opts, nil, Guard{}); err == nil {
		t.Fatal("online run with MaxContexts > 0 should be refused")
	}
}
