package sim

import "testing"

func testConfig() Config {
	c := DefaultConfig(1)
	c.CacheSize = 128 // 4 lines of 32 bytes
	return c
}

func TestCacheFillLookup(t *testing.T) {
	c := newCache(testConfig())
	if c.lookup(1) != invalid {
		t.Error("empty cache reports resident block")
	}
	c.fill(1, shared, 0)
	if c.lookup(1) != shared {
		t.Error("filled block not shared")
	}
	c.setState(1, modified)
	if c.lookup(1) != modified {
		t.Error("upgrade not applied")
	}
}

func TestCacheConflictEviction(t *testing.T) {
	c := newCache(testConfig()) // 4 sets: blocks 1 and 5 collide
	c.fill(1, modified, 0)
	victim, dirty, evicted := c.fill(5, shared, 1)
	if !evicted || victim != 1 || !dirty {
		t.Fatalf("evicted=%v victim=%d dirty=%v", evicted, victim, dirty)
	}
	if c.lookup(1) != invalid || c.lookup(5) != shared {
		t.Error("post-eviction states wrong")
	}
	// Block 1 was evicted by context 1: a re-reference by context 0 is an
	// inter-thread conflict, by context 1 an intra-thread conflict.
	if k := c.classifyMiss(1, 0); k != ConflictInter {
		t.Errorf("classify by ctx0 = %v, want inter-thread conflict", k)
	}
	if k := c.classifyMiss(1, 1); k != ConflictIntra {
		t.Errorf("classify by ctx1 = %v, want intra-thread conflict", k)
	}
}

func TestCacheMissClassification(t *testing.T) {
	c := newCache(testConfig())
	if k := c.classifyMiss(7, 0); k != Compulsory {
		t.Errorf("first touch = %v, want compulsory", k)
	}
	c.fill(7, shared, 0)
	c.invalidate(7, 3)
	if k := c.classifyMiss(7, 0); k != InvalidationMiss {
		t.Errorf("after invalidation = %v, want invalidation", k)
	}
	if by, ok := c.invalidator(7); !ok || by != 3 {
		t.Errorf("invalidator = %d,%v, want 3,true", by, ok)
	}
}

func TestCacheInvalidateAbsent(t *testing.T) {
	c := newCache(testConfig())
	if present, _ := c.invalidate(9, 0); present {
		t.Error("invalidate of absent block reported present")
	}
}

func TestInfiniteCacheNeverEvicts(t *testing.T) {
	cfg := testConfig()
	cfg.InfiniteCache = true
	c := newCache(cfg)
	for b := uint64(0); b < 10000; b++ {
		if _, _, evicted := c.fill(b, shared, 0); evicted {
			t.Fatalf("infinite cache evicted at block %d", b)
		}
	}
	for b := uint64(0); b < 10000; b++ {
		if c.lookup(b) != shared {
			t.Fatalf("block %d lost", b)
		}
	}
	// Invalidation still works.
	c.invalidate(5, 2)
	if c.lookup(5) != invalid {
		t.Error("invalidation ignored")
	}
	if k := c.classifyMiss(5, 0); k != InvalidationMiss {
		t.Errorf("classify = %v, want invalidation", k)
	}
}

func TestCacheSetStatePanicsOnAbsent(t *testing.T) {
	c := newCache(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("setState on absent block did not panic")
		}
	}()
	c.setState(3, modified)
}

func TestBlockMapping(t *testing.T) {
	c := newCache(testConfig()) // 32-byte lines
	if c.block(0) != 0 || c.block(31) != 0 || c.block(32) != 1 {
		t.Error("block mapping wrong")
	}
}

func TestDirectoryBitmap(t *testing.T) {
	d := newDirectory(130) // forces multi-word bitmaps
	e := d.entry(42)
	for _, p := range []int{0, 63, 64, 129} {
		e.add(p)
	}
	if e.count() != 4 {
		t.Errorf("count = %d, want 4", e.count())
	}
	var got []int
	e.others(64, func(q int) { got = append(got, q) })
	want := []int{0, 63, 129}
	if len(got) != len(want) {
		t.Fatalf("others = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("others = %v, want %v", got, want)
		}
	}
	e.remove(63)
	if e.has(63) || !e.has(0) {
		t.Error("remove broken")
	}
	e.clearSharers()
	if e.count() != 0 {
		t.Error("clear broken")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(4)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero procs", func(c *Config) { c.Processors = 0 }},
		{"line not power of two", func(c *Config) { c.LineSize = 24 }},
		{"cache smaller than line", func(c *Config) { c.CacheSize = 16 }},
		{"cache not multiple of line", func(c *Config) { c.CacheSize = 48 }},
		{"zero hit", func(c *Config) { c.HitCycles = 0 }},
		{"zero latency", func(c *Config) { c.MemLatency = 0 }},
	}
	for _, tc := range cases {
		c := DefaultConfig(4)
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Infinite cache ignores the cache-size checks.
	inf := DefaultConfig(2)
	inf.InfiniteCache = true
	inf.CacheSize = 0
	if err := inf.Validate(); err != nil {
		t.Errorf("infinite cache config rejected: %v", err)
	}
}

func TestMissKindString(t *testing.T) {
	names := map[MissKind]string{
		Compulsory:       "compulsory",
		ConflictIntra:    "intra-thread conflict",
		ConflictInter:    "inter-thread conflict",
		InvalidationMiss: "invalidation",
		MissKind(99):     "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
