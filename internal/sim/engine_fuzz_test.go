package sim

import (
	"reflect"
	"testing"

	"repro/internal/placement"
	"repro/internal/trace"
)

// FuzzEngine feeds arbitrary traces (truncated, empty, single-thread) and
// degenerate configurations (1 processor, tiny context caps, a cache of a
// single line) to both engines. The engines must either reject the input
// with an error or finish — never hang or panic — and when they finish
// they must agree bit for bit.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), false, false)
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), false, false)
	// Single thread, cache of exactly one line.
	f.Add([]byte{0, 3, 128, 7, 0, 0, 129, 7}, uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), false, false)
	// Several threads ping-ponging one shared block across processors.
	f.Add([]byte{0, 1, 128, 0, 1, 1, 128, 0, 2, 1, 128, 0, 3, 1, 128, 0}, uint8(4), uint8(3), uint8(2), uint8(1), uint8(2), true, true)

	f.Fuzz(func(t *testing.T, data []byte, nthreads, nprocs, maxCtx, assoc, channels uint8, update, infinite bool) {
		threads := 1 + int(nthreads)%8
		tr := trace.New("fuzz", threads)
		recs := make([]*trace.Recorder, threads)
		for i := range recs {
			recs[i] = trace.NewRecorder(tr, i)
		}
		// Four bytes per reference: thread, gap, kind+address-high, address-low.
		for i := 0; i+4 <= len(data); i += 4 {
			r := recs[int(data[i])%threads]
			r.Compute(int(data[i+1]) % 64)
			addr := (uint64(data[i+2]&0x7f)<<8 | uint64(data[i+3])) * trace.WordSize
			if data[i+2]&0x80 != 0 {
				addr += trace.SharedBase
			}
			if data[i+1]&1 != 0 {
				r.Store(addr)
			} else {
				r.Load(addr)
			}
		}

		procs := 1 + int(nprocs)%8
		if procs > threads {
			procs = threads
		}
		clusters := make([][]int, procs)
		for i := 0; i < threads; i++ {
			clusters[i%procs] = append(clusters[i%procs], i)
		}
		pl := &placement.Placement{Algorithm: "FUZZ", Clusters: clusters}

		cfg := DefaultConfig(procs)
		ways := int(assoc) % 4
		cfg.Associativity = ways
		if ways == 0 {
			ways = 1
		}
		// Down to a single line: CacheSize == LineSize with ways 1.
		nsets := 1
		if len(data) > 0 {
			nsets = 1 + int(data[0]&0x3)*7
		}
		cfg.CacheSize = DefaultLineSize * ways * nsets
		cfg.MaxContexts = int(maxCtx) % 4
		cfg.NetworkChannels = int(channels) % 3
		cfg.InfiniteCache = infinite
		cfg.TrackWriteRuns = !infinite
		if update {
			cfg.Protocol = Update
		}

		ref, rerr := RunEngine(tr, pl, cfg, ReferenceEngine)
		fast, ferr := RunEngine(tr, pl, cfg, FastEngine)
		if (rerr == nil) != (ferr == nil) {
			t.Fatalf("engines disagree on validity: reference err %v, fast err %v", rerr, ferr)
		}
		if rerr != nil {
			return
		}
		if !reflect.DeepEqual(ref, fast) {
			t.Fatalf("engines diverge: reference %+v vs fast %+v", ref.Totals(), fast.Totals())
		}
		// Conservation: every reference resolves exactly once.
		tot := fast.Totals()
		if got := tot.Hits + tot.TotalMisses() + tot.Upgrades; got != tr.TotalRefs() {
			t.Fatalf("hits+misses+upgrades = %d, want %d", got, tr.TotalRefs())
		}
	})
}
