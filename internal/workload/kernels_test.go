package workload

import (
	"testing"

	"repro/internal/trace"
)

// Structural invariants of individual kernels: the ownership disciplines
// each kernel's documentation claims, checked on the actual traces.

// sharedWrites returns, per thread, the set of shared addresses written.
func sharedWrites(tr *trace.Trace) []map[uint64]bool {
	out := make([]map[uint64]bool, tr.NumThreads())
	for i, th := range tr.Threads {
		out[i] = make(map[uint64]bool)
		for c := th.Cursor(); ; {
			e, ok := c.Next()
			if !ok {
				break
			}
			if e.Kind == trace.Write && trace.IsShared(e.Addr) {
				out[i][e.Addr] = true
			}
		}
	}
	return out
}

func build(t *testing.T, name string) *trace.Trace {
	t.Helper()
	a, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Build(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWaterOwnerWrites: Water threads write only their own molecules'
// positions and nothing else in the shared segment — the phase-local
// write discipline §4.2 describes.
func TestWaterOwnerWrites(t *testing.T) {
	tr := build(t, "Water")
	writes := sharedWrites(tr)
	for a, wa := range writes {
		for b, wb := range writes {
			if a >= b {
				continue
			}
			for addr := range wa {
				if wb[addr] {
					t.Fatalf("threads %d and %d both write shared %#x", a, b, addr)
				}
			}
		}
	}
}

// TestGaussRowOwnership: each Gauss thread writes only its own matrix row
// and its own pivot-scale slot.
func TestGaussRowOwnership(t *testing.T) {
	tr := build(t, "Gauss")
	writes := sharedWrites(tr)
	for a := range writes {
		for b := a + 1; b < len(writes); b++ {
			for addr := range writes[a] {
				if writes[b][addr] {
					t.Fatalf("Gauss threads %d and %d both write %#x", a, b, addr)
				}
			}
		}
	}
}

// TestFFTHalves: FFT small tasks stay in the upper half of the signal
// array except through the read-shared twiddle table; only big tasks
// write the lower half.
func TestFFTHalves(t *testing.T) {
	tr := build(t, "FFT")
	const size = 2048
	// The signal array is the first shared allocation.
	signalEnd := trace.SharedBase + uint64(size*2)*trace.WordSize
	lowerEnd := trace.SharedBase + uint64(size)*trace.WordSize // points 0..1023

	nsmall := tr.NumThreads() - 6
	for tid := 0; tid < nsmall; tid++ {
		for c := tr.Threads[tid].Cursor(); ; {
			e, ok := c.Next()
			if !ok {
				break
			}
			if e.Kind != trace.Write || !trace.IsShared(e.Addr) {
				continue
			}
			if e.Addr < lowerEnd && e.Addr < signalEnd {
				t.Fatalf("small task %d writes the big tasks' lower half at %#x", tid, e.Addr)
			}
		}
	}
}

// TestCholeskyMostlyPrivate: Cholesky's defining property is its tiny
// shared fraction — the heavy panel updates must be private.
func TestCholeskyMostlyPrivate(t *testing.T) {
	tr := build(t, "Cholesky")
	var shared, total uint64
	for _, th := range tr.Threads {
		for c := th.Cursor(); ; {
			e, ok := c.Next()
			if !ok {
				break
			}
			total++
			if trace.IsShared(e.Addr) {
				shared++
			}
		}
	}
	if frac := float64(shared) / float64(total); frac > 0.3 {
		t.Errorf("Cholesky shared fraction %.2f — panel work leaked into shared memory?", frac)
	}
}

// TestFullconnMailboxDiscipline: thread i writes only row i of the mailbox
// matrix (its outgoing slots) and its own status/seqno words.
func TestFullconnMailboxDiscipline(t *testing.T) {
	tr := build(t, "Fullconn")
	n := tr.NumThreads()
	const payload = 4
	// mailbox is the first shared allocation: n*n*payload words.
	mailboxEnd := trace.SharedBase + uint64(n*n*payload)*trace.WordSize
	for tid, th := range tr.Threads {
		rowLo := trace.SharedBase + uint64(tid*n*payload)*trace.WordSize
		rowHi := trace.SharedBase + uint64((tid+1)*n*payload)*trace.WordSize
		for c := th.Cursor(); ; {
			e, ok := c.Next()
			if !ok {
				break
			}
			if e.Kind != trace.Write || !trace.IsShared(e.Addr) || e.Addr >= mailboxEnd {
				continue
			}
			if e.Addr < rowLo || e.Addr >= rowHi {
				t.Fatalf("thread %d writes mailbox slot %#x outside its row", tid, e.Addr)
			}
		}
	}
}
