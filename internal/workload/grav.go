package workload

// Grav models the Presto implementation of the Barnes-Hut clustering
// algorithm. Like the SPLASH Barnes-Hut it read-shares body positions
// widely and writes locally, but the Presto version's dynamic cluster
// assignment leaves thread work markedly uneven.
//
// Table 2 targets: 48 threads, ~39% thread-length deviation, ~98% shared
// references.

func grav() App {
	return App{
		Name:        "Grav",
		Grain:       Medium,
		Threads:     48,
		CacheSize:   64 << 10,
		Description: "Presto Barnes-Hut gravitational clustering",
		build:       buildGrav,
	}
}

func buildGrav(b *builder) {
	const (
		bodiesPerThread = 10
		baseSweep       = 40 // partner positions examined per body
	)
	nbodies := bodiesPerThread * b.app.Threads
	pos := b.Shared(nbodies * 2)
	clusterSum := b.Shared(b.app.Threads * 4) // per-cluster centroids

	b.EachThread(func(t *T) {
		// Cluster populations are uneven: triangular distribution gives
		// the target ~40% deviation.
		sweep := b.N(baseSweep/2 + t.Intn(baseSweep) + t.Intn(baseSweep)/2)
		zone := t.ID * bodiesPerThread

		for m := 0; m < bodiesPerThread; m++ {
			body := zone + m
			t.Read(pos, body*2)
			t.Read(pos, body*2+1)
			for k := 0; k < sweep; k++ {
				// Distance checks against bodies across the whole
				// system (uniform read sharing).
				other := (body + 1 + k*11) % nbodies
				t.Read(pos, other*2)
				t.Read(pos, other*2+1)
				t.Compute(6)
			}
			// Fold the body into this thread's cluster centroid.
			t.Read(clusterSum, t.ID*4)
			t.Compute(5)
			t.Write(clusterSum, t.ID*4)
			t.Write(clusterSum, t.ID*4+1)
		}
		// Publish final centroid components, then scan neighbouring
		// clusters for merge candidates — the reads of freshly written
		// remote centroids are Grav's runtime coherence traffic.
		t.Compute(8)
		t.Write(clusterSum, t.ID*4+2)
		t.Write(clusterSum, t.ID*4+3)
		for k := 1; k <= 6; k++ {
			peer := (t.ID + k) % b.app.Threads
			t.Read(clusterSum, peer*4)
			t.Read(clusterSum, peer*4+1)
			t.Compute(5)
		}
	})
}
