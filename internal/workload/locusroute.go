package workload

// LocusRoute models the commercial-quality VLSI standard-cell router of
// the paper's suite. The shared data is the global routing-cost grid; each
// thread routes a set of wires, exploring candidate paths (reading grid
// cost cells) and committing the best path (writing its cells). Wires are
// spatially partitioned so most grid traffic stays in a thread's own
// region with occasional crossings into neighbouring regions.
//
// Table 2 targets: 32 threads, thread-length deviation ~15%, ~57% shared
// references, moderately non-uniform pairwise sharing.

func locusRoute() App {
	return App{
		Name:        "LocusRoute",
		Grain:       Coarse,
		Threads:     32,
		CacheSize:   32 << 10,
		Description: "VLSI standard-cell router over a shared routing-cost grid",
		build:       buildLocusRoute,
	}
}

func buildLocusRoute(b *builder) {
	const (
		gridSide   = 96 // routing grid is gridSide x gridSide cost cells
		baseWires  = 42 // wires per thread before jitter
		minWireLen = 8
		maxWireLen = 26
	)
	grid := b.Shared(gridSide * gridSide)
	nets := b.Shared(b.app.Threads * baseWires * 2) // terminal pairs
	region := gridSide * gridSide / b.app.Threads   // cells per thread region

	b.EachThread(func(t *T) {
		scratch := 256
		wireBuf := b.Private(t.ID, scratch) // candidate path buffer
		costBuf := b.Private(t.ID, scratch) // per-candidate cost accumulators
		home := t.ID * region               // this thread's grid region origin

		// Thread-length jitter: +-25% wire count gives ~15% length dev.
		wires := b.N(baseWires + t.Intn(baseWires/2) - baseWires/4)
		for w := 0; w < wires; w++ {
			// Fetch the wire's terminals from the shared net list.
			t.Read(nets, t.ID*baseWires*2+w*2)
			t.Read(nets, t.ID*baseWires*2+w*2+1)
			t.Compute(12)

			wireLen := minWireLen + t.Intn(maxWireLen-minWireLen)
			// 1 in 6 wires crosses into the next thread's region.
			origin := home
			if t.Intn(6) == 0 {
				origin = ((t.ID + 1) % b.app.Threads) * region
			}

			// Explore two candidate paths cell by cell.
			for cand := 0; cand < 2; cand++ {
				start := origin + t.Intn(region)
				for c := 0; c < wireLen; c++ {
					cell := start + cand*(gridSide/2) + c
					t.Read(grid, cell)          // current congestion cost
					t.Write(costBuf, c%scratch) // accumulate candidate cost
					t.Compute(5)
				}
				t.Compute(8) // compare candidate totals
			}

			// Commit the chosen path: bump the cost of each cell.
			start := origin + t.Intn(region)
			for c := 0; c < wireLen; c++ {
				cell := start + c
				t.Read(grid, cell)
				t.Write(grid, cell)
				t.Read(wireBuf, c%scratch)
				t.Compute(4)
			}
			t.Compute(10) // record the route in private wire state
			t.Write(wireBuf, w%scratch)
		}
	})
}
