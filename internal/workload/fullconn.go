package workload

// Fullconn models the Presto program that simulates a fully connected set
// of processors communicating at random: thread i posts messages into its
// row of a shared mailbox matrix and reads replies from its column. Nearly
// every reference is shared and the write sharing is spread uniformly over
// all pairs.
//
// Table 2 targets: 64 threads, ~6% thread-length deviation, ~96% shared
// references, very uniform pairwise sharing at scale (Dev small for
// N-way).

func fullconn() App {
	return App{
		Name:        "Fullconn",
		Grain:       Medium,
		Threads:     64,
		CacheSize:   64 << 10,
		Description: "fully connected processors exchanging random messages",
		build:       buildFullconn,
	}
}

func buildFullconn(b *builder) {
	const (
		rounds  = 60
		msgsPer = 8 // messages per round
		payload = 4 // words per message
	)
	n := b.app.Threads
	// mailbox[i*n+j] is the head of the message slot i -> j.
	mailbox := b.Shared(n * n * payload)
	status := b.Shared(n) // per-thread liveness word, read by partners

	b.EachThread(func(t *T) {
		seqno := b.Private(t.ID, 16)

		rs := b.N(rounds + t.Intn(rounds/8) - rounds/16)
		for r := 0; r < rs; r++ {
			for m := 0; m < msgsPer; m++ {
				partner := t.Intn(n)
				if partner == t.ID {
					partner = (partner + 1) % n
				}
				// Check the partner is alive, then send: write the
				// payload into our slot towards the partner.
				t.Read(status, partner)
				slot := (t.ID*n + partner) * payload
				for w := 0; w < payload; w++ {
					t.Write(mailbox, slot+w)
				}
				t.Compute(5)

				// Poll for the reply: spin on the partner's slot towards
				// us. Only the last read observes freshly written data;
				// the polling re-reads are shared references that cause
				// no coherence traffic.
				rslot := (partner*n + t.ID) * payload
				polls := 9 + t.Intn(8)
				for q := 0; q < polls; q++ {
					t.Read(mailbox, rslot)
					t.Compute(2)
				}
				for w := 1; w < payload; w++ {
					t.Read(mailbox, rslot+w)
				}
				t.Compute(4)
				t.Write(seqno, m%16)
			}
			// Publish our liveness once per round.
			t.Write(status, t.ID)
			t.Compute(6)
		}
	})
}
