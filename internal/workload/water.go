package workload

// Water models the SPLASH molecular-dynamics code: the evolution of a
// system of water molecules. Molecule state (position vectors) lives in
// shared memory and is read-shared by every thread during the O(n^2/2)
// force computation; each thread integrates and writes back only its own
// molecules at the end of a time step — the sequential, phase-local write
// pattern the paper highlights.
//
// Table 2 targets: 32 threads, near-uniform thread lengths (dev ~2%),
// ~72% shared references, uniform pairwise sharing.

func water() App {
	return App{
		Name:        "Water",
		Grain:       Coarse,
		Threads:     32,
		CacheSize:   32 << 10,
		Description: "molecular dynamics over a shared set of water molecules",
		build:       buildWater,
	}
}

func buildWater(b *builder) {
	const (
		molsPerThread = 12
		steps         = 2
		interactions  = 90 // sampled partner molecules per own molecule
	)
	nmol := molsPerThread * b.app.Threads
	pos := b.Shared(nmol * 3) // x,y,z per molecule

	b.EachThread(func(t *T) {
		force := b.Private(t.ID, molsPerThread*3)
		vel := b.Private(t.ID, molsPerThread*3)
		own := t.ID * molsPerThread

		for s := 0; s < steps; s++ {
			// Force phase: read-share every partner's position.
			for m := 0; m < molsPerThread; m++ {
				mi := own + m
				t.Read(pos, mi*3)
				t.Read(pos, mi*3+1)
				t.Read(pos, mi*3+2)
				n := b.N(interactions)
				for k := 0; k < n; k++ {
					// Deterministic partner stride covers the whole
					// system uniformly (every pair of threads shares
					// equally — the paper's "uniform data sharing").
					pj := (mi + 1 + k*7) % nmol
					t.Read(pos, pj*3)
					t.Read(pos, pj*3+1)
					t.Read(pos, pj*3+2)
					t.Read(pos, mi*3+k%3)
					t.Compute(9) // Lennard-Jones terms
					t.Write(force, (m*3 + k%3))
				}
			}
			// Update phase: integrate and write back own positions only.
			for m := 0; m < molsPerThread; m++ {
				mi := own + m
				t.Read(force, m*3)
				t.Read(vel, m*3)
				t.Compute(14)
				t.Write(vel, m*3)
				t.Write(pos, mi*3)
				t.Write(pos, mi*3+1)
				t.Write(pos, mi*3+2)
			}
		}
	})
}
