package workload

// FFT models the Presto fast Fourier transform. Butterfly tasks over the
// shared signal array are forked at wildly different granularities — most
// threads repeatedly process one small block while a few own entire
// stage sweeps plus the bit-reversal permutation — giving the suite's most
// extreme thread-length deviation (the paper reports 187.6%). The paper's
// §4.2 analysis notes 73% of FFT's shared elements are migratory (long
// write runs by one thread); here every array region is written in long
// runs by its owning task, and the read-shared twiddle table is the only
// widely shared data.
//
// Table 2 targets: 64 threads, ~150-200% thread-length deviation, ~72-85%
// shared references, low runtime coherence.

func fft() App {
	return App{
		Name:        "FFT",
		Grain:       Medium,
		Threads:     64,
		CacheSize:   32 << 10, // the paper simulates FFT with 32 KB
		Description: "radix-2 FFT with unevenly forked butterfly tasks",
		build:       buildFFT,
	}
}

func buildFFT(b *builder) {
	const (
		size      = 2048 // complex points
		smallBlk  = 240  // butterflies per small task
		bigStages = 20   // stage sweeps performed by each big task
	)
	signal := b.Shared(size * 2) // interleaved re/im
	twiddle := b.Shared(size / 2)

	// butterfly applies one radix-2 butterfly; coeff is the thread's
	// private coefficient cache (real FFTs precompute per-task tables).
	// Twiddle factors come from a narrow per-position band of the shared
	// table, so each task's twiddle working set is small and read-shared.
	butterfly := func(t *T, coeff Region, i, j int) {
		t.Read(signal, i*2)
		t.Read(signal, i*2+1)
		t.Read(signal, j*2)
		t.Read(signal, j*2+1)
		t.Read(twiddle, (i+j)%64+(i+j)/64%16*64)
		t.Read(coeff, (i+j)%coeff.Len())
		t.Compute(26) // complex multiply-accumulate pair
		t.Write(signal, i*2)
		t.Write(signal, i*2+1)
		t.Write(signal, j*2)
		t.Write(signal, j*2+1)
	}

	b.EachThread(func(t *T) {
		scratch := b.Private(t.ID, 64)
		coeff := b.Private(t.ID, 128)

		nsmall := b.app.Threads - 6
		if t.ID < nsmall {
			// Small task: repeated butterfly passes over one owned
			// block in the upper half of the array (stages partition
			// the array among tasks, so writes are disjoint).
			half := size / 2
			blk := half / nsmall
			lo := half + t.ID*blk
			stage := t.ID % 8
			span := 1 << (stage%5 + 1)
			n := b.N(smallBlk)
			for k := 0; k < n; k++ {
				i := lo + k%blk
				j := lo + (k%blk+span/2)%blk
				butterfly(t, coeff, i, j)
				t.Write(scratch, k%64)
				t.Compute(7)
			}
		} else {
			// Big task: many stage sweeps over an owned region of the
			// lower half, then the region's bit-reversal permutation —
			// the long migratory write runs of the paper's analysis.
			region := size / 12
			sixth := t.ID - nsmall
			lo := sixth * region
			for stage := 0; stage < bigStages; stage++ {
				span := 1 << (stage%6 + 2)
				n := b.N(region)
				for k := 0; k < n; k++ {
					i := lo + (k*2+stage)%region
					j := lo + (i-lo+span/2)%region
					butterfly(t, coeff, i, j)
					if k%4 == 0 {
						t.Write(scratch, k%64)
					}
					t.Compute(8)
				}
			}
			// Bit-reversal permutation of the thread's own region.
			n := b.N(region)
			for k := 0; k < n; k++ {
				rev := lo + reverseBits(k, 8)%region
				t.Read(signal, (lo+k)*2)
				t.Write(signal, rev*2)
				t.Compute(6)
			}
			// Final combining pass: each big task folds one segment of
			// the small tasks' upper half into the result — a single
			// late handoff per block. The small owner's long write run
			// followed by the combiner's makes the data migratory (the
			// paper: 73% of FFT's shared elements move in long write
			// runs).
			segment := (size / 2) / 6
			base := size/2 + sixth*segment
			n = b.N(segment)
			for k := 0; k < n; k++ {
				i := base + k
				t.Read(signal, i*2)
				t.Read(signal, i*2+1)
				t.Compute(9)
				t.Write(signal, i*2)
				t.Write(signal, i*2+1)
			}
		}
	})
}

// reverseBits reverses the low `bits` bits of v.
func reverseBits(v, bits int) int {
	out := 0
	for i := 0; i < bits; i++ {
		out = out<<1 | (v>>i)&1
	}
	return out
}
