package workload

// Patch models the Presto radiosity program: every thread computes form
// factors for its own scene patches against the read-shared scene
// geometry and accumulates energy into its own radiosity slots. Patch
// visibility varies by scene position, skewing thread lengths.
//
// Table 2 targets: 64 threads, ~59% thread-length deviation, ~97% shared
// references, very low pairwise-sharing deviation (uniform read sharing of
// the whole scene).

func patch() App {
	return App{
		Name:        "Patch",
		Grain:       Medium,
		Threads:     64,
		CacheSize:   64 << 10,
		Description: "radiosity form-factor computation over a shared scene",
		build:       buildPatch,
	}
}

func buildPatch(b *builder) {
	const (
		patchesPerThread = 6
		geomWords        = 4 // vertices + normal per patch
		baseSamples      = 30
	)
	npatch := patchesPerThread * b.app.Threads
	geometry := b.Shared(npatch * geomWords)
	radiosity := b.Shared(npatch)

	b.EachThread(func(t *T) {
		rayBuf := b.Private(t.ID, 32)
		own := t.ID * patchesPerThread

		// Visibility-driven skew: samples per patch vary 4x across
		// threads plus per-thread noise.
		samples := b.N(baseSamples/3 + t.Intn(baseSamples) + t.Intn(baseSamples))

		for p := 0; p < patchesPerThread; p++ {
			patch := own + p
			// Load own patch geometry.
			for w := 0; w < geomWords; w++ {
				t.Read(geometry, patch*geomWords+w)
			}
			for s := 0; s < samples; s++ {
				// Sample a target patch anywhere in the scene; its
				// geometry is immutable and read-shared by everyone.
				target := (patch*13 + s*7 + 1) % npatch
				t.Read(geometry, target*geomWords)
				t.Read(geometry, target*geomWords+1)
				// Radiosity energy is gathered only from nearby
				// patches (far interactions use the geometry alone).
				if s%4 == 0 {
					near := (patch + s%16 - 8 + npatch) % npatch
					t.Read(radiosity, near)
				}
				t.Compute(9) // form factor + occlusion test
				if s%8 == 0 {
					t.Write(rayBuf, s%32)
				}
			}
			// Accumulate into our own radiosity slot (owned shared).
			t.Read(radiosity, patch)
			t.Compute(6)
			t.Write(radiosity, patch)
		}
	})
}
