package workload

// BarnesHut models the SPLASH hierarchical N-body simulator. Bodies are
// spatially partitioned into contiguous zones; during a time step every
// thread read-shares the tree's cell summaries and nearby body positions,
// then does a purely local update of its own bodies at the end of the
// step. This is the paper's §4.2 exemplar of wide read-sharing with local
// writes (computation phase ~1.6M instructions dominating the write
// phase).
//
// Table 2 targets: 32 threads, ~7% thread-length deviation, ~59% shared
// references.

func barnesHut() App {
	return App{
		Name:        "Barnes-Hut",
		Grain:       Coarse,
		Threads:     32,
		CacheSize:   32 << 10,
		Description: "hierarchical N-body simulation with zoned body ownership",
		build:       buildBarnesHut,
	}
}

func buildBarnesHut(b *builder) {
	const (
		bodiesPerZone = 16
		treeCells     = 512
		steps         = 2
	)
	nbodies := bodiesPerZone * b.app.Threads
	pos := b.Shared(nbodies * 2)
	cellSummary := b.Shared(treeCells * 2) // centre of mass + mass per cell

	b.EachThread(func(t *T) {
		acc := b.Private(t.ID, bodiesPerZone*2)
		walkStack := b.Private(t.ID, 64)
		zone := t.ID * bodiesPerZone

		for s := 0; s < steps; s++ {
			// Zone populations drift slightly between steps: +-12%.
			bodies := bodiesPerZone + t.Intn(bodiesPerZone/4) - bodiesPerZone/8
			for m := 0; m < bodies; m++ {
				body := zone + m%bodiesPerZone
				t.Read(pos, body*2)
				t.Read(pos, body*2+1)

				// Walk the tree: read cell summaries from root to leaf.
				depth := b.N(9)
				for d := 0; d < depth; d++ {
					cell := (body*31 + d*d*67 + s) % treeCells
					t.Read(cellSummary, cell*2)
					t.Read(cellSummary, cell*2+1)
					t.Write(walkStack, d%64)
					t.Compute(8) // multipole acceptance test
				}

				// Direct interactions with bodies in neighbouring zones;
				// partial results accumulate in private scratch.
				n := b.N(12)
				for k := 0; k < n; k++ {
					nb := (zone + bodiesPerZone + k*3) % nbodies
					t.Read(pos, nb*2)
					t.Read(walkStack, k%64)
					t.Compute(10)
				}
				t.Write(acc, (m%bodiesPerZone)*2)
				t.Write(acc, (m%bodiesPerZone)*2+1)
				t.Compute(6)
			}
			// Update phase: local integration, own positions written once.
			for m := 0; m < bodiesPerZone; m++ {
				body := zone + m
				t.Read(acc, m*2)
				t.Read(acc, m*2+1)
				t.Compute(12)
				t.Write(pos, body*2)
				t.Write(pos, body*2+1)
			}
		}
	})
}
