package workload

// Pverify models the boolean-circuit equivalence checker of the suite.
// The circuit graph (gate types and fanin lists) lives in shared memory,
// restructured for locality as the paper notes (compiler-restructured to
// eliminate false sharing); threads evaluate test branches with randomized
// depth-first walks whose lengths vary widely, giving the suite's largest
// coarse-grain thread-length deviation.
//
// Table 2 targets: 32 threads, ~23% thread-length deviation, ~92% shared
// references.

func pverify() App {
	return App{
		Name:        "Pverify",
		Grain:       Coarse,
		Threads:     32,
		CacheSize:   32 << 10,
		Description: "boolean circuit equivalence checking by branch enumeration",
		build:       buildPverify,
	}
}

func buildPverify(b *builder) {
	const (
		gates    = 4096
		fanin    = 3
		branches = 26
	)
	gateType := b.Shared(gates)
	fanins := b.Shared(gates * fanin)
	outputs := b.Shared(b.app.Threads * 8) // per-thread verdict slots

	b.EachThread(func(t *T) {
		visited := b.Private(t.ID, 96)

		// Branch counts vary with the circuit region: +-45%.
		n := b.N(branches + t.Intn(branches) - branches/2)
		for br := 0; br < n; br++ {
			// Start the walk at a gate in the thread's input cone, with
			// cones overlapping neighbouring threads'.
			g := (t.ID*gates/b.app.Threads + t.Intn(gates/4)) % gates
			depth := 20 + t.Intn(60)
			for d := 0; d < depth; d++ {
				t.Read(gateType, g)
				// Evaluate the gate: read every fanin.
				for f := 0; f < fanin; f++ {
					t.Read(fanins, g*fanin+f)
				}
				t.Compute(7)
				if d%8 == 0 {
					t.Write(visited, d%96)
				}
				// Follow a fanin edge deeper into the circuit.
				g = (g*5 + d*13 + 1) % gates
			}
			// Publish the branch verdict and cross-check against a
			// neighbour's published verdicts (runtime coherence
			// traffic between adjacent threads).
			t.Compute(9)
			t.Write(outputs, t.ID*8+br%8)
			if br%4 == 0 {
				peer := (t.ID + 1) % b.app.Threads
				t.Read(outputs, peer*8+br%8)
			}
		}
	})
}
