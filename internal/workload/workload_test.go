package workload

import (
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// expectations encode the Table 2 shape each kernel is tuned toward:
// thread count exactly, percent shared references and thread-length
// deviation within a band.
var expectations = map[string]struct {
	threads        int
	pctSharedLo    float64
	pctSharedHi    float64
	lenDevLo       float64
	lenDevHi       float64
	paperPctShared float64 // Table 2 value, for reference
	paperLenDev    float64
}{
	"LocusRoute":  {32, 45, 70, 4, 25, 57.4, 14.6},
	"Water":       {32, 55, 80, 0, 6, 71.7, 2.4},
	"MP3D":        {32, 70, 92, 0, 6, 82.6, 0.9},
	"Cholesky":    {48, 10, 28, 0, 6, 17.1, 0.0},
	"Barnes-Hut":  {32, 48, 72, 1, 15, 58.6, 7.0},
	"Pverify":     {32, 80, 98, 8, 45, 91.7, 22.8},
	"Topopt":      {32, 38, 65, 0, 10, 50.7, 0.0},
	"Fullconn":    {64, 85, 99, 1, 15, 95.6, 6.1},
	"Grav":        {48, 88, 100, 15, 60, 98.2, 38.9},
	"Health":      {64, 80, 99, 45, 160, 93.5, 95.2},
	"Patch":       {64, 85, 100, 25, 95, 97.4, 59.1},
	"Vandermonde": {48, 88, 100, 50, 140, 98.7, 80.3},
	"FFT":         {64, 55, 90, 110, 280, 72.4, 187.6},
	"Gauss":       {127, 80, 100, 50, 130, 95.0, 84.6},
}

func TestSuiteComplete(t *testing.T) {
	apps := Apps()
	if len(apps) != 14 {
		t.Fatalf("suite has %d applications, want 14", len(apps))
	}
	coarse, medium := 0, 0
	for _, a := range apps {
		if a.Grain == Coarse {
			coarse++
		} else {
			medium++
		}
	}
	if coarse != 7 || medium != 7 {
		t.Errorf("coarse/medium = %d/%d, want 7/7", coarse, medium)
	}
	for _, a := range apps {
		if _, ok := expectations[a.Name]; !ok {
			t.Errorf("no expectations for %s", a.Name)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("Gauss")
	if err != nil || a.Name != "Gauss" {
		t.Errorf("ByName(Gauss) = %v, %v", a.Name, err)
	}
	if _, err := ByName("NotAnApp"); err == nil {
		t.Error("unknown app accepted")
	}
	if len(Names()) != 14 {
		t.Errorf("Names() has %d entries", len(Names()))
	}
}

func TestAllAppsBuildValidTraces(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			tr, err := a.Build(DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			if tr.NumThreads() != a.Threads {
				t.Errorf("threads = %d, want %d", tr.NumThreads(), a.Threads)
			}
			if err := tr.Validate(); err != nil {
				t.Error(err)
			}
			if tr.TotalRefs() < 1000 {
				t.Errorf("suspiciously small trace: %d refs", tr.TotalRefs())
			}
		})
	}
}

func TestCharacteristicsMatchPaperShape(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			exp := expectations[a.Name]
			tr, err := a.Build(DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			c := analysis.Analyze(tr).Characteristics(nil)
			if c.Threads != exp.threads {
				t.Errorf("threads = %d, want %d", c.Threads, exp.threads)
			}
			if c.PctSharedRefs < exp.pctSharedLo || c.PctSharedRefs > exp.pctSharedHi {
				t.Errorf("%%shared = %.1f, want in [%v, %v] (paper: %v)",
					c.PctSharedRefs, exp.pctSharedLo, exp.pctSharedHi, exp.paperPctShared)
			}
			if c.Length.Dev < exp.lenDevLo || c.Length.Dev > exp.lenDevHi {
				t.Errorf("length dev = %.1f%%, want in [%v, %v] (paper: %v)",
					c.Length.Dev, exp.lenDevLo, exp.lenDevHi, exp.paperLenDev)
			}
		})
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, name := range []string{"LocusRoute", "FFT", "Gauss"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := a.Build(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		t2, err := a.Build(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if t1.TotalRefs() != t2.TotalRefs() || t1.TotalInstructions() != t2.TotalInstructions() {
			t.Errorf("%s: generation not deterministic", name)
		}
		for i := range t1.Threads {
			if t1.Threads[i].Refs() != t2.Threads[i].Refs() {
				t.Errorf("%s: thread %d differs between builds", name, i)
				break
			}
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	a, _ := ByName("LocusRoute")
	t1, err := a.Build(Params{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := a.Build(Params{Scale: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if t1.TotalInstructions() == t2.TotalInstructions() {
		t.Error("different seeds produced identical instruction counts (suspicious)")
	}
}

func TestScaleScalesWork(t *testing.T) {
	a, _ := ByName("Water")
	small, err := a.Build(Params{Scale: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := a.Build(Params{Scale: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.TotalInstructions()) / float64(small.TotalInstructions())
	if ratio < 2 || ratio > 8 {
		t.Errorf("scale 2 vs 0.5 instruction ratio = %.2f, want roughly 4x", ratio)
	}
	if _, err := a.Build(Params{Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := a.Build(Params{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
}

// TestPrivateIsolation: private addresses referenced by thread t must lie
// in t's own arena; no two threads may touch the same private address.
func TestPrivateIsolation(t *testing.T) {
	for _, a := range Apps() {
		tr, err := a.Build(DefaultParams())
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, th := range tr.Threads {
			lo := uint64(th.ID+1) * privateStride
			hi := lo + privateStride
			for c := th.Cursor(); ; {
				e, ok := c.Next()
				if !ok {
					break
				}
				if trace.IsShared(e.Addr) {
					continue
				}
				if e.Addr < lo || e.Addr >= hi {
					t.Fatalf("%s: thread %d touches foreign private address %#x", a.Name, th.ID, e.Addr)
				}
			}
		}
	}
}

// TestSequentialSharing verifies the key program property the paper
// identifies (§4.2): shared addresses are accessed in long single-thread
// runs. We measure the mean run length over the thread-interleaved
// reference stream per shared address; it must be comfortably above 1
// (strictly alternating access would give ~1).
func TestSequentialSharingRuns(t *testing.T) {
	for _, name := range []string{"Water", "Barnes-Hut", "Gauss", "FFT"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := a.Build(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		// Per shared address: count accesses and thread changes in trace
		// order (approximating temporal interleave by thread rotation).
		last := make(map[uint64]int)
		runs := make(map[uint64]int)
		accesses := make(map[uint64]int)
		for _, th := range tr.Threads {
			for c := th.Cursor(); ; {
				e, ok := c.Next()
				if !ok {
					break
				}
				if !trace.IsShared(e.Addr) {
					continue
				}
				accesses[e.Addr]++
				if prev, seen := last[e.Addr]; !seen || prev != th.ID {
					runs[e.Addr]++
				}
				last[e.Addr] = th.ID
			}
		}
		var totalAcc, totalRuns float64
		for addr, n := range accesses {
			if runs[addr] == 0 {
				continue
			}
			totalAcc += float64(n)
			totalRuns += float64(runs[addr])
		}
		meanRun := totalAcc / math.Max(totalRuns, 1)
		if meanRun < 1.5 {
			t.Errorf("%s: mean same-thread run length = %.2f, want sequential sharing (>1.5)", name, meanRun)
		}
	}
}

func TestCacheSizesMatchPaper(t *testing.T) {
	for _, a := range Apps() {
		want := 64 << 10
		if a.Grain == Coarse || a.Name == "Health" || a.Name == "FFT" {
			want = 32 << 10
		}
		if a.CacheSize != want {
			t.Errorf("%s cache size = %d, want %d", a.Name, a.CacheSize, want)
		}
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{base: trace.SharedBase, words: 10}
	if r.Addr(0) != trace.SharedBase {
		t.Error("Addr(0) wrong")
	}
	if r.Addr(10) != r.Addr(0) || r.Addr(-1) != r.Addr(9) {
		t.Error("Addr wrap wrong")
	}
	s := r.Slice(2, 3)
	if s.Len() != 3 || s.Addr(0) != r.Addr(2) {
		t.Error("Slice wrong")
	}
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { r.Slice(8, 5) })
	mustPanic(func() { Region{}.Addr(0) })
}

func TestGrainString(t *testing.T) {
	if Coarse.String() != "coarse" || Medium.String() != "medium" {
		t.Error("grain strings wrong")
	}
}

func TestReverseBits(t *testing.T) {
	if reverseBits(1, 3) != 4 || reverseBits(6, 3) != 3 || reverseBits(0, 5) != 0 {
		t.Error("reverseBits wrong")
	}
}
