// Package workload generates per-thread memory reference traces for
// fourteen explicitly parallel applications modeled on the paper's suite
// (§3.1, Table 1/Table 2): seven coarse-grain programs (LocusRoute, Water,
// MP3D, Cholesky, Barnes-Hut, Pverify, Topopt) and seven medium-grain
// Presto programs (Fullconn, Grav, Health, Patch, Vandermonde, FFT,
// Gauss).
//
// The paper traced real binaries with MPtrace on a Sequent Symmetry; those
// traces are not available, so each application here is a scaled-down
// kernel that executes the same class of algorithm through an instrumented
// load/store shim and emits the reference stream. Each kernel is tuned so
// its static characteristics (thread count, thread-length deviation,
// percentage of shared references, sharing uniformity, sequential phase
// structure) land near the paper's Table 2 row — the properties the paper
// identifies as decisive for its result.
//
// All generation is deterministic given Params.Seed.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// Grain classifies applications the way the paper does.
type Grain int

const (
	// Coarse applications have fewer, longer threads (SPLASH-style).
	Coarse Grain = iota
	// Medium applications ran under the Presto environment: shorter,
	// more numerous threads.
	Medium
)

// String returns "coarse" or "medium".
func (g Grain) String() string {
	if g == Medium {
		return "medium"
	}
	return "coarse"
}

// Params controls trace generation.
type Params struct {
	// Scale multiplies all iteration counts; 1.0 is the library default
	// (thread lengths of a few thousand to a few tens of thousands of
	// instructions — the paper's lengths scaled down together with the
	// caches, exactly as the paper itself scaled its data sets).
	Scale float64
	// Seed drives all pseudo-random generation.
	Seed int64
}

// DefaultParams returns Scale 1.0 with a fixed seed.
func DefaultParams() Params { return Params{Scale: 1, Seed: 1994} }

// App is one generatable application.
type App struct {
	// Name matches the paper's application name.
	Name string
	// Grain is the paper's granularity class.
	Grain Grain
	// Threads is the number of threads the application creates.
	Threads int
	// CacheSize is the per-processor cache the paper simulated for this
	// program (32 KB for the coarse programs plus Health and FFT; 64 KB
	// for the other medium programs), already scaled to our trace sizes.
	CacheSize int
	// Description says what the program computes.
	Description string

	build func(b *builder)
}

// Build generates the application's trace.
func (a App) Build(p Params) (*trace.Trace, error) {
	if p.Scale <= 0 {
		return nil, fmt.Errorf("workload: scale must be positive, got %v", p.Scale)
	}
	b := newBuilder(a, p)
	a.build(b)
	b.finishAll()
	tr := b.tr
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s generated an invalid trace: %w", a.Name, err)
	}
	return tr, nil
}

// Apps returns the full suite in the paper's order (coarse then medium).
func Apps() []App {
	return []App{
		locusRoute(), water(), mp3d(), cholesky(), barnesHut(), pverify(), topopt(),
		fullconn(), grav(), health(), patch(), vandermonde(), fft(), gauss(),
	}
}

// ByName returns the named application.
func ByName(name string) (App, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workload: unknown application %q", name)
}

// Names returns every application name in suite order.
func Names() []string {
	apps := Apps()
	ns := make([]string, len(apps))
	for i, a := range apps {
		ns[i] = a.Name
	}
	return ns
}

// ---- builder substrate ----

// privateStride separates per-thread private arenas.
const privateStride uint64 = 1 << 28

// Region is a contiguous array of words.
type Region struct {
	base  uint64
	words int
}

// Addr returns the byte address of element i. Indexing wraps modulo the
// region size, so kernels may address with unreduced indices.
func (r Region) Addr(i int) uint64 {
	if r.words <= 0 {
		panic("workload: empty region")
	}
	i %= r.words
	if i < 0 {
		i += r.words
	}
	return r.base + uint64(i)*trace.WordSize
}

// Len returns the number of words in the region.
func (r Region) Len() int { return r.words }

// Slice returns the sub-region [from, from+words).
func (r Region) Slice(from, words int) Region {
	if from < 0 || words < 0 || from+words > r.words {
		panic(fmt.Sprintf("workload: slice [%d,%d) of region with %d words", from, from+words, r.words))
	}
	return Region{base: r.base + uint64(from)*trace.WordSize, words: words}
}

// builder holds per-application generation state.
type builder struct {
	app          App
	tr           *trace.Trace
	rng          *rand.Rand
	scale        float64
	sharedNext   uint64
	sharedAllocs int
	privNext     []uint64
	threads      []*T
}

func newBuilder(a App, p Params) *builder {
	b := &builder{
		app:        a,
		tr:         trace.New(a.Name, a.Threads),
		rng:        rand.New(rand.NewSource(p.Seed)),
		scale:      p.Scale,
		sharedNext: trace.SharedBase,
		privNext:   make([]uint64, a.Threads),
		threads:    make([]*T, a.Threads),
	}
	for t := 0; t < a.Threads; t++ {
		// Offset each arena base so private data does not alias across
		// threads or onto the shared segment's cache sets — a pure
		// address-layout artifact real programs' heaps do not have.
		// Two components: a fine stagger of 17 lines per thread spreads
		// arenas within small (<= 64 KB) caches, and a coarse
		// pseudo-random multiple of 64 KB (invisible to those caches)
		// spreads them across the 8 MB "infinite" cache of §4.3.
		fine := uint64(t) * 17 * 64
		coarse := (uint64(t+3) * 2654435761 % (1 << 22)) &^ 65535
		b.privNext[t] = uint64(t+1)*privateStride + coarse + fine
		b.threads[t] = &T{
			ID:  t,
			rec: trace.NewRecorder(b.tr, t),
			rng: rand.New(rand.NewSource(p.Seed ^ int64(t)*-0x61C8864680B583EB)),
		}
	}
	return b
}

// N scales an iteration count, never below 1.
func (b *builder) N(n int) int {
	v := int(float64(n) * b.scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Shared allocates a shared array of the given word count. Allocations
// are separated by a deterministic odd-line-count gap so that differently
// sized arrays do not land on systematically overlapping cache sets (a
// back-to-back layout would, e.g., align a table directly over a
// power-of-two-sized array in a direct-mapped cache — an artifact real
// allocators' headers and padding break up).
func (b *builder) Shared(words int) Region {
	if words <= 0 {
		panic("workload: non-positive shared allocation")
	}
	r := Region{base: b.sharedNext, words: words}
	b.sharedAllocs++
	gap := uint64(17+251*b.sharedAllocs) % 509
	b.sharedNext += (uint64(words) + gap) * trace.WordSize
	return r
}

// Private allocates a private array for thread t.
func (b *builder) Private(t, words int) Region {
	if words <= 0 {
		panic("workload: non-positive private allocation")
	}
	if uint64(words)*trace.WordSize > privateStride {
		panic("workload: private allocation exceeds arena stride")
	}
	r := Region{base: b.privNext[t], words: words}
	b.privNext[t] += uint64(words) * trace.WordSize
	return r
}

// Thread returns thread t's shim.
func (b *builder) Thread(t int) *T { return b.threads[t] }

// EachThread runs f for every thread in ID order.
func (b *builder) EachThread(f func(t *T)) {
	for _, t := range b.threads {
		f(t)
	}
}

// finishAll flushes each thread's trailing computation by touching its
// private scratch word, ensuring no recorded work is dropped.
func (b *builder) finishAll() {
	for t, th := range b.threads {
		if th.rec.PendingGap() > 0 || b.tr.Threads[t].Refs() == 0 {
			th.rec.Load(uint64(t+1) * privateStride)
		}
	}
}

// T is the per-thread instrumented memory shim the kernels program
// against.
type T struct {
	// ID is the thread's index.
	ID  int
	rec *trace.Recorder
	rng *rand.Rand
}

// Read records a load of element i of region r.
func (t *T) Read(r Region, i int) { t.rec.Load(r.Addr(i)) }

// Write records a store to element i of region r.
func (t *T) Write(r Region, i int) { t.rec.Store(r.Addr(i)) }

// ReadRange loads elements [from, from+n) in order.
func (t *T) ReadRange(r Region, from, n int) {
	for i := 0; i < n; i++ {
		t.rec.Load(r.Addr(from + i))
	}
}

// Compute records n non-memory instructions.
func (t *T) Compute(n int) { t.rec.Compute(n) }

// Intn returns a deterministic pseudo-random int in [0, n) from the
// thread's private stream.
func (t *T) Intn(n int) int { return t.rng.Intn(n) }

// Float64 returns a deterministic pseudo-random float in [0, 1).
func (t *T) Float64() float64 { return t.rng.Float64() }
