package workload

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestCharacteristicsGolden pins the exact measured characteristics of the
// whole suite at the default parameters. Workload generation is fully
// deterministic, so any drift — an accidental kernel edit, a substrate
// change that shifts addresses — shows up as a diff against the golden
// file. Regenerate deliberately with: go test ./internal/workload -update
func TestCharacteristicsGolden(t *testing.T) {
	var b strings.Builder
	b.WriteString("# app threads refs instr pairMean pairDev pctShared lenDev\n")
	for _, a := range Apps() {
		tr, err := a.Build(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		c := analysis.Analyze(tr).Characteristics(nil)
		fmt.Fprintf(&b, "%s %d %d %d %.1f %.1f %.2f %.2f\n",
			a.Name, a.Threads, tr.TotalRefs(), tr.TotalInstructions(),
			c.Pairwise.Mean, c.Pairwise.Dev, c.PctSharedRefs, c.Length.Dev)
	}
	got := b.String()

	path := filepath.Join("testdata", "characteristics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("workload characteristics drifted from golden file.\n--- got ---\n%s--- want ---\n%s"+
			"(if the change is intentional, regenerate with -update and revisit EXPERIMENTS.md)",
			got, want)
	}
}
