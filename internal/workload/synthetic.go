package workload

import "fmt"

// SyntheticSpec describes a parameterized application whose program
// characteristics — the quantities Table 2 measures — are set directly
// rather than emerging from an algorithm. The paper attributes its
// negative result to specific characteristics of real programs (uniform
// and sequential sharing, low thread-length deviation mattering less than
// load balance); a synthetic workload lets each characteristic be swept in
// isolation to test exactly where the paper's conclusion holds and where
// it breaks down.
type SyntheticSpec struct {
	// Name labels the generated trace.
	Name string
	// Threads is the thread count (>= 2).
	Threads int
	// WorkUnits is the base number of work units per thread; each unit
	// is a handful of references plus computation.
	WorkUnits int
	// LengthSkew sets thread-length inequality: 0 gives uniform
	// lengths; s gives lengths spread uniformly over [1, 1+2s] x base
	// (deviation grows with s).
	LengthSkew float64
	// SharedFrac is the probability a unit's references target shared
	// data (the rest go to private scratch).
	SharedFrac float64
	// WriteFrac is the probability a shared access run ends in a write.
	WriteFrac float64
	// Uniformity selects who shares with whom: 1.0 sends every shared
	// access to the globally shared region (all pairs share equally —
	// the paper's workload); 0.0 sends them to per-neighbour-pair
	// regions (strongly pairwise sharing — the best case for
	// sharing-based placement).
	Uniformity float64
	// RunLength is the number of consecutive references a thread makes
	// to a shared datum before moving on (the paper's "sequential
	// sharing": high run lengths produce little coherence traffic).
	RunLength int
	// SharedWords sizes the globally shared region.
	SharedWords int
}

// DefaultSyntheticSpec mirrors the paper's workload shape: uniform
// sequential sharing, moderate shared fraction, mild length skew.
func DefaultSyntheticSpec() SyntheticSpec {
	return SyntheticSpec{
		Name:        "Synthetic",
		Threads:     32,
		WorkUnits:   400,
		LengthSkew:  0.15,
		SharedFrac:  0.7,
		WriteFrac:   0.25,
		Uniformity:  1.0,
		RunLength:   6,
		SharedWords: 8192,
	}
}

// Validate reports the first problem with the spec.
func (sp SyntheticSpec) Validate() error {
	switch {
	case sp.Threads < 2:
		return fmt.Errorf("workload: synthetic needs >= 2 threads, got %d", sp.Threads)
	case sp.WorkUnits < 1:
		return fmt.Errorf("workload: synthetic needs >= 1 work unit")
	case sp.SharedFrac < 0 || sp.SharedFrac > 1:
		return fmt.Errorf("workload: shared fraction %v outside [0,1]", sp.SharedFrac)
	case sp.WriteFrac < 0 || sp.WriteFrac > 1:
		return fmt.Errorf("workload: write fraction %v outside [0,1]", sp.WriteFrac)
	case sp.Uniformity < 0 || sp.Uniformity > 1:
		return fmt.Errorf("workload: uniformity %v outside [0,1]", sp.Uniformity)
	case sp.RunLength < 1:
		return fmt.Errorf("workload: run length must be >= 1")
	case sp.LengthSkew < 0:
		return fmt.Errorf("workload: negative length skew")
	case sp.SharedWords < sp.Threads:
		return fmt.Errorf("workload: shared region smaller than thread count")
	}
	return nil
}

// Synthetic returns an App generating traces for the spec.
func Synthetic(sp SyntheticSpec) (App, error) {
	if err := sp.Validate(); err != nil {
		return App{}, err
	}
	return App{
		Name:        sp.Name,
		Grain:       Medium,
		Threads:     sp.Threads,
		CacheSize:   32 << 10,
		Description: "parameterized synthetic workload",
		build:       func(b *builder) { buildSynthetic(b, sp) },
	}, nil
}

func buildSynthetic(b *builder, sp SyntheticSpec) {
	global := b.Shared(sp.SharedWords)
	// One region per adjacent thread pair: pairRegions[i] is shared by
	// threads i and (i+1) mod Threads.
	const pairWords = 256
	pair := make([]Region, sp.Threads)
	for i := range pair {
		pair[i] = b.Shared(pairWords)
	}

	b.EachThread(func(t *T) {
		scratch := b.Private(t.ID, 512)

		units := float64(sp.WorkUnits) * (1 + 2*sp.LengthSkew*t.Float64())
		n := b.N(int(units))
		for u := 0; u < n; u++ {
			if t.Float64() < sp.SharedFrac {
				// A shared access run: RunLength consecutive touches
				// of a drifting address, ending in a write with
				// probability WriteFrac (sequential sharing).
				var reg Region
				var base int
				if t.Float64() < sp.Uniformity {
					// Uniformly random position: every thread pair
					// shares the whole global region equally.
					reg = global
					base = t.Intn(sp.SharedWords - sp.RunLength)
				} else if t.Intn(2) == 0 {
					reg = pair[t.ID]
					base = (u * 7) % pairWords
				} else {
					reg = pair[(t.ID+sp.Threads-1)%sp.Threads]
					base = (u * 11) % pairWords
				}
				for k := 0; k < sp.RunLength; k++ {
					last := k == sp.RunLength-1
					if last && t.Float64() < sp.WriteFrac {
						t.Write(reg, base+k/2)
					} else {
						t.Read(reg, base+k/2)
					}
					t.Compute(4)
				}
			} else {
				// Private work.
				for k := 0; k < sp.RunLength; k++ {
					if k%3 == 2 {
						t.Write(scratch, (u+k)%512)
					} else {
						t.Read(scratch, (u+k)%512)
					}
					t.Compute(4)
				}
			}
			t.Compute(6)
		}
	})
}
