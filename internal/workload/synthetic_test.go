package workload

import (
	"testing"

	"repro/internal/analysis"
)

func TestSyntheticSpecValidation(t *testing.T) {
	if err := DefaultSyntheticSpec().Validate(); err != nil {
		t.Errorf("default spec rejected: %v", err)
	}
	bad := []func(*SyntheticSpec){
		func(s *SyntheticSpec) { s.Threads = 1 },
		func(s *SyntheticSpec) { s.WorkUnits = 0 },
		func(s *SyntheticSpec) { s.SharedFrac = 1.5 },
		func(s *SyntheticSpec) { s.WriteFrac = -0.1 },
		func(s *SyntheticSpec) { s.Uniformity = 2 },
		func(s *SyntheticSpec) { s.RunLength = 0 },
		func(s *SyntheticSpec) { s.LengthSkew = -1 },
		func(s *SyntheticSpec) { s.SharedWords = 4 },
	}
	for i, mut := range bad {
		sp := DefaultSyntheticSpec()
		mut(&sp)
		if _, err := Synthetic(sp); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSyntheticSharedFraction(t *testing.T) {
	for _, frac := range []float64{0.2, 0.7, 0.95} {
		sp := DefaultSyntheticSpec()
		sp.SharedFrac = frac
		app, err := Synthetic(sp)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := app.Build(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		c := analysis.Analyze(tr).Characteristics(nil)
		if got := c.PctSharedRefs / 100; got < frac-0.12 || got > frac+0.12 {
			t.Errorf("SharedFrac %v: measured %.2f", frac, got)
		}
	}
}

func TestSyntheticLengthSkew(t *testing.T) {
	flat := DefaultSyntheticSpec()
	flat.LengthSkew = 0
	skewed := DefaultSyntheticSpec()
	skewed.LengthSkew = 1.0

	devOf := func(sp SyntheticSpec) float64 {
		app, err := Synthetic(sp)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := app.Build(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return analysis.Analyze(tr).Characteristics(nil).Length.Dev
	}
	if d := devOf(flat); d > 3 {
		t.Errorf("zero skew gives length dev %.1f%%, want ~0", d)
	}
	if d := devOf(skewed); d < 20 {
		t.Errorf("skew 1.0 gives length dev %.1f%%, want substantial", d)
	}
}

func TestSyntheticUniformityShapesPairwiseSharing(t *testing.T) {
	devOf := func(u float64) float64 {
		sp := DefaultSyntheticSpec()
		sp.Uniformity = u
		app, err := Synthetic(sp)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := app.Build(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		return analysis.Analyze(tr).Characteristics(nil).Pairwise.Dev
	}
	uniform := devOf(1.0)
	pairwise := devOf(0.0)
	// Neighbour-structured sharing concentrates on few pairs: its
	// pairwise deviation must far exceed the uniform case's.
	if pairwise < uniform*2 {
		t.Errorf("pairwise dev %.0f%% not clearly above uniform dev %.0f%%", pairwise, uniform)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	sp := DefaultSyntheticSpec()
	app, err := Synthetic(sp)
	if err != nil {
		t.Fatal(err)
	}
	a, err := app.Build(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := app.Build(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalInstructions() != b.TotalInstructions() || a.TotalRefs() != b.TotalRefs() {
		t.Error("synthetic generation not deterministic")
	}
}
