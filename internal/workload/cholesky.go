package workload

// Cholesky models the SPLASH sparse Cholesky factorization. Threads own
// column panels; the heavy inner work (panel updates) runs on private
// scratch, and only the pivot-column reads touch shared memory. This makes
// Cholesky the suite's low-sharing outlier: the paper reports only ~17%
// shared references, so sharing-based placement has little to work with.
//
// Table 2 targets: 48 threads, zero thread-length deviation, ~17% shared
// references.

func cholesky() App {
	return App{
		Name:        "Cholesky",
		Grain:       Coarse,
		Threads:     48,
		CacheSize:   32 << 10,
		Description: "sparse Cholesky factorization with private panel updates",
		build:       buildCholesky,
	}
}

func buildCholesky(b *builder) {
	const (
		colsPerThread = 6
		colLen        = 40 // nonzeros per column
	)
	ncols := colsPerThread * b.app.Threads
	columns := b.Shared(ncols * colLen)

	b.EachThread(func(t *T) {
		panel := b.Private(t.ID, colLen*colLen/4)
		accum := b.Private(t.ID, colLen)

		for c := 0; c < colsPerThread; c++ {
			col := t.ID*colsPerThread + c
			// Read the supernodal pivot columns this column depends on
			// (a fixed sparsity stencil reaching earlier columns).
			for dep := 1; dep <= 3; dep++ {
				pivot := (col + ncols - dep*7) % ncols
				n := b.N(colLen / 2)
				for i := 0; i < n; i++ {
					t.Read(columns, pivot*colLen+i)
					t.Compute(2)
					t.Write(accum, i%colLen)
				}
			}
			// cmod: the dense update runs entirely in the private panel.
			n := b.N(colLen)
			for i := 0; i < n; i++ {
				for j := 0; j < 6; j++ {
					t.Read(panel, (i*6+j)%(colLen*colLen/4))
					t.Compute(4)
				}
				t.Write(panel, i%(colLen*colLen/4))
				t.Read(accum, i%colLen)
				t.Compute(7)
			}
			// cdiv: scale and publish the finished column (own slice of
			// the shared matrix; written once — sequential sharing).
			m := b.N(colLen / 2)
			for i := 0; i < m; i++ {
				t.Read(panel, i)
				t.Compute(3)
				t.Write(columns, col*colLen+i)
			}
		}
	})
}
