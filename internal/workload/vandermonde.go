package workload

// Vandermonde models the Presto sequence of matrix operations over a set
// of Vandermonde systems (Newton divided-difference solves). Each thread
// owns one row of the coefficient triangle: computing row k requires the
// results of every earlier stage j < k, so per-thread work ramps
// quadratically — the large thread-length deviation the paper reports —
// while nearly every reference is to the shared matrices, interpolation
// points and staged coefficients, which all threads read uniformly.
//
// Table 2 targets: 48 threads, ~80% thread-length deviation, ~99% shared
// references, low runtime coherence (each row is written only by its
// owner).

func vandermonde() App {
	return App{
		Name:        "Vandermonde",
		Grain:       Medium,
		Threads:     48,
		CacheSize:   64 << 10,
		Description: "staged Vandermonde system solves over shared matrices",
		build:       buildVandermonde,
	}
}

func buildVandermonde(b *builder) {
	const (
		order    = 48 // matrix order == thread count
		matrices = 5
	)
	matrix := b.Shared(matrices * order * order)
	alphas := b.Shared(order)            // interpolation points, read by all
	coeffs := b.Shared(matrices * order) // staged coefficients, one owner per row

	b.EachThread(func(t *T) {
		k := t.ID
		for m := 0; m < matrices; m++ {
			// Row k's divided differences: stage j consumes the
			// published coefficients of stages < j along columns up to
			// k — a quadratic, lower-triangular work ramp.
			for j := 0; j < k; j++ {
				t.Read(alphas, j)
				t.Read(alphas, k)
				cols := b.N(k - j)
				for c := 0; c < cols; c++ {
					t.Read(matrix, m*order*order+k*order+(j+c)%order)
					t.Read(coeffs, m*order+j)
					t.Compute(4)
				}
				t.Compute(5)
			}
			// Publish row k's coefficient (sole writer of this slot).
			t.Read(matrix, m*order*order+k*order+k)
			t.Compute(6)
			t.Write(coeffs, m*order+k)
		}
	})
}
