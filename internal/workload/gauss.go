package workload

// Gauss models the Presto Gaussian elimination program: the suite's
// largest thread count (the paper reports 127 threads, the most of any
// application). Each thread owns one matrix row and applies every earlier
// pivot's elimination step to it: reads of the pivot rows are shared by
// *all* threads — the paper's example of an application "whose threads all
// shared the same data", i.e. perfectly uniform sharing that gives
// sharing-based placement nothing to exploit — while writes stay in the
// owned row, keeping runtime coherence traffic small. Work grows
// quadratically with the row index, giving the large length deviation.
//
// Table 2 targets: 127 threads, ~85% thread-length deviation, ~95% shared
// references.

func gauss() App {
	return App{
		Name:        "Gauss",
		Grain:       Medium,
		Threads:     127,
		CacheSize:   64 << 10,
		Description: "Gaussian elimination with one thread per matrix row",
		build:       buildGauss,
	}
}

func buildGauss(b *builder) {
	const (
		order = 127
		// stride pads rows to a whole number of cache lines; the paper
		// notes its programs' shared data was laid out (or restructured)
		// to eliminate false sharing, and unpadded 127-word rows would
		// false-share their boundary blocks between adjacent row owners.
		stride = 128
	)
	matrix := b.Shared(order * stride)
	pivotScale := b.Shared(order)

	b.EachThread(func(t *T) {
		multipliers := b.Private(t.ID, 8)
		row := t.ID

		for j := 0; j < row; j++ {
			// multiplier = A[row][j] / pivotScale[j]; the pivot scale
			// and pivot row are read-shared by every later row.
			t.Read(matrix, row*stride+j)
			t.Read(pivotScale, j)
			t.Compute(4)
			t.Write(multipliers, j%8)

			// Eliminate: read the pivot row, update the owned row over
			// the lower-triangular span.
			cols := b.N(row - j + 2)
			for c := 0; c < cols; c++ {
				col := (j + 1 + c) % order
				t.Read(matrix, j*stride+col) // pivot row: read by all
				t.Read(matrix, row*stride+col)
				t.Compute(3)
				t.Write(matrix, row*stride+col)
			}
		}
		// Publish this row's pivot scale for later rows.
		t.Read(matrix, row*stride+row)
		t.Compute(6)
		t.Write(pivotScale, row)

		// Residual check: every thread scans the whole matrix once to
		// verify its row against the factorization — the whole-matrix
		// read sharing that makes Gauss the paper's example of threads
		// that "all shared the same data" (uniform sharing).
		n := b.N(order * stride / 8)
		for i := 0; i < n; i++ {
			t.Read(matrix, (i*7+row)%(order*stride))
			if i%4 == 0 {
				t.Read(multipliers, i%8)
			}
			t.Compute(2)
		}
	})
}
