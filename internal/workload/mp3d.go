package workload

// MP3D models the SPLASH rarefied hypersonic-flow simulator. Particles are
// statically owned by threads, but every particle move reads and updates
// the shared space-cell array it flies through — the scattered write
// sharing that makes MP3D the classic coherence-traffic stress test.
//
// Table 2 targets: 32 threads, near-zero thread-length deviation, ~83%
// shared references.

func mp3d() App {
	return App{
		Name:        "MP3D",
		Grain:       Coarse,
		Threads:     32,
		CacheSize:   32 << 10,
		Description: "rarefied hypersonic flow: particles moving through shared space cells",
		build:       buildMP3D,
	}
}

func buildMP3D(b *builder) {
	const (
		particlesPerThread = 24
		steps              = 8
		cells              = 2048
	)
	nparticles := particlesPerThread * b.app.Threads
	particles := b.Shared(nparticles * 3) // position, velocity, energy
	space := b.Shared(cells)              // per-cell population/collision state
	reservoir := b.Shared(64)             // global boundary-condition state

	b.EachThread(func(t *T) {
		local := b.Private(t.ID, 128)
		own := t.ID * particlesPerThread

		for s := 0; s < steps; s++ {
			moves := b.N(60)
			for mv := 0; mv < moves; mv++ {
				p := own + mv%particlesPerThread
				// Read own particle state (shared segment, owned slice).
				t.Read(particles, p*3)
				t.Read(particles, p*3+1)
				t.Compute(11) // advance position

				// The particle drifts through cells near its owner's
				// spatial region, occasionally crossing into the next
				// region (real MP3D particles have strong spatial
				// locality; wholly random cells would exaggerate
				// coherence traffic by an order of magnitude).
				region := cells / b.app.Threads
				cell := t.ID*region + (p*3+mv+s*7)%region
				if t.Intn(8) == 0 {
					// Fast particles land in a uniformly random other
					// region: sharing is spread evenly over all thread
					// pairs, so no placement can co-locate it away.
					cell = t.Intn(b.app.Threads)*region + (p+mv)%region
				}
				t.Read(space, cell)
				t.Compute(6)
				t.Write(space, cell) // update cell population

				// Occasional collision against the cell's partner
				// particle and the global reservoir.
				if t.Intn(4) == 0 {
					t.Read(reservoir, cell%64)
					t.Compute(8)
					t.Write(particles, p*3+2)
				}
				// Write back own particle.
				t.Write(particles, p*3)
				t.Write(particles, p*3+1)
				t.Read(local, mv%128)
				t.Compute(3)
			}
		}
	})
}
