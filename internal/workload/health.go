package workload

// Health models the Presto discrete simulation of a distributed health
// care system: villages with doctors and patients, where serious cases are
// referred up to shared regional hospitals. Village populations follow a
// heavy-tailed distribution, so thread lengths vary enormously — the
// second largest deviation in the suite.
//
// Table 2 targets: 64 threads, ~95% thread-length deviation, ~94% shared
// references.

func health() App {
	return App{
		Name:        "Health",
		Grain:       Medium,
		Threads:     64,
		CacheSize:   32 << 10, // the paper simulates Health with 32 KB
		Description: "discrete simulation of doctors, patients and health centres",
		build:       buildHealth,
	}
}

func buildHealth(b *builder) {
	const (
		patientWords = 3
		basePatients = 24
		visitsEach   = 6
	)
	n := b.app.Threads
	// Each village's patient list is an owned slice of shared memory;
	// the regional hospital queues are shared hot spots.
	patients := b.Shared(n * basePatients * 8 * patientWords)
	hospitals := b.Shared(16 * 32)

	b.EachThread(func(t *T) {
		caseNotes := b.Private(t.ID, 64)

		// Heavy-tailed village size: most villages are small, a few are
		// an order of magnitude larger.
		pop := basePatients/2 + t.Intn(basePatients)
		if t.Intn(10) == 0 {
			pop *= 8
		}
		pop = b.N(pop)
		villageBase := t.ID * basePatients * 8 * patientWords

		for p := 0; p < pop; p++ {
			slot := villageBase + (p%(basePatients*8))*patientWords
			for v := 0; v < visitsEach; v++ {
				// Examine the patient record.
				t.Read(patients, slot)
				t.Read(patients, slot+1)
				t.Compute(7)
				t.Write(patients, slot+2) // update condition
				if t.Intn(12) == 0 {
					// Refer to the regional hospital: contended queue.
					hq := (t.ID / 4) % 16
					t.Read(hospitals, hq*32)
					t.Compute(4)
					t.Write(hospitals, hq*32+1+t.Intn(30))
				}
				if (p+v)%4 == 0 {
					t.Write(caseNotes, (p+v)%64)
				}
				t.Compute(5)
			}
		}
	})
}
