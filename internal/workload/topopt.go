package workload

// Topopt models the topological-optimization CAD tool: simulated annealing
// over a shared VLSI circuit. Each thread anneals moves within its own
// circuit partition (the paper notes the shared data was restructured for
// locality), evaluating a move by reading a handful of shared nodes and
// committing accepted moves with shared writes; per-move bookkeeping
// (cost tables, RNG state) is private, which pulls the shared fraction
// down to about half.
//
// Table 2 targets: 32 threads, ~0% thread-length deviation, ~51% shared
// references, and the suite's least uniform N-way sharing.

func topopt() App {
	return App{
		Name:        "Topopt",
		Grain:       Coarse,
		Threads:     32,
		CacheSize:   32 << 10,
		Description: "simulated annealing for topological optimization of a shared circuit",
		build:       buildTopopt,
	}
}

func buildTopopt(b *builder) {
	const (
		nodes        = 6144
		movesPerTemp = 40
		temps        = 4
	)
	circuit := b.Shared(nodes)
	netWeights := b.Shared(nodes / 2)
	annealState := b.Shared(16) // global temperature & statistics, read-shared
	partition := nodes / b.app.Threads

	b.EachThread(func(t *T) {
		costTable := b.Private(t.ID, 256)
		moveLog := b.Private(t.ID, 128)
		home := t.ID * partition

		for temp := 0; temp < temps; temp++ {
			moves := b.N(movesPerTemp)
			for mv := 0; mv < moves; mv++ {
				// Pick two nodes: mostly within the partition, with a
				// small temperature-dependent chance of a far swap into
				// a specific peer partition (pairwise-structured
				// sharing, hence the non-uniform N-way values).
				a := home + t.Intn(partition)
				bNode := home + t.Intn(partition)
				if t.Intn(5+temp*3) == 0 {
					peer := (t.ID + 1 + t.Intn(3)) % b.app.Threads
					bNode = peer*partition + t.Intn(partition)
				}

				// Evaluate the swap: read both nodes, their nets, and the
				// global annealing temperature.
				t.Read(circuit, a)
				t.Read(circuit, bNode)
				t.Read(netWeights, a/2)
				t.Read(netWeights, bNode/2)
				t.Read(annealState, temp*4)
				t.Compute(9)

				// Private cost model lookups dominate the bookkeeping.
				for k := 0; k < 4; k++ {
					t.Read(costTable, (a+k*37)%256)
				}
				t.Write(moveLog, mv%128)
				t.Compute(8)

				// Accept roughly half the moves: commit with writes.
				if (a+bNode+mv)%2 == 0 {
					t.Write(circuit, a)
					t.Write(circuit, bNode)
					t.Compute(4)
				}
			}
		}
	})
}
