package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/advise"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// POST /v1/advise — the placement advisor. The client supplies what it
// knows about the workload's sharing, one of:
//
//   - "app": a catalog workload; the server measures its thread-pair
//     coherence traffic with a one-thread-per-processor run (memoized
//     per workload params, like the library's COHERENCE pipeline);
//   - "trace_mtt2": a base64 MTT2 trace the client observed; the server
//     runs the same measurement on it;
//   - "pair" (+ "lengths"): an already-measured pair matrix, e.g. an
//     online checkpoint exported from a live system.
//
// The reply is the COHERENCE clustering of that matrix plus the
// predicted cycle savings over the caller's current placement (avoided
// cross-processor traffic times the memory latency) — the same metric
// the online engine's policies act on mid-run.

// AdviseRequest is the POST /v1/advise body. Exactly one of App,
// TraceMTT2 or Pair must be set.
type AdviseRequest struct {
	Params *Params `json:"params,omitempty"`
	// App names a catalog workload to measure server-side.
	App string `json:"app,omitempty"`
	// TraceMTT2 is an observed MTT2 trace (base64 in JSON) to measure.
	TraceMTT2 []byte `json:"trace_mtt2,omitempty"`
	// Pair is a live per-thread-pair traffic matrix (square, symmetric by
	// convention); Lengths must carry the per-thread instruction counts
	// alongside, for load balancing.
	Pair    [][]uint64 `json:"pair,omitempty"`
	Lengths []uint64   `json:"lengths,omitempty"`
	// Procs is the processor count to recommend a placement for.
	Procs int `json:"procs"`
	// Current, when set, is the caller's current placement; the reply's
	// predicted savings compare the recommendation against it.
	Current *PlacementSpec `json:"current,omitempty"`
	// Engine selects the measurement engine for the trace_mtt2 source
	// ("reference" forces the reference engine; anything else measures on
	// the fast engine). The app source always measures through the
	// suite's memoized pipeline.
	Engine string `json:"engine,omitempty"`
	// MemLatency overrides the cycle value of one avoided remote
	// coherence event in the savings prediction (0 = the server's
	// configured memory latency).
	MemLatency uint64 `json:"mem_latency,omitempty"`
}

// AdviseResponse is the POST /v1/advise reply.
type AdviseResponse struct {
	// Placement is the recommended clustering (algorithm "COHERENCE").
	Placement *PlacementSpec `json:"placement"`
	// Threads is the thread count the recommendation covers.
	Threads int `json:"threads"`
	// CurrentCross and ProposedCross are the cross-processor shares of
	// the pair traffic under the current and recommended placements.
	CurrentCross  uint64 `json:"current_cross"`
	ProposedCross uint64 `json:"proposed_cross"`
	// PredictedSavings is the predicted cycle savings of adopting the
	// recommendation (0 without a current placement, or when the current
	// placement is already at least as good).
	PredictedSavings uint64 `json:"predicted_savings"`
	// Measured reports that the server ran a measurement simulation (app
	// and trace_mtt2 sources; false for the pair source).
	Measured bool `json:"measured,omitempty"`
	// Trace is the request's distributed-trace ID. Empty when telemetry
	// is disabled.
	Trace string `json:"trace,omitempty"`
}

// DecodeAdviseRequest reads and validates a POST /v1/advise body.
func DecodeAdviseRequest(r io.Reader) (*AdviseRequest, error) {
	var req AdviseRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate checks shape and bounds; like the other request validators it
// is the complete acceptance predicate for untrusted input.
func (r *AdviseRequest) Validate() error {
	if err := validateParams(r.Params); err != nil {
		return err
	}
	if err := validateEngine(r.Engine); err != nil {
		return err
	}
	sources := 0
	if r.App != "" {
		sources++
	}
	if len(r.TraceMTT2) > 0 {
		sources++
	}
	if len(r.Pair) > 0 {
		sources++
	}
	if sources != 1 {
		return errors.New("exactly one of app, trace_mtt2 or pair is required")
	}
	if r.App != "" {
		if err := validateApp(r.App); err != nil {
			return err
		}
	}
	if len(r.Pair) > 0 {
		n := len(r.Pair)
		if n > MaxClusterThreads {
			return fmt.Errorf("pair matrix exceeds %d threads", MaxClusterThreads)
		}
		for i, row := range r.Pair {
			if len(row) != n {
				return fmt.Errorf("pair row %d has %d columns, want %d", i, len(row), n)
			}
		}
		if len(r.Lengths) != n {
			return fmt.Errorf("lengths has %d entries, want %d (one per pair row)", len(r.Lengths), n)
		}
	} else if len(r.Lengths) > 0 {
		return errors.New("lengths is only valid with pair")
	}
	if r.Procs < 1 || r.Procs > MaxProcs {
		return fmt.Errorf("procs %d out of range [1, %d]", r.Procs, MaxProcs)
	}
	if r.Current != nil {
		if err := r.Current.validate(); err != nil {
			return err
		}
	}
	return nil
}

// handleAdvise answers POST /v1/advise synchronously: the measurement
// (when one runs) is a single bounded one-thread-per-processor cell, not
// a sweep, so it does not flow through the job queue.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errServerDraining.Error(), true)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	req, err := DecodeAdviseRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	sctx := obs.SpanContext{}
	if s.spans != nil {
		span := s.spans.Start(s.traceFromRequest(r), s.opts.ServiceName, "advise "+adviseLabel(req))
		defer span.End()
		sctx = span.Context()
		w.Header().Set(obs.TraceHeader, sctx.HeaderValue())
	}
	resp, err := s.advise(req, sctx)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error(), false)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// adviseLabel names the request's sharing source for spans.
func adviseLabel(req *AdviseRequest) string {
	switch {
	case req.App != "":
		return req.App
	case len(req.TraceMTT2) > 0:
		return "trace"
	default:
		return "pair"
	}
}

// advise resolves the request's sharing source to a (pair, lengths)
// measurement and recommends a placement from it.
func (s *Server) advise(req *AdviseRequest, sctx obs.SpanContext) (*AdviseResponse, error) {
	var (
		pair     [][]uint64
		lengths  []uint64
		memLat   = req.MemLatency
		measured bool
	)
	switch {
	case req.App != "":
		suite := s.suiteFor(resolveParams(req.Params))
		tr, err := suite.Trace(req.App)
		if err != nil {
			return nil, err
		}
		measureStart := time.Now()
		pair, _, err = suite.CoherenceMeasurement(req.App)
		if err != nil {
			return nil, err
		}
		if s.spans != nil && sctx.Valid() {
			s.spans.AddSpan(sctx, s.opts.ServiceName, "measure "+req.App, measureStart, time.Now())
		}
		lengths, measured = advise.Lengths(tr), true
		if memLat == 0 {
			cfg, err := suite.Config(req.App, req.Procs, false)
			if err != nil {
				return nil, err
			}
			memLat = cfg.MemLatency
		}
	case len(req.TraceMTT2) > 0:
		tr, err := trace.ReadFrom(bytes.NewReader(req.TraceMTT2))
		if err != nil {
			return nil, fmt.Errorf("trace_mtt2: %w", err)
		}
		if tr.NumThreads() > MaxProcs {
			return nil, fmt.Errorf("trace has %d threads; the one-thread-per-processor measurement is capped at %d", tr.NumThreads(), MaxProcs)
		}
		cfg := sim.DefaultConfig(tr.NumThreads())
		if memLat != 0 {
			cfg.MemLatency = memLat
		} else {
			memLat = cfg.MemLatency
		}
		eng := sim.FastEngine
		if req.Engine == EngineReference {
			eng = sim.ReferenceEngine
		}
		measureStart := time.Now()
		pair, _, err = advise.MeasurePairTraffic(tr, cfg, eng)
		if err != nil {
			return nil, err
		}
		if s.spans != nil && sctx.Valid() {
			s.spans.AddSpan(sctx, s.opts.ServiceName, "measure trace", measureStart, time.Now())
		}
		lengths, measured = advise.Lengths(tr), true
	default:
		pair, lengths = req.Pair, req.Lengths
		if memLat == 0 {
			memLat = sim.DefaultConfig(req.Procs).MemLatency
		}
	}

	var cur *placement.Placement
	if req.Current != nil {
		cur = &placement.Placement{Algorithm: req.Current.Algorithm, Clusters: req.Current.Clusters}
	}
	rec, err := advise.Recommend(pair, lengths, req.Procs, cur, memLat)
	if err != nil {
		return nil, err
	}
	return &AdviseResponse{
		Placement: &PlacementSpec{
			Algorithm: rec.Placement.Algorithm,
			Clusters:  rec.Placement.Clusters,
		},
		Threads:          len(lengths),
		CurrentCross:     rec.CurrentCross,
		ProposedCross:    rec.ProposedCross,
		PredictedSavings: rec.PredictedSavings,
		Measured:         measured,
		Trace:            sctx.Trace,
	}, nil
}
