package webhook

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/retry"
)

// fastPolicy keeps test schedules tight.
var fastPolicy = retry.Policy{
	BaseDelay:   time.Millisecond,
	MaxDelay:    10 * time.Millisecond,
	MaxAttempts: 5,
	Jitter:      -1,
}

// receiver is an httptest endpoint scripted with per-attempt status
// codes (the last one repeats); it records bodies and delivery IDs.
type receiver struct {
	mu      sync.Mutex
	script  []int
	calls   int
	bodies  []string
	ids     []string
	headers []http.Header
	srv     *httptest.Server
}

func newReceiver(t *testing.T, script ...int) *receiver {
	t.Helper()
	r := &receiver{script: script}
	r.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := io.ReadAll(req.Body)
		r.mu.Lock()
		code := r.script[min(r.calls, len(r.script)-1)]
		r.calls++
		r.bodies = append(r.bodies, string(body))
		r.ids = append(r.ids, req.Header.Get(DeliveryHeader))
		r.headers = append(r.headers, req.Header.Clone())
		r.mu.Unlock()
		w.WriteHeader(code)
	}))
	t.Cleanup(r.srv.Close)
	return r
}

func (r *receiver) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func mustNew(t *testing.T, opts Options) *Dispatcher {
	t.Helper()
	if opts.Policy.MaxAttempts == 0 {
		opts.Policy = fastPolicy
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDeliverySucceeds(t *testing.T) {
	rc := newReceiver(t, 200)
	d := mustNew(t, Options{})
	if err := d.Enqueue("job-1", rc.srv.URL, []byte(`{"job":"job-1","status":"done"}`)); err != nil {
		t.Fatal(err)
	}
	if !d.Flush(5 * time.Second) {
		t.Fatal("delivery did not complete")
	}
	if out, ok := d.Outcome("job-1"); !ok || out != "delivered" {
		t.Fatalf("Outcome = %q, %v; want delivered", out, ok)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if len(rc.bodies) != 1 || rc.bodies[0] != `{"job":"job-1","status":"done"}` {
		t.Fatalf("bodies = %q", rc.bodies)
	}
	if rc.ids[0] != "job-1" {
		t.Fatalf("delivery header = %q, want job-1", rc.ids[0])
	}
}

func TestFlappingEndpointRetriedWithBackoff(t *testing.T) {
	rc := newReceiver(t, 503, 503, 200)
	d := mustNew(t, Options{})
	d.Enqueue("flap", rc.srv.URL, []byte(`{}`))
	if !d.Flush(5 * time.Second) {
		t.Fatal("delivery did not complete")
	}
	if rc.count() != 3 {
		t.Fatalf("attempts = %d, want 3", rc.count())
	}
	st := d.Stats()
	if st.Delivered != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 delivered / 2 retries", st)
	}
	// Terminal outcome exactly once even though attempts flapped.
	if out, _ := d.Outcome("flap"); out != "delivered" {
		t.Fatalf("outcome = %q", out)
	}
}

func TestAttemptsExhaustedIsTerminalFailure(t *testing.T) {
	rc := newReceiver(t, 500)
	d := mustNew(t, Options{Policy: retry.Policy{
		BaseDelay: time.Millisecond, MaxAttempts: 3, Jitter: -1,
	}, BreakerThreshold: 100})
	d.Enqueue("dead", rc.srv.URL, []byte(`{}`))
	if !d.Flush(5 * time.Second) {
		t.Fatal("delivery never reached terminal state")
	}
	out, ok := d.Outcome("dead")
	if !ok || !strings.Contains(out, "failed after 3 attempts") {
		t.Fatalf("outcome = %q, %v", out, ok)
	}
	if rc.count() != 3 {
		t.Fatalf("attempts = %d, want 3", rc.count())
	}
}

func TestRetryAfterHonoredAsFloor(t *testing.T) {
	var mu sync.Mutex
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(429)
			return
		}
		w.WriteHeader(200)
	}))
	defer srv.Close()

	d := mustNew(t, Options{})
	d.Enqueue("ra", srv.URL, []byte(`{}`))
	if !d.Flush(10 * time.Second) {
		t.Fatal("delivery did not complete")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("attempts = %d, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry gap %v ignored the 1s Retry-After floor", gap)
	}
}

func TestBreakerLimitsDeadEndpointProbes(t *testing.T) {
	rc := newReceiver(t, 500)
	d := mustNew(t, Options{
		Policy: retry.Policy{
			BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
			MaxAttempts: 100, Jitter: -1,
		},
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	})
	d.Enqueue("probe", rc.srv.URL, []byte(`{}`))
	time.Sleep(300 * time.Millisecond)
	// Threshold 2, 10s cooldown: without the breaker ~100 attempts would
	// land in 300ms of 1-2ms backoff; with it only the first two may.
	if got := rc.count(); got > 2 {
		t.Fatalf("dead endpoint hit %d times; breaker never engaged", got)
	}
	if st := d.Stats(); st.BreakerWaits == 0 {
		t.Fatalf("BreakerWaits = 0, want > 0: %+v", st)
	}
}

func TestJournalReplayResumesPending(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "webhooks.mtj")

	// First life: endpoint is down hard (connection refused), dispatcher
	// closed mid-retry with the delivery still pending.
	closed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := closed.URL
	closed.Close()

	d1, err := New(Options{JournalPath: journal, Policy: retry.Policy{
		BaseDelay: 50 * time.Millisecond, MaxAttempts: 50, Jitter: -1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	d1.Enqueue("restart-me", deadURL, []byte(`{"job":"restart-me"}`))
	time.Sleep(20 * time.Millisecond)
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	if d1.Pending() != 1 {
		t.Fatalf("pending after close = %d, want 1", d1.Pending())
	}

	// Second life: endpoint is healthy; the replayed delivery completes.
	rc := newReceiver(t, 200)
	d2, err := New(Options{JournalPath: journal, Policy: fastPolicy})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Pending() != 1 {
		t.Fatalf("replayed pending = %d, want 1", d2.Pending())
	}
	// The journaled URL points at the dead server; re-enqueueing the same
	// ID with a live URL must dedupe (the original stands)... so instead
	// redirect by replacing: the pending delivery still targets deadURL.
	// Deliveries to unreachable endpoints keep retrying; here we only
	// assert the replay happened and dedup holds.
	if err := d2.Enqueue("restart-me", rc.srv.URL, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Deduped != 1 {
		t.Fatalf("Deduped = %d, want 1 (pending survives restart exactly once)", st.Deduped)
	}
}

func TestNoDuplicateTerminalDeliveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "webhooks.mtj")
	rc := newReceiver(t, 200)

	d1, err := New(Options{JournalPath: journal, Policy: fastPolicy})
	if err != nil {
		t.Fatal(err)
	}
	d1.Enqueue("once", rc.srv.URL, []byte(`{"job":"once"}`))
	if !d1.Flush(5 * time.Second) {
		t.Fatal("delivery did not complete")
	}
	d1.Close()

	// Restart and re-enqueue the same terminal event (a restarted daemon
	// re-walking its jobs does exactly this): the journaled done record
	// must suppress redelivery.
	d2, err := New(Options{JournalPath: journal, Policy: fastPolicy})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	d2.Enqueue("once", rc.srv.URL, []byte(`{"job":"once"}`))
	d2.Flush(time.Second)
	if rc.count() != 1 {
		t.Fatalf("receiver saw %d deliveries, want exactly 1", rc.count())
	}
	if out, ok := d2.Outcome("once"); !ok || out != "delivered" {
		t.Fatalf("outcome lost across restart: %q, %v", out, ok)
	}
}

func TestEnqueueValidation(t *testing.T) {
	d := mustNew(t, Options{})
	if err := d.Enqueue("", "http://example.invalid", []byte(`{}`)); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := d.Enqueue("big", "http://example.invalid", make([]byte, maxBodyBytes+1)); err == nil {
		t.Fatal("oversized body accepted")
	}
}
