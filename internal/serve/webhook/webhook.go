// Package webhook is the serving tier's retrying delivery engine: when
// a sweep is submitted with a webhook_url, the daemon POSTs the job's
// terminal state to that URL — and keeps its promise across endpoint
// flaps and its own restarts.
//
// Durability: every accepted delivery is journaled (MTJ1, the same
// crash-safe format the sweep journal uses) as pending/<id> before the
// first attempt, and as done/<id> after the terminal outcome
// (delivered, or failed after exhausting attempts). A restarted daemon
// replays the journal: pending deliveries without a done record resume
// retrying, and re-enqueueing an already-done delivery is a no-op — an
// idempotent receiver sees zero duplicate terminal deliveries across
// restarts.
//
// Retrying: attempts run on the shared internal/retry core —
// exponential backoff with jitter (decorrelating a herd of failed
// deliveries), Retry-After honored as a floor, bounded attempts, and a
// per-endpoint-host circuit breaker so a dead endpoint costs one probe
// per cooldown instead of a connect timeout per pending delivery.
//
// A single dispatcher goroutine owns the schedule; all shared state is
// guarded by one mutex and HTTP attempts run outside it.
package webhook

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/retry"
)

// journalBinding identifies a webhook journal; OpenJournal refuses to
// replay a journal written by a different subsystem.
const journalBinding = "mtserve-webhooks-v1"

// DeliveryHeader carries the delivery ID on every attempt so idempotent
// receivers can deduplicate redeliveries.
const DeliveryHeader = "Mtsim-Delivery"

// maxBodyBytes bounds one delivery body; webhooks carry job summaries,
// not results.
const maxBodyBytes = 1 << 20

// Options configures New. Zero values get defaults.
type Options struct {
	// JournalPath persists delivery state across restarts. Empty means
	// ephemeral (tests only; pending deliveries die with the process).
	JournalPath string
	// Policy is the backoff schedule (retry.Policy defaults apply).
	Policy retry.Policy
	// BreakerThreshold consecutive failures open an endpoint's breaker.
	// Default 3.
	BreakerThreshold int
	// BreakerCooldown is the open period. Default 30s.
	BreakerCooldown time.Duration
	// Client performs the HTTP POSTs. Default: 10s-timeout client.
	Client *http.Client
	// Now supplies the clock (tests). Default time.Now.
	Now func() time.Time
	// JitterUnit supplies backoff jitter in [0,1) (tests). Default: a
	// process-seeded PRNG — delivery pacing, not simulation state, so
	// nondeterminism here is wanted.
	JitterUnit func() float64
}

// Stats is a point-in-time snapshot of dispatcher effectiveness.
type Stats struct {
	Pending      int    `json:"pending"`
	Attempts     uint64 `json:"attempts"`
	Delivered    uint64 `json:"delivered"`
	Failed       uint64 `json:"failed"`
	Retries      uint64 `json:"retries"`
	Deduped      uint64 `json:"deduped"`
	BreakerWaits uint64 `json:"breaker_waits"`
}

// delivery is one pending webhook.
type delivery struct {
	id       string
	url      string
	body     []byte
	attempts int
	due      time.Time
	lastErr  string
}

// journalRecord is the JSON value of a pending/<id> journal record.
type journalRecord struct {
	URL  string `json:"url"`
	Body string `json:"body"` // base64
}

// Dispatcher delivers webhooks with journaled at-least-once semantics
// and deduplicated terminal outcomes. Safe for concurrent use.
type Dispatcher struct {
	opts Options

	mu       sync.Mutex
	pending  map[string]*delivery
	done     map[string]string
	breakers map[string]*retry.Breaker
	journal  *resilience.Journal
	closed   bool

	attempts     uint64
	delivered    uint64
	failed       uint64
	retries      uint64
	deduped      uint64
	breakerWaits uint64

	wake   chan struct{}
	stop   chan struct{}
	doneCh chan struct{}
}

// New opens the dispatcher, replaying the journal at opts.JournalPath
// (deliveries journaled pending but not done resume retrying
// immediately) and starting the delivery goroutine.
func New(opts Options) (*Dispatcher, error) {
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.JitterUnit == nil {
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		var rngMu sync.Mutex
		opts.JitterUnit = func() float64 {
			rngMu.Lock()
			defer rngMu.Unlock()
			return rng.Float64()
		}
	}

	d := &Dispatcher{
		opts:     opts,
		pending:  make(map[string]*delivery),
		done:     make(map[string]string),
		breakers: make(map[string]*retry.Breaker),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	if opts.JournalPath != "" {
		j, err := resilience.OpenJournal(opts.JournalPath, journalBinding)
		if err != nil {
			return nil, fmt.Errorf("webhook: %w", err)
		}
		d.journal = j
		d.replay()
	}
	go d.run()
	return d, nil
}

// replay rebuilds pending/done state from the journal. Runs before the
// dispatcher goroutine starts.
func (d *Dispatcher) replay() {
	now := d.opts.Now()
	d.journal.Each(func(key, value string) {
		if id, ok := cutPrefix(key, "done/"); ok {
			d.done[id] = value
			return
		}
		id, ok := cutPrefix(key, "pending/")
		if !ok {
			return
		}
		var rec journalRecord
		if json.Unmarshal([]byte(value), &rec) != nil {
			return
		}
		body, err := base64.StdEncoding.DecodeString(rec.Body)
		if err != nil {
			return
		}
		d.pending[id] = &delivery{id: id, url: rec.URL, body: body, due: now}
	})
	// A done record supersedes its pending record (both are present for
	// every completed delivery; the journal is append-only).
	for id := range d.done {
		delete(d.pending, id)
	}
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// Enqueue accepts one delivery: POST body (JSON) to rawURL, identified
// by id. Duplicate IDs — already pending, or already terminally
// delivered/failed, including across restarts via the journal — are
// dropped. The delivery is journaled before Enqueue returns, so once
// accepted it survives a crash.
func (d *Dispatcher) Enqueue(id, rawURL string, body []byte) error {
	if id == "" {
		return fmt.Errorf("webhook: empty delivery id")
	}
	if len(body) > maxBodyBytes {
		return fmt.Errorf("webhook: body %d bytes exceeds limit %d", len(body), maxBodyBytes)
	}
	if _, err := url.Parse(rawURL); err != nil {
		return fmt.Errorf("webhook: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("webhook: dispatcher closed")
	}
	if _, dup := d.pending[id]; dup {
		d.deduped++
		return nil
	}
	if _, dup := d.done[id]; dup {
		d.deduped++
		return nil
	}
	if d.journal != nil {
		rec, err := json.Marshal(journalRecord{URL: rawURL, Body: base64.StdEncoding.EncodeToString(body)})
		if err != nil {
			return fmt.Errorf("webhook: %w", err)
		}
		if err := d.journal.Record("pending/"+id, string(rec)); err != nil {
			return err
		}
	}
	d.pending[id] = &delivery{id: id, url: rawURL, body: append([]byte(nil), body...), due: d.opts.Now()}
	select {
	case d.wake <- struct{}{}:
	default:
	}
	return nil
}

// run is the dispatcher goroutine: pick the next due delivery, attempt
// it, record the outcome, sleep until the next due time.
func (d *Dispatcher) run() {
	defer close(d.doneCh)
	for {
		// Non-blocking stop check: a due delivery must not starve
		// shutdown (attempt is a no-op once closed, so without this the
		// loop would spin on it forever).
		select {
		case <-d.stop:
			return
		default:
		}
		dl, wait, ok := d.next()
		if !ok {
			select {
			case <-d.stop:
				return
			case <-d.wake:
			}
			continue
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-d.stop:
				t.Stop()
				return
			case <-d.wake:
				t.Stop()
				continue
			case <-t.C:
			}
		}
		d.attempt(dl)
	}
}

// next returns the earliest-due pending delivery (ties broken by id for
// a deterministic schedule) and how long until it is due.
func (d *Dispatcher) next() (*delivery, time.Duration, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.pending))
	for id := range d.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var best *delivery
	for _, id := range ids {
		dl := d.pending[id]
		if best == nil || dl.due.Before(best.due) {
			best = dl
		}
	}
	if best == nil {
		return nil, 0, false
	}
	return best, best.due.Sub(d.opts.Now()), true
}

// attempt performs one HTTP POST and applies the outcome: success
// journals done and retires the delivery; failure reschedules with
// backoff or, after the attempt budget, journals a terminal failure.
// A breaker-open endpoint is rescheduled without consuming an attempt.
func (d *Dispatcher) attempt(dl *delivery) {
	now := d.opts.Now()

	d.mu.Lock()
	if _, still := d.pending[dl.id]; !still || d.closed {
		d.mu.Unlock()
		return
	}
	br := d.breakerLocked(dl.url)
	if !br.Allow(now) {
		d.breakerWaits++
		dl.due = now.Add(d.opts.BreakerCooldown / 4)
		d.mu.Unlock()
		return
	}
	d.attempts++
	body := dl.body
	target := dl.url
	id := dl.id
	d.mu.Unlock()

	status, retryAfter, err := d.post(target, id, body)

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, still := d.pending[dl.id]; !still {
		return
	}
	if err == nil && status >= 200 && status < 300 {
		br.Success()
		d.delivered++
		d.retire(dl.id, "delivered")
		return
	}
	br.Failure(d.opts.Now())
	dl.attempts++
	if err != nil {
		dl.lastErr = err.Error()
	} else {
		dl.lastErr = fmt.Sprintf("endpoint returned %d", status)
	}
	if dl.attempts >= d.opts.Policy.Attempts() {
		d.failed++
		d.retire(dl.id, fmt.Sprintf("failed after %d attempts: %s", dl.attempts, dl.lastErr))
		return
	}
	d.retries++
	dl.due = d.opts.Now().Add(d.opts.Policy.Delay(dl.attempts-1, retryAfter, d.opts.JitterUnit()))
}

// post performs one delivery attempt outside the dispatcher lock.
func (d *Dispatcher) post(target, id string, body []byte) (status int, retryAfter time.Duration, err error) {
	req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeliveryHeader, id)
	resp, err := d.opts.Client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if ra, ok := retry.ParseRetryAfter(resp.Header.Get("Retry-After"), d.opts.Now()); ok {
		retryAfter = ra
	}
	return resp.StatusCode, retryAfter, nil
}

// retire records a delivery's terminal outcome. Caller holds mu.
func (d *Dispatcher) retire(id, outcome string) {
	if d.journal != nil {
		// Journal append failure leaves the delivery pending: redelivery
		// beats a lost outcome, and the receiver holds the dedup header.
		if err := d.journal.Record("done/"+id, outcome); err != nil {
			return
		}
	}
	d.done[id] = outcome
	delete(d.pending, id)
}

// breakerLocked returns the breaker for a URL's host. Caller holds mu.
func (d *Dispatcher) breakerLocked(rawURL string) *retry.Breaker {
	host := rawURL
	if u, err := url.Parse(rawURL); err == nil && u.Host != "" {
		host = u.Host
	}
	br, ok := d.breakers[host]
	if !ok {
		br = retry.NewBreaker(d.opts.BreakerThreshold, d.opts.BreakerCooldown)
		d.breakers[host] = br
	}
	return br
}

// Flush blocks until every currently-pending delivery has reached a
// terminal outcome, or the timeout expires. Tests and graceful drains
// use it; the dispatcher keeps running either way.
func (d *Dispatcher) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		d.mu.Lock()
		n := len(d.pending)
		d.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Pending returns the number of deliveries awaiting a terminal outcome.
func (d *Dispatcher) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// Outcome reports a delivery's terminal outcome, if it has one.
func (d *Dispatcher) Outcome(id string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	v, ok := d.done[id]
	return v, ok
}

// Stats snapshots the dispatcher counters.
func (d *Dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Pending:      len(d.pending),
		Attempts:     d.attempts,
		Delivered:    d.delivered,
		Failed:       d.failed,
		Retries:      d.retries,
		Deduped:      d.deduped,
		BreakerWaits: d.breakerWaits,
	}
}

// Close stops the dispatcher goroutine and closes the journal. Pending
// deliveries stay journaled; a dispatcher reopened on the same journal
// resumes them. Idempotent.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	close(d.stop)
	d.mu.Unlock()
	<-d.doneCh

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.journal != nil {
		return d.journal.Close()
	}
	return nil
}
