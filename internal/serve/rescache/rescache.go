// Package rescache is mtserve's content-addressed result cache: a
// bounded LRU keyed by a canonical SHA-256 hash of everything that
// determines a simulation result — workload generation parameters, the
// exact placement, the full simulator configuration and the engine label.
// Because the simulator is deterministic, two requests with equal keys
// would compute bit-identical results; the cache returns the first
// computation's *sim.Result (shared, read-only) instead.
//
// The package mirrors core.Suite's memoization discipline (exact,
// collision-free cell identity — never a lossy summary) but bounds the
// footprint: core.Suite may grow without limit inside one sweep process,
// a long-lived server may not.
//
// rescache is inside the determinism analyzers' purview: key derivation
// must never read the wall clock or a global random source, and must
// never feed map iteration order into the hash. The lookup path is
// hotpath-annotated — a cache hit on the serving path performs no
// allocation.
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Key is the canonical content address of one simulation cell.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the form the HTTP API reports.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyConfigFields is the number of sim.Config fields KeyOf folds into the
// hash. A test asserts it against reflect.TypeOf(sim.Config{}).NumField()
// so adding a Config field without extending the canonical encoding is a
// build-stopping event, not a silent cache collision.
const KeyConfigFields = 13

// KeyOf derives the content address of one cell. Every input that can
// change the simulation result is folded into the hash in a fixed order
// with explicit field tags and NUL separators, so no two distinct cells
// can produce the same pre-image. placementKey must be an exact placement
// encoding (core.PlacementKey), not a lossy name.
func KeyOf(scale float64, seed int64, app, placementKey string, cfg sim.Config, engine string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "mtserve-cell-v1\x00scale=%g\x00seed=%d\x00app=%s\x00pl=%s\x00", scale, seed, app, placementKey)
	fmt.Fprintf(h, "procs=%d\x00maxctx=%d\x00cachesize=%d\x00assoc=%d\x00line=%d\x00hit=%d\x00mem=%d\x00switch=%d\x00proto=%s\x00chans=%d\x00occ=%d\x00writeruns=%t\x00infcache=%t\x00",
		cfg.Processors, cfg.MaxContexts, cfg.CacheSize, cfg.Associativity,
		cfg.LineSize, cfg.HitCycles, cfg.MemLatency, cfg.SwitchCycles,
		cfg.Protocol, cfg.NetworkChannels, cfg.NetworkOccupancy,
		cfg.TrackWriteRuns, cfg.InfiniteCache)
	fmt.Fprintf(h, "engine=%s", engine)
	var k Key
	h.Sum(k[:0])
	return k
}

// SumStrings hashes a labeled, ordered list of strings into a Key. The
// server uses it to derive content-addressed job IDs from sweep requests:
// the same sweep resubmitted (to this server or a restarted one) maps to
// the same job. Callers must pass parts in a canonical order.
func SumStrings(label string, parts ...string) Key {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00n=%d\x00", label, len(parts))
	for _, p := range parts {
		fmt.Fprintf(h, "len=%d\x00%s\x00", len(p), p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// slot is one cache entry threaded on an index-based doubly-linked LRU
// list (no per-operation allocation: container/list would box every
// element).
type slot struct {
	key        Key
	res        *sim.Result
	prev, next int32
}

const nilIdx = int32(-1)

// Cache is the bounded LRU. Safe for concurrent use. Stored results are
// shared between callers and must be treated as read-only — the same
// contract core.Suite documents for its memoized cells.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	index     map[Key]int32
	slots     []slot
	head      int32 // most recently used
	tail      int32 // least recently used
	freeList  int32 // chain of evicted slots, linked through next
	hits      uint64
	misses    uint64
	evictions uint64
}

// New returns a cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		index:    make(map[Key]int32, capacity),
		slots:    make([]slot, 0, min(capacity, 1024)),
		head:     nilIdx,
		tail:     nilIdx,
		freeList: nilIdx,
	}
}

// Get returns the cached result for k, promoting it to most recently
// used, or nil on a miss. This is the serving layer's per-request fast
// path: map probe, pointer swizzle, no allocation, no defer.
//
//mtlint:hotpath
func (c *Cache) Get(k Key) *sim.Result {
	c.mu.Lock()
	idx, ok := c.index[k]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return nil
	}
	c.hits++
	c.moveToFront(idx)
	res := c.slots[idx].res
	c.mu.Unlock()
	return res
}

// moveToFront unlinks slot idx and relinks it at the head. Caller holds
// the lock.
//
//mtlint:hotpath
func (c *Cache) moveToFront(idx int32) {
	if c.head == idx {
		return
	}
	c.unlink(idx)
	c.slots[idx].prev = nilIdx
	c.slots[idx].next = c.head
	if c.head != nilIdx {
		c.slots[c.head].prev = idx
	}
	c.head = idx
	if c.tail == nilIdx {
		c.tail = idx
	}
}

// unlink removes slot idx from the LRU list. Caller holds the lock.
//
//mtlint:hotpath
func (c *Cache) unlink(idx int32) {
	s := &c.slots[idx]
	if s.prev != nilIdx {
		c.slots[s.prev].next = s.next
	}
	if s.next != nilIdx {
		c.slots[s.next].prev = s.prev
	}
	if c.head == idx {
		c.head = s.next
	}
	if c.tail == idx {
		c.tail = s.prev
	}
	s.prev, s.next = nilIdx, nilIdx
}

// Put stores res under k (promoting an existing entry in place) and
// evicts the least recently used entry once the cache is over capacity.
func (c *Cache) Put(k Key, res *sim.Result) {
	if res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx, ok := c.index[k]; ok {
		c.slots[idx].res = res
		c.moveToFront(idx)
		return
	}
	var idx int32
	if c.freeList != nilIdx {
		idx = c.freeList
		c.freeList = c.slots[idx].next
	} else {
		c.slots = append(c.slots, slot{})
		idx = int32(len(c.slots) - 1)
	}
	c.slots[idx] = slot{key: k, res: res, prev: nilIdx, next: nilIdx}
	c.index[k] = idx
	c.moveToFront(idx)
	for len(c.index) > c.capacity {
		c.evictTail()
	}
}

// evictTail drops the least recently used entry. Caller holds the lock.
func (c *Cache) evictTail() {
	idx := c.tail
	if idx == nilIdx {
		return
	}
	c.unlink(idx)
	delete(c.index, c.slots[idx].key)
	c.slots[idx].res = nil
	c.slots[idx].next = c.freeList
	c.freeList = idx
	c.evictions++
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.index),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
