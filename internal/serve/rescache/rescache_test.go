package rescache

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
)

func testConfig() sim.Config { return sim.DefaultConfig(4) }

// TestKeyDeterministic: equal inputs hash to equal keys, across calls.
func TestKeyDeterministic(t *testing.T) {
	a := KeyOf(1, 1994, "MP3D", "LOAD-BAL|0,1|2,3", testConfig(), "guarded")
	b := KeyOf(1, 1994, "MP3D", "LOAD-BAL|0,1|2,3", testConfig(), "guarded")
	if a != b {
		t.Fatalf("same cell hashed to different keys: %s vs %s", a, b)
	}
	if len(a.String()) != 64 {
		t.Fatalf("key hex length = %d, want 64", len(a.String()))
	}
}

// TestKeySensitivity: changing any single input changes the key. A cache
// collision between distinct cells would silently serve wrong results, so
// every field of the canonical encoding is exercised.
func TestKeySensitivity(t *testing.T) {
	base := KeyOf(1, 1994, "MP3D", "LOAD-BAL|0,1|2,3", testConfig(), "guarded")
	seen := map[Key]string{base: "base"}
	add := func(name string, k Key) {
		t.Helper()
		if prev, ok := seen[k]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
	add("scale", KeyOf(0.5, 1994, "MP3D", "LOAD-BAL|0,1|2,3", testConfig(), "guarded"))
	add("seed", KeyOf(1, 1, "MP3D", "LOAD-BAL|0,1|2,3", testConfig(), "guarded"))
	add("app", KeyOf(1, 1994, "FFT", "LOAD-BAL|0,1|2,3", testConfig(), "guarded"))
	add("placement", KeyOf(1, 1994, "MP3D", "LOAD-BAL|0,2|1,3", testConfig(), "guarded"))
	add("engine", KeyOf(1, 1994, "MP3D", "LOAD-BAL|0,1|2,3", testConfig(), "reference"))

	mutate := []func(*sim.Config){
		func(c *sim.Config) { c.Processors = 8 },
		func(c *sim.Config) { c.MaxContexts = 2 },
		func(c *sim.Config) { c.CacheSize *= 2 },
		func(c *sim.Config) { c.Associativity = 2 },
		func(c *sim.Config) { c.LineSize *= 2 },
		func(c *sim.Config) { c.HitCycles = 2 },
		func(c *sim.Config) { c.MemLatency = 100 },
		func(c *sim.Config) { c.SwitchCycles = 12 },
		func(c *sim.Config) { c.Protocol = sim.Update },
		func(c *sim.Config) { c.NetworkChannels = 4 },
		func(c *sim.Config) { c.NetworkOccupancy = 16 },
		func(c *sim.Config) { c.TrackWriteRuns = true },
		func(c *sim.Config) { c.InfiniteCache = true },
	}
	if len(mutate) != KeyConfigFields {
		t.Fatalf("test mutates %d config fields, KeyConfigFields = %d", len(mutate), KeyConfigFields)
	}
	for i, m := range mutate {
		cfg := testConfig()
		m(&cfg)
		add(reflect.TypeOf(sim.Config{}).Field(i).Name, KeyOf(1, 1994, "MP3D", "LOAD-BAL|0,1|2,3", cfg, "guarded"))
	}
}

// TestKeyConfigFieldCount pins the canonical encoding to sim.Config's
// field list: growing Config without extending KeyOf must fail here.
func TestKeyConfigFieldCount(t *testing.T) {
	if n := reflect.TypeOf(sim.Config{}).NumField(); n != KeyConfigFields {
		t.Fatalf("sim.Config has %d fields but rescache.KeyOf encodes %d; extend the canonical encoding (and bump its version tag) before shipping", n, KeyConfigFields)
	}
}

// TestSumStringsBoundaries: the part boundaries are part of the hash, so
// ["ab","c"] and ["a","bc"] must not collide.
func TestSumStringsBoundaries(t *testing.T) {
	if SumStrings("sweep", "ab", "c") == SumStrings("sweep", "a", "bc") {
		t.Fatal("SumStrings collides across part boundaries")
	}
	if SumStrings("sweep", "a") == SumStrings("job", "a") {
		t.Fatal("SumStrings ignores its label")
	}
	if SumStrings("sweep", "a", "b") != SumStrings("sweep", "a", "b") {
		t.Fatal("SumStrings is not deterministic")
	}
}

func key(i int) Key {
	return SumStrings("test-key", string(rune('a'+i%26)), string(rune('0'+i/26)))
}

// TestCacheLRU: eviction order is least-recently-used, Get promotes.
func TestCacheLRU(t *testing.T) {
	c := New(2)
	r1, r2, r3 := &sim.Result{ExecTime: 1}, &sim.Result{ExecTime: 2}, &sim.Result{ExecTime: 3}
	c.Put(key(1), r1)
	c.Put(key(2), r2)
	if got := c.Get(key(1)); got != r1 {
		t.Fatalf("Get(1) = %v, want r1", got)
	}
	c.Put(key(3), r3) // evicts key(2): key(1) was just touched
	if got := c.Get(key(2)); got != nil {
		t.Fatalf("key 2 should have been evicted, got %v", got)
	}
	if got := c.Get(key(1)); got != r1 {
		t.Fatal("promoted entry was evicted instead of LRU")
	}
	if got := c.Get(key(3)); got != r3 {
		t.Fatal("newest entry missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries, capacity 2, 1 eviction", st)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 3 hits, 1 miss", st)
	}
}

// TestCachePutUpdates: re-putting an existing key replaces the value
// without growing the cache.
func TestCachePutUpdates(t *testing.T) {
	c := New(4)
	c.Put(key(1), &sim.Result{ExecTime: 1})
	r2 := &sim.Result{ExecTime: 2}
	c.Put(key(1), r2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put, want 1", c.Len())
	}
	if got := c.Get(key(1)); got != r2 {
		t.Fatal("Put did not replace the stored result")
	}
}

// TestCacheChurn: fill far past capacity, then verify the cache holds
// exactly the most recent entries and the free list recycles slots
// (bounded memory).
func TestCacheChurn(t *testing.T) {
	const capacity, total = 8, 200
	c := New(capacity)
	for i := 0; i < total; i++ {
		c.Put(key(i), &sim.Result{ExecTime: uint64(i)})
	}
	if c.Len() != capacity {
		t.Fatalf("Len = %d, want %d", c.Len(), capacity)
	}
	for i := total - capacity; i < total; i++ {
		got := c.Get(key(i))
		if got == nil || got.ExecTime != uint64(i) {
			t.Fatalf("recent entry %d missing or wrong: %v", i, got)
		}
	}
	if len(c.slots) > capacity+1 {
		t.Fatalf("slot backing grew to %d for capacity %d: free list not recycling", len(c.slots), capacity)
	}
}

// TestCacheConcurrent hammers Get/Put from many goroutines; run under
// -race this is the data-race proof for the serving hot path.
func TestCacheConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key((g*31 + i) % 40)
				if res := c.Get(k); res == nil {
					c.Put(k, &sim.Result{ExecTime: uint64(i)})
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
