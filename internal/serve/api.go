// Package serve is the simulation-as-a-service layer: an HTTP daemon
// (cmd/mtserve) exposing the paper's simulator over a JSON API.
//
//	POST /v1/simulate   one (app, placement, config) cell, synchronous
//	POST /v1/sweep      a cell cross-product, asynchronous: returns a job ID
//	POST /v1/advise     recommend a placement from measured sharing, synchronous
//	GET  /v1/jobs/{id}  poll a sweep job's status and results
//	GET  /v1/placements catalog of apps, placement algorithms, engines
//	GET  /healthz       liveness, queue/worker/cache state, degradation
//	GET  /metrics       process counters in Prometheus text format
//
// Every simulation flows through a bounded job queue drained by a worker
// pool; a full queue answers 429 with Retry-After (backpressure, never
// unbounded buffering). Results are memoized in a content-addressed LRU
// (internal/serve/rescache) keyed exactly the way core.Suite memoizes
// locally, so repeated and overlapping sweeps are served from cache. The
// default runner is a resilience.EngineGuard: a fast-engine divergence
// benches the engine but the server keeps answering (correctly, slower)
// and reports "degraded" in /healthz.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"

	"repro/internal/advise"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Request-size and shape bounds. The decoder runs on untrusted input, so
// allocations are bounded the same way the MTT2 trace reader's are: hard
// byte limit first, element-count limits after parsing.
const (
	// MaxRequestBytes caps the request body.
	MaxRequestBytes = 1 << 20
	// MaxProcs caps the simulated machine size.
	MaxProcs = 512
	// MaxScale caps workload scale (trace memory is linear in it).
	MaxScale = 4.0
	// MaxNameLen caps app/algorithm/engine name lengths.
	MaxNameLen = 128
	// MaxClusterThreads caps the total thread count of an explicit
	// placement.
	MaxClusterThreads = 4096
	// MaxSweepCells caps the cell cross-product of one sweep job.
	MaxSweepCells = 4096
	// MaxSweepList caps each dimension list of a sweep.
	MaxSweepList = 64
	// MaxWebhookURLLen caps a sweep's webhook_url.
	MaxWebhookURLLen = 2048
)

// Engine labels accepted by the API. EngineGuarded (the default) runs the
// fast engine under the server's EngineGuard; the explicit labels bypass
// cross-checking and force one engine.
const (
	EngineGuarded   = "guarded"
	EngineFast      = "fast"
	EngineReference = "reference"
)

// Engines lists the accepted engine labels.
func Engines() []string { return []string{EngineGuarded, EngineFast, EngineReference} }

// Params selects the workload generation parameters of a request. A nil
// Params in a request means the server's defaults.
type Params struct {
	Scale float64 `json:"scale"`
	Seed  int64   `json:"seed"`
}

// PlacementSpec is an explicit placement: the exact clusters to simulate,
// bypassing the server-side placement algorithms. Algorithm is a free
// label (it names the placement in results and cache keys).
type PlacementSpec struct {
	Algorithm string  `json:"algorithm"`
	Clusters  [][]int `json:"clusters"`
}

// ConfigSpec mirrors sim.Config field-for-field with wire-friendly names.
// A zero field means "the server derives it" (via sim.DefaultConfig plus
// the workload's preferred cache size), except the booleans, which are
// taken literally.
type ConfigSpec struct {
	Processors       int    `json:"processors"`
	MaxContexts      int    `json:"max_contexts,omitempty"`
	CacheSize        int    `json:"cache_size,omitempty"`
	Associativity    int    `json:"associativity,omitempty"`
	LineSize         int    `json:"line_size,omitempty"`
	HitCycles        uint64 `json:"hit_cycles,omitempty"`
	MemLatency       uint64 `json:"mem_latency,omitempty"`
	SwitchCycles     uint64 `json:"switch_cycles,omitempty"`
	Protocol         string `json:"protocol,omitempty"` // "invalidate" (default) or "update"
	NetworkChannels  int    `json:"network_channels,omitempty"`
	NetworkOccupancy uint64 `json:"network_occupancy,omitempty"`
	TrackWriteRuns   bool   `json:"track_write_runs,omitempty"`
	InfiniteCache    bool   `json:"infinite_cache,omitempty"`
}

// ConfigSpecOf converts a sim.Config to its wire form (client side).
func ConfigSpecOf(cfg sim.Config) ConfigSpec {
	return ConfigSpec{
		Processors:       cfg.Processors,
		MaxContexts:      cfg.MaxContexts,
		CacheSize:        cfg.CacheSize,
		Associativity:    cfg.Associativity,
		LineSize:         cfg.LineSize,
		HitCycles:        cfg.HitCycles,
		MemLatency:       cfg.MemLatency,
		SwitchCycles:     cfg.SwitchCycles,
		Protocol:         cfg.Protocol.String(),
		NetworkChannels:  cfg.NetworkChannels,
		NetworkOccupancy: cfg.NetworkOccupancy,
		TrackWriteRuns:   cfg.TrackWriteRuns,
		InfiniteCache:    cfg.InfiniteCache,
	}
}

// ToSim converts the wire form back to a sim.Config, filling defaulted
// fields from sim.DefaultConfig.
func (c ConfigSpec) ToSim() (sim.Config, error) {
	cfg := sim.DefaultConfig(c.Processors)
	cfg.MaxContexts = c.MaxContexts
	if c.CacheSize != 0 {
		cfg.CacheSize = c.CacheSize
	}
	cfg.Associativity = c.Associativity
	if c.LineSize != 0 {
		cfg.LineSize = c.LineSize
	}
	if c.HitCycles != 0 {
		cfg.HitCycles = c.HitCycles
	}
	if c.MemLatency != 0 {
		cfg.MemLatency = c.MemLatency
	}
	if c.SwitchCycles != 0 {
		cfg.SwitchCycles = c.SwitchCycles
	}
	switch c.Protocol {
	case "", sim.Invalidate.String():
		cfg.Protocol = sim.Invalidate
	case sim.Update.String():
		cfg.Protocol = sim.Update
	default:
		return sim.Config{}, fmt.Errorf("unknown protocol %q", c.Protocol)
	}
	cfg.NetworkChannels = c.NetworkChannels
	if c.NetworkOccupancy != 0 {
		cfg.NetworkOccupancy = c.NetworkOccupancy
	}
	cfg.TrackWriteRuns = c.TrackWriteRuns
	cfg.InfiniteCache = c.InfiniteCache
	return cfg, nil
}

// SimulateRequest is the POST /v1/simulate body: one simulation cell.
// The cell is named either by Algorithm (a server-side placement
// algorithm applied to App's sharing data) or by an explicit Placement;
// exactly one must be set. Config, when present, overrides the derived
// (Procs, Infinite) machine entirely.
type SimulateRequest struct {
	Params    *Params        `json:"params,omitempty"`
	App       string         `json:"app"`
	Algorithm string         `json:"algorithm,omitempty"`
	Placement *PlacementSpec `json:"placement,omitempty"`
	Procs     int            `json:"procs,omitempty"`
	Infinite  bool           `json:"infinite,omitempty"`
	Config    *ConfigSpec    `json:"config,omitempty"`
	Engine    string         `json:"engine,omitempty"`
	Counters  bool           `json:"counters,omitempty"`
}

// SweepRequest is the POST /v1/sweep body: the cross product
// apps x algorithms x procs, simulated asynchronously under one job.
type SweepRequest struct {
	Params     *Params  `json:"params,omitempty"`
	Apps       []string `json:"apps"`
	Algorithms []string `json:"algorithms"`
	Procs      []int    `json:"procs"`
	Infinite   bool     `json:"infinite,omitempty"`
	Engine     string   `json:"engine,omitempty"`
	// WebhookURL, when set, is POSTed the job's terminal state (a
	// JobEvent body) with journaled at-least-once delivery: retried with
	// backoff across endpoint flaps and server restarts, deduplicated by
	// the Mtsim-Delivery header. http/https only.
	WebhookURL string `json:"webhook_url,omitempty"`
}

// Cells returns the size of the sweep's cross product.
func (r *SweepRequest) Cells() int {
	return len(r.Apps) * len(r.Algorithms) * len(r.Procs)
}

// SimulateResponse is the POST /v1/simulate reply.
type SimulateResponse struct {
	// Key is the cell's content address (lowercase hex SHA-256).
	Key string `json:"key"`
	// Cached reports whether the result came from the result cache.
	Cached bool `json:"cached"`
	// Engine echoes the effective engine label.
	Engine string `json:"engine"`
	// Degraded reports whether the server's engine guard has benched the
	// fast engine (the result is then reference-engine, still correct).
	Degraded bool `json:"degraded,omitempty"`
	// Result is the full simulation result, deeply equal to the
	// corresponding direct sim.Run / core.Suite library call.
	Result *sim.Result `json:"result"`
	// Counters holds the request-scoped probe counts when the request set
	// "counters" and the cell was actually simulated (a cache hit carries
	// no counters — nothing ran).
	Counters *obs.Counter `json:"counters,omitempty"`
	// Trace is the request's distributed-trace ID, usable against
	// GET /v1/trace/{id}. Empty when telemetry is disabled.
	Trace string `json:"trace,omitempty"`
}

// CellResult is one completed cell of a sweep job.
type CellResult struct {
	App       string      `json:"app"`
	Algorithm string      `json:"algorithm"`
	Procs     int         `json:"procs"`
	Key       string      `json:"key"`
	Cached    bool        `json:"cached"`
	Result    *sim.Result `json:"result"`
}

// Job status values.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusRetriable = "retriable" // drained before completion; resubmit
	StatusCanceled  = "canceled"
)

// SweepAccepted is the POST /v1/sweep reply (HTTP 202).
type SweepAccepted struct {
	// Job is the content-addressed job ID: the same sweep resubmitted (to
	// this server or a restarted one) maps to the same ID.
	Job    string `json:"job"`
	Status string `json:"status"`
	Cells  int    `json:"cells"`
	// Existing reports that an identical sweep was already known; its
	// job record was returned instead of a new one.
	Existing bool `json:"existing,omitempty"`
	// Trace is the job's distributed-trace ID (the existing job's ID when
	// Existing). Empty when telemetry is disabled.
	Trace string `json:"trace,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} reply.
type JobStatus struct {
	Job       string `json:"job"`
	Status    string `json:"status"`
	Cells     int    `json:"cells"`
	Completed int    `json:"completed"`
	Error     string `json:"error,omitempty"`
	// Trace is the job's distributed-trace ID, usable against
	// GET /v1/trace/{id}. Empty when telemetry is disabled.
	Trace string `json:"trace,omitempty"`
	// Results carries every cell (in the sweep's deterministic
	// apps x algorithms x procs order) once the job is done.
	Results []CellResult `json:"results,omitempty"`
}

// CacheHealth summarizes the result cache inside /healthz.
type CacheHealth struct {
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// StoreHealth summarizes the durable result store inside /healthz
// (present only when the daemon runs with -store-dir).
type StoreHealth struct {
	Entries        int     `json:"entries"`
	SealedSegments int     `json:"sealed_segments"`
	Hits           uint64  `json:"hits"`
	Misses         uint64  `json:"misses"`
	Puts           uint64  `json:"puts"`
	Quarantined    uint64  `json:"quarantined"`
	HitRate        float64 `json:"hit_rate"`
}

// WebhookHealth summarizes the delivery dispatcher inside /healthz
// (present only when webhooks are enabled).
type WebhookHealth struct {
	Pending   int    `json:"pending"`
	Delivered uint64 `json:"delivered"`
	Failed    uint64 `json:"failed"`
	Retries   uint64 `json:"retries"`
}

// JobsHealth summarizes job accounting inside /healthz. Accepted ==
// Completed + Failed + Retriable + Canceled + live jobs; graceful
// shutdown must never lose an accepted job.
type JobsHealth struct {
	Accepted  int64 `json:"accepted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Retriable int64 `json:"retriable"`
	Canceled  int64 `json:"canceled"`
}

// HealthResponse is the GET /healthz reply.
type HealthResponse struct {
	// Status is "ok", "degraded" (fast engine benched, still answering)
	// or "draining" (shutdown in progress, new work refused).
	Status string `json:"status"`
	// Role distinguishes a worker daemon from a cluster coordinator
	// serving the same API; mtserve leaves it empty (a bare worker),
	// mtcoord reports "coordinator".
	Role          string      `json:"role,omitempty"`
	Workers       int         `json:"workers"`
	QueueDepth    int         `json:"queue_depth"`
	QueueCapacity int         `json:"queue_capacity"`
	InFlight      int         `json:"in_flight"`
	Degraded      bool        `json:"degraded"`
	Divergence    string      `json:"divergence,omitempty"`
	Cache         CacheHealth `json:"cache"`
	Jobs          JobsHealth  `json:"jobs"`
	// Store reports the durable result store when one is attached.
	Store *StoreHealth `json:"store,omitempty"`
	// Webhooks reports the delivery dispatcher when one is attached.
	Webhooks *WebhookHealth `json:"webhooks,omitempty"`
}

// PlacementsResponse is the GET /v1/placements reply: the server's
// catalog of simulatable cells.
type PlacementsResponse struct {
	Apps       []string `json:"apps"`
	Algorithms []string `json:"algorithms"`
	Engines    []string `json:"engines"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// Retriable hints that the identical request may succeed later
	// (queue full, server draining).
	Retriable bool `json:"retriable,omitempty"`
}

// decodeStrict decodes exactly one JSON value from r into v with unknown
// fields rejected and the byte budget enforced before any allocation
// proportional to the input happens.
func decodeStrict(r io.Reader, v any) error {
	lr := io.LimitReader(r, MaxRequestBytes+1)
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) && lr.(*io.LimitedReader).N == 0 {
			return fmt.Errorf("request body exceeds %d bytes", MaxRequestBytes)
		}
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON request")
	}
	return nil
}

// DecodeSimulateRequest reads and validates a POST /v1/simulate body.
func DecodeSimulateRequest(r io.Reader) (*SimulateRequest, error) {
	var req SimulateRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeSweepRequest reads and validates a POST /v1/sweep body.
func DecodeSweepRequest(r io.Reader) (*SweepRequest, error) {
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func validateParams(p *Params) error {
	if p == nil {
		return nil
	}
	if p.Scale <= 0 || p.Scale > MaxScale {
		return fmt.Errorf("params.scale %g out of range (0, %g]", p.Scale, MaxScale)
	}
	return nil
}

func validateEngine(e string) error {
	switch e {
	case "", EngineGuarded, EngineFast, EngineReference:
		return nil
	}
	return fmt.Errorf("unknown engine %q (want one of %v)", e, Engines())
}

// validateAlgorithmName accepts a server-side algorithm name: a static
// algorithm from the placement registry, or a virtual ONLINE/… name (see
// the advise package) naming an online adaptive-placement configuration.
func validateAlgorithmName(alg string) error {
	if len(alg) > MaxNameLen {
		return fmt.Errorf("algorithm name longer than %d bytes", MaxNameLen)
	}
	if _, ok, err := advise.ParseOnlineAlgorithm(alg); ok || err != nil {
		return err
	}
	_, err := placement.ByName(alg)
	return err
}

func validateApp(app string) error {
	if app == "" {
		return errors.New("app is required")
	}
	if len(app) > MaxNameLen {
		return fmt.Errorf("app name longer than %d bytes", MaxNameLen)
	}
	if _, err := workload.ByName(app); err != nil {
		return err
	}
	return nil
}

// Validate checks shape and bounds. It is the complete acceptance
// predicate for untrusted input: anything it passes is safe to enqueue
// (the simulation itself may still fail, e.g. a placement whose thread
// count does not match the app's trace).
func (r *SimulateRequest) Validate() error {
	if err := validateParams(r.Params); err != nil {
		return err
	}
	if err := validateApp(r.App); err != nil {
		return err
	}
	if err := validateEngine(r.Engine); err != nil {
		return err
	}
	switch {
	case r.Algorithm != "" && r.Placement != nil:
		return errors.New("algorithm and placement are mutually exclusive")
	case r.Algorithm == "" && r.Placement == nil:
		return errors.New("one of algorithm or placement is required")
	case r.Algorithm != "":
		if err := validateAlgorithmName(r.Algorithm); err != nil {
			return err
		}
	default:
		if err := r.Placement.validate(); err != nil {
			return err
		}
	}
	if r.Config != nil {
		if r.Config.Processors < 1 || r.Config.Processors > MaxProcs {
			return fmt.Errorf("config.processors %d out of range [1, %d]", r.Config.Processors, MaxProcs)
		}
		cfg, err := r.Config.ToSim()
		if err != nil {
			return err
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		if cfg.CacheSize > 2*sim.InfiniteCacheSize {
			return fmt.Errorf("config.cache_size %d exceeds the %d-byte bound", cfg.CacheSize, 2*sim.InfiniteCacheSize)
		}
	} else if r.Procs < 1 || r.Procs > MaxProcs {
		return fmt.Errorf("procs %d out of range [1, %d]", r.Procs, MaxProcs)
	}
	return nil
}

func (p *PlacementSpec) validate() error {
	if p.Algorithm == "" {
		return errors.New("placement.algorithm label is required")
	}
	if len(p.Algorithm) > MaxNameLen {
		return fmt.Errorf("placement.algorithm longer than %d bytes", MaxNameLen)
	}
	if len(p.Clusters) == 0 {
		return errors.New("placement.clusters is empty")
	}
	total := 0
	for i, cl := range p.Clusters {
		total += len(cl)
		if total > MaxClusterThreads {
			return fmt.Errorf("placement exceeds %d threads", MaxClusterThreads)
		}
		for _, tid := range cl {
			if tid < 0 || tid >= MaxClusterThreads {
				return fmt.Errorf("cluster %d: thread id %d out of range [0, %d)", i, tid, MaxClusterThreads)
			}
		}
	}
	return nil
}

// Validate checks shape and bounds of a sweep request.
func (r *SweepRequest) Validate() error {
	if err := validateParams(r.Params); err != nil {
		return err
	}
	if err := validateEngine(r.Engine); err != nil {
		return err
	}
	if len(r.Apps) == 0 || len(r.Algorithms) == 0 || len(r.Procs) == 0 {
		return errors.New("apps, algorithms and procs must all be non-empty")
	}
	if len(r.Apps) > MaxSweepList || len(r.Algorithms) > MaxSweepList || len(r.Procs) > MaxSweepList {
		return fmt.Errorf("sweep dimension exceeds %d entries", MaxSweepList)
	}
	if r.Cells() > MaxSweepCells {
		return fmt.Errorf("sweep expands to %d cells, limit %d", r.Cells(), MaxSweepCells)
	}
	for _, app := range r.Apps {
		if err := validateApp(app); err != nil {
			return err
		}
	}
	for _, alg := range r.Algorithms {
		if err := validateAlgorithmName(alg); err != nil {
			return err
		}
	}
	for _, p := range r.Procs {
		if p < 1 || p > MaxProcs {
			return fmt.Errorf("procs %d out of range [1, %d]", p, MaxProcs)
		}
	}
	if r.WebhookURL != "" {
		if err := validateWebhookURL(r.WebhookURL); err != nil {
			return err
		}
	}
	return nil
}

// validateWebhookURL accepts absolute http/https URLs with a host, of
// bounded length — the complete acceptance predicate for delivery
// targets (the dispatcher re-parses but never re-validates).
func validateWebhookURL(raw string) error {
	if len(raw) > MaxWebhookURLLen {
		return fmt.Errorf("webhook_url longer than %d bytes", MaxWebhookURLLen)
	}
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("webhook_url: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("webhook_url scheme %q not allowed (http or https)", u.Scheme)
	}
	if u.Host == "" {
		return errors.New("webhook_url has no host")
	}
	return nil
}
