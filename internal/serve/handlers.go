package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Handler returns the server's HTTP API. Routing uses Go 1.22 method
// patterns; every response body is JSON.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/advise", s.handleAdvise)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/placements", s.handlePlacements)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Cluster-internal lease protocol (see lease.go); a bare worker
	// serves these too — they are harmless without a coordinator.
	mux.HandleFunc("POST /internal/v1/lease", s.handleLeaseGrant)
	mux.HandleFunc("GET /internal/v1/lease/{id}", s.handleLeaseStatus)
	mux.HandleFunc("POST /internal/v1/lease/{id}/steal", s.handleLeaseSteal)
	return s.instrument(mux)
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer: the SSE stream handler needs
// http.Flusher to survive the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController lookups through the wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument counts requests and response classes around the mux, and
// feeds the request-latency histogram. SSE streams are excluded from
// the latency histogram — their "latency" is the client's watch
// duration, which would drown the real request distribution.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Inc()
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		if !strings.HasSuffix(r.URL.Path, "/events") {
			s.metrics.reqLatency.ObserveSince(start)
		}
		switch {
		case rec.status >= 500:
			s.metrics.resp5xx.Inc()
		case rec.status >= 400:
			s.metrics.resp4xx.Inc()
		default:
			s.metrics.resp2xx.Inc()
		}
	})
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, msg string, retriable bool) {
	writeJSON(w, status, ErrorResponse{Error: msg, Retriable: retriable})
}

// handleSimulate runs one cell synchronously. The request still flows
// through the queue and worker pool — the same backpressure, drain and
// accounting path as sweeps — as a one-cell job the handler waits on.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errServerDraining.Error(), true)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	req, err := DecodeSimulateRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}

	cell := cellSpec{
		app:      req.App,
		engine:   normalizeEngine(req.Engine),
		infinite: req.Infinite,
		counters: req.Counters,
	}
	if req.Placement != nil {
		cell.explicitPlacement = req.Placement
	} else {
		cell.algorithm = req.Algorithm
	}
	if req.Config != nil {
		cfg, err := req.Config.ToSim()
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error(), false)
			return
		}
		cell.explicitConfig = &cfg
		cell.procs = cfg.Processors
	} else {
		cell.procs = req.Procs
	}

	j := newJob("", resolveParams(req.Params), []cellSpec{cell})
	if s.spans != nil {
		// The request span is the job's root; cell spans hang off it. It
		// ends with the job (finish()), which this handler always waits for.
		j.span = s.spans.Start(s.traceFromRequest(r), s.opts.ServiceName, "simulate "+cellLabel(cell))
		j.trace = j.span.Context()
		w.Header().Set(obs.TraceHeader, j.trace.HeaderValue())
	}
	if err := s.enqueue(j); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error(), true)
		case errors.Is(err, errServerDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error(), true)
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), false)
		}
		return
	}

	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone: cancel the cell (the guard polls the flag) and wait
		// for the worker so the job's accounting still closes.
		j.cancel.Store(true)
		<-j.done
		return
	}

	st := j.snapshot()
	if st.Status == StatusRetriable {
		writeError(w, http.StatusServiceUnavailable, "server drained before the cell ran; retry against the restarted server", true)
		return
	}
	res := j.results[0]
	if res.err != nil {
		var be *sim.BudgetError
		if errors.As(res.err, &be) {
			writeError(w, http.StatusGatewayTimeout, res.err.Error(), true)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, res.err.Error(), false)
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		Key:      res.key,
		Cached:   res.cached,
		Engine:   cell.engine,
		Degraded: s.guard.Degraded(),
		Result:   res.res,
		Counters: res.counters,
		Trace:    j.trace.Trace,
	})
}

// handleSweep accepts a cell cross-product as an asynchronous job.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errServerDraining.Error(), true)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	req, err := DecodeSweepRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), false)
		return
	}
	engine := normalizeEngine(req.Engine)
	params := resolveParams(req.Params)
	j := newJob(SweepJobID(params, req, engine), params, sweepCells(req, engine))
	j.webhookURL = req.WebhookURL
	if s.spans != nil {
		// Root span for the whole sweep, ended when the job reaches a
		// terminal state. If the sweep turns out to be a duplicate the
		// fresh span is simply never ended, so it is never recorded.
		j.span = s.spans.Start(s.traceFromRequest(r), s.opts.ServiceName, "sweep")
		j.trace = j.span.Context()
	}

	reg, existing, err := s.submitSweep(j)
	if err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error(), true)
		case errors.Is(err, errServerDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error(), true)
		default:
			writeError(w, http.StatusInternalServerError, err.Error(), false)
		}
		return
	}
	st := reg.snapshot()
	writeJSON(w, http.StatusAccepted, SweepAccepted{
		Job:      reg.id,
		Status:   st.Status,
		Cells:    st.Cells,
		Existing: existing,
		Trace:    st.Trace,
	})
}

// handleJob reports a job's status (and results once done).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id, false)
		return
	}
	st := j.snapshot()
	if st.Status == StatusRetriable {
		// The job was drained; tell the poller to resubmit the identical
		// sweep (same content-addressed ID) after the restart.
		writeJSON(w, http.StatusServiceUnavailable, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handlePlacements returns the simulatable catalog.
func (s *Server) handlePlacements(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, PlacementsResponse{
		Apps:       workload.Names(),
		Algorithms: placement.Names(),
		Engines:    Engines(),
	})
}

// handleHealth reports liveness and degradation; draining answers 503 so
// load balancers stop routing to a terminating instance.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Status == "draining" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncCacheCounters()
	s.syncDurableCounters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_, _ = s.metrics.set.WriteTo(w)
}

// syncCacheCounters mirrors the cache's own counters into /metrics (the
// cache counts authoritatively; metrics are a projection).
func (s *Server) syncCacheCounters() {
	cs := s.cache.Stats()
	s.metrics.cacheHits.Set(int64(cs.Hits))
	s.metrics.cacheMisses.Set(int64(cs.Misses))
	s.metrics.cacheEvicts.Set(int64(cs.Evictions))
}
